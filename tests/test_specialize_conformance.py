"""Differential conformance for the specialization tier.

Layer 1 (trace-guided specializer): the compiled closure must be
*observationally identical* to the interpreted AP walk — same outcome
fields, same execution statistics, same observed reads, same cost
tally (to the per-bucket sum), same I/O charges, same post state — on
perfect matches, imperfect matches, branch selection, shortcut hits
and misses, and constraint violations (identical exception text and
identical cpu charged up to the abort point).

Layer 2 (peephole superoptimizer): optimized minisol bytecode must
execute byte-identically to the unoptimized bytecode — same success
flag, storage, logs, and return data — while never charging *more*
gas, and every rule in the catalog is exercised by a targeted snippet.

Randomized cases are seeded (``random.Random``) so failures reproduce.
"""

import random

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import (
    AGGREGATOR_SOURCE,
    AMM_SOURCE,
    AUCTION_SOURCE,
    ERC20_SOURCE,
    LENDING_SOURCE,
    PRICEFEED_SOURCE,
    REGISTRY_SOURCE,
    pricefeed,
)
from repro.contracts.compute import COMPUTE_SOURCE
from repro.core.ap_exec import execute_ap
from repro.core.costmodel import CostTally
from repro.core.speculator import FutureContext, Speculator
from repro.errors import ConstraintViolation
from repro.evm.assembler import assemble
from repro.evm.interpreter import EVM
from repro.evm.jit import (
    HOT_OPS,
    JitTier,
    compile_ap,
    optimize_assembly,
)
from repro.minisol import compile_contract
from repro.obs.registry import MetricsRegistry
from repro.state.statedb import StateDB
from repro.state.world import WorldState

from tests.conftest import ALICE, FEED, ROUND

PF = pricefeed()
CODE_ADDR = 0xC0DE


def fresh_world(active_round=ROUND, price=2000, count=4):
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(FEED, code=PF.code)
    account = world.get_account(FEED)
    account.set_storage(PF.slot_of("activeRoundID"), active_round)
    if active_round == ROUND:
        account.set_storage(PF.slot_of("prices", ROUND), price)
        account.set_storage(PF.slot_of("submissionCounts", ROUND), count)
    return world


def tx_e():
    return Transaction(sender=ALICE, to=FEED,
                       data=PF.calldata("submit", ROUND, 1980), nonce=0)


def header(ts):
    return BlockHeader(number=1, timestamp=ts, coinbase=0xBEEF)


def build_merged_ap():
    """Speculate Tx_e in FC1 (else-branch) and FC4 (if-branch)."""
    world = fresh_world(ROUND)
    spec = Speculator(world)
    spec.speculate(tx_e(), FutureContext(1, header(3990462)))
    world.get_account(FEED).set_storage(
        PF.slot_of("activeRoundID"), 3990000)
    spec.speculate(tx_e(), FutureContext(4, header(3990478)))
    return spec.get_ap(tx_e().hash)


def _digest(runner, world, hdr, tx):
    """Run one AP execution strategy and capture everything observable."""
    state = StateDB(world)
    tally = CostTally()
    io_before = state.disk.stats.cost_units
    try:
        outcome = runner(state, hdr, tx, tally)
    except ConstraintViolation as exc:
        return {
            "violation": str(exc),
            "cpu": tally.cpu_units,
            "detail": dict(tally.detail),
            "io": state.disk.stats.cost_units - io_before,
        }
    state.commit()
    return {
        "success": outcome.success,
        "gas_used": outcome.gas_used,
        "return_data": outcome.return_data,
        "terminal": id(outcome.terminal),
        "stats": outcome.stats,
        "observed_reads": dict(outcome.observed_reads),
        "cpu": tally.cpu_units,
        "detail": dict(tally.detail),
        "io": state.disk.stats.cost_units - io_before,
        "logs": [(e.address, e.topics, e.data) for e in state.logs],
        "root": world.root(),
    }


def _walk(ap):
    return lambda state, hdr, tx, tally: execute_ap(
        ap, state, hdr, tx, tally=tally)


def _closure(artifact):
    return lambda state, hdr, tx, tally: artifact.fn(
        state, hdr, lambda n: 0, tally)


def _compare(ap, world_factory, hdr, tx):
    artifact = compile_ap(ap)
    walked = _digest(_walk(ap), world_factory(), hdr, tx)
    compiled = _digest(_closure(artifact), world_factory(), hdr, tx)
    assert walked == compiled
    return walked


class TestClosureConformance:
    def test_artifact_shape(self):
        ap = build_merged_ap()
        artifact = compile_ap(ap, version=7)
        assert artifact.version == 7
        assert artifact.node_count > 0
        assert artifact.segment_count > 0
        assert "def _ap(state, header, bh, tally):" in artifact.source

    def test_hot_op_coverage(self):
        assert len(HOT_OPS) >= 20

    def test_perfect_match(self):
        ap = build_merged_ap()
        digest = _compare(ap, lambda: fresh_world(ROUND),
                          header(3990462), tx_e())
        assert digest["success"]
        assert digest["stats"].shortcut_hits > 0
        assert digest["stats"].guards_checked == 0

    def test_imperfect_match_recomputes(self):
        ap = build_merged_ap()
        digest = _compare(
            ap, lambda: fresh_world(ROUND, price=1234, count=9),
            header(3990500), tx_e())
        assert digest["success"]
        assert digest["stats"].shortcut_misses > 0

    def test_branch_selection(self):
        ap = build_merged_ap()
        digest = _compare(ap, lambda: fresh_world(3990000),
                          header(3990478), tx_e())
        assert digest["success"]

    def test_violation_identical(self):
        ap = build_merged_ap()
        walked = _digest(_walk(ap), fresh_world(ROUND),
                         header(ROUND + 700), tx_e())
        compiled = _digest(_closure(compile_ap(ap)), fresh_world(ROUND),
                           header(ROUND + 700), tx_e())
        assert "violation" in walked
        assert walked == compiled

    def test_random_contexts(self):
        """Seeded sweep over contexts: perfect, imperfect, branch,
        violating — every digest field must agree."""
        ap = build_merged_ap()
        artifact = compile_ap(ap)
        rng = random.Random(0xF0)
        violations = successes = 0
        for _ in range(40):
            active = rng.choice([ROUND, 3990000, ROUND + 1])
            price = rng.randrange(1, 5000)
            count = rng.randrange(1, 12)
            ts = rng.choice([3990462, 3990478, 3990500, ROUND + 700])
            hdr = header(ts)
            walked = _digest(
                _walk(ap), fresh_world(active, price, count), hdr, tx_e())
            compiled = _digest(
                _closure(artifact), fresh_world(active, price, count),
                hdr, tx_e())
            assert walked == compiled
            if "violation" in walked:
                violations += 1
            else:
                successes += 1
        assert violations and successes  # the sweep hit both regimes


class TestTierPolicy:
    def test_stale_version_bails_out_to_walk(self):
        tier = JitTier(registry=MetricsRegistry())
        ap = build_merged_ap()
        assert tier.compile(ap) is not None
        tier.invalidate("reorg")
        hdr, tx = header(3990462), tx_e()
        via_tier = _digest(
            lambda state, h, t, tally: tier.execute(
                ap, state, h, t, tally=tally), fresh_world(ROUND), hdr, tx)
        pure_walk = _digest(_walk(ap), fresh_world(ROUND), hdr, tx)
        assert via_tier == pure_walk
        assert ap.jit is None          # artifact dropped on bailout
        assert tier.c_bailouts.value == 1

    def test_disabled_tier_never_compiles(self):
        tier = JitTier(enabled=False, registry=MetricsRegistry())
        ap = build_merged_ap()
        assert tier.compile(ap) is None
        assert ap.jit is None

    def test_guard_failure_counted(self):
        tier = JitTier(registry=MetricsRegistry())
        ap = build_merged_ap()
        tier.compile(ap)
        with pytest.raises(ConstraintViolation):
            tier.execute(ap, StateDB(fresh_world(ROUND)),
                         header(ROUND + 700), tx_e())
        assert tier.c_guard_failures.value == 1
        assert tier.c_hits.value == 1


# -- Layer 2: peephole ----------------------------------------------------

EXAMPLE_SOURCES = {
    "pricefeed": PRICEFEED_SOURCE,
    "erc20": ERC20_SOURCE,
    "amm": AMM_SOURCE,
    "auction": AUCTION_SOURCE,
    "registry": REGISTRY_SOURCE,
    "lending": LENDING_SOURCE,
    "aggregator": AGGREGATOR_SOURCE,
    "compute": COMPUTE_SOURCE,
}


def _run_code(code: bytes, data: bytes = b"", slots=(0,),
              storage=None, ts=1000):
    """Execute ``code`` at CODE_ADDR; digest of everything but gas."""
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(CODE_ADDR, code=code)
    for slot, value in (storage or {}).items():
        world.get_account(CODE_ADDR).set_storage(slot, value)
    state = StateDB(world)
    tx = Transaction(sender=ALICE, to=CODE_ADDR, data=data, nonce=0)
    result = EVM(state, header(ts), tx).execute_transaction()
    state.commit()
    return result, {
        "success": result.success,
        "return_data": result.return_data,
        "logs": result.logs,
        "storage": [state.get_storage(CODE_ADDR, s) for s in slots],
    }


def _assert_equivalent(unopt_code: bytes, opt_code: bytes,
                       data: bytes = b"", slots=(0,), storage=None,
                       ts=1000):
    """Differential execution: identical results, gas never worse."""
    unopt_result, unopt_digest = _run_code(unopt_code, data, slots,
                                           storage, ts)
    opt_result, opt_digest = _run_code(opt_code, data, slots,
                                       storage, ts)
    assert unopt_digest == opt_digest
    assert opt_result.gas_used <= unopt_result.gas_used
    return opt_digest


class TestPeepholeExamples:
    @pytest.mark.parametrize("name", sorted(EXAMPLE_SOURCES))
    def test_strictly_reduces(self, name):
        compiled = compile_contract(EXAMPLE_SOURCES[name], optimize=True)
        stats = compiled.peephole_stats
        assert stats is not None
        assert stats.instructions_after < stats.instructions_before

    def test_default_compile_untouched(self):
        """optimize defaults off: golden bytecode stays byte-identical."""
        assert compile_contract(PRICEFEED_SOURCE).code == PF.code

    def test_pricefeed_submit_equivalent(self):
        unopt = compile_contract(PRICEFEED_SOURCE)
        opt = compile_contract(PRICEFEED_SOURCE, optimize=True)
        assert opt.code != unopt.code
        data = unopt.calldata("submit", ROUND, 1980)
        slots = [unopt.slot_of("activeRoundID"),
                 unopt.slot_of("prices", ROUND),
                 unopt.slot_of("submissionCounts", ROUND)]
        for contract in (unopt, opt):
            assert contract.slot_of("prices", ROUND) == slots[1]
        storage = {unopt.slot_of("activeRoundID"): ROUND,
                   unopt.slot_of("prices", ROUND): 2000,
                   unopt.slot_of("submissionCounts", ROUND): 4}
        digest = _assert_equivalent(unopt.code, opt.code, data, slots,
                                    storage=storage, ts=3990462)
        assert digest["success"]

    def test_compute_mix_equivalent(self):
        unopt = compile_contract(COMPUTE_SOURCE)
        opt = compile_contract(COMPUTE_SOURCE, optimize=True)
        data = unopt.calldata("mix", 12345, 6)
        slots = [unopt.slot_of("checkpoint"), unopt.slot_of("rounds")]
        digest = _assert_equivalent(unopt.code, opt.code, data, slots)
        assert digest["success"]
        assert digest["logs"]  # the Checkpointed event survived


def _random_expr(rng, depth):
    if depth == 0 or rng.random() < 0.3:
        return rng.choice(["a", "b", str(rng.randrange(0, 1 << 64))])
    op = rng.choice(["+", "-", "*", "/", "%", "&", "|", "^"])
    if op in ("/", "%"):
        # Constant non-zero divisor: minisol/EVM define x/0 == 0, but a
        # varying divisor would make the two sides trivially equal
        # anyway; a constant one feeds the fold-const rule.
        return (f"(({_random_expr(rng, depth - 1)}) {op} "
                f"{rng.randrange(1, 1 << 32)})")
    if rng.random() < 0.2:
        shift = rng.randrange(0, 16)
        return (f"(({_random_expr(rng, depth - 1)}) "
                f"{rng.choice(['<<', '>>'])} {shift})")
    return (f"(({_random_expr(rng, depth - 1)}) {op} "
            f"({_random_expr(rng, depth - 1)}))")


class TestPeepholeRandomPrograms:
    def test_random_programs_equivalent(self):
        rng = random.Random(0x5EED)
        reduced = 0
        for i in range(12):
            source = f"""
            contract R{i} {{
                uint256 public out;
                function f(uint256 a, uint256 b) public {{
                    out = {_random_expr(rng, 3)};
                }}
            }}
            """
            unopt = compile_contract(source)
            opt = compile_contract(source, optimize=True)
            assert opt.peephole_stats.instructions_after <= \
                opt.peephole_stats.instructions_before
            if opt.peephole_stats.removed:
                reduced += 1
            a, b = rng.randrange(1 << 64), rng.randrange(1 << 64)
            data = unopt.calldata("f", a, b)
            digest = _assert_equivalent(
                unopt.code, opt.code, data, [unopt.slot_of("out")])
            assert digest["success"]
        assert reduced > 0


#: rule name -> (assembly snippet, storage slots to compare)
RULE_SNIPPETS = {
    "push-pop": "PUSH 7\nPOP\nPUSH 42\nPUSH 0\nSSTORE\nSTOP",
    "dup-pop": "PUSH 42\nDUP1\nPOP\nPUSH 0\nSSTORE\nSTOP",
    "swap-swap":
        "CALLVALUE\nCALLVALUE\nSWAP1\nSWAP1\nPUSH 42\nPUSH 0\nSSTORE\nSTOP",
    "push-swap": "PUSH 0\nPUSH 42\nSWAP1\nSSTORE\nSTOP",
    "fold-const": "PUSH 6\nPUSH 7\nMUL\nPUSH 0\nSSTORE\nSTOP",
    "fold-unary": "PUSH 0\nISZERO\nPUSH 0\nSSTORE\nSTOP",
    "identity": "CALLVALUE\nPUSH 0\nADD\nPUSH 42\nADD\nPUSH 0\nSSTORE\nSTOP",
    "const-jumpi": ("PUSH 1\nPUSH @yes\nJUMPI\n"
                    "PUSH 13\nPUSH 0\nSSTORE\nSTOP\n"
                    "yes:\nJUMPDEST\nPUSH 42\nPUSH 0\nSSTORE\nSTOP"),
    "dead-jumpi": ("PUSH 0\nPUSH @yes\nJUMPI\n"
                   "PUSH 13\nPUSH 0\nSSTORE\nSTOP\n"
                   "yes:\nJUMPDEST\nPUSH 42\nPUSH 0\nSSTORE\nSTOP"),
    "unreachable":
        "PUSH 42\nPUSH 0\nSSTORE\nSTOP\nPUSH 1\nPUSH 2\nADD",
    "dead-label": ("PUSH 42\nPUSH 0\nSSTORE\nSTOP\n"
                   "end:\nJUMPDEST\nSTOP"),
}


class TestPeepholeRules:
    @pytest.mark.parametrize("rule", sorted(RULE_SNIPPETS))
    def test_rule_fires_and_preserves_semantics(self, rule):
        snippet = RULE_SNIPPETS[rule]
        optimized, stats = optimize_assembly(snippet)
        assert rule in stats.rules, (rule, stats.rules)
        assert stats.instructions_after < stats.instructions_before
        _assert_equivalent(assemble(snippet), assemble(optimized))

    def test_fixpoint_is_stable(self):
        for snippet in RULE_SNIPPETS.values():
            once, _ = optimize_assembly(snippet)
            twice, stats = optimize_assembly(once)
            assert twice == once
            assert stats.removed == 0

    def test_windows_never_cross_barriers(self):
        # PUSH before a JUMPDEST + POP after it must survive: the
        # JUMPDEST is a jump target, so the pair is not a real window.
        snippet = ("PUSH @L\nJUMP\nL:\nJUMPDEST\n"
                   "PUSH 42\nPUSH 0\nSSTORE\nSTOP")
        optimized, stats = optimize_assembly(snippet)
        assert "JUMPDEST" in optimized
        _assert_equivalent(assemble(snippet), assemble(optimized))
