"""Fleet equivalence: the subsystem's core contract.

A fleet of N replicas must commit **byte-identical** results to the
single-node serial run — Merkle roots, receipt cores, and every
Table 2/3 column of every joined record — at every shard count, on
every workload kind tested.  Sharding moves the speculation work and
the serving load; it never moves the answers (docs/FLEET.md has the
full determinism argument).
"""

from __future__ import annotations

import dataclasses
import hashlib

import pytest

from repro.fleet import FleetConfig, fleet_replay
from repro.obs.export import canonical_json
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

SHARD_COUNTS = (1, 2, 4, 8)

_SILENT = dict(token_rate=0.0, dex_rate=0.0, auction_rate=0.0,
               registry_rate=0.0, lending_rate=0.0, compute_rate=0.0,
               deploy_rate=0.0, eth_transfer_rate=0.0,
               oracle_feeds=0, oracle_reporters=0)

#: Three workload kinds (the acceptance floor) spanning plain value
#: transfer, hot-contract traffic, and the full mixed profile.
WORKLOADS = {
    "eth": dict(_SILENT, eth_transfer_rate=2.0),
    "tokens": dict(_SILENT, token_rate=2.0),
    "mixed": {},
}


@pytest.fixture(scope="module")
def workload_datasets():
    datasets = {}
    for name, overrides in WORKLOADS.items():
        traffic = TrafficConfig(duration=8.0, seed=13, **overrides)
        datasets[name] = record_dataset(DatasetConfig(
            name=f"fleet-{name}", traffic=traffic,
            observers={"live": LatencyModel()}, seed=13))
    return datasets


def commitment_digest(reports, records) -> str:
    """SHA-256 over roots + receipts + every joined-record column."""
    payload = {
        "blocks": [
            {"number": report.block_number,
             "root": f"{report.state_root:#x}",
             "receipts": [(f"{r.tx_hash:#x}", r.gas_used, r.success)
                          for r in report.records]}
            for report in reports],
        "records": [dataclasses.asdict(record) for record in records],
    }
    return hashlib.sha256(
        canonical_json(payload).encode("ascii")).hexdigest()


def single_digest(run) -> str:
    return commitment_digest(run.forerunner_node.reports, run.records)


def fleet_digest(run) -> str:
    return commitment_digest(run.supervisor.reports, run.records)


def test_every_workload_commits_transactions(workload_datasets):
    """Guards the matrix against vacuity."""
    for name, dataset in workload_datasets.items():
        assert dataset.tx_count > 0, f"{name} produced no transactions"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_shard_count_invariance_per_workload(name, workload_datasets):
    """Shards ∈ {1,2,4,8}: byte-identical roots, receipts, and
    Table 2/3 record columns to the single-node replay."""
    dataset = workload_datasets[name]
    reference = single_digest(replay(dataset, "live"))
    digests = {reference}
    for shards in SHARD_COUNTS:
        run = fleet_replay(dataset, "live",
                           FleetConfig(shards=shards))
        assert run.roots_matched == run.blocks_executed, \
            f"{name}@{shards}: replica root cross-check failed"
        digests.add(fleet_digest(run))
    assert len(digests) == 1, \
        f"{name}: shard count changed commitments"


def test_speculation_work_matches_single_node(workload_datasets):
    """The coordinator reproduces the single-node admission cycle:
    same job count, not just same commitments."""
    dataset = workload_datasets["mixed"]
    single = replay(dataset, "live")
    run = fleet_replay(dataset, "live", FleetConfig(shards=4))
    assert run.speculation_jobs == single.speculation_jobs


def test_two_fleet_runs_are_byte_identical(workload_datasets):
    """Fleet determinism: two same-seed fleet replays agree on the
    full commitment digest and the lifecycle report."""
    dataset = workload_datasets["tokens"]
    first = fleet_replay(dataset, "live", FleetConfig(shards=4))
    second = fleet_replay(dataset, "live", FleetConfig(shards=4))
    assert fleet_digest(first) == fleet_digest(second)
    assert canonical_json(first.supervisor.lifecycle_report()) == \
        canonical_json(second.supervisor.lifecycle_report())


def test_speculation_actually_accelerated_the_fleet(workload_datasets):
    """Anti-vacuity: fleet replicas actually ran APs (the equivalence
    above must not pass because speculation never happened)."""
    run = fleet_replay(workload_datasets["mixed"], "live",
                       FleetConfig(shards=4))
    assert run.speculation_jobs > 0
    assert any(record.ap_ready for record in run.records)
