"""Emulator internals: event ordering, speculation ticks, wall timers,
kind propagation, and run-level accessors."""

import pytest

from repro.core import stats as S
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig


@pytest.fixture(scope="module")
def dataset():
    config = DatasetConfig(
        name="EM", traffic=TrafficConfig(duration=60.0, seed=91),
        observers={"live": LatencyModel()}, seed=91)
    return record_dataset(config)


@pytest.fixture(scope="module")
def run(dataset):
    return replay(dataset, "live")


def test_every_block_tx_produces_a_record(dataset, run):
    expected = sum(len(b.transactions) for _, b in dataset.blocks)
    assert len(run.records) == expected


def test_kinds_propagated(dataset, run):
    kinds = {r.kind for r in run.records}
    assert "?" not in kinds
    assert kinds <= {"oracle", "token", "dex", "auction", "registry",
                     "lending", "compute", "deploy", "eth"}


def test_wall_timers_positive(run):
    assert run.wall_seconds_baseline > 0
    assert run.wall_seconds_forerunner > 0


def test_speculation_tick_density_matters(dataset):
    """Sparser ticks leave less time for speculation jobs to be
    scheduled before blocks, so job counts differ."""
    dense = replay(dataset, "live", speculation_tick=1.0)
    sparse = replay(dataset, "live", speculation_tick=30.0)
    assert dense.roots_matched == dense.blocks_executed
    assert sparse.roots_matched == sparse.blocks_executed
    assert dense.speculation_jobs != sparse.speculation_jobs or \
        dense.speculation_jobs > 0


def test_heard_fraction_accessors(run):
    assert 0.0 < run.heard_fraction() <= 1.0
    assert 0.0 < run.heard_fraction_weighted() <= 1.0


def test_speedup_property_on_records(run):
    for record in run.records[:20]:
        if record.forerunner_cost > 0:
            assert record.speedup == pytest.approx(
                record.baseline_cost / record.forerunner_cost)


def test_offpath_overhead_fields(run):
    overhead = S.offpath_overhead(run)
    assert overhead.speculation_cost > 0
    assert overhead.execution_cost_baseline > 0
    assert overhead.ratio > 0


def test_forerunner_node_exposed_for_inspection(run):
    node = run.forerunner_node
    assert node is not None
    assert node.speculator.archive  # retired AP stats kept
    assert node.reports
