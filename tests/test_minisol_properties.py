"""Property-based compiler validation: random expression trees.

Generates random arithmetic/comparison/bitwise expressions, compiles a
contract returning the expression over two calldata arguments, executes
it in the EVM, and compares against an independent Python evaluator
implementing EVM semantics (mod-2^256, div-by-zero-is-zero).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.evm.interpreter import EVM
from repro.minisol import compile_contract, decode_uint
from repro.state.statedb import StateDB
from repro.state.world import WorldState
from repro.utils.words import u256

SENDER = 0x77
CONTRACT = 0xC7

# (operator text, python semantics) — EVM unsigned semantics.
_BINOPS = [
    ("+", lambda a, b: u256(a + b)),
    ("-", lambda a, b: u256(a - b)),
    ("*", lambda a, b: u256(a * b)),
    ("/", lambda a, b: a // b if b else 0),
    ("%", lambda a, b: a % b if b else 0),
    ("&", lambda a, b: a & b),
    ("|", lambda a, b: a | b),
    ("^", lambda a, b: a ^ b),
    ("<", lambda a, b: 1 if a < b else 0),
    (">", lambda a, b: 1 if a > b else 0),
    ("<=", lambda a, b: 1 if a <= b else 0),
    (">=", lambda a, b: 1 if a >= b else 0),
    ("==", lambda a, b: 1 if a == b else 0),
    ("!=", lambda a, b: 1 if a != b else 0),
]


@st.composite
def expressions(draw, depth=0):
    """(source text, evaluator(a, b) -> int) pairs, fully parenthesized."""
    if depth >= 3 or draw(st.booleans()) and depth > 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            value = draw(st.integers(0, 2**32))
            return str(value), (lambda a, b, v=value: v)
        if choice == 1:
            return "a", (lambda a, b: a)
        return "b", (lambda a, b: b)
    op_text, op_fn = draw(st.sampled_from(_BINOPS))
    left_text, left_fn = draw(expressions(depth=depth + 1))
    right_text, right_fn = draw(expressions(depth=depth + 1))
    text = f"({left_text} {op_text} {right_text})"

    def evaluate(a, b, lf=left_fn, rf=right_fn, f=op_fn):
        return f(lf(a, b), rf(a, b))

    return text, evaluate


@settings(max_examples=60, deadline=None)
@given(expr=expressions(),
       a=st.integers(0, 2**64), b=st.integers(0, 2**64))
def test_compiled_expression_matches_python(expr, a, b):
    text, evaluate = expr
    source = f"""
    contract Expr {{
        function f(uint256 a, uint256 b) public returns (uint256) {{
            return {text};
        }}
    }}
    """
    compiled = compile_contract(source)
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CONTRACT, code=compiled.code)
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CONTRACT,
                     data=compiled.calldata("f", a, b), nonce=0,
                     gas_limit=2_000_000)
    result = EVM(state, BlockHeader(1, 1, 0xB), tx).execute_transaction()
    assert result.success, f"{text} reverted"
    assert decode_uint(result.return_data) == u256(evaluate(a, b)), text


@settings(max_examples=25, deadline=None)
@given(expr=expressions(),
       a=st.integers(0, 2**64), b=st.integers(0, 2**64))
def test_expression_ap_equivalence(expr, a, b):
    """The same random expressions, through the AP pipeline: speculate
    with one (a, b), execute with the path's own (a, b) — results must
    match plain execution (tx data is constant, so one speculation
    covers exactly that tx)."""
    from repro.core.accelerator import TransactionAccelerator
    from repro.core.speculator import FutureContext, Speculator

    text, evaluate = expr
    source = f"""
    contract Expr {{
        function f(uint256 a, uint256 b) public returns (uint256) {{
            return {text};
        }}
    }}
    """
    compiled = compile_contract(source)

    def make_world():
        world = WorldState()
        world.create_account(SENDER, balance=10**21)
        world.create_account(CONTRACT, code=compiled.code)
        return world

    tx = Transaction(sender=SENDER, to=CONTRACT,
                     data=compiled.calldata("f", a, b), nonce=0,
                     gas_limit=2_000_000)
    header = BlockHeader(1, 1, 0xB)
    speculator = Speculator(make_world())
    speculator.speculate(tx, FutureContext(1, header))
    ap = speculator.get_ap(tx.hash)

    world = make_world()
    state = StateDB(world)
    receipt = TransactionAccelerator().execute(tx, header, state, ap)
    assert receipt.outcome == "satisfied"
    assert decode_uint(receipt.result.return_data) == \
        u256(evaluate(a, b)), text
