"""Behavioural tests: lending pool, aggregator, and the staticread /
delegate minisol builtins."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts.aggregator import aggregator
from repro.contracts.lending import RATE_PER_SECOND, RATE_SCALE, lending
from repro.contracts.pricefeed import pricefeed
from repro.evm.interpreter import EVM
from repro.minisol import compile_contract, decode_uint
from repro.state.statedb import StateDB
from repro.state.world import WorldState

ALICE = 0xA1
POOL, FEED_A, FEED_B, FEED_C, AGG = 0x100, 0x201, 0x202, 0x203, 0x300
ROUND = 3990300

L = lending()
AG = aggregator()
PF = pricefeed()


def build_world(prices=(2000, 2010, 1990), collateral=10**6,
                supplied=10**12, borrowed=0, last_accrual=0,
                borrow_index=RATE_SCALE):
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(POOL, code=L.code)
    for feed, price in zip((FEED_A, FEED_B, FEED_C), prices):
        world.create_account(feed, code=PF.code)
        world.get_account(feed).set_storage(
            PF.slot_of("prices", ROUND), price)
    world.create_account(AGG, code=AG.code)
    agg = world.get_account(AGG)
    agg.set_storage(AG.slot_of("feedA"), FEED_A)
    agg.set_storage(AG.slot_of("feedB"), FEED_B)
    agg.set_storage(AG.slot_of("feedC"), FEED_C)
    pool = world.get_account(POOL)
    pool.set_storage(L.slot_of("priceFeed"), FEED_A)
    pool.set_storage(L.slot_of("activeRound"), ROUND)
    pool.set_storage(L.slot_of("totalSupplied"), supplied)
    pool.set_storage(L.slot_of("totalBorrowed"), borrowed)
    pool.set_storage(L.slot_of("lastAccrual"), last_accrual)
    pool.set_storage(L.slot_of("borrowIndex"), borrow_index)
    pool.set_storage(L.slot_of("collateral", ALICE), collateral)
    return world


def send(world, to, data, timestamp, nonce=0):
    state = StateDB(world)
    tx = Transaction(sender=ALICE, to=to, data=data, nonce=nonce)
    result = EVM(state, BlockHeader(1, timestamp, 0xBEEF), tx) \
        .execute_transaction()
    state.commit()
    return result


class TestLending:
    def test_accrue_compounds_with_elapsed_time(self):
        world = build_world(last_accrual=1000, borrowed=10**9)
        result = send(world, POOL, L.calldata("accrue"), timestamp=2000)
        assert result.success
        pool = world.get_account(POOL)
        elapsed = 1000
        expected_index = RATE_SCALE + \
            RATE_SCALE * elapsed * RATE_PER_SECOND // RATE_SCALE
        assert pool.get_storage(L.slot_of("borrowIndex")) == expected_index
        expected_debt = 10**9 + 10**9 * elapsed * RATE_PER_SECOND \
            // RATE_SCALE
        assert pool.get_storage(L.slot_of("totalBorrowed")) == expected_debt
        assert pool.get_storage(L.slot_of("lastAccrual")) == 2000

    def test_accrue_first_touch_just_stamps(self):
        world = build_world(last_accrual=0)
        send(world, POOL, L.calldata("accrue"), timestamp=500)
        pool = world.get_account(POOL)
        assert pool.get_storage(L.slot_of("lastAccrual")) == 500
        assert pool.get_storage(L.slot_of("borrowIndex")) == RATE_SCALE

    def test_accrue_is_idempotent_within_second(self):
        world = build_world(last_accrual=1000, borrowed=10**9)
        send(world, POOL, L.calldata("accrue"), timestamp=1000)
        pool = world.get_account(POOL)
        assert pool.get_storage(L.slot_of("totalBorrowed")) == 10**9

    def test_borrow_within_collateral(self):
        world = build_world(collateral=100)  # value = 100*2000
        result = send(world, POOL, L.calldata("borrow", 1000),
                      timestamp=1000)
        assert result.success
        pool = world.get_account(POOL)
        assert pool.get_storage(L.slot_of("borrowed", ALICE)) == 1000

    def test_borrow_over_collateral_rejected(self):
        world = build_world(collateral=1)  # value 2000 -> max ~1333
        result = send(world, POOL, L.calldata("borrow", 2000),
                      timestamp=1000)
        assert not result.success

    def test_borrow_respects_liquidity(self):
        world = build_world(supplied=100, collateral=10**9)
        result = send(world, POOL, L.calldata("borrow", 200),
                      timestamp=1000)
        assert not result.success

    def test_repay_roundtrip(self):
        world = build_world(collateral=10**6)
        send(world, POOL, L.calldata("borrow", 5000), timestamp=1000)
        result = send(world, POOL, L.calldata("repay", 3000),
                      timestamp=1001, nonce=1)
        assert result.success
        pool = world.get_account(POOL)
        assert pool.get_storage(L.slot_of("borrowed", ALICE)) == 2000

    def test_repay_over_debt_rejected(self):
        world = build_world()
        result = send(world, POOL, L.calldata("repay", 1),
                      timestamp=1000)
        assert not result.success


class TestAggregator:
    @pytest.mark.parametrize("prices", [
        (2000, 2010, 1990),
        (1990, 2000, 2010),
        (2010, 1990, 2000),
        (2000, 2000, 2000),
        (1, 3, 2),
    ])
    def test_median(self, prices):
        world = build_world(prices=prices)
        result = send(world, AGG, AG.calldata("update", ROUND),
                      timestamp=1000)
        assert result.success
        assert world.get_account(AGG).get_storage(
            AG.slot_of("lastMedian")) == sorted(prices)[1]

    def test_zero_median_rejected(self):
        world = build_world(prices=(0, 0, 0))
        result = send(world, AGG, AG.calldata("update", ROUND),
                      timestamp=1000)
        assert not result.success

    def test_round_recorded_and_event(self):
        world = build_world()
        result = send(world, AGG, AG.calldata("update", ROUND),
                      timestamp=1000)
        assert world.get_account(AGG).get_storage(
            AG.slot_of("lastRound")) == ROUND
        assert len(result.logs) == 1


class TestBuiltins:
    def test_staticread_cannot_mutate(self):
        """A staticread into a mutating function reverts the caller."""
        from repro.minisol.abi import selector
        mutator_sel = selector("poke()")
        caller_src = f"""
        contract Caller {{
            uint256 public target;
            function read() public returns (uint256) {{
                return staticread(target, {mutator_sel});
            }}
        }}
        """
        mutator_src = """
        contract Mutator {
            uint256 public hits;
            function poke() public returns (uint256) {
                hits += 1;
                return hits;
            }
        }
        """
        caller = compile_contract(caller_src)
        mutator = compile_contract(mutator_src)
        world = WorldState()
        world.create_account(ALICE, balance=10**21)
        world.create_account(0xCA, code=caller.code)
        world.create_account(0xCB, code=mutator.code)
        world.get_account(0xCA).set_storage(
            caller.slot_of("target"), 0xCB)
        state = StateDB(world)
        tx = Transaction(sender=ALICE, to=0xCA,
                         data=caller.calldata("read"), nonce=0)
        result = EVM(state, BlockHeader(1, 1, 0xB), tx) \
            .execute_transaction()
        assert not result.success  # extcall failure bubbles as revert
        assert world.get_account(0xCB).get_storage(
            mutator.slot_of("hits")) == 0

    def test_delegate_builtin_uses_caller_storage(self):
        from repro.minisol.abi import selector
        set_sel = selector("setValue(uint256)")
        library_src = """
        contract Library {
            uint256 public value;
            function setValue(uint256 v) public returns (uint256) {
                value = v;
                return v;
            }
        }
        """
        proxy_src = f"""
        contract Proxy {{
            uint256 public value;
            uint256 public impl;
            function set(uint256 v) public returns (uint256) {{
                return delegate(impl, {set_sel}, v);
            }}
        }}
        """
        library = compile_contract(library_src)
        proxy = compile_contract(proxy_src)
        world = WorldState()
        world.create_account(ALICE, balance=10**21)
        world.create_account(0x1B, code=library.code)
        world.create_account(0x1A, code=proxy.code)
        world.get_account(0x1A).set_storage(proxy.slot_of("impl"), 0x1B)
        state = StateDB(world)
        tx = Transaction(sender=ALICE, to=0x1A,
                         data=proxy.calldata("set", 77), nonce=0)
        result = EVM(state, BlockHeader(1, 1, 0xB), tx) \
            .execute_transaction()
        state.commit()
        assert result.success
        assert decode_uint(result.return_data) == 77
        # The write landed in the PROXY's slot 0, not the library's.
        assert world.get_account(0x1A).get_storage(
            proxy.slot_of("value")) == 77
        assert world.get_account(0x1B).get_storage(
            library.slot_of("value")) == 0
