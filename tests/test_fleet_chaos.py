"""Fleet chaos containment (``fleet.*`` fault sites).

Replica crashes, torn handoffs, route flaps, and stale shard maps may
cost latency, lose cache warmth, or change which replica serves a
frame — they must never change the fleet's commitments.  Every test
compares merged Merkle roots and receipt cores against the fault-free
run; the crash tests additionally check the restarted replica's
journal-replay convergence (the supervisor cross-checks every live
replica's root each block and raises on divergence).
"""

from __future__ import annotations

import pytest

from repro.edge import ScenarioConfig, build_scenario
from repro.fleet import (
    SITE_HANDOFF_TORN,
    SITE_REPLICA_CRASH,
    SITE_ROUTE_FLAP,
    SITE_STALE_SHARDMAP,
    FleetConfig,
    fleet_fault_plan,
    fleet_replay,
    run_fleet_serving,
)
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

#: Sites whose fault window only opens when membership changes — swept
#: with the crash site as their driver.
_DRIVEN = {SITE_HANDOFF_TORN, SITE_STALE_SHARDMAP}


@pytest.fixture(scope="module")
def chaos_dataset():
    return record_dataset(DatasetConfig(
        name="fleet-chaos",
        traffic=TrafficConfig(duration=30.0, seed=13),
        observers={"live": LatencyModel()}, seed=13))


@pytest.fixture(scope="module")
def clean_commitments(chaos_dataset):
    run = replay(chaos_dataset, "live")
    return [
        (report.block_number, report.state_root,
         tuple((r.tx_hash, r.gas_used, r.success)
               for r in report.records))
        for report in run.forerunner_node.reports]


def fleet_commitments(run):
    return [
        (report.block_number, report.state_root,
         tuple((r.tx_hash, r.gas_used, r.success)
               for r in report.records))
        for report in run.supervisor.reports]


@pytest.mark.parametrize("site", (SITE_REPLICA_CRASH,
                                  SITE_HANDOFF_TORN))
def test_lifecycle_site_containment(site, chaos_dataset,
                                    clean_commitments):
    """Lifecycle sites fired at a hot rate through a replay:
    commitments byte-identical to the single-node fault-free run."""
    sites = (SITE_REPLICA_CRASH, site) if site in _DRIVEN else (site,)
    plan = fleet_fault_plan(seed=0, probability=0.25, sites=sites)
    run = fleet_replay(chaos_dataset, "live",
                       FleetConfig(shards=4, fault_plan=plan))
    assert run.supervisor.injector.fired(site) > 0, \
        f"{site} never fired: containment test is vacuous"
    assert run.roots_matched == run.blocks_executed
    assert fleet_commitments(run) == clean_commitments


@pytest.mark.parametrize("site", (SITE_ROUTE_FLAP,
                                  SITE_STALE_SHARDMAP))
def test_routing_site_containment(site, chaos_dataset):
    """Routing sites fire on the serving path: misroutes and
    stale-generation placements cost hops/latency, never commitments
    or goodput collapse."""
    scenario = build_scenario(chaos_dataset,
                              ScenarioConfig(seed=0, load=2.0))
    clean = run_fleet_serving(chaos_dataset, scenario,
                              fleet_config=FleetConfig(shards=4))
    sites = (SITE_REPLICA_CRASH, site) if site in _DRIVEN else (site,)
    plan = fleet_fault_plan(seed=0, probability=0.25, sites=sites)
    faulted = run_fleet_serving(
        chaos_dataset, scenario,
        fleet_config=FleetConfig(shards=4, fault_plan=plan))
    assert faulted.supervisor.injector.fired(site) > 0, \
        f"{site} never fired: containment test is vacuous"
    assert faulted.commitments() == clean.commitments()
    if site == SITE_ROUTE_FLAP:
        assert faulted.router.c_flaps.value > 0
        # Flapped requests paid the forwarding penalty.
        flapped = [r for r in faulted.routes if r.hops > 1]
        assert flapped and all(r.penalty_units > 0 for r in flapped)


@pytest.mark.parametrize("seed", (0, 1, 2))
def test_crash_restart_converges_across_seeds(seed, chaos_dataset,
                                              clean_commitments):
    """Seeds 0-2 of sustained crash chaos: every restarted replica
    replays its shard journal, catches up missed blocks, and converges
    byte-for-byte (the per-block root cross-check would raise on any
    divergence)."""
    plan = fleet_fault_plan(seed=seed, probability=0.3,
                            sites=(SITE_REPLICA_CRASH,))
    run = fleet_replay(chaos_dataset, "live",
                       FleetConfig(shards=4, fault_plan=plan))
    supervisor = run.supervisor
    assert supervisor.c_crashes.value > 0
    assert supervisor.c_restarts.value > 0
    assert fleet_commitments(run) == clean_commitments


def test_crash_chaos_is_deterministic(chaos_dataset):
    """Same chaos seed, same lifecycle: crash counts, generations and
    commitments agree between two runs."""
    plan = fleet_fault_plan(seed=1, probability=0.3,
                            sites=(SITE_REPLICA_CRASH,))
    first = fleet_replay(chaos_dataset, "live",
                         FleetConfig(shards=4, fault_plan=plan))
    second = fleet_replay(chaos_dataset, "live",
                          FleetConfig(shards=4, fault_plan=plan))
    assert first.supervisor.c_crashes.value == \
        second.supervisor.c_crashes.value
    assert first.supervisor.shardmap.generation == \
        second.supervisor.shardmap.generation
    assert fleet_commitments(first) == fleet_commitments(second)


def test_torn_handoffs_are_repaired_from_journals(chaos_dataset,
                                                  clean_commitments):
    """Torn handoffs (withdrawn, never delivered) are repaired from
    the shard journals — no pending transaction is lost, and the
    commitments still match."""
    plan = fleet_fault_plan(seed=0, probability=0.5,
                            sites=(SITE_REPLICA_CRASH,
                                   SITE_HANDOFF_TORN))
    run = fleet_replay(chaos_dataset, "live",
                       FleetConfig(shards=4, fault_plan=plan))
    supervisor = run.supervisor
    assert supervisor.shardpool.c_torn.value > 0, "no handoff torn"
    assert supervisor.c_torn_repaired.value > 0
    assert fleet_commitments(run) == clean_commitments
