"""Unit tests of the fault-injection layer (:mod:`repro.faults`).

Covers the declarative plan machinery (rules, triggers, seeded
probabilities, per-site RNG streams), the injector's raise/stall
wrappers, payload corruption helpers, and the guard layer (containment,
transient-storage retry, per-contract circuit breaker).
"""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.speculator import FutureContext, Speculator
from repro.errors import InjectedFault, TransientStorageError
from repro.faults.guard import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    RetryPolicy,
    SpeculationGuard,
)
from repro.faults.injector import (
    DEFAULT_STALL_UNITS,
    NULL_INJECTOR,
    SITE_KINDS,
    SITES,
    FaultInjector,
    FaultPlan,
    FaultRule,
    corrupt_guard_branch,
    corrupt_shortcut,
)
from repro.obs.registry import MetricsRegistry
from repro.state.world import WorldState

from tests.conftest import ALICE, BOB, FEED, ROUND

PF = pricefeed()


def registry():
    return MetricsRegistry()


class TestFaultPlan:
    def test_uniform_covers_every_site_with_its_kind(self):
        plan = FaultPlan.uniform(seed=5, probability=0.25)
        assert plan.sites() == SITES
        for rule in plan.rules:
            assert rule.kind == SITE_KINDS[rule.site]
            assert rule.probability == 0.25

    def test_seeded_random_is_deterministic(self):
        a = FaultPlan.seeded_random(seed=42)
        b = FaultPlan.seeded_random(seed=42)
        assert a.describe() == b.describe()
        assert a.rules == b.rules

    def test_seeded_random_rates_bounded(self):
        for seed in range(8):
            plan = FaultPlan.seeded_random(seed=seed, max_rate=0.2)
            assert plan.rules, "a plan is never empty"
            for rule in plan.rules:
                assert 0.0 < rule.probability <= 0.2

    def test_different_seeds_draw_different_plans(self):
        plans = {tuple(FaultPlan.seeded_random(seed=s).describe())
                 for s in range(6)}
        assert len(plans) > 1

    def test_describe_mentions_window_fields(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="worker.stall", kind="stall",
                      probability=0.5, magnitude=1000,
                      after=2, max_fires=3, contract=0xAB),))
        line = plan.describe()[0]
        assert "magnitude=1000" in line
        assert "contract=0xab" in line
        assert "after=2" in line
        assert "max_fires=3" in line


class TestFaultInjector:
    def test_probability_one_always_fires(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="memoize.build", kind="raise"),))
        injector = FaultInjector(plan, registry=registry())
        assert all(injector.evaluate("memoize.build") is not None
                   for _ in range(20))
        assert injector.fired("memoize.build") == 20

    def test_probability_zero_never_fires(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="memoize.build", kind="raise",
                      probability=0.0),))
        injector = FaultInjector(plan, registry=registry())
        assert all(injector.evaluate("memoize.build") is None
                   for _ in range(50))

    def test_unplanned_site_is_free(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="memoize.build", kind="raise"),))
        injector = FaultInjector(plan, registry=registry())
        assert injector.evaluate("predictor.predict") is None
        assert injector.total_fired() == 0

    def test_after_window(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="memoize.build", kind="raise", after=3),))
        injector = FaultInjector(plan, registry=registry())
        fired = [injector.evaluate("memoize.build") is not None
                 for _ in range(6)]
        assert fired == [False, False, False, True, True, True]

    def test_max_fires(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="memoize.build", kind="raise", max_fires=2),))
        injector = FaultInjector(plan, registry=registry())
        fired = sum(injector.evaluate("memoize.build") is not None
                    for _ in range(10))
        assert fired == 2

    def test_contract_filter(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="memoize.build", kind="raise",
                      contract=0xFEED),))
        injector = FaultInjector(plan, registry=registry())
        assert injector.evaluate("memoize.build", contract=0xBEEF) is None
        assert injector.evaluate("memoize.build", contract=0xFEED) \
            is not None

    def test_predicate_trigger(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="memoize.build", kind="raise",
                      predicate=lambda ctx: ctx.get("tx", 0) % 2 == 0),))
        injector = FaultInjector(plan, registry=registry())
        assert injector.evaluate("memoize.build", tx=3) is None
        assert injector.evaluate("memoize.build", tx=4) is not None

    def test_per_site_streams_are_interleaving_independent(self):
        """The decisions at one site never depend on how other sites'
        evaluations interleave — the core determinism property."""
        plan = FaultPlan(seed=9, rules=(
            FaultRule(site="memoize.build", kind="raise",
                      probability=0.5),
            FaultRule(site="prefetcher.prefetch", kind="raise",
                      probability=0.5),))

        grouped = FaultInjector(plan, registry=registry())
        seq_a = [grouped.evaluate("memoize.build") is not None
                 for _ in range(30)]
        seq_b = [grouped.evaluate("prefetcher.prefetch") is not None
                 for _ in range(30)]

        interleaved = FaultInjector(plan, registry=registry())
        got_a, got_b = [], []
        for _ in range(30):
            got_a.append(
                interleaved.evaluate("memoize.build") is not None)
            got_b.append(
                interleaved.evaluate("prefetcher.prefetch") is not None)
        assert got_a == seq_a
        assert got_b == seq_b

    def test_maybe_raise_kinds(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="memoize.build", kind="raise"),
            FaultRule(site="storage.read", kind="storage_error"),
            FaultRule(site="worker.stall", kind="stall"),))
        injector = FaultInjector(plan, registry=registry())
        with pytest.raises(InjectedFault) as excinfo:
            injector.maybe_raise("memoize.build")
        assert excinfo.value.site == "memoize.build"
        with pytest.raises(TransientStorageError):
            injector.maybe_raise("storage.read")
        # A stall rule never raises; it only reports cost units.
        injector.maybe_raise("worker.stall")

    def test_stall_units_default_and_magnitude(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="worker.stall", kind="stall"),))
        injector = FaultInjector(plan, registry=registry())
        assert injector.stall_units() == DEFAULT_STALL_UNITS
        sized = FaultInjector(FaultPlan(seed=0, rules=(
            FaultRule(site="worker.stall", kind="stall",
                      magnitude=12345),)), registry=registry())
        assert sized.stall_units() == 12345

    def test_null_injector_is_inert(self):
        assert NULL_INJECTOR.enabled is False
        assert NULL_INJECTOR.evaluate("storage.read") is None
        NULL_INJECTOR.maybe_raise("storage.read")
        assert NULL_INJECTOR.stall_units() == 0
        assert NULL_INJECTOR.fire_summary() == {}

    def test_fire_summary_counts(self):
        plan = FaultPlan(seed=0, rules=(
            FaultRule(site="memoize.build", kind="raise", max_fires=1),))
        injector = FaultInjector(plan, registry=registry())
        for _ in range(4):
            injector.evaluate("memoize.build")
        assert injector.fire_summary() == {
            "memoize.build": {"evaluated": 4, "fired": 1}}


def _speculated_ap():
    """A real AP (pricefeed submit) to corrupt."""
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=10**24)
    world.create_account(FEED, code=PF.code)
    account = world.get_account(FEED)
    account.set_storage(PF.slot_of("activeRoundID"), ROUND)
    account.set_storage(PF.slot_of("prices", ROUND), 2000)
    account.set_storage(PF.slot_of("submissionCounts", ROUND), 4)
    speculator = Speculator(world)
    tx = Transaction(sender=ALICE, to=FEED,
                     data=PF.calldata("submit", ROUND, 1980))
    header = BlockHeader(number=1, timestamp=3990462, coinbase=0xBEEF)
    assert speculator.speculate(tx, FutureContext(1, header)) is not None
    return speculator.get_ap(tx.hash)


class TestCorruption:
    def test_corrupt_shortcut_rekeys_with_sentinel(self):
        ap = _speculated_ap()
        import random as _random
        assert corrupt_shortcut(ap, _random.Random(1)) is True
        corrupted = [key for node in ap.all_nodes()
                     if node.shortcut is not None
                     for key in node.shortcut.entries
                     if key and key[-1] == "#corrupted"]
        assert corrupted, "one shortcut key carries the sentinel"

    def test_corrupt_guard_branch_rekeys_with_sentinel(self):
        ap = _speculated_ap()
        import random as _random
        assert corrupt_guard_branch(ap, _random.Random(1)) is True
        corrupted = [key for node in ap.all_nodes() if node.is_guard()
                     for key in node.branches
                     if isinstance(key, tuple) and key
                     and key[0] == "#corrupted"]
        assert corrupted, "one guard branch carries the sentinel"


class TestRetryPolicy:
    def test_backoff_is_exponential(self):
        policy = RetryPolicy(base_backoff_units=5_000, backoff_factor=2.0)
        assert [policy.backoff_units(n) for n in (1, 2, 3)] == \
            [5_000, 10_000, 20_000]


class ManualClock:
    def __init__(self):
        self.t = 0

    def __call__(self):
        return self.t


class TestCircuitBreaker:
    def make(self, clock, threshold=3, cooldown=100):
        return CircuitBreaker(clock=clock, threshold=threshold,
                              cooldown_units=cooldown,
                              registry=registry())

    def test_stays_closed_below_threshold(self):
        clock = ManualClock()
        breaker = self.make(clock)
        breaker.record_fault(0xA)
        breaker.record_fault(0xA)
        assert breaker.state(0xA) == STATE_CLOSED
        assert breaker.allows(0xA)

    def test_success_resets_consecutive_count(self):
        clock = ManualClock()
        breaker = self.make(clock)
        breaker.record_fault(0xA)
        breaker.record_fault(0xA)
        breaker.record_success(0xA)
        breaker.record_fault(0xA)
        breaker.record_fault(0xA)
        assert breaker.state(0xA) == STATE_CLOSED

    def test_opens_after_threshold_and_skips(self):
        clock = ManualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_fault(0xA)
        assert breaker.state(0xA) == STATE_OPEN
        assert not breaker.allows(0xA)
        assert breaker.c_skipped.value == 1
        # Other contracts are unaffected.
        assert breaker.allows(0xB)

    def test_half_open_probe_closes_on_success(self):
        clock = ManualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_fault(0xA)
        clock.t = 150  # past the cool-down
        assert breaker.allows(0xA)
        assert breaker.state(0xA) == STATE_HALF_OPEN
        breaker.record_success(0xA)
        assert breaker.state(0xA) == STATE_CLOSED

    def test_probe_failure_doubles_cooldown(self):
        clock = ManualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_fault(0xA)
        first_until = breaker._open_until[0xA]
        assert first_until == 100
        clock.t = 150
        assert breaker.allows(0xA)  # half-open probe
        breaker.record_fault(0xA)   # probe fails -> doubled cool-down
        assert breaker.state(0xA) == STATE_OPEN
        assert breaker._open_until[0xA] == 150 + 200

    def test_transitions_are_recorded(self):
        clock = ManualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_fault(0xA)
        summary = breaker.summary()
        assert summary["opened"] == 1
        assert summary["transitions"][0]["to"] == STATE_OPEN

    def test_half_open_admits_single_probe(self):
        """While a half-open probe is in flight, further attempts are
        skipped — one probe at a time, like a real breaker."""
        clock = ManualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_fault(0xA)
        clock.t = 150
        assert breaker.allows(0xA)       # the probe
        skipped = breaker.c_skipped.value
        clock.t = 160                    # within the probe window
        assert not breaker.allows(0xA)   # second caller must wait
        assert breaker.c_skipped.value == skipped + 1
        assert breaker.state(0xA) == STATE_HALF_OPEN
        breaker.record_success(0xA)
        assert breaker.state(0xA) == STATE_CLOSED
        assert breaker.allows(0xA)

    def test_stuck_probe_expires_without_livelock(self):
        """A probe whose outcome never lands (its speculation job was
        dropped) must not wedge the breaker half-open forever: once a
        full cool-down passes, a fresh probe is admitted."""
        clock = ManualClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_fault(0xA)
        clock.t = 150
        assert breaker.allows(0xA)       # probe admitted, never resolves
        clock.t = 150 + 100              # probe window (cooldown) elapsed
        assert breaker.allows(0xA)       # fresh probe, no livelock
        assert breaker.state(0xA) == STATE_HALF_OPEN
        breaker.record_fault(0xA)        # second probe fails
        assert breaker.state(0xA) == STATE_OPEN


class TestSpeculationGuard:
    def make(self):
        return SpeculationGuard(registry=registry())

    def test_success_passes_through(self):
        guard = self.make()
        result, faulted = guard.run("stage", lambda: 41 + 1)
        assert (result, faulted) == (42, False)
        assert guard.c_contained.value == 0

    def test_contains_arbitrary_exceptions(self):
        guard = self.make()
        def boom():
            raise RuntimeError("kaboom")
        result, faulted = guard.run("stage", boom, fallback="fb")
        assert (result, faulted) == ("fb", True)
        assert guard.c_contained.value == 1
        assert guard.c_unexpected.value == 1
        assert guard.last_injected is False
        assert "kaboom" in guard.last_error

    def test_injected_faults_counted_under_their_site(self):
        guard = self.make()
        def boom():
            raise InjectedFault("memoize.build", "raise")
        guard.run("stage", boom)
        assert guard.c_injected.value == 1
        assert guard.summary()["by_stage"] == {"memoize.build": 1}

    def test_transient_storage_retry_succeeds(self):
        guard = self.make()
        charged = []
        guard.charge_cost = charged.append
        attempts = {"n": 0}
        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise TransientStorageError("storage.read")
            return "ok"
        result, faulted = guard.run("stage", flaky)
        assert (result, faulted) == ("ok", False)
        assert guard.c_retries.value == 2
        assert charged == [5_000, 10_000]

    def test_transient_storage_retry_exhausts(self):
        guard = self.make()
        def always():
            raise TransientStorageError("storage.read")
        result, faulted = guard.run("stage", always, fallback=None)
        assert (result, faulted) == (None, True)
        assert guard.c_retry_exhausted.value == 1
        assert guard.c_retries.value == 2

    def test_faults_feed_the_breaker(self):
        guard = self.make()
        def boom():
            raise RuntimeError("bug")
        for _ in range(3):
            guard.run("speculate", boom, contract=0xFEED)
        assert guard.breaker.state(0xFEED) == STATE_OPEN
        assert not guard.breaker.allows(0xFEED)

    def test_success_heals_the_breaker(self):
        guard = self.make()
        def boom():
            raise RuntimeError("bug")
        guard.run("speculate", boom, contract=0xFEED)
        guard.run("speculate", boom, contract=0xFEED)
        guard.run("speculate", lambda: 1, contract=0xFEED)
        guard.run("speculate", boom, contract=0xFEED)
        assert guard.breaker.state(0xFEED) == STATE_CLOSED
