"""Speculation worker-pool timing: APs become usable only when their
synthesis would really have finished (the paper's requirement that
"APs must be generated in time to achieve any speedups", §5)."""

import pytest

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.node import ForerunnerConfig, ForerunnerNode
from repro.state.world import WorldState

from tests.conftest import ALICE, BOB, FEED, ROUND

PF = pricefeed()


def fresh_world():
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=10**24)
    world.create_account(FEED, code=PF.code)
    account = world.get_account(FEED)
    account.set_storage(PF.slot_of("activeRoundID"), ROUND)
    account.set_storage(PF.slot_of("prices", ROUND), 2000)
    account.set_storage(PF.slot_of("submissionCounts", ROUND), 4)
    return world


def tx_e(sender=ALICE, nonce=0):
    return Transaction(sender=sender, to=FEED,
                       data=PF.calldata("submit", ROUND, 1980),
                       nonce=nonce)


def prime(node):
    node.predictor.observe_block(Block(header=BlockHeader(
        number=0, timestamp=3990449, coinbase=0xE0)))


def test_fast_workers_ready_immediately():
    node = ForerunnerNode(fresh_world(),
                          ForerunnerConfig(worker_speed=1e12))
    prime(node)
    node.on_transaction(tx_e(), now=0.0)
    node.run_speculation(0.0)
    ap = node.speculator.get_ap(tx_e().hash)
    assert ap is not None
    assert ap.ready_at < 0.01


def test_slow_workers_delay_readiness():
    node = ForerunnerNode(fresh_world(),
                          ForerunnerConfig(workers=1, worker_speed=1e4))
    prime(node)
    node.on_transaction(tx_e(), now=0.0)
    node.run_speculation(0.0)
    ap = node.speculator.get_ap(tx_e().hash)
    assert ap is not None
    assert ap.ready_at > 1.0


def test_worker_pool_parallelism():
    """More workers finish the same job set sooner."""
    def first_ready(workers):
        node = ForerunnerNode(
            fresh_world(),
            ForerunnerConfig(workers=workers, worker_speed=2e5,
                             max_contexts_per_head=4))
        prime(node)
        for i, sender in enumerate((ALICE, BOB)):
            node.on_transaction(tx_e(sender=sender), now=0.0)
        node.run_speculation(0.0)
        return max(node._workers)

    assert first_ready(8) < first_ready(1)


def test_budget_deadline_limits_jobs():
    node = ForerunnerNode(fresh_world(),
                          ForerunnerConfig(workers=1, worker_speed=1e4))
    prime(node)
    for i, sender in enumerate((ALICE, BOB)):
        node.on_transaction(tx_e(sender=sender), now=0.0)
    jobs = node.run_speculation(0.0, budget_seconds=0.5)
    # One worker at 1e4 units/s: the first job already overruns the
    # budget window, so later jobs cannot start inside it.
    assert jobs >= 1
    assert jobs < 8  # capped well below the unconstrained count


def test_speculation_costs_gate_block_usage():
    node = ForerunnerNode(fresh_world(),
                          ForerunnerConfig(workers=1, worker_speed=1e4))
    prime(node)
    node.on_transaction(tx_e(), now=0.0)
    node.run_speculation(0.0)
    block = Block(
        header=BlockHeader(number=1, timestamp=3990462, coinbase=0xE0,
                           parent_hash=0),
        transactions=[tx_e()])
    # Block arrives long before synthesis completes -> not accelerated.
    report = node.process_block(block, now=0.5)
    assert not report.records[0].ap_ready
    assert report.records[0].outcome == "no_ap"
