"""Gossip / latency model tests."""

import random

from repro.chain.transaction import Transaction
from repro.p2p.gossip import GossipNetwork
from repro.p2p.latency import LatencyModel


def test_latency_positive_and_varied():
    model = LatencyModel()
    rng = random.Random(1)
    samples = [model.sample(rng) for _ in range(500)]
    assert all(s > 0 for s in samples)
    assert len(set(round(s, 6) for s in samples)) > 100


def test_latency_heavy_tail_present():
    model = LatencyModel(tail_probability=0.2)
    rng = random.Random(2)
    samples = [model.sample(rng) for _ in range(2000)]
    assert max(samples) > 20.0
    median = sorted(samples)[len(samples) // 2]
    assert median < 4.0


def test_gossip_assigns_all_participants():
    network = GossipNetwork(miner_ids=[1, 2, 3], seed=5)
    network.add_observer("live")
    network.add_observer("replay", LatencyModel(median=3.0))
    tx = Transaction(sender=1, to=2, nonce=0)
    d = network.disseminate(tx, born=100.0)
    assert set(d.miner_arrivals) == {1, 2, 3}
    assert set(d.observer_arrivals) == {"live", "replay"}
    assert all(a >= 100.0 for a in d.miner_arrivals.values())


def test_private_tx_reaches_only_origin_miner():
    network = GossipNetwork(miner_ids=[1, 2], seed=5)
    network.add_observer("live")
    tx = Transaction(sender=1, to=2, nonce=0, origin_miner=2)
    d = network.disseminate(tx, born=10.0)
    assert d.miner_arrivals[2] == 10.0
    assert d.miner_arrivals[1] == float("inf")
    assert d.observer_arrivals["live"] == float("inf")


def test_observers_see_different_delays():
    network = GossipNetwork(miner_ids=[1], seed=5)
    network.add_observer("a")
    network.add_observer("b")
    tx = Transaction(sender=1, to=2, nonce=0)
    d = network.disseminate(tx, born=0.0)
    assert d.observer_arrivals["a"] != d.observer_arrivals["b"]
