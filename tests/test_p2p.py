"""Gossip / latency model tests."""

import random

from repro.chain.transaction import Transaction
from repro.p2p.gossip import GossipNetwork
from repro.p2p.latency import LatencyModel


def test_latency_positive_and_varied():
    model = LatencyModel()
    rng = random.Random(1)
    samples = [model.sample(rng) for _ in range(500)]
    assert all(s > 0 for s in samples)
    assert len(set(round(s, 6) for s in samples)) > 100


def test_latency_heavy_tail_present():
    model = LatencyModel(tail_probability=0.2)
    rng = random.Random(2)
    samples = [model.sample(rng) for _ in range(2000)]
    assert max(samples) > 20.0
    median = sorted(samples)[len(samples) // 2]
    assert median < 4.0


def test_gossip_assigns_all_participants():
    network = GossipNetwork(miner_ids=[1, 2, 3], seed=5)
    network.add_observer("live")
    network.add_observer("replay", LatencyModel(median=3.0))
    tx = Transaction(sender=1, to=2, nonce=0)
    d = network.disseminate(tx, born=100.0)
    assert set(d.miner_arrivals) == {1, 2, 3}
    assert set(d.observer_arrivals) == {"live", "replay"}
    assert all(a >= 100.0 for a in d.miner_arrivals.values())


def test_private_tx_reaches_only_origin_miner():
    network = GossipNetwork(miner_ids=[1, 2], seed=5)
    network.add_observer("live")
    tx = Transaction(sender=1, to=2, nonce=0, origin_miner=2)
    d = network.disseminate(tx, born=10.0)
    assert d.miner_arrivals[2] == 10.0
    assert d.miner_arrivals[1] == float("inf")
    assert d.observer_arrivals["live"] == float("inf")


def test_observers_see_different_delays():
    network = GossipNetwork(miner_ids=[1], seed=5)
    network.add_observer("a")
    network.add_observer("b")
    tx = Transaction(sender=1, to=2, nonce=0)
    d = network.disseminate(tx, born=0.0)
    assert d.observer_arrivals["a"] != d.observer_arrivals["b"]


def _pinned_network(**kwargs):
    network = GossipNetwork(miner_ids=[1, 2, 3], seed=5, **kwargs)
    network.add_observer("live")
    return network


def test_arrivals_are_pinned_per_pair():
    """Arrival times are a pure function of (seed, tx, participant)."""
    a = _pinned_network().disseminate(
        Transaction(sender=1, to=2, nonce=0), born=100.0)
    b = _pinned_network().disseminate(
        Transaction(sender=1, to=2, nonce=0), born=100.0)
    assert a.miner_arrivals == b.miner_arrivals
    assert a.observer_arrivals == b.observer_arrivals


def test_adding_observer_does_not_perturb_miners():
    """Regression: with the shared-RNG stream, registering one more
    observer shifted every subsequent draw.  Per-pair seeding keeps
    miner (and existing-observer) arrivals identical."""
    tx = Transaction(sender=1, to=2, nonce=0)
    base = _pinned_network()
    extended = _pinned_network()
    extended.add_observer("extra")
    d_base = base.disseminate(tx, born=0.0)
    d_ext = extended.disseminate(tx, born=0.0)
    assert d_base.miner_arrivals == d_ext.miner_arrivals
    assert (d_base.observer_arrivals["live"]
            == d_ext.observer_arrivals["live"])


def test_private_tx_consumes_no_draws():
    """Regression: a private transaction used to consume zero draws
    while public ones consumed many, so the arrival of any later
    transaction depended on how many private ones preceded it."""
    public = Transaction(sender=3, to=4, nonce=0)
    private = Transaction(sender=5, to=6, nonce=0, origin_miner=2)
    alone = _pinned_network().disseminate(public, born=50.0)
    network = _pinned_network()
    network.disseminate(private, born=10.0)
    after = network.disseminate(public, born=50.0)
    assert alone.miner_arrivals == after.miner_arrivals
    assert alone.observer_arrivals == after.observer_arrivals


def test_dissemination_order_independent():
    """Disseminating transactions in a different order yields the same
    per-transaction arrivals."""
    tx_a = Transaction(sender=1, to=2, nonce=0)
    tx_b = Transaction(sender=2, to=3, nonce=0)
    forward = _pinned_network()
    fa = forward.disseminate(tx_a, born=0.0)
    fb = forward.disseminate(tx_b, born=0.0)
    backward = _pinned_network()
    bb = backward.disseminate(tx_b, born=0.0)
    ba = backward.disseminate(tx_a, born=0.0)
    assert fa.miner_arrivals == ba.miner_arrivals
    assert fb.miner_arrivals == bb.miner_arrivals


def test_legacy_rng_preserves_shared_stream_behaviour():
    """legacy_rng=True reproduces the seed repo's draws: one shared
    stream in registration order, so order DOES matter there."""
    tx_a = Transaction(sender=1, to=2, nonce=0)
    tx_b = Transaction(sender=2, to=3, nonce=0)
    forward = _pinned_network(legacy_rng=True)
    fa = forward.disseminate(tx_a, born=0.0)
    forward.disseminate(tx_b, born=0.0)
    backward = _pinned_network(legacy_rng=True)
    backward.disseminate(tx_b, born=0.0)
    ba = backward.disseminate(tx_a, born=0.0)
    # Same tx, different preceding history -> different arrivals.
    assert fa.miner_arrivals != ba.miner_arrivals
    # And the legacy stream itself is reproducible per seed.
    again = _pinned_network(legacy_rng=True).disseminate(tx_a, born=0.0)
    assert fa.miner_arrivals == again.miner_arrivals
