"""Property-based invariants for consensus, chain, and state layers."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import Block, BlockHeader
from repro.chain.blockchain import Blockchain
from repro.chain.transaction import Transaction
from repro.consensus.packing import pack_block
from repro.state.trie import state_root
from repro.state.account import Account

tx_specs = st.lists(
    st.tuples(
        st.integers(1, 6),          # sender
        st.integers(0, 4),          # nonce
        st.integers(1, 5) ,         # price level
        st.integers(30_000, 120_000),  # gas limit
    ),
    max_size=25,
)


def build_txs(specs):
    seen = set()
    txs = []
    for sender, nonce, price, gas_limit in specs:
        if (sender, nonce) in seen:
            continue
        seen.add((sender, nonce))
        txs.append(Transaction(sender=sender, to=0xC, nonce=nonce,
                               gas_price=price * 10**9,
                               gas_limit=gas_limit))
    return txs


@settings(max_examples=60)
@given(tx_specs, st.integers(100_000, 500_000), st.integers(0, 2**16))
def test_pack_block_invariants(specs, gas_limit, seed):
    txs = build_txs(specs)
    packed = pack_block(txs, {}, gas_limit=gas_limit,
                        rng=random.Random(seed))
    # No duplicates.
    hashes = [t.hash for t in packed]
    assert len(hashes) == len(set(hashes))
    # Gas budget respected.
    assert sum(t.gas_limit for t in packed) <= gas_limit
    # Per-sender nonces are exactly 0..k-1 in order.
    by_sender = {}
    for tx in packed:
        by_sender.setdefault(tx.sender, []).append(tx.nonce)
    for nonces in by_sender.values():
        assert nonces == list(range(len(nonces)))


@settings(max_examples=40)
@given(tx_specs, st.integers(0, 2**16))
def test_pack_block_maximal_under_nonce_constraint(specs, seed):
    """Anything not packed is blocked by nonce gap or gas budget."""
    txs = build_txs(specs)
    gas_limit = 10**9  # effectively unbounded
    packed = pack_block(txs, {}, gas_limit=gas_limit,
                        rng=random.Random(seed))
    packed_set = {(t.sender, t.nonce) for t in packed}
    for tx in txs:
        if (tx.sender, tx.nonce) in packed_set:
            continue
        # With unbounded gas, only a nonce gap can block a transaction:
        # nonce 0 is always packable, and if the predecessor nonce got
        # packed this one would have been packable too.
        assert tx.nonce > 0
        assert (tx.sender, tx.nonce - 1) not in packed_set


@settings(max_examples=30)
@given(st.dictionaries(
    st.integers(0, 20),
    st.tuples(st.integers(0, 10**9), st.integers(0, 5),
              st.dictionaries(st.integers(0, 3), st.integers(1, 100),
                              max_size=3)),
    max_size=8))
def test_state_root_injective_on_mutation(accounts_spec):
    accounts = {
        addr: Account(balance=bal, nonce=nonce, storage=dict(storage))
        for addr, (bal, nonce, storage) in accounts_spec.items()
    }
    root = state_root(accounts)
    assert root == state_root(dict(accounts))
    if accounts:
        addr = next(iter(accounts))
        mutated = {a: acct.copy() for a, acct in accounts.items()}
        mutated[addr].balance += 1
        assert state_root(mutated) != root


@settings(max_examples=25)
@given(st.lists(st.integers(0, 3), min_size=1, max_size=12),
       st.integers(0, 2**16))
def test_blockchain_head_is_highest(branch_choices, seed):
    """Randomly grown block trees: the head is always a maximal-height
    block, and the canonical chain links hash-correctly."""
    rng = random.Random(seed)
    genesis = Block(header=BlockHeader(number=0, timestamp=0, coinbase=0))
    chain = Blockchain(genesis)
    tips = [genesis]
    for index, choice in enumerate(branch_choices):
        parent = tips[choice % len(tips)]
        block = Block(header=BlockHeader(
            number=parent.number + 1,
            timestamp=parent.header.timestamp + rng.randint(1, 20),
            # Unique coinbase per block so sibling headers never
            # collide into the same hash.
            coinbase=index + 1,
            parent_hash=parent.hash))
        chain.add(block)
        tips.append(block)
    assert chain.head.number == max(t.number for t in tips)
    canonical = chain.canonical_chain()
    for parent, child in zip(canonical, canonical[1:]):
        assert child.header.parent_hash == parent.hash
    assert chain.block_count() == len(tips)
