"""Determinism harness: the observability layer is a pure function of
the workload.

Two replays of the same recorded dataset must produce byte-identical
JSONL traces and identical metrics snapshots; and switching the obs
layer off must not change a single pipeline output (Tables 2/3, Merkle
roots) — instrumentation observes, it never steers.
"""

import pytest

from repro.core.node import ForerunnerConfig
from repro.core.stats import table2, table3
from repro.obs.export import export_jsonl, trace_lines
from repro.obs.spans import NullTracer
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, TrafficConfig, record_dataset


@pytest.fixture(scope="module")
def dataset():
    return record_dataset(DatasetConfig(
        name="det", traffic=TrafficConfig(duration=40.0, seed=11),
        seed=13))


def _trace(run):
    return trace_lines(run.tracer, run.registry,
                       meta={"dataset": run.dataset_name,
                             "observer": run.observer})


class TestTwoRunDeterminism:
    def test_traces_byte_identical(self, dataset, tmp_path):
        first = replay(dataset)
        second = replay(dataset)
        assert _trace(first) == _trace(second)
        # And through the file writer too (the CI job diffs files).
        path_a, path_b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        export_jsonl(str(path_a), first.tracer, first.registry)
        export_jsonl(str(path_b), second.tracer, second.registry)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_snapshots_and_roots_identical(self, dataset):
        first = replay(dataset)
        second = replay(dataset)
        assert first.metrics() == second.metrics()
        assert first.roots_matched == first.blocks_executed > 0
        roots_a = [r.state_root for r in first.forerunner_node.reports]
        roots_b = [r.state_root for r in second.forerunner_node.reports]
        assert roots_a == roots_b

    def test_wall_clock_never_in_deterministic_outputs(self, dataset):
        run = replay(dataset)
        assert run.wall_seconds_baseline > 0
        assert run.wall_seconds_forerunner > 0
        snap = run.metrics()
        assert not any(name.startswith("wall.") for name in snap)
        assert not any('"wall.' in line for line in _trace(run))
        full = run.metrics(include_nondeterministic=True)
        assert "wall.baseline_seconds" in full

    def test_instrument_names_stable(self, dataset):
        """Scope uniquification yields the same names each replay —
        including the per-predecessor EVM scopes."""
        first = replay(dataset)
        second = replay(dataset)
        assert first.registry.names() == second.registry.names()
        assert "speculator.speculations" in first.registry.names()


class TestObsNeutrality:
    def test_disabling_obs_changes_nothing(self, dataset):
        with_obs = replay(dataset, config=ForerunnerConfig())
        without = replay(dataset,
                         config=ForerunnerConfig(enable_obs=False))
        assert isinstance(without.tracer, NullTracer)
        assert without.tracer.events == []
        assert table2(with_obs.records) == table2(without.records)
        assert table3(with_obs.records) == table3(without.records)
        assert ([r.state_root for r in with_obs.forerunner_node.reports]
                == [r.state_root
                    for r in without.forerunner_node.reports])
        assert with_obs.total_speculation_cost == \
            without.total_speculation_cost

    def test_legacy_attribute_views_match_registry(self, dataset):
        run = replay(dataset)
        node = run.forerunner_node
        spec = node.speculator
        assert spec.total_speculation_cost == \
            run.registry.value("speculator.actual_cost")
        assert spec.total_logical_cost == \
            run.registry.value("speculator.logical_cost")
        assert node.prefetcher.offpath_cost == \
            run.registry.value("prefetcher.offpath_cost")
        cache = spec.prefix_cache
        assert cache.hits == run.registry.value("prefix_cache.hits")
