"""Unit tests for the deterministic observability layer (repro.obs)."""

import io
import json

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    SpanTracer,
    canonical_json,
    export_jsonl,
    get_registry,
    reset_registry,
    set_registry,
    trace_lines,
)


# -- instruments --------------------------------------------------------------

class TestInstruments:
    def test_counter_monotonic(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)
        assert counter.snapshot() == {"type": "counter", "value": 5}

    def test_gauge_set_add(self):
        gauge = Gauge("g")
        gauge.set(7)
        gauge.add(-2)
        assert gauge.value == 5
        assert not gauge.nondeterministic

    def test_histogram_buckets(self):
        hist = Histogram("h", bounds=(0, 10, 100))
        for value in (0, 5, 10, 50, 1000):
            hist.observe(value)
        # counts per bound: <=0, <=10, <=100, overflow
        assert hist.counts == [1, 2, 1, 1]
        assert hist.sum == 1065
        assert hist.count == 5

    def test_histogram_rejects_unsorted_bounds(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10, 0))


# -- registry -----------------------------------------------------------------

class TestRegistry:
    def test_get_or_create_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TypeError):
            registry.gauge("a")

    def test_scope_uniquified(self):
        registry = MetricsRegistry()
        first = registry.scope("speculator")
        second = registry.scope("speculator")
        assert first.prefix == "speculator"
        assert second.prefix == "speculator#2"
        first.counter("x").inc()
        second.counter("x").inc(2)
        assert registry.value("speculator.x") == 1
        assert registry.value("speculator#2.x") == 2

    def test_snapshot_sorted_and_deterministic(self):
        registry = MetricsRegistry()
        registry.counter("z.last").inc()
        registry.counter("a.first").inc()
        snap = registry.snapshot()
        assert list(snap) == sorted(snap)

    def test_nondeterministic_gauges_quarantined(self):
        registry = MetricsRegistry()
        registry.gauge("wall.seconds", nondeterministic=True).set(1.23)
        registry.counter("work").inc()
        assert "wall.seconds" not in registry.snapshot()
        assert "wall.seconds" in registry.snapshot(
            include_nondeterministic=True)
        # ...and never in an exported trace either.
        lines = trace_lines(registry=registry)
        assert "wall.seconds" not in "\n".join(lines)

    def test_default_registry_swap(self):
        original = get_registry()
        try:
            fresh = MetricsRegistry()
            assert set_registry(fresh) is original
            assert get_registry() is fresh
            reset_registry()
            assert get_registry() is not fresh
        finally:
            set_registry(original)

    def test_render_lists_values(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.histogram("h", bounds=(1,)).observe(1)
        text = registry.render()
        assert "a: 3" in text
        assert "h: count=1 sum=1" in text


# -- spans --------------------------------------------------------------------

class TestSpans:
    def test_nesting_and_completion_order(self):
        tracer = SpanTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner", cost=10):
                pass
            outer.add_cost(5)
        assert [e["name"] for e in tracer.events] == ["inner", "outer"]
        inner, outer = tracer.events
        assert inner["parent"] == outer["span"]
        assert inner["depth"] == 1 and outer["depth"] == 0
        assert outer["cost"] == 5 and inner["cost"] == 10

    def test_attrs_recorded(self):
        tracer = SpanTracer()
        with tracer.span("stage", tx="0x1") as span:
            span.set(outcome="merged")
        assert tracer.events[0]["attrs"] == {
            "tx": "0x1", "outcome": "merged"}

    def test_registry_aggregation(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(registry)
        with tracer.span("synthesize", cost=100):
            pass
        with tracer.span("synthesize", cost=50):
            pass
        assert registry.value("span.synthesize.count") == 2
        assert registry.value("span.synthesize.cost") == 150

    def test_stage_totals_and_tree(self):
        tracer = SpanTracer()
        with tracer.span("speculate"):
            with tracer.span("pre_execute", cost=7):
                pass
            with tracer.span("merge", cost=3):
                pass
        totals = tracer.stage_totals()
        assert totals["pre_execute"] == {"count": 1, "cost": 7}
        roots = tracer.stage_tree("speculate")
        assert len(roots) == 1
        assert [c["name"] for c in roots[0]["children"]] == [
            "pre_execute", "merge"]

    def test_span_survives_exception(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.events[0]["name"] == "boom"
        # The stack unwound: the next span is a root again.
        with tracer.span("after"):
            pass
        assert tracer.events[1]["parent"] is None

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("anything", cost=1) as span:
            span.add_cost(5)
            span.set(a=1)
        assert tracer.events == []
        assert not tracer.enabled
        assert tracer.stage_totals() == {}
        assert tracer.stage_tree() == []


# -- exporter -----------------------------------------------------------------

class TestExporter:
    def test_canonical_json_stable(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'

    def test_escaping_keeps_one_line(self):
        """Newlines, unicode, and control characters must never break
        the one-record-per-line invariant, and must round-trip."""
        nasty = {"text": 'a\nb\t"c"\x00\x1b', "emoji": "é☃"}
        line = canonical_json(nasty)
        assert "\n" not in line
        assert line == line.encode("ascii").decode("ascii")
        assert json.loads(line) == nasty

    def test_coercion_of_exotic_values(self):
        line = canonical_json({
            "raw": b"\x01\x02",
            "keys": {("slot", 3)},
            "pair": (1, 2),
        })
        decoded = json.loads(line)
        assert decoded["raw"] == "0102"
        assert decoded["pair"] == [1, 2]

    def test_trace_lines_layout(self):
        registry = MetricsRegistry()
        tracer = SpanTracer(registry)
        with tracer.span("stage", cost=9):
            pass
        lines = trace_lines(tracer, registry, meta={"dataset": "L1"})
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == 1
        assert records[0]["dataset"] == "L1"
        assert records[1]["type"] == "span"
        assert records[-1]["type"] == "metrics"
        assert records[-1]["metrics"]["span.stage.cost"]["value"] == 9

    def test_export_jsonl_to_buffer_and_path(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        buffer = io.StringIO()
        count = export_jsonl(buffer, registry=registry)
        assert count == 2
        path = tmp_path / "trace.jsonl"
        export_jsonl(str(path), registry=registry)
        assert path.read_text() == buffer.getvalue()
        assert buffer.getvalue().endswith("\n")
