"""Opcode table sanity tests."""

import pytest

from repro.evm import opcodes
from repro.evm.opcodes import Category, Op


def test_table_covers_core_ops():
    for op in (Op.ADD, Op.SHA3, Op.SLOAD, Op.SSTORE, Op.JUMPI,
               Op.CALL, Op.RETURN, Op.REVERT, Op.TIMESTAMP):
        assert int(op) in opcodes.OPCODES


def test_push_metadata():
    for n in range(1, 33):
        code = 0x60 + n - 1
        info = opcodes.OPCODES[code]
        assert info.immediate == n
        assert opcodes.is_push(code)
        assert opcodes.push_size(code) == n
    assert not opcodes.is_push(int(Op.ADD))


def test_dup_swap_ranges():
    assert opcodes.is_dup(0x80) and opcodes.is_dup(0x8F)
    assert not opcodes.is_dup(0x90)
    assert opcodes.is_swap(0x90) and opcodes.is_swap(0x9F)
    assert not opcodes.is_swap(0x8F)


def test_log_range():
    assert opcodes.is_log(0xA0) and opcodes.is_log(0xA4)
    assert not opcodes.is_log(0xA5)


def test_stack_arity_consistency():
    """DUPn pops n and pushes n+1; SWAPn is n+1 in, n+1 out."""
    for n in range(1, 17):
        dup = opcodes.OPCODES[0x80 + n - 1]
        swap = opcodes.OPCODES[0x90 + n - 1]
        assert dup.pushes == dup.pops + 1
        assert swap.pushes == swap.pops


def test_categories():
    assert opcodes.OPCODES[int(Op.ADD)].category is Category.COMPUTE
    assert opcodes.OPCODES[int(Op.SLOAD)].category is Category.CONTEXT_READ
    assert opcodes.OPCODES[int(Op.SSTORE)].category is Category.STATE_WRITE
    assert opcodes.OPCODES[int(Op.JUMP)].category is Category.CONTROL
    assert opcodes.OPCODES[int(Op.MLOAD)].category is Category.MEMORY
    assert opcodes.OPCODES[int(Op.CALLER)].category is Category.TX_CONSTANT


def test_name_lookup():
    assert opcodes.NAME_TO_OP["ADD"] == int(Op.ADD)
    assert opcodes.NAME_TO_OP["PUSH32"] == 0x7F


def test_opcode_info_unknown_raises():
    with pytest.raises(KeyError):
        opcodes.opcode_info(0xEF)
