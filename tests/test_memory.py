"""EVM memory model tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.evm.memory import Memory

words = st.integers(min_value=0, max_value=2**256 - 1)
offsets = st.integers(min_value=0, max_value=4096)


def test_zero_initialized():
    assert Memory().load_word(64) == 0


@given(offsets, words)
def test_store_load_roundtrip(offset, value):
    memory = Memory()
    memory.store_word(offset, value)
    assert memory.load_word(offset) == value


def test_store_byte():
    memory = Memory()
    memory.store_byte(3, 0x1FF)  # truncated to low byte
    assert memory.data[3] == 0xFF


def test_overlapping_writes_latest_wins():
    memory = Memory()
    memory.store_word(0, 2**256 - 1)
    memory.store_word(16, 0)
    # First 16 bytes keep 0xff, next 32 are zero.
    assert memory.read(0, 16) == b"\xff" * 16
    assert memory.read(16, 32) == b"\x00" * 32


def test_expansion_words():
    memory = Memory()
    assert memory.expansion_words(0, 32) == 1
    memory.store_word(0, 1)
    assert memory.expansion_words(0, 32) == 0
    assert memory.expansion_words(32, 1) == 1
    assert memory.expansion_words(0, 0) == 0


def test_read_expands():
    memory = Memory()
    data = memory.read(100, 10)
    assert data == b"\x00" * 10
    assert len(memory) >= 110


def test_write_raw():
    memory = Memory()
    memory.write(5, b"hello")
    assert memory.read(5, 5) == b"hello"
