"""Assembler / disassembler tests."""

import pytest

from repro.errors import AssemblerError
from repro.evm.assembler import assemble, disassemble, format_disassembly
from repro.evm.opcodes import Op


def test_simple_program():
    code = assemble("PUSH 1\nPUSH 2\nADD")
    assert code == bytes([0x60, 1, 0x60, 2, int(Op.ADD)])


def test_push_width_selection():
    code = assemble("PUSH 0x1234")
    assert code[0] == 0x61  # PUSH2
    assert code[1:3] == b"\x12\x34"


def test_push_zero():
    assert assemble("PUSH 0") == bytes([0x60, 0])


def test_explicit_width():
    code = assemble("PUSH4 7")
    assert code[0] == 0x63
    assert code[1:5] == b"\x00\x00\x00\x07"


def test_explicit_width_overflow():
    with pytest.raises(AssemblerError):
        assemble("PUSH1 256")


def test_labels_and_jumps():
    code = assemble("""
        PUSH 1
        PUSH @end
        JUMPI
        PUSH 0
    end:
        JUMPDEST
        STOP
    """)
    listing = disassemble(code)
    names = [name for _, name, _ in listing]
    assert "JUMPI" in names and "JUMPDEST" in names
    # The label reference resolves to the JUMPDEST position.
    push2 = [(pc, imm) for pc, name, imm in listing if name == "PUSH2"]
    dest_pc = [pc for pc, name, _ in listing if name == "JUMPDEST"][0]
    assert push2[0][1] == dest_pc


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("a:\nJUMPDEST\na:\nJUMPDEST")


def test_undefined_label_rejected():
    with pytest.raises(AssemblerError):
        assemble("PUSH @nowhere\nJUMP")


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError):
        assemble("FROBNICATE")


def test_comments_ignored():
    code = assemble("PUSH 1 ; comment\n; full line\nSTOP")
    assert code == bytes([0x60, 1, 0x00])


def test_operand_on_plain_op_rejected():
    with pytest.raises(AssemblerError):
        assemble("ADD 3")


def test_bad_literal():
    with pytest.raises(AssemblerError):
        assemble("PUSH banana")


def test_disassemble_roundtrip():
    source = "PUSH 5\nDUP1\nMUL\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"
    code = assemble(source)
    listing = disassemble(code)
    assert [n for _, n, _ in listing] == [
        "PUSH1", "DUP1", "MUL", "PUSH1", "MSTORE", "PUSH1", "PUSH1",
        "RETURN"]


def test_disassemble_unknown_byte():
    listing = disassemble(b"\xef")
    assert listing[0][1].startswith("UNKNOWN")


def test_format_disassembly():
    text = format_disassembly(assemble("PUSH 1\nSTOP"))
    assert "PUSH1 0x1" in text and "STOP" in text
