"""Checkpointer (compute-heavy) contract + deep-AP-chain robustness."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts.compute import checkpointer
from repro.core.accelerator import TransactionAccelerator
from repro.core.speculator import FutureContext, Speculator
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState

SENDER = 0xAA
CHECK = 0xCE

COMP = checkpointer()


def fresh_world(checkpoint=0):
    world = WorldState()
    world.create_account(SENDER, balance=10**24)
    world.create_account(CHECK, code=COMP.code)
    if checkpoint:
        world.get_account(CHECK).set_storage(
            COMP.slot_of("checkpoint"), checkpoint)
    return world


def mix_tx(seed=7, rounds=50, nonce=0):
    return Transaction(sender=SENDER, to=CHECK,
                       data=COMP.calldata("mix", seed, rounds),
                       nonce=nonce, gas_limit=200_000 + 40_000 * rounds)


def test_mix_deterministic_and_stateful():
    world = fresh_world()
    state = StateDB(world)
    header = BlockHeader(1, 1000, 0xB)
    result = EVM(state, header, mix_tx(rounds=10)).execute_transaction()
    assert result.success
    state.commit()
    first = world.get_account(CHECK).get_storage(
        COMP.slot_of("checkpoint"))
    assert first != 0
    assert world.get_account(CHECK).get_storage(
        COMP.slot_of("rounds")) == 10
    # Same input on the evolved state gives a different checkpoint.
    state2 = StateDB(world)
    EVM(state2, header, mix_tx(rounds=10, nonce=1)).execute_transaction()
    state2.commit()
    assert world.get_account(CHECK).get_storage(
        COMP.slot_of("checkpoint")) != first


@pytest.mark.parametrize("rounds", [5, 120])
def test_deep_chain_ap_equivalence(rounds):
    """Long unrolled loops produce thousand-node AP chains; the tree
    walks must stay iterative and the results exact."""
    tx = mix_tx(rounds=rounds)
    header = BlockHeader(1, 1000, 0xB)
    speculator = Speculator(fresh_world())
    speculator.speculate(tx, FutureContext(1, header))
    ap = speculator.get_ap(tx.hash)
    assert ap is not None and ap.root is not None

    # Perfect context.
    evm_world = fresh_world()
    s1 = StateDB(evm_world)
    EVM(s1, header, tx).execute_transaction()
    s1.commit()
    ap_world = fresh_world()
    s2 = StateDB(ap_world)
    receipt = TransactionAccelerator().execute(tx, header, s2, ap)
    s2.commit()
    assert receipt.outcome == "satisfied"
    assert ap_world.root() == evm_world.root()

    # Imperfect context: a different starting checkpoint re-runs the
    # whole mixing chain with new values.
    evm_world = fresh_world(checkpoint=999)
    s1 = StateDB(evm_world)
    EVM(s1, header, tx).execute_transaction()
    s1.commit()
    ap_world = fresh_world(checkpoint=999)
    s2 = StateDB(ap_world)
    receipt = TransactionAccelerator().execute(tx, header, s2, ap)
    s2.commit()
    assert receipt.outcome == "satisfied"
    assert not receipt.perfect_context_ids
    assert ap_world.root() == evm_world.root()


def test_perfect_match_skips_nearly_everything():
    """The compute tail of Figure 12: a perfectly-predicted mixing
    transaction executes a tiny fraction of its AP nodes."""
    tx = mix_tx(rounds=120)
    header = BlockHeader(1, 1000, 0xB)
    speculator = Speculator(fresh_world())
    speculator.speculate(tx, FutureContext(1, header))
    ap = speculator.get_ap(tx.hash)

    plain = TransactionAccelerator().execute_plain(
        tx, header, StateDB(fresh_world()))
    # As in the real node, the prefetcher warmed the read set.
    from repro.core.prefetcher import Prefetcher
    from repro.state.nodecache import NodeCache
    world = fresh_world()
    cache = NodeCache()
    Prefetcher(world, cache).prefetch(
        ap.prefetch_keys, tx_sender=SENDER, tx_to=CHECK, coinbase=0xB)
    state = StateDB(world, node_cache=cache)
    receipt = TransactionAccelerator().execute(tx, header, state, ap)
    assert receipt.outcome == "satisfied"
    stats = receipt.ap_stats
    assert stats.skipped_nodes > 5 * stats.executed_nodes
    speedup = plain.tally.total / receipt.tally.total
    assert speedup > 25.0


def test_ap_tree_walks_handle_thousands_of_nodes():
    tx = mix_tx(rounds=200)
    speculator = Speculator(fresh_world())
    speculator.speculate(tx, FutureContext(1, BlockHeader(1, 1000, 0xB)))
    ap = speculator.get_ap(tx.hash)
    nodes = ap.all_nodes()
    assert len(nodes) > 800
    routes = ap.linear_routes()
    assert len(routes) == 1
    assert len(routes[0]) == len(nodes) + 1  # + terminal
