"""EVM execution semantics: control flow, memory, storage, calls,
reverts, gas, and the transaction envelope."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.evm.assembler import assemble
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState
from repro.utils.hashing import keccak_int
from repro.utils.words import int_to_bytes32

SENDER = 0xAA
CODE_ADDR = 0xCC
OTHER = 0xDD
COINBASE = 0xBEEF


def build(code_src: str, extra_accounts=()):
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CODE_ADDR, code=assemble(code_src))
    for address, code_text in extra_accounts:
        world.create_account(address, code=assemble(code_text))
    return world


def run(world, data=b"", value=0, gas_limit=500_000, timestamp=1000):
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CODE_ADDR, data=data, value=value,
                     nonce=0, gas_limit=gas_limit)
    header = BlockHeader(number=7, timestamp=timestamp, coinbase=COINBASE)
    evm = EVM(state, header, tx)
    result = evm.execute_transaction()
    return result, state, evm


def test_jump_and_jumpi():
    result, _, _ = run(build("""
        PUSH 1
        PUSH @yes
        JUMPI
        PUSH 0
        PUSH 0
        REVERT
    yes:
        JUMPDEST
        PUSH 42
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """))
    assert result.success
    assert int.from_bytes(result.return_data, "big") == 42


def test_jumpi_not_taken():
    result, _, _ = run(build("""
        PUSH 0
        PUSH @skip
        JUMPI
        PUSH 7
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    skip:
        JUMPDEST
        STOP
    """))
    assert result.success
    assert int.from_bytes(result.return_data, "big") == 7


def test_invalid_jump_fails_tx():
    result, _, _ = run(build("PUSH 3\nJUMP"))
    assert not result.success
    assert result.gas_used > 0


def test_storage_persistence():
    result, state, _ = run(build("""
        PUSH 99
        PUSH 5
        SSTORE
        STOP
    """))
    assert result.success
    assert state.get_storage(CODE_ADDR, 5) == 99


def test_sha3_matches_reference():
    result, _, _ = run(build("""
        PUSH 1
        PUSH 0
        MSTORE
        PUSH 2
        PUSH 32
        MSTORE
        PUSH 64
        PUSH 0
        SHA3
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """))
    expected = keccak_int(int_to_bytes32(1) + int_to_bytes32(2))
    assert int.from_bytes(result.return_data, "big") == expected


def test_calldataload_and_size():
    world = build("""
        PUSH 0
        CALLDATALOAD
        CALLDATASIZE
        ADD
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """)
    payload = int_to_bytes32(100)
    result, _, _ = run(world, data=payload)
    assert int.from_bytes(result.return_data, "big") == 100 + 32


def test_calldataload_past_end_zero_pads():
    result, _, _ = run(build("""
        PUSH 100
        CALLDATALOAD
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """), data=b"\x01")
    assert int.from_bytes(result.return_data, "big") == 0


def test_env_opcodes():
    result, _, _ = run(build("""
        CALLER
        ADDRESS
        ADD
        TIMESTAMP
        ADD
        NUMBER
        ADD
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """), timestamp=1234)
    assert int.from_bytes(result.return_data, "big") == \
        SENDER + CODE_ADDR + 1234 + 7


def test_revert_undoes_storage_but_charges_gas():
    result, state, _ = run(build("""
        PUSH 1
        PUSH 0
        SSTORE
        PUSH 0
        PUSH 0
        REVERT
    """))
    assert not result.success
    assert state.get_storage(CODE_ADDR, 0) == 0
    assert result.gas_used > 21_000


def test_out_of_gas_consumes_everything():
    result, state, _ = run(build("""
    loop:
        JUMPDEST
        PUSH 1
        PUSH 0
        SSTORE
        PUSH @loop
        JUMP
    """), gas_limit=60_000)
    assert not result.success
    assert result.gas_used == 60_000
    assert state.get_storage(CODE_ADDR, 0) == 0


def test_fee_accounting():
    world = build("STOP")
    sender_before = world.get_account(SENDER).balance
    result, state, _ = run(world)
    assert result.success
    fee = result.gas_used * 10**9  # default tx gas price
    assert state.get_balance(SENDER) == sender_before - fee
    assert state.get_balance(COINBASE) == fee


def test_bad_nonce_rejected():
    world = build("STOP")
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CODE_ADDR, nonce=5)
    result = EVM(state, BlockHeader(1, 1, COINBASE), tx) \
        .execute_transaction()
    assert not result.success
    assert result.error == "bad nonce"
    assert result.gas_used == 0


def test_nonce_incremented_even_on_revert():
    world = build("PUSH 0\nPUSH 0\nREVERT")
    result, state, _ = run(world)
    assert not result.success
    assert state.get_nonce(SENDER) == 1


def test_cannot_afford_gas():
    world = WorldState()
    world.create_account(SENDER, balance=10)
    world.create_account(CODE_ADDR, code=assemble("STOP"))
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CODE_ADDR, nonce=0)
    result = EVM(state, BlockHeader(1, 1, COINBASE), tx) \
        .execute_transaction()
    assert not result.success
    assert result.error == "cannot afford gas"


def test_value_transfer_plain():
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CODE_ADDR)  # no code: plain transfer
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CODE_ADDR, nonce=0, value=12345)
    result = EVM(state, BlockHeader(1, 1, COINBASE), tx) \
        .execute_transaction()
    assert result.success
    assert result.gas_used == 21_000
    assert state.get_balance(CODE_ADDR) == 12345


def test_internal_call_and_return_data():
    callee = """
        PUSH 4
        CALLDATALOAD
        PUSH 2
        MUL
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    caller = f"""
        PUSH 21
        PUSH 4
        MSTORE
        PUSH 32    ; ret size
        PUSH 64    ; ret offset
        PUSH 36    ; arg size
        PUSH 0     ; arg offset
        PUSH 0     ; value
        PUSH {OTHER}
        GAS
        CALL
        POP
        PUSH 64
        MLOAD
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    world = build(caller, extra_accounts=[(OTHER, callee)])
    result, _, _ = run(world)
    assert result.success
    assert int.from_bytes(result.return_data, "big") == 42


def test_inner_revert_is_contained():
    callee = "PUSH 0\nPUSH 0\nREVERT"
    caller = f"""
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH {OTHER}
        GAS
        CALL
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    world = build(caller, extra_accounts=[(OTHER, callee)])
    result, _, _ = run(world)
    assert result.success
    # CALL pushed 0 (failure) but the outer frame continues.
    assert int.from_bytes(result.return_data, "big") == 0


def test_logs_collected():
    result, _, _ = run(build("""
        PUSH 77
        PUSH 0
        MSTORE
        PUSH 123      ; topic
        PUSH 32       ; size
        PUSH 0        ; offset
        LOG1
        STOP
    """))
    assert result.success
    assert len(result.logs) == 1
    address, topics, data = result.logs[0]
    assert address == CODE_ADDR
    assert topics == (123,)
    assert int.from_bytes(data, "big") == 77


def test_logs_discarded_on_revert():
    result, _, _ = run(build("""
        PUSH 1
        PUSH 0
        PUSH 0
        LOG1
        PUSH 0
        PUSH 0
        REVERT
    """))
    assert not result.success
    assert result.logs == []


def test_intrinsic_gas_data_pricing():
    tx_zero = Transaction(sender=1, to=2, data=b"\x00" * 10)
    tx_nonzero = Transaction(sender=1, to=2, data=b"\x01" * 10)
    assert tx_zero.intrinsic_gas() == 21_000 + 10 * 4
    assert tx_nonzero.intrinsic_gas() == 21_000 + 10 * 16


def test_balance_opcode():
    result, _, _ = run(build("""
        CALLER
        BALANCE
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """))
    assert result.success
    # Sender balance after fee purchase (gas bought up-front).
    assert int.from_bytes(result.return_data, "big") > 0
