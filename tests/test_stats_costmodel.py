"""Stats aggregation and cost model unit tests."""

import pytest

from repro.core import costmodel
from repro.core import stats as S
from repro.core.costmodel import CostTally, evm_execution_cost
from repro.sim.emulator import JoinedRecord


def record(**kwargs):
    base = dict(
        tx_hash=1, block_number=1, kind="token",
        baseline_cost=1000, forerunner_cost=100, gas_used=50_000,
        heard=True, heard_delay=5.0, outcome="satisfied",
        ap_ready=True, perfect=True, first_context_perfect=True,
        speculated_contexts=2,
    )
    base.update(kwargs)
    return JoinedRecord(**base)


def test_cost_tally_total():
    tally = CostTally(fixed_units=10, io_units=20)
    tally.add_cpu(30)
    assert tally.total == 60
    assert tally.detail["cpu"] == 30


def test_evm_execution_cost():
    tally = evm_execution_cost(100, io_units=500, write_ops=2)
    assert tally.cpu_units == 100 * costmodel.EVM_STEP \
        + 2 * costmodel.AP_WRITE
    assert tally.io_units == 500
    assert tally.fixed_units == costmodel.TX_FIXED


def test_aggregate_speedup_weighted():
    records = [record(baseline_cost=1000, forerunner_cost=100),
               record(baseline_cost=3000, forerunner_cost=300)]
    assert S.aggregate_speedup(records) == pytest.approx(10.0)
    assert S.aggregate_speedup([]) == 0.0


def test_summarize_fields():
    records = [
        record(),
        record(heard=False, outcome="no_ap", forerunner_cost=1200,
               perfect=False, first_context_perfect=False),
        record(outcome="violated", perfect=False,
               first_context_perfect=False, forerunner_cost=900),
    ]
    summary = S.summarize(records)
    assert summary.heard_fraction == pytest.approx(2 / 3)
    assert summary.satisfied_fraction == pytest.approx(1 / 2)
    assert summary.unheard_speedup == pytest.approx(1000 / 1200)
    assert summary.end_to_end_speedup < summary.effective_speedup


def test_table2_ordering_invariant():
    records = [record() for _ in range(6)]
    records += [record(perfect=False, first_context_perfect=False)
                for _ in range(3)]
    rows = {r.name: r for r in S.table2(records)}
    fore = rows["Forerunner"]
    multi = rows["Perfect matching + multi-future prediction"]
    single = rows["Perfect matching"]
    assert fore.satisfied_fraction >= multi.satisfied_fraction \
        >= single.satisfied_fraction


def test_table3_fractions_sum_to_one():
    records = [
        record(),
        record(perfect=False, first_context_perfect=False),
        record(outcome="no_ap", perfect=False,
               first_context_perfect=False),
    ]
    rows = S.table3(records)
    assert sum(r.tx_fraction for r in rows) == pytest.approx(1.0)
    assert sum(r.weighted_fraction for r in rows) == pytest.approx(1.0)


def test_heard_delay_reverse_cdf_bounds():
    records = [record(heard_delay=d) for d in (1, 5, 9, 30)]
    cdf = S.heard_delay_reverse_cdf(records, thresholds=[0, 10, 40])
    assert cdf[0] == (0.0, 1.0)
    assert cdf[1][1] == pytest.approx(0.25)
    assert cdf[2][1] == 0.0


def test_speedup_histogram_buckets():
    records = [
        record(baseline_cost=50, forerunner_cost=100),    # <1x
        record(baseline_cost=300, forerunner_cost=100),   # 3x
        record(baseline_cost=10_000, forerunner_cost=100),  # >=50x
    ]
    histogram = dict(S.speedup_histogram(records))
    assert histogram["<1x"] == pytest.approx(1 / 3)
    assert histogram[">=50x"] == pytest.approx(1 / 3)
    assert sum(histogram.values()) == pytest.approx(1.0)


def test_gas_vs_speedup_buckets_sorted():
    records = [record(gas_used=g, baseline_cost=g, forerunner_cost=100)
               for g in (30_000, 60_000, 200_000, 800_000)]
    rows = S.gas_vs_speedup(records)
    gases = [g for g, _, _ in rows]
    assert gases == sorted(gases)
    speedups = [s for _, s, _ in rows]
    assert speedups == sorted(speedups)  # bigger gas -> bigger speedup


def test_unheard_overhead_factor_matches_paper_shape():
    # Paper: unheard txs run at 0.81x (i.e. ~1.23x the baseline cost).
    assert 1.15 < costmodel.UNHEARD_OVERHEAD_FACTOR < 1.35


def test_speculation_factor_matches_paper():
    # §5.6: pre-execution + AP synthesis ~= 12.19x a plain execution.
    assert costmodel.SPECULATION_COST_FACTOR == pytest.approx(12.19)
