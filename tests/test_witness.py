"""Execution witnesses: format, journal deltas, checker, node wiring.

The acceptance loop under test: every committed transaction carries a
witness; a :class:`WitnessChecker` holding only genesis and the
witness stream re-derives every block's Merkle root by constraint
replay + delta application — no EVM instruction interpreted, no AP
walked — at a small fraction of the original execution cost.
"""

from __future__ import annotations

import pytest

from repro.chain.block import BlockHeader
from repro.core.costmodel import (
    WITNESS_APPLY,
    WITNESS_CHECK,
    WITNESS_FIXED,
    witness_check_cost,
)
from repro.core.node import ForerunnerConfig, ForerunnerNode
from repro.obs.export import witness_lines
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.state.statedb import LogEntry, StateDB
from repro.state.world import WorldState
from repro.witness import (
    ExecutionWitness,
    WitnessChecker,
    witness_digest,
    witness_to_dict,
)
from repro.witness.format import decode_value, logs_digest
from repro.workloads.mixed import TrafficConfig

from tests.conftest import ALICE, BOB

CONTRACT = 0xC0DE


def _world() -> WorldState:
    world = WorldState()
    world.create_account(ALICE, balance=10 ** 20)
    contract = world.create_account(CONTRACT)
    contract.set_storage(1, 100)
    contract.set_storage(2, 200)
    return world


# ---------------------------------------------------------------------------
# Journal-span delta reconstruction
# ---------------------------------------------------------------------------

class TestWitnessDeltas:
    def test_net_delta_per_span(self):
        state = StateDB(_world())
        a = state.snapshot()
        state.set_storage(CONTRACT, 1, 111)
        state.set_balance(ALICE, 5)
        b = state.snapshot()
        state.set_storage(CONTRACT, 1, 222)     # second tx, same slot
        c = state.snapshot()
        deltas = state.witness_deltas([(a, b), (b, c)])
        assert deltas[0]["delta"] == {
            ("storage", (CONTRACT, 1)): (100, 111),
            ("balance", (ALICE,)): (10 ** 20, 5),
        }
        # The second span's pre is the *intermediate* value 111, even
        # though only the journal's old-value chain still knows it.
        assert deltas[1]["delta"] == {
            ("storage", (CONTRACT, 1)): (111, 222)}

    def test_overwrite_within_span_collapses_to_net(self):
        state = StateDB(_world())
        a = state.snapshot()
        state.set_storage(CONTRACT, 2, 7)
        state.set_storage(CONTRACT, 2, 9)
        deltas = state.witness_deltas([(a, state.snapshot())])
        assert deltas[0]["delta"] == {
            ("storage", (CONTRACT, 2)): (200, 9)}

    def test_writeback_of_same_value_yields_no_row(self):
        state = StateDB(_world())
        a = state.snapshot()
        state.set_storage(CONTRACT, 1, 555)
        state.set_storage(CONTRACT, 1, 100)     # back to pre-value
        deltas = state.witness_deltas([(a, state.snapshot())])
        assert deltas[0]["delta"] == {}

    def test_created_account_reported_with_pre_image(self):
        state = StateDB(_world())
        a = state.snapshot()
        state.create_account(0xABC, balance=3)
        deltas = state.witness_deltas([(a, state.snapshot())])
        created = deltas[0]["created"]
        assert len(created) == 1
        address, pre = created[0]
        assert address == 0xABC
        assert pre is None                      # did not exist before


# ---------------------------------------------------------------------------
# Canonical format
# ---------------------------------------------------------------------------

def _sample_witness() -> ExecutionWitness:
    return ExecutionWitness.assemble(
        tx_hash=0xFEEDBEEF, block_number=4, tier="walk",
        outcome="satisfied", success=True, gas_used=21_000,
        cost_units=3_000,
        observed_reads={("storage", (CONTRACT, 1)): 100,
                        ("header", ("timestamp",)): 1_000},
        delta={("storage", (CONTRACT, 1)): (100, 111),
               ("balance", (ALICE,)): (10, 4)},
        created=[(0xABC, None)],
        guards_checked=2,
        logs=[(CONTRACT, (0x70,), b"\x01\x02")],
        return_data=b"\x2a" * 32)


class TestWitnessFormat:
    def test_assemble_sorts_and_is_deterministic(self):
        w1, w2 = _sample_witness(), _sample_witness()
        assert witness_to_dict(w1) == witness_to_dict(w2)
        assert witness_digest(w1) == witness_digest(w2)
        assert w1.constraints == sorted(w1.constraints)
        assert w1.delta == sorted(w1.delta)

    def test_digest_changes_with_content(self):
        w1 = _sample_witness()
        w2 = _sample_witness()
        w2.gas_used += 1
        assert witness_digest(w1) != witness_digest(w2)

    def test_bytes_values_roundtrip_through_encoding(self):
        witness = ExecutionWitness.assemble(
            tx_hash=1, block_number=1, tier="plain", outcome="no_ap",
            success=True, gas_used=0, cost_units=0, observed_reads={},
            delta={("code", (0xABC,)): (b"", b"\x60\x00")},
            created=[], guards_checked=0, logs=[], return_data=b"")
        row = witness.delta[0]
        assert decode_value(row[2]) == b""
        assert decode_value(row[3]) == b"\x60\x00"

    def test_logs_digest_accepts_tuples_and_log_entries(self):
        as_tuple = [(CONTRACT, (1, 2), b"\xaa")]
        as_entry = [LogEntry(address=CONTRACT, topics=(1, 2),
                             data=b"\xaa")]
        assert logs_digest(as_tuple) == logs_digest(as_entry)
        assert logs_digest(as_tuple) != logs_digest([])

    def test_witness_lines_byte_identical(self):
        lines_a = witness_lines([_sample_witness()], meta={"seed": 1})
        lines_b = witness_lines([_sample_witness()], meta={"seed": 1})
        assert lines_a == lines_b
        assert lines_a[0].startswith('{"kind":"witness"')


# ---------------------------------------------------------------------------
# Checker: constraint replay + delta application, no re-execution
# ---------------------------------------------------------------------------

def _header(number: int = 4) -> BlockHeader:
    return BlockHeader(number=number, timestamp=1_000, coinbase=0xBEEF)


def _transfer_witness() -> ExecutionWitness:
    """Witness of a simple 'read slot 1, bump it, pay BOB' transaction."""
    return ExecutionWitness.assemble(
        tx_hash=0x11, block_number=4, tier="walk", outcome="satisfied",
        success=True, gas_used=21_000, cost_units=3_000,
        observed_reads={("storage", (CONTRACT, 1)): 100,
                        ("balance", (ALICE,)): 10 ** 20},
        delta={("storage", (CONTRACT, 1)): (100, 101),
               ("balance", (ALICE,)): (10 ** 20, 10 ** 20 - 7),
               ("balance", (BOB,)): (None, 7)},
        created=[(BOB, None)],
        guards_checked=1, logs=[], return_data=b"")


class TestWitnessChecker:
    def test_valid_witness_checks_clean_and_advances_state(self):
        world = _world()
        checker = WitnessChecker(world)
        cost, failures = checker.check_transaction(
            _transfer_witness(), _header())
        assert failures == []
        assert cost == witness_check_cost(2, 4)
        assert world.get_account(CONTRACT).get_storage(1) == 101
        assert world.get_account(BOB).balance == 7

    def test_constraint_mismatch_detected(self):
        witness = _transfer_witness()
        witness.constraints = [
            ["storage", [CONTRACT, 1], 999]]    # tampered expectation
        _cost, failures = WitnessChecker(_world()).check_transaction(
            witness, _header())
        assert [f.stage for f in failures] == ["constraint"]
        assert failures[0].expected == 999
        assert failures[0].actual == 100

    def test_delta_pre_mismatch_detected(self):
        witness = _transfer_witness()
        witness.delta = [["storage", [CONTRACT, 1], 55, 101]]
        _cost, failures = WitnessChecker(_world()).check_transaction(
            witness, _header())
        assert [f.stage for f in failures] == ["delta-pre"]

    def test_validate_run_flags_root_mismatch(self):
        world = _world()
        good_root_world = _world()
        good = WitnessChecker(good_root_world).check_transaction(
            _transfer_witness(), _header())
        assert good[1] == []
        expected_root = good_root_world.root()
        validation = WitnessChecker(world).validate_run(
            [(_header(), [_transfer_witness()], expected_root + 1)])
        assert not validation.ok
        assert validation.failures[-1].stage == "root"
        ok = WitnessChecker(_world()).validate_run(
            [(_header(), [_transfer_witness()], expected_root)])
        assert ok.ok
        assert ok.roots_matched == ok.blocks_checked == 1

    def test_cost_model_is_linear_in_witness_size(self):
        assert witness_check_cost(0, 0) == WITNESS_FIXED
        assert (witness_check_cost(5, 3)
                == WITNESS_FIXED + 5 * WITNESS_CHECK + 3 * WITNESS_APPLY)


# ---------------------------------------------------------------------------
# End-to-end: node emits witnesses; checker re-derives the chain
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def witness_run():
    config = DatasetConfig(
        name="witness-e2e",
        traffic=TrafficConfig(duration=14.0, seed=29),
        observers={"live": LatencyModel()}, seed=29)
    dataset = record_dataset(config)
    run = replay(dataset, "live",
                 config=ForerunnerConfig(enable_witness=True))
    return dataset, run


class TestNodeIntegration:
    def test_every_committed_transaction_carries_a_witness(
            self, witness_run):
        _dataset, run = witness_run
        node = run.forerunner_node
        executed = sum(len(r.records) for r in node.reports)
        assert executed > 0
        assert len(node.witnesses) == executed
        hashes = {record.tx_hash
                  for report in node.reports
                  for record in report.records}
        assert {w.tx_hash for w in node.witnesses} == hashes

    def test_checker_rederives_every_block_root(self, witness_run):
        dataset, run = witness_run
        node = run.forerunner_node
        by_block: dict = {}
        for witness in node.witnesses:
            by_block.setdefault(witness.block_number, []).append(witness)
        headers = {block.number: block.header
                   for _, block in dataset.blocks}
        blocks = [(headers[r.block_number],
                   by_block.get(r.block_number, []), r.state_root)
                  for r in node.reports]
        checker = WitnessChecker(dataset.genesis_world.copy())
        validation = checker.validate_run(blocks)
        assert validation.ok, [f.as_dict() for f in validation.failures]
        assert validation.roots_matched == len(node.reports)
        assert validation.witnesses == len(node.witnesses)

    def test_speculative_checker_cost_within_bound(self, witness_run):
        dataset, run = witness_run
        node = run.forerunner_node
        by_block: dict = {}
        for witness in node.witnesses:
            by_block.setdefault(witness.block_number, []).append(witness)
        headers = {block.number: block.header
                   for _, block in dataset.blocks}
        validation = WitnessChecker(
            dataset.genesis_world.copy()).validate_run(
            [(headers[r.block_number],
              by_block.get(r.block_number, []), r.state_root)
             for r in node.reports])
        assert validation.speculative_witnesses > 0
        assert validation.speculative_cost_ratio() <= 0.2
        # The overall ratio (including plain fallbacks) stays sane too.
        assert 0.0 < validation.cost_ratio() < 1.0

    def test_witness_recording_does_not_change_commitments(
            self, witness_run):
        dataset, run = witness_run
        plain = replay(dataset, "live",
                       config=ForerunnerConfig(enable_witness=False))
        assert (plain.forerunner_node.world.root()
                == run.forerunner_node.world.root())
        assert plain.roots_matched == run.roots_matched

    def test_witness_stream_is_byte_stable(self, witness_run):
        dataset, run = witness_run
        again = replay(dataset, "live",
                       config=ForerunnerConfig(enable_witness=True))
        assert (witness_lines(run.forerunner_node.witnesses)
                == witness_lines(again.forerunner_node.witnesses))

def test_direct_node_block_flow_produces_checkable_witnesses():
    """Drive a ForerunnerNode by hand (no emulator) and check it."""
    from repro.chain.block import Block
    from tests.conftest import make_tx

    world = WorldState()
    world.create_account(ALICE, balance=10 ** 24)
    world.create_account(BOB, balance=10 ** 24)
    genesis = world.copy()
    node = ForerunnerNode(world, ForerunnerConfig(enable_witness=True))
    txs = [make_tx(sender=ALICE, to=BOB, data=b"", nonce=0, value=123),
           make_tx(sender=BOB, to=ALICE, data=b"", nonce=0, value=45)]
    header = BlockHeader(number=1, timestamp=2_000, coinbase=0xBEEF)
    report = node.process_block(Block(header=header, transactions=txs))
    assert len(node.witnesses) == 2
    validation = WitnessChecker(genesis).validate_run(
        [(header, node.witnesses, report.state_root)])
    assert validation.ok, [f.as_dict() for f in validation.failures]


# -- archival compression ----------------------------------------------------


class TestWitnessArchive:
    """Per-block delta-encoded + deflated cold storage for the
    witness stream; the round-trip is lossless *by digest*."""

    def test_round_trip_preserves_every_digest(self, witness_run):
        from repro.witness import encode_block, unarchive_block

        _dataset, run = witness_run
        by_block: dict = {}
        for witness in run.forerunner_node.witnesses:
            by_block.setdefault(witness.block_number,
                                []).append(witness)
        assert by_block, "no witnesses to archive"
        for batch in by_block.values():
            restored = unarchive_block(encode_block(batch))
            assert [witness_digest(w) for w in restored] == \
                [witness_digest(w) for w in batch]

    def test_archive_blobs_are_byte_stable(self, witness_run):
        from repro.witness import archive_witnesses

        _dataset, run = witness_run
        first = archive_witnesses(run.forerunner_node.witnesses)
        second = archive_witnesses(run.forerunner_node.witnesses)
        assert first.blobs == second.blobs
        assert first.as_dict() == second.as_dict()

    def test_compression_actually_compresses(self, witness_run):
        from repro.witness import archive_witnesses

        _dataset, run = witness_run
        stats = archive_witnesses(run.forerunner_node.witnesses)
        assert stats.witnesses == len(run.forerunner_node.witnesses)
        assert stats.compressed_bytes < stats.raw_bytes
        assert stats.ratio() < 0.6, (
            "delta + deflate should beat 60% of raw on a real stream")

    def test_empty_and_mixed_block_batches_reject_properly(self):
        from repro.witness import encode_block, unarchive_block

        assert unarchive_block(encode_block([])) == []
        a = ExecutionWitness(tx_hash=1, block_number=1, tier="plain",
                             outcome="no_ap", success=True,
                             gas_used=21_000, cost_units=10)
        b = ExecutionWitness(tx_hash=2, block_number=2, tier="plain",
                             outcome="no_ap", success=True,
                             gas_used=21_000, cost_units=10)
        with pytest.raises(ValueError):
            encode_block([a, b])

    def test_witness_from_dict_is_exact_inverse(self):
        from repro.witness import witness_from_dict

        witness = ExecutionWitness(
            tx_hash=7, block_number=3, tier="walk", outcome="satisfied",
            success=True, gas_used=30_000, cost_units=99,
            constraints=[["bal", [5], 1_000]],
            delta=[["bal", [5], 1_000, 900]],
            created=[], guards_checked=1, context_ids=[2])
        restored = witness_from_dict(witness_to_dict(witness))
        assert witness_digest(restored) == witness_digest(witness)
        with pytest.raises(ValueError):
            witness_from_dict({"v": 999})
