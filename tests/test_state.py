"""WorldState / StateDB / journal / trie tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InsufficientBalance
from repro.state.account import Account
from repro.state.statedb import StateDB
from repro.state.trie import state_root, storage_root, trie_depth
from repro.state.world import WorldState


def test_account_storage_zero_deletes():
    account = Account()
    account.set_storage(1, 5)
    account.set_storage(1, 0)
    assert 1 not in account.storage
    assert account.get_storage(1) == 0


def test_account_copy_independent():
    account = Account(balance=5, storage={1: 2})
    clone = account.copy()
    clone.set_storage(1, 9)
    clone.balance = 7
    assert account.get_storage(1) == 2
    assert account.balance == 5


def test_world_root_changes_with_state():
    world = WorldState()
    world.create_account(1, balance=10)
    root1 = world.root()
    world.apply({1: Account(balance=11)})
    assert world.root() != root1


def test_world_root_incremental_matches_full():
    """The memoized root equals a from-scratch recomputation after
    every commit path (apply / create_account / replace_contents)."""
    world = WorldState()
    world.create_account(1, balance=10)
    world.create_account(2, balance=20, code=b"\x60\x00")
    world.get_account(2).set_storage(3, 7)  # genesis-style, pre-root
    assert world.root() == state_root(world.accounts())
    world.apply({1: Account(balance=11, storage={9: 1})})
    assert world.root() == state_root(world.accounts())
    world.create_account(5, balance=1)
    assert world.root() == state_root(world.accounts())
    other = WorldState()
    other.create_account(8, balance=3)
    world.replace_contents(other)
    assert world.root() == state_root(world.accounts())
    assert world.root() == other.root()


def test_world_root_cached_at_same_version():
    world = WorldState()
    world.create_account(1, balance=10)
    assert world.root() == world.root()
    version = world.version
    world.apply({2: Account(balance=5)})
    assert world.version != version
    assert world.root() == state_root(world.accounts())


def test_world_copy_preserves_root():
    world = WorldState()
    world.create_account(1, balance=10)
    world.get_account(1).set_storage(2, 3)
    root = world.root()
    clone = world.copy()
    assert clone.root() == root
    clone.apply({1: Account(balance=99)})
    assert clone.root() != root
    assert world.root() == root


def test_world_root_order_independent():
    w1 = WorldState()
    w1.create_account(1, balance=10)
    w1.create_account(2, balance=20)
    w2 = WorldState()
    w2.create_account(2, balance=20)
    w2.create_account(1, balance=10)
    assert w1.root() == w2.root()


def test_world_copy_deep():
    world = WorldState()
    world.create_account(1, balance=10)
    clone = world.copy()
    clone.get_account(1).balance = 99
    assert world.get_account(1).balance == 10
    assert world.root() != clone.root()


def test_storage_root_sensitive_to_values():
    assert storage_root({1: 2}) != storage_root({1: 3})
    assert storage_root({}) == 0


def test_trie_depth_monotone():
    depths = [trie_depth(n) for n in (1, 10, 100, 10_000, 10**6)]
    assert depths == sorted(depths)
    assert trie_depth(0) == 1


def test_statedb_read_through():
    world = WorldState()
    world.create_account(1, balance=7)
    state = StateDB(world)
    assert state.get_balance(1) == 7
    assert state.get_balance(999) == 0  # absent account reads as empty


def test_statedb_writes_do_not_touch_world_until_commit():
    world = WorldState()
    world.create_account(1, balance=7)
    state = StateDB(world)
    state.set_balance(1, 100)
    assert world.get_account(1).balance == 7
    state.commit()
    assert world.get_account(1).balance == 100


def test_statedb_storage_roundtrip_and_commit():
    world = WorldState()
    world.create_account(1)
    state = StateDB(world)
    state.set_storage(1, 5, 42)
    assert state.get_storage(1, 5) == 42
    state.commit()
    assert world.get_account(1).get_storage(5) == 42


def test_statedb_storage_delete_on_commit():
    world = WorldState()
    account = world.create_account(1)
    account.set_storage(5, 9)
    state = StateDB(world)
    state.set_storage(1, 5, 0)
    state.commit()
    assert world.get_account(1).get_storage(5) == 0


def test_sub_balance_insufficient():
    world = WorldState()
    world.create_account(1, balance=5)
    state = StateDB(world)
    with pytest.raises(InsufficientBalance):
        state.sub_balance(1, 10)


def test_snapshot_revert_balance_nonce_storage():
    world = WorldState()
    world.create_account(1, balance=10)
    state = StateDB(world)
    snap = state.snapshot()
    state.set_balance(1, 99)
    state.increment_nonce(1)
    state.set_storage(1, 3, 4)
    state.add_log(1, (7,), b"x")
    state.revert_to(snap)
    assert state.get_balance(1) == 10
    assert state.get_nonce(1) == 0
    assert state.get_storage(1, 3) == 0
    assert state.logs == []


def test_nested_snapshots():
    world = WorldState()
    world.create_account(1, balance=10)
    state = StateDB(world)
    s1 = state.snapshot()
    state.set_balance(1, 20)
    s2 = state.snapshot()
    state.set_balance(1, 30)
    state.revert_to(s2)
    assert state.get_balance(1) == 20
    state.revert_to(s1)
    assert state.get_balance(1) == 10


def test_warmness_survives_revert():
    world = WorldState()
    world.create_account(1, balance=10)
    state = StateDB(world)
    snap = state.snapshot()
    state.get_storage(1, 5)
    state.revert_to(snap)
    assert state.is_slot_warm(1, 5)


def test_create_account_revert():
    world = WorldState()
    state = StateDB(world)
    snap = state.snapshot()
    state.create_account(42, balance=1)
    assert state.account_exists(42)
    state.revert_to(snap)
    assert not state.account_exists(42)


@settings(max_examples=40)
@given(st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 3),
              st.integers(0, 2**64)),
    min_size=1, max_size=30))
def test_commit_equals_direct_application(ops):
    """Property: committing a StateDB equals applying writes directly."""
    world_a = WorldState()
    world_b = WorldState()
    for world in (world_a, world_b):
        for address in range(6):
            world.create_account(address, balance=100)
    state = StateDB(world_a)
    for address, slot, value in ops:
        state.set_storage(address, slot, value)
        world_b.get_account(address).set_storage(slot, value)
    state.commit()
    assert world_a.root() == world_b.root()


@settings(max_examples=25)
@given(st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 2), st.integers(0, 100)),
    min_size=1, max_size=20))
def test_snapshot_revert_is_identity(ops):
    """Property: snapshot + arbitrary ops + revert leaves state as-is."""
    world = WorldState()
    for address in range(4):
        account = world.create_account(address, balance=50)
        account.set_storage(0, 7)
    state = StateDB(world)
    before = {(a, s): state.get_storage(a, s)
              for a in range(4) for s in range(3)}
    snap = state.snapshot()
    for address, slot, value in ops:
        state.set_storage(address, slot, value)
    state.revert_to(snap)
    after = {(a, s): state.get_storage(a, s)
             for a in range(4) for s in range(3)}
    assert before == after


def test_disk_model_cold_then_warm():
    world = WorldState()
    world.create_account(1, balance=10)
    state = StateDB(world)
    state.get_balance(1)
    cold_cost = state.disk.stats.cost_units
    state.get_balance(1)
    warm_delta = state.disk.stats.cost_units - cold_cost
    assert warm_delta < cold_cost


def test_node_cache_makes_fresh_statedb_warm():
    from repro.state.nodecache import NodeCache
    world = WorldState()
    world.create_account(1, balance=10)
    cache = NodeCache()
    s1 = StateDB(world, node_cache=cache)
    s1.get_balance(1)
    cost_first = s1.disk.stats.cost_units
    s2 = StateDB(world, node_cache=cache)
    s2.get_balance(1)
    assert s2.disk.stats.cost_units < cost_first


def test_node_cache_eviction():
    from repro.state.nodecache import NodeCache
    cache = NodeCache(capacity=2)
    cache.add("a")
    cache.add("b")
    cache.add("c")
    assert len(cache) == 2
    assert not cache.contains("a")
    assert cache.contains("c")
