"""Crash-recovery tests (:mod:`repro.recovery`).

Covers the journal (framing, torn-tail truncation, compaction, crash
kinds), the snapshot store (atomic install, pruning, corrupt-skip),
the durable replay harness (byte-identical to the plain emulator), the
full crash-point matrix (every ``recovery.*`` site at three seeds, each
recovered run's equivalence digest byte-identical to an uninterrupted
run), snapshot+journal-suffix restore, report determinism, and the
reorg journal hook — plus the satellite fixes (memo-table LRU bounds,
txpool requeue ordering, admission release on reorg).
"""

import os

import pytest

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.chainsync import ChainManager
from repro.core.node import BaselineNode, ForerunnerConfig, ForerunnerNode
from repro.errors import RecoveryError, SimulatedCrash
from repro.faults.injector import FaultInjector
from repro.faults.invariants import run_digest
from repro.obs.export import canonical_json
from repro.obs.registry import MetricsRegistry
from repro.p2p.latency import LatencyModel
from repro.recovery import (
    CRASH_SITES,
    DurableReplay,
    JournalWriter,
    RecoveryConfig,
    SnapshotStore,
    crash_plan,
    read_journal,
    run_with_recovery,
    truncate_torn_tail,
)
from repro.recovery.crashpoints import (
    SITE_BLOCK_POST_COMMIT,
    SITE_JOURNAL_APPEND,
    SITE_JOURNAL_TORN,
    SITE_SNAPSHOT_TORN,
)
from repro.recovery.replay import recovery_report
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.state.world import WorldState
from repro.txpool.pool import TxPool
from repro.workloads.mixed import TrafficConfig

from tests.conftest import ALICE, BOB, FEED, ROUND

PF = pricefeed()

#: Snapshot every block: maximizes distinct crash-point placements the
#: seed-as-occurrence sweep can reach within a small dataset.
RECOVERY = RecoveryConfig(snapshot_interval_blocks=1)


@pytest.fixture(scope="module")
def dataset():
    return record_dataset(DatasetConfig(
        name="recovery-sweep",
        traffic=TrafficConfig(duration=6.0, seed=2021),
        mean_block_interval=6.0,
        observers={"live": LatencyModel()},
        seed=2021))


@pytest.fixture(scope="module")
def clean_run(dataset):
    return replay(dataset, "live")


@pytest.fixture(scope="module")
def clean_digest(clean_run):
    return canonical_json(run_digest(clean_run))


def make_injector(plan):
    return FaultInjector(plan, registry=MetricsRegistry())


# -- journal ------------------------------------------------------------------

class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(path)
        writer.append("block_import", {"number": 1}, sync=True,
                      clock={"sim_time": 1.5})
        writer.append("tx_commit", {"tx": "0xab", "block": 1})
        writer.append("block_commit", {"number": 1}, sync=True)
        writer.close()
        scan = read_journal(path)
        assert [r.seq for r in scan.records] == [0, 1, 2]
        assert [r.type for r in scan.records] == [
            "block_import", "tx_commit", "block_commit"]
        assert scan.records[0].clock == {"sim_time": 1.5}
        assert scan.records[1].data == {"tx": "0xab", "block": 1}
        assert scan.torn_bytes == 0
        assert scan.next_seq == 3

    def test_torn_garbage_tail_detected_and_truncated(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(path)
        for i in range(3):
            writer.append("tx_commit", {"i": i})
        writer.close()
        with open(path, "ab") as handle:
            handle.write(b"\x07garbage")
        scan = read_journal(path)
        assert len(scan.records) == 3
        assert scan.torn_bytes == 8
        assert truncate_torn_tail(path) == 8
        rescan = read_journal(path)
        assert len(rescan.records) == 3
        assert rescan.torn_bytes == 0

    def test_torn_half_frame_detected(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(path)
        record = writer.append("tx_commit", {"i": 0})
        writer.close()
        frame = record.encode()
        with open(path, "ab") as handle:
            handle.write(frame[:len(frame) // 2])
        scan = read_journal(path)
        assert len(scan.records) == 1
        assert scan.torn_bytes == len(frame) // 2
        truncate_torn_tail(path)
        assert read_journal(path).torn_bytes == 0

    def test_appends_resume_after_truncation(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(path)
        writer.append("tx_commit", {"i": 0})
        writer.close()
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        truncate_torn_tail(path)
        scan = read_journal(path)
        writer = JournalWriter(path, next_seq=scan.next_seq)
        writer.append("tx_commit", {"i": 1})
        writer.close()
        assert [r.seq for r in read_journal(path).records] == [0, 1]

    def test_compaction_drops_superseded_prefix(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(path)
        for i in range(10):
            writer.append("tx_commit", {"i": i})
        assert writer.compact(keep_from_seq=6) == 6
        # The writer survives the rename and keeps the sequence going.
        writer.append("tx_commit", {"i": 10})
        writer.close()
        scan = read_journal(path)
        assert [r.seq for r in scan.records] == [6, 7, 8, 9, 10]

    def test_crash_before_write_leaves_nothing(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(
            path, injector=make_injector(
                crash_plan(0, SITE_JOURNAL_APPEND, occurrence=1)))
        writer.append("tx_commit", {"i": 0})
        with pytest.raises(SimulatedCrash) as exc:
            writer.append("tx_commit", {"i": 1})
        writer.close()
        assert exc.value.site == SITE_JOURNAL_APPEND
        scan = read_journal(path)
        assert len(scan.records) == 1  # the doomed record never landed
        assert scan.torn_bytes == 0

    def test_torn_write_leaves_detectable_partial(self, tmp_path):
        path = str(tmp_path / "journal.wal")
        writer = JournalWriter(
            path, injector=make_injector(
                crash_plan(0, SITE_JOURNAL_TORN, occurrence=1)))
        writer.append("tx_commit", {"i": 0})
        with pytest.raises(SimulatedCrash):
            writer.append("tx_commit", {"i": 1})
        writer.close()
        scan = read_journal(path)
        assert len(scan.records) == 1
        assert scan.torn_bytes > 0
        truncate_torn_tail(path)
        assert read_journal(path).torn_bytes == 0

    def test_bad_magic_is_a_hard_error(self, tmp_path):
        path = str(tmp_path / "not-a-journal")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a journal")
        with pytest.raises(RecoveryError):
            read_journal(path)


# -- snapshots ----------------------------------------------------------------

class TestSnapshotStore:
    def payload(self, block):
        return {"block_number": block, "value": block * 11}

    def test_roundtrip_and_latest(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        store.save(self.payload(1), 1)
        store.save(self.payload(3), 3)
        loaded, number = store.load_latest()
        assert number == 3
        assert loaded == self.payload(3)

    def test_prunes_to_keep(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"), keep=2)
        for block in (1, 2, 3, 4):
            store.save(self.payload(block), block)
        names = sorted(os.listdir(str(tmp_path / "snaps")))
        assert names == ["snap-00000003.bin", "snap-00000004.bin"]

    def test_corrupt_snapshot_skipped(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        store.save(self.payload(2), 2)
        with open(store.path_for(5), "wb") as handle:
            handle.write(b"REPROSNP1 but then garbage")
        loaded, number = store.load_latest()
        assert number == 2

    def test_torn_write_produces_skippable_corruption(self, tmp_path):
        directory = str(tmp_path / "snaps")
        store = SnapshotStore(directory)
        store.save(self.payload(2), 2)
        crashing = SnapshotStore(
            directory, injector=make_injector(
                crash_plan(0, SITE_SNAPSHOT_TORN)))
        with pytest.raises(SimulatedCrash):
            crashing.save(self.payload(3), 3)
        assert os.path.exists(store.path_for(3))  # partial, on disk
        loaded, number = store.load_latest()
        assert number == 2  # the torn victim is skipped

    def test_empty_store_loads_nothing(self, tmp_path):
        store = SnapshotStore(str(tmp_path / "snaps"))
        assert store.load_latest() is None


# -- durable replay -----------------------------------------------------------

class TestDurableReplay:
    def test_uncrashed_run_matches_emulator_digest(
            self, dataset, clean_digest, tmp_path):
        node = DurableReplay(dataset, str(tmp_path), recovery=RECOVERY)
        run = node.run()
        assert canonical_json(run_digest(run)) == clean_digest

    def test_journal_records_the_durable_event_stream(
            self, dataset, tmp_path):
        # Disable snapshots so compaction never trims the history.
        node = DurableReplay(
            dataset, str(tmp_path),
            recovery=RecoveryConfig(snapshot_interval_blocks=0))
        run = node.run()
        scan = read_journal(str(tmp_path / "journal.wal"))
        types = {record.type for record in scan.records}
        assert {"block_import", "block_commit", "tx_commit",
                "prefix_head"} <= types
        assert "memo_insert" in types  # the memo audit trail
        commits = [r for r in scan.records if r.type == "block_commit"]
        assert len(commits) == run.blocks_executed
        # Records carry the deterministic cost-unit clock.
        assert commits[-1].clock["exec_cost"] > 0

    def test_snapshots_bound_the_journal(self, dataset, tmp_path):
        node = DurableReplay(dataset, str(tmp_path), recovery=RECOVERY)
        node.run()
        scan = read_journal(str(tmp_path / "journal.wal"))
        # The last block's snapshot compacted everything before it.
        snaps = os.listdir(str(tmp_path / "snapshots"))
        assert 0 < len(snaps) <= RECOVERY.keep_snapshots
        commits = [r for r in scan.records if r.type == "block_commit"]
        assert len(commits) <= 1


# -- the crash matrix ---------------------------------------------------------

class TestCrashMatrix:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_every_site_converges_and_reports_are_byte_stable(
            self, dataset, clean_run, clean_digest, tmp_path, seed):
        first = recovery_report(dataset, str(tmp_path / "a"), seed=seed,
                                recovery=RECOVERY, clean_run=clean_run)
        again = recovery_report(dataset, str(tmp_path / "b"), seed=seed,
                                recovery=RECOVERY, clean_run=clean_run)
        # Same seed, fresh stores: byte-identical reports (CI diffs).
        assert canonical_json(first) == canonical_json(again)
        assert first["converged"]
        assert [entry["site"] for entry in first["sites"]] == \
            list(CRASH_SITES)
        for entry in first["sites"]:
            assert entry["fired"] == 1, entry["site"]
            assert entry["restarts"] == 1, entry["site"]
            assert entry["converged"], entry["site"]
            assert entry["crashes"][0]["site"] == entry["site"]

    def test_snapshot_plus_suffix_restore(self, dataset, clean_digest,
                                          tmp_path):
        """A late crash recovers from snapshot + journal suffix, not a
        cold start: restored blocks come from the snapshot, the block
        committed after it is re-driven and verified, and the digest is
        still byte-identical."""
        outcome = run_with_recovery(
            dataset, str(tmp_path),
            crash_plan=crash_plan(0, SITE_BLOCK_POST_COMMIT,
                                  occurrence=6),
            recovery=RECOVERY)
        assert outcome.restarts == 1
        info = outcome.recoveries[0]
        assert info.blocks_restored > 0
        assert info.blocks_verified >= 1
        assert info.snapshot_block is not None
        assert canonical_json(run_digest(outcome.run)) == clean_digest

    def test_torn_tail_truncated_on_restart(self, dataset,
                                            clean_digest, tmp_path):
        outcome = run_with_recovery(
            dataset, str(tmp_path),
            crash_plan=crash_plan(0, SITE_JOURNAL_TORN, occurrence=3),
            recovery=RECOVERY)
        assert outcome.recoveries[0].torn_bytes_truncated > 0
        assert canonical_json(run_digest(outcome.run)) == clean_digest

    def test_crash_loop_guard(self, dataset, tmp_path):
        with pytest.raises(RecoveryError):
            run_with_recovery(
                dataset, str(tmp_path),
                crash_plan=crash_plan(0, SITE_JOURNAL_APPEND),
                recovery=RecoveryConfig(snapshot_interval_blocks=1,
                                        max_restarts=0))


# -- reorg journaling ---------------------------------------------------------

def fresh_world():
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=10**24)
    world.create_account(FEED, code=PF.code)
    return world


def submit_tx(sender, nonce, price):
    return Transaction(sender=sender, to=FEED,
                       data=PF.calldata("submit", ROUND, price),
                       nonce=nonce)


def make_block(parent, txs, ts_offset=13, coinbase=0xE0):
    header = BlockHeader(
        number=parent.number + 1,
        timestamp=parent.header.timestamp + ts_offset,
        coinbase=coinbase,
        parent_hash=parent.hash)
    return Block(header=header, transactions=txs)


def genesis_block():
    return Block(header=BlockHeader(number=0, timestamp=ROUND + 10,
                                    coinbase=0))


def test_reorg_becomes_a_durable_journal_record(tmp_path):
    path = str(tmp_path / "journal.wal")
    journal = JournalWriter(path)
    node = BaselineNode(fresh_world())
    manager = ChainManager(node, genesis_block(), journal=journal)
    genesis = manager.chain.genesis
    a1 = make_block(genesis, [submit_tx(ALICE, 0, 2000)])
    manager.receive_block(a1)
    b1 = make_block(genesis, [submit_tx(BOB, 0, 1500)], ts_offset=14)
    b2 = make_block(b1, [submit_tx(ALICE, 0, 1700)])
    manager.receive_block(b1)
    manager.receive_block(b2)
    journal.close()
    assert manager.reorgs == 1
    reorgs = [r for r in read_journal(path).records
              if r.type == "reorg"]
    assert len(reorgs) == 1
    assert reorgs[0].data["fork_number"] == 0
    assert reorgs[0].data["new_head"] == f"{b2.hash:#x}"


# -- satellite fixes ----------------------------------------------------------

class TestMemoTableBounds:
    def test_capacity_one_still_commits_identically(self, dataset,
                                                    clean_digest):
        """The memo table is pure acceleration: squeezing it to a
        single entry forces constant LRU eviction yet every committed
        root, receipt and Table 2/3 baseline column stays
        byte-identical."""
        run = replay(dataset, "live",
                     config=ForerunnerConfig(memo_capacity=1))
        assert canonical_json(run_digest(run)) == clean_digest
        speculator = run.forerunner_node.speculator
        assert speculator.c_memo_evictions.value > 0
        assert len(speculator.aps) <= 1

    def test_default_capacity_never_evicts_here(self, clean_run):
        speculator = clean_run.forerunner_node.speculator
        assert speculator.c_memo_evictions.value == 0


class TestRequeueOrdering:
    def test_txpool_requeue_reenters_nonce_queue(self):
        pool = TxPool(registry=MetricsRegistry())
        tx0 = submit_tx(ALICE, 0, 2000)
        tx1 = submit_tx(ALICE, 1, 2000)
        pool.add(tx0, now=1.0)
        pool.add(tx1, now=2.0)
        removed = pool.remove(tx0.hash)
        assert removed is tx0
        assert pool.ready_for(ALICE, 0) == []  # nonce gap: 1 is stuck
        assert pool.requeue(tx0, now=9.0)
        # Back in the nonce run, un-gapping the successor.
        assert pool.ready_for(ALICE, 0) == [tx0, tx1]
        assert pool.c_requeued.value == 1
        assert pool.arrival_times[tx0.hash] == 9.0

    def test_txpool_requeue_respects_replacement_rule(self):
        pool = TxPool(registry=MetricsRegistry())
        rich = Transaction(sender=ALICE, to=FEED,
                           data=PF.calldata("submit", ROUND, 2000),
                           nonce=0, gas_price=2_000_000_000)
        pool.add(rich)
        stale = submit_tx(ALICE, 0, 1500)  # default (lower) gas price
        assert not pool.requeue(stale)
        assert pool.c_requeued.value == 0
        assert rich.hash in pool

    def test_node_requeue_resets_speculation_accounting(self):
        node = ForerunnerNode(fresh_world())
        manager = ChainManager(node, genesis_block())
        tx = submit_tx(ALICE, 0, 2000)
        node.on_transaction(tx, now=1.0)
        manager.receive_block(
            make_block(manager.chain.genesis, [tx]), now=2.0)
        assert tx.hash in node.executed
        # Simulate stale accounting from the abandoned branch.
        node.admission.total_spec[tx.hash] = 3
        node.admission.spec_counts[(tx.hash, 1)] = 2
        node.first_context[tx.hash] = 7
        node.requeue(tx, now=99.0)
        assert tx.hash in node.pool
        assert node.pool[tx.hash][1] == 1.0  # original heard time
        assert tx.hash not in node.executed
        assert node.admission.total_spec.get(tx.hash) is None
        assert node.admission.spec_counts.get((tx.hash, 1)) is None
        assert tx.hash not in node.first_context
        assert node.speculator.get_ap(tx.hash) is None
