"""EVM arithmetic/comparison/bitwise semantics.

Property-based: each opcode's result through the interpreter must match
an independent Python reference implementation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.evm.assembler import assemble
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState
from repro.utils.words import to_signed, to_unsigned, u256

words = st.integers(min_value=0, max_value=2**256 - 1)
small = st.integers(min_value=0, max_value=300)

SENDER = 0xAA
CODE_ADDR = 0xCC


def run_binary(op: str, a: int, b: int) -> int:
    """Execute `a <op> b` where the op pops a from the top."""
    code = assemble(f"""
        PUSH {b}
        PUSH {a}
        {op}
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """)
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CODE_ADDR, code=code)
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CODE_ADDR, nonce=0)
    result = EVM(state, BlockHeader(1, 1, 0xBEEF), tx).execute_transaction()
    assert result.success, result.error
    return int.from_bytes(result.return_data, "big")


@settings(max_examples=30)
@given(words, words)
def test_add(a, b):
    assert run_binary("ADD", a, b) == u256(a + b)


@settings(max_examples=30)
@given(words, words)
def test_mul(a, b):
    assert run_binary("MUL", a, b) == u256(a * b)


@settings(max_examples=30)
@given(words, words)
def test_sub(a, b):
    assert run_binary("SUB", a, b) == u256(a - b)


@settings(max_examples=30)
@given(words, words)
def test_div(a, b):
    assert run_binary("DIV", a, b) == (a // b if b else 0)


@settings(max_examples=30)
@given(words, words)
def test_mod(a, b):
    assert run_binary("MOD", a, b) == (a % b if b else 0)


@settings(max_examples=30)
@given(words, words)
def test_sdiv(a, b):
    got = run_binary("SDIV", a, b)
    if b == 0:
        assert got == 0
    else:
        sa, sb = to_signed(a), to_signed(b)
        expected = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            expected = -expected
        assert got == to_unsigned(expected)


@settings(max_examples=30)
@given(words, words)
def test_smod(a, b):
    got = run_binary("SMOD", a, b)
    if b == 0:
        assert got == 0
    else:
        sa, sb = to_signed(a), to_signed(b)
        expected = abs(sa) % abs(sb)
        if sa < 0:
            expected = -expected
        assert got == to_unsigned(expected)


@settings(max_examples=30)
@given(words, words)
def test_comparisons(a, b):
    assert run_binary("LT", a, b) == (1 if a < b else 0)
    assert run_binary("GT", a, b) == (1 if a > b else 0)
    assert run_binary("EQ", a, b) == (1 if a == b else 0)


@settings(max_examples=20)
@given(words, words)
def test_signed_comparisons(a, b):
    assert run_binary("SLT", a, b) == (1 if to_signed(a) < to_signed(b) else 0)
    assert run_binary("SGT", a, b) == (1 if to_signed(a) > to_signed(b) else 0)


@settings(max_examples=30)
@given(words, words)
def test_bitwise(a, b):
    assert run_binary("AND", a, b) == a & b
    assert run_binary("OR", a, b) == a | b
    assert run_binary("XOR", a, b) == a ^ b


@settings(max_examples=20)
@given(small, words)
def test_shifts(shift, value):
    assert run_binary("SHL", shift, value) == (
        u256(value << shift) if shift < 256 else 0)
    assert run_binary("SHR", shift, value) == (
        value >> shift if shift < 256 else 0)


@settings(max_examples=20)
@given(small, words)
def test_byte(pos, value):
    expected = (value >> (8 * (31 - pos))) & 0xFF if pos < 32 else 0
    assert run_binary("BYTE", pos, value) == expected


@settings(max_examples=20)
@given(words, words, st.integers(min_value=0, max_value=2**256 - 1))
def test_addmod(a, b, m):
    code_result = _run_ternary("ADDMOD", a, b, m)
    assert code_result == ((a + b) % m if m else 0)


@settings(max_examples=20)
@given(words, words, st.integers(min_value=0, max_value=2**256 - 1))
def test_mulmod(a, b, m):
    code_result = _run_ternary("MULMOD", a, b, m)
    assert code_result == ((a * b) % m if m else 0)


def _run_ternary(op: str, a: int, b: int, c: int) -> int:
    code = assemble(f"""
        PUSH {c}
        PUSH {b}
        PUSH {a}
        {op}
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """)
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CODE_ADDR, code=code)
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CODE_ADDR, nonce=0)
    result = EVM(state, BlockHeader(1, 1, 0xBEEF), tx).execute_transaction()
    assert result.success
    return int.from_bytes(result.return_data, "big")


def test_iszero_and_not():
    assert _run_unary("ISZERO", 0) == 1
    assert _run_unary("ISZERO", 5) == 0
    assert _run_unary("NOT", 0) == 2**256 - 1


def _run_unary(op: str, a: int) -> int:
    code = assemble(f"""
        PUSH {a}
        {op}
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """)
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CODE_ADDR, code=code)
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CODE_ADDR, nonce=0)
    result = EVM(state, BlockHeader(1, 1, 0xBEEF), tx).execute_transaction()
    assert result.success
    return int.from_bytes(result.return_data, "big")


def test_signextend():
    # Sign-extend the low byte 0xFF -> all ones.
    assert run_binary("SIGNEXTEND", 0, 0xFF) == 2**256 - 1
    assert run_binary("SIGNEXTEND", 0, 0x7F) == 0x7F
    assert run_binary("SIGNEXTEND", 31, 5) == 5


def test_exp():
    assert run_binary("EXP", 2, 10) == 1024
    assert run_binary("EXP", 3, 0) == 1
