"""Unit tests for remaining corners: empty-trace APs (plain transfers),
bench report helpers, history model, error hierarchy, S-EVM reprs."""

import pytest

from repro.bench.history import saturation_fraction, simulate_block_history
from repro.bench.report import ascii_table
from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core.accelerator import TransactionAccelerator
from repro.core.sevm import GuardMode, Reg, SInstr, SKind, is_reg
from repro.core.speculator import FutureContext, Speculator
from repro.errors import (
    ChainError,
    CompileError,
    EVMError,
    ReproError,
    Revert,
    SpeculationError,
)
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState

ALICE, BOB = 0xA1, 0xB2


# -- plain value transfers through the AP machinery -----------------------------

def transfer_world():
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=5)
    return world


def test_plain_transfer_gets_trivial_ap():
    """A code-less transfer traces to zero instructions; its AP is a
    bare terminal handled entirely by the native envelope."""
    tx = Transaction(sender=ALICE, to=BOB, value=1234, nonce=0)
    header = BlockHeader(1, 1000, 0xBEEF)
    speculator = Speculator(transfer_world())
    path = speculator.speculate(tx, FutureContext(1, header))
    assert path is not None
    assert path.instrs == []
    assert path.gas_used == 21_000
    ap = speculator.get_ap(tx.hash)

    evm_world = transfer_world()
    s1 = StateDB(evm_world)
    EVM(s1, header, tx).execute_transaction()
    s1.commit()
    ap_world = transfer_world()
    s2 = StateDB(ap_world)
    receipt = TransactionAccelerator().execute(tx, header, s2, ap)
    s2.commit()
    assert receipt.outcome == "satisfied"
    assert receipt.result.gas_used == 21_000
    assert ap_world.root() == evm_world.root()
    assert ap_world.get_account(BOB).balance == 5 + 1234


def test_transfer_insufficient_value_ap_matches_evm():
    """Value exceeding balance fails identically via AP and EVM."""
    tx = Transaction(sender=ALICE, to=BOB, value=10**30, nonce=0)
    header = BlockHeader(1, 1000, 0xBEEF)
    speculator = Speculator(transfer_world())
    speculator.speculate(tx, FutureContext(1, header))
    ap = speculator.get_ap(tx.hash)

    evm_world = transfer_world()
    s1 = StateDB(evm_world)
    expected = EVM(s1, header, tx).execute_transaction()
    s1.commit()
    ap_world = transfer_world()
    s2 = StateDB(ap_world)
    receipt = TransactionAccelerator().execute(tx, header, s2, ap)
    s2.commit()
    assert receipt.result.success == expected.success
    assert receipt.result.gas_used == expected.gas_used
    assert ap_world.root() == evm_world.root()


# -- bench helpers -----------------------------------------------------------------

def test_ascii_table_alignment():
    table = ascii_table(["a", "long-header"],
                        [[1, 2], ["wiiiiide", 3]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert len(set(len(line) for line in lines[1:])) <= 2
    assert "long-header" in lines[1]


def test_history_deterministic():
    a = simulate_block_history(30)
    b = simulate_block_history(30)
    assert [(p.gas_limit, p.gas_used) for p in a] == \
        [(p.gas_limit, p.gas_used) for p in b]
    assert 0.0 <= saturation_fraction(a) <= 1.0


def test_history_demand_never_exceeds_limit():
    for point in simulate_block_history(66):
        assert point.gas_used <= point.gas_limit


# -- errors -----------------------------------------------------------------------------

def test_error_hierarchy():
    assert issubclass(EVMError, ReproError)
    assert issubclass(Revert, EVMError)
    assert issubclass(CompileError, ReproError)
    assert issubclass(SpeculationError, ReproError)
    assert issubclass(ChainError, ReproError)


def test_revert_carries_payload():
    exc = Revert(b"abc")
    assert exc.data == b"abc"


def test_compile_error_location():
    exc = CompileError("bad thing", line=7)
    assert "line 7" in str(exc)
    assert CompileError("no line").line == 0


# -- S-EVM basics --------------------------------------------------------------------------

def test_reg_identity():
    assert is_reg(Reg(3))
    assert not is_reg(3)
    assert Reg(3) == 3  # ints for storage, distinct by type


def test_sinstr_reprs():
    compute = SInstr(kind=SKind.COMPUTE, op="ADD", dest=Reg(2),
                     args=(Reg(0), 5))
    guard = SInstr(kind=SKind.GUARD, op="GUARD", args=(Reg(2),),
                   guard_mode=GuardMode.TRUTH, expected=True)
    assert "ADD" in repr(compute)
    assert "GUARD" in repr(guard)
    assert "truth" in repr(guard)


def test_sinstr_reads_context():
    read = SInstr(kind=SKind.READ, op="TIMESTAMP", dest=Reg(0),
                  key=("timestamp",))
    assert read.reads_context()
    assert not SInstr(kind=SKind.COMPUTE, op="ADD").reads_context()


# -- speculation error path ----------------------------------------------------------------

def test_unsupported_trace_yields_no_ap():
    """CALL with a value transfer is outside the supported subset; the
    speculator records the error and the tx simply runs plain."""
    from repro.evm.assembler import assemble
    caller = f"""
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 5       ; value != 0
        PUSH {BOB}
        GAS
        CALL
        STOP
    """
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(0xCA, code=assemble(caller))
    world.create_account(BOB)
    tx = Transaction(sender=ALICE, to=0xCA, nonce=0)
    speculator = Speculator(world)
    path = speculator.speculate(
        tx, FutureContext(1, BlockHeader(1, 1, 0xB)))
    assert path is None
    assert speculator.get_ap(tx.hash) is None  # no usable AP recorded
    assert any("value transfer" in (r.error or "")
               for r in speculator.records)
    # The accelerator treats a missing AP as plain execution.
    receipt = TransactionAccelerator().execute(
        tx, BlockHeader(1, 1, 0xB), StateDB(world),
        speculator.get_ap(tx.hash))
    assert receipt.outcome == "no_ap"
    assert receipt.result.success


def test_describe_ap_empty():
    from repro.core.ap import AcceleratedProgram, describe_ap
    assert describe_ap(AcceleratedProgram(1)) == "<empty AP>"


def test_top_level_api_exports():
    import repro
    for name in repro.__all__:
        assert hasattr(repro, name), name
    assert repro.__version__
