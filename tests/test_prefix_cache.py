"""Prefix cache, StateDB forks, synthesis dedup, and cache coherence."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.chainsync import ChainManager
from repro.core.node import BaselineNode, ForerunnerNode
from repro.core.prefix_cache import PrefixCache, PrefixEntry
from repro.core.speculator import FutureContext, Speculator
from repro.state.diskio import WARM_COST
from repro.state.statedb import StateDB
from repro.state.world import WorldState

from tests.conftest import ALICE, BOB, FEED, ROUND
from tests.test_storage_chainsync import (
    fresh_world,
    genesis_block,
    make_block,
    submit_tx,
)

PF = pricefeed()
PRICE_SLOT = PF.slot_of("prices", ROUND)


def oracle_world():
    world = fresh_world()
    account = world.get_account(FEED)
    account.set_storage(PF.slot_of("activeRoundID"), ROUND)
    account.set_storage(PRICE_SLOT, 2000)
    account.set_storage(PF.slot_of("submissionCounts", ROUND), 4)
    return world


def header(ts=3990462):
    return BlockHeader(number=1, timestamp=ts, coinbase=0xBEEF)


# -- StateDB fork chains ------------------------------------------------------

class TestStateDBFork:
    def test_fork_inherits_values_and_warmth(self):
        parent = StateDB(oracle_world())
        parent.set_storage(FEED, PRICE_SLOT, 777)
        child = parent.fork()
        # The child sees the parent's uncommitted write...
        assert child.get_storage(FEED, PRICE_SLOT) == 777
        # ...and pays warm cost for it — exactly what a single
        # sequential StateDB would have charged after the first touch.
        stats = child.disk.stats
        assert stats.cold_account_loads == 0
        assert stats.cold_slot_loads == 0
        assert stats.cost_units == stats.warm_hits * WARM_COST

    def test_fork_freezes_parent(self):
        parent = StateDB(oracle_world())
        parent.fork()
        with pytest.raises(RuntimeError):
            parent.set_storage(FEED, PRICE_SLOT, 1)

    def test_fork_chain_isolation(self):
        parent = StateDB(oracle_world())
        child = parent.fork()
        child.set_storage(FEED, PRICE_SLOT, 888)
        grandchild = child.fork()
        assert grandchild.get_storage(FEED, PRICE_SLOT) == 888
        # Sibling forks of the same parent never see each other.
        sibling = parent.fork()
        assert sibling.get_storage(FEED, PRICE_SLOT) == 2000

    def test_forked_view_cannot_commit(self):
        parent = StateDB(oracle_world())
        child = parent.fork()
        with pytest.raises(RuntimeError):
            child.commit()


# -- PrefixCache mechanics ----------------------------------------------------

class TestPrefixCache:
    def test_lru_eviction(self):
        cache = PrefixCache(capacity=2)
        world = WorldState()
        for key in ("a", "b", "c"):
            cache.store(key, PrefixEntry(StateDB(world), 0, 0))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup("a") is None
        assert cache.lookup("c") is not None

    def test_disabled_cache_is_inert(self):
        cache = PrefixCache(enabled=False)
        cache.store("a", PrefixEntry(StateDB(WorldState()), 0, 0))
        assert len(cache) == 0
        assert cache.lookup("a") is None

    def test_invalidate_counts_once(self):
        cache = PrefixCache()
        cache.store("a", PrefixEntry(StateDB(WorldState()), 0, 0))
        assert cache.invalidate("test") == 1
        assert cache.invalidate("test") == 0
        assert cache.invalidations == 1


# -- shared-prefix reuse across contexts --------------------------------------

def submit(sender, nonce, price):
    return Transaction(sender=sender, to=FEED,
                       data=PF.calldata("submit", ROUND, price),
                       nonce=nonce)


class TestPrefixReuse:
    def test_shared_prefix_materialized_once(self):
        speculator = Speculator(oracle_world())
        target = submit(ALICE, 0, 1980)
        preds = (submit(BOB, 0, 2060),)
        speculator.speculate(target, FutureContext(1, header(), preds))
        speculator.speculate(target, FutureContext(2, header(), preds))
        cache = speculator.prefix_cache
        assert cache.pred_execs == 1
        assert cache.pred_execs_avoided == 1
        assert cache.hits == 1 and cache.misses == 1
        assert speculator.records[-1].preds_cached == 1
        assert speculator.records[-1].preds_executed == 0

    def test_cached_prefix_yields_identical_trace(self):
        """The trace built on a cached prefix must be byte-identical to
        the one a from-scratch speculator produces."""
        target = submit(ALICE, 0, 1980)
        preds = (submit(BOB, 0, 2060),)
        paths = {}
        for enabled in (True, False):
            speculator = Speculator(oracle_world(),
                                    enable_prefix_cache=enabled,
                                    enable_synth_dedup=False)
            speculator.speculate(target, FutureContext(1, header(), preds))
            paths[enabled] = speculator.speculate(
                target, FutureContext(2, header(), preds))
            last = speculator.records[-1]
            assert last.merged
        cached, uncached = paths[True], paths[False]
        assert cached.read_set == uncached.read_set
        assert len(cached.instrs) == len(uncached.instrs)
        assert cached.gas_used == uncached.gas_used

    def test_logical_cost_independent_of_cache(self):
        """Worker scheduling uses the logical cost, which must not
        change when the prefix is served from cache."""
        target = submit(ALICE, 0, 1980)
        preds = (submit(BOB, 0, 2060),)
        totals = {}
        for enabled in (True, False):
            speculator = Speculator(oracle_world(),
                                    enable_prefix_cache=enabled)
            speculator.speculate(target, FutureContext(1, header(), preds))
            speculator.speculate(target, FutureContext(2, header(), preds))
            totals[enabled] = speculator.total_logical_cost
            if enabled:
                paid = speculator.total_speculation_cost
                assert paid < speculator.total_logical_cost
        assert totals[True] == totals[False]


# -- synthesis dedup ----------------------------------------------------------

class TestSynthesisDedup:
    def test_identical_trace_deduped(self):
        speculator = Speculator(oracle_world())
        target = submit(ALICE, 0, 1980)
        first = speculator.speculate(target, FutureContext(1, header()))
        second = speculator.speculate(target, FutureContext(2, header()))
        assert speculator.dedup_hits == 1
        assert speculator.records[-1].deduped
        assert speculator.records[-1].merged
        # The clone is a fresh path object with its own identity.
        assert second.path_id != first.path_id
        assert second.context_id == 2
        # Dedup pays pre-execution + fingerprint, not full synthesis.
        assert speculator.records[-1].synthesis_cost < \
            speculator.records[0].synthesis_cost
        assert speculator.records[-1].logical_cost == \
            speculator.records[0].logical_cost
        assert speculator.dedup_cost_saved > 0

    def test_different_traces_not_deduped(self):
        speculator = Speculator(oracle_world())
        target = submit(ALICE, 0, 1980)
        speculator.speculate(target, FutureContext(1, header(3990462)))
        speculator.speculate(target, FutureContext(2, header(3990470)))
        assert speculator.dedup_hits == 0
        assert speculator.dedup_misses == 2

    def test_dedup_disabled_resynthesizes(self):
        speculator = Speculator(oracle_world(), enable_synth_dedup=False)
        target = submit(ALICE, 0, 1980)
        speculator.speculate(target, FutureContext(1, header()))
        speculator.speculate(target, FutureContext(2, header()))
        assert speculator.dedup_hits == 0
        assert not any(r.deduped for r in speculator.records)

    def test_drop_clears_fingerprints(self):
        speculator = Speculator(oracle_world())
        target = submit(ALICE, 0, 1980)
        speculator.speculate(target, FutureContext(1, header()))
        speculator.drop(target.hash)
        speculator.speculate(target, FutureContext(2, header()))
        # After the AP was dropped, the fingerprint index is gone too:
        # the new speculation synthesizes from scratch.
        assert speculator.dedup_hits == 0

    def test_speculate_many_counts_only_merged(self, monkeypatch):
        """speculate_many reports paths merge_path accepted, not paths
        synthesized."""
        monkeypatch.setattr("repro.core.speculator.merge_path",
                            lambda ap, path, metrics=None: False)
        speculator = Speculator(oracle_world())
        contexts = [FutureContext(i, header(3990462 + i))
                    for i in range(1, 4)]
        merged = speculator.speculate_many(submit(ALICE, 0, 1980),
                                           contexts)
        assert merged == 0
        assert all(not r.merged for r in speculator.records)


# -- dedup index lifecycle (bounded, detached, invalidated) -------------------

class TestDedupLifecycle:
    def test_clone_does_not_alias_cached_path(self):
        """Regression: the fingerprint index used to store the merged
        path object itself, so mutating a merged path's stats (or read
        set) silently corrupted every later dedup clone."""
        speculator = Speculator(oracle_world())
        target = submit(ALICE, 0, 1980)
        first = speculator.speculate(target, FutureContext(1, header()))
        second = speculator.speculate(target, FutureContext(2, header()))
        assert speculator.dedup_hits == 1
        trace_len = second.stats.trace_len
        # Corrupt both previously returned paths...
        first.stats.trace_len += 1000
        second.stats.trace_len += 1000
        first.read_set[("poison", ())] = 1
        # ...and the next clone must be untouched.
        third = speculator.speculate(target, FutureContext(3, header()))
        assert speculator.dedup_hits == 2
        assert third.stats.trace_len == trace_len
        assert ("poison", ()) not in third.read_set
        assert third.stats is not first.stats
        assert third.stats is not second.stats

    def test_dedup_index_bounded_per_tx(self):
        """Regression: the fingerprint map grew without bound.  Distinct
        traces for one transaction now evict LRU past the cap."""
        speculator = Speculator(oracle_world(), dedup_capacity_per_tx=2)
        target = submit(ALICE, 0, 1980)
        for i in range(4):
            # Different timestamps -> different traces -> new entries.
            speculator.speculate(
                target, FutureContext(i + 1, header(3990462 + 8 * i)))
        assert speculator.dedup_index_size() <= 2
        assert speculator.c_dedup_evictions.value == 2

    def test_discard_clears_fingerprints(self):
        speculator = Speculator(oracle_world())
        target = submit(ALICE, 0, 1980)
        speculator.speculate(target, FutureContext(1, header()))
        assert speculator.dedup_index_size() == 1
        speculator.discard(target.hash)
        assert speculator.dedup_index_size() == 0
        assert speculator.get_ap(target.hash) is None
        speculator.speculate(target, FutureContext(2, header()))
        assert speculator.dedup_hits == 0

    def test_reorg_clears_fingerprints(self):
        """Regression: a reorg invalidated prefixes but left the
        fingerprint index pointing at paths synthesized against the
        abandoned branch's state."""
        speculator = Speculator(oracle_world())
        target = submit(ALICE, 0, 1980)
        speculator.speculate(
            target, FutureContext(1, header(), (submit(BOB, 0, 2060),)))
        assert speculator.dedup_index_size() == 1
        assert len(speculator.prefix_cache) == 1
        speculator.on_reorg()
        assert speculator.dedup_index_size() == 0
        assert len(speculator.prefix_cache) == 0

    def test_node_reorg_reaches_speculator(self):
        node = ForerunnerNode(fresh_world())
        target = submit(ALICE, 0, 1980)
        node.speculator.speculate(target, FutureContext(1, header()))
        assert node.speculator.dedup_index_size() == 1
        node.on_reorg()
        assert node.speculator.dedup_index_size() == 0
        assert node.c_reorgs.value == 1

    def test_merge_failed_path_not_indexed(self, monkeypatch):
        """Only merged paths may be cloned: a rejected path lives in no
        AP, so resurrecting it via dedup would bypass merge entirely."""
        monkeypatch.setattr("repro.core.speculator.merge_path",
                            lambda ap, path, metrics=None: False)
        speculator = Speculator(oracle_world())
        target = submit(ALICE, 0, 1980)
        speculator.speculate(target, FutureContext(1, header()))
        assert speculator.dedup_index_size() == 0
        speculator.speculate(target, FutureContext(2, header()))
        assert speculator.dedup_hits == 0


# -- cache coherence across heads and reorgs ----------------------------------

class TestCacheCoherence:
    def test_new_head_invalidates_prefixes(self):
        node = ForerunnerNode(fresh_world())
        target = submit(ALICE, 0, 1980)
        preds = (submit(BOB, 0, 2060),)
        node.speculator.speculate(
            target, FutureContext(1, header(), preds))
        assert len(node.speculator.prefix_cache) == 1
        block = make_block(genesis_block(), [submit(ALICE, 0, 2000)])
        node.process_block(block)
        assert len(node.speculator.prefix_cache) == 0
        assert node.speculator.prefix_cache.invalidations == 1

    def test_reorg_invalidates_and_roots_match(self):
        """Speculate -> reorg -> cache dropped; accelerated execution
        on the winning branch still produces the baseline's roots."""
        node = ForerunnerNode(fresh_world())
        manager = ChainManager(node, genesis_block())
        genesis = manager.chain.genesis

        # Canonical head: Alice's first submission.
        alice0 = submit_tx(ALICE, 0, 2000)
        node.on_transaction(alice0, now=0.0)
        a1 = make_block(genesis, [alice0])
        manager.receive_block(a1, now=1.0)

        # Speculate Alice's next submission behind a Bob predecessor —
        # this materializes a prefix on the a1 head.
        bob0 = submit_tx(BOB, 0, 2100)
        target = submit_tx(ALICE, 1, 1980)
        node.on_transaction(bob0, now=1.1)
        node.on_transaction(target, now=1.2)
        spec_header = BlockHeader(
            number=2, timestamp=a1.header.timestamp + 13, coinbase=0xE0)
        path = node.speculator.speculate(
            target, FutureContext(1, spec_header, (bob0,)))
        assert path is not None
        assert len(node.speculator.prefix_cache) == 1
        version_before = node.world.version

        # Competing branch wins: the prefix state is now meaningless.
        b1 = make_block(genesis, [submit_tx(BOB, 0, 1500)], ts_offset=14)
        b2 = make_block(b1, [])
        assert manager.receive_block(b1, now=2.0) is None
        assert len(node.speculator.prefix_cache) == 1  # losing fork: keep
        assert manager.receive_block(b2, now=2.5) is not None
        assert manager.reorgs == 1
        assert len(node.speculator.prefix_cache) == 0
        assert node.speculator.prefix_cache.invalidations >= 1
        # The in-place restore bumped the version, so even a stale
        # entry that survived could never be keyed back in.
        assert node.world.version != version_before

        # Execute the speculated transactions on the winning branch —
        # through the accelerator, with the pre-reorg AP still merged.
        assert node.speculator.get_ap(target.hash) is not None
        bob1 = submit_tx(BOB, 1, 2100)
        b3 = make_block(b2, [alice0, bob1, target])
        report = manager.receive_block(b3, now=3.0)
        assert report is not None

        reference = BaselineNode(fresh_world())
        for block in (b1, b2, b3):
            reference.process_block(block)
        assert node.world.root() == reference.world.root()

    def test_speculation_repopulates_after_reorg(self):
        node = ForerunnerNode(fresh_world())
        manager = ChainManager(node, genesis_block())
        genesis = manager.chain.genesis
        a1 = make_block(genesis, [submit_tx(ALICE, 0, 2000)])
        manager.receive_block(a1, now=1.0)
        b1 = make_block(genesis, [submit_tx(BOB, 0, 1500)], ts_offset=14)
        b2 = make_block(b1, [])
        manager.receive_block(b1, now=2.0)
        manager.receive_block(b2, now=2.5)
        # Fresh speculation on the new branch fills the cache again,
        # keyed by the new world version.
        target = submit_tx(ALICE, 0, 1980)
        preds = (submit_tx(BOB, 1, 2100),)
        spec_header = BlockHeader(
            number=3, timestamp=b2.header.timestamp + 13, coinbase=0xE0)
        node.speculator.speculate(
            target, FutureContext(7, spec_header, preds))
        assert len(node.speculator.prefix_cache) == 1
