"""Scheduler subsystem tests (:mod:`repro.sched`).

Covers the deterministic lane model, the read/write-set conflict
graph + greedy schedule, admission control, and — the subsystem's
core contract — commit-order invariance: the parallel block executor
produces byte-identical committed roots, receipts and Table 2/3
baseline columns to serial execution at every lane count, on every
workload kind in :mod:`repro.workloads`.
"""

from __future__ import annotations

import pytest

from repro.faults.invariants import digest_bytes
from repro.obs.export import canonical_json
from repro.obs.registry import MetricsRegistry
from repro.p2p.latency import LatencyModel
from repro.sched.admission import (
    AdmissionController,
    HitLikelihoodEstimator,
)
from repro.sched.conflicts import (
    AccessSet,
    build_conflict_graph,
    conflicts,
    greedy_schedule,
)
from repro.sched.lanes import LaneSet, SchedConfig
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig


# ---------------------------------------------------------------------------
# lanes.py


class TestLaneSet:
    def test_dispatch_picks_least_loaded_lane(self):
        lanes = LaneSet(3)
        lanes.dispatch(10.0)   # lane 0 -> 10
        lanes.dispatch(4.0)    # lane 1 -> 4
        lanes.dispatch(4.0)    # lane 2 -> 4
        completion = lanes.dispatch(1.0)  # lane 1 wins the clock tie
        assert completion.lane_id == 1
        assert lanes.clocks == [10.0, 5.0, 4.0]

    def test_tie_breaks_by_lane_id(self):
        lanes = LaneSet(4)
        assert [lanes.dispatch(1.0).lane_id for _ in range(4)] == \
            [0, 1, 2, 3]

    def test_not_before_delays_start(self):
        lanes = LaneSet(2)
        completion = lanes.dispatch(5.0, not_before=100.0)
        assert completion.start == 100.0
        assert completion.finish == 105.0

    def test_merged_completions_order(self):
        lanes = LaneSet(2)
        lanes.dispatch(10.0)  # lane 0 finishes at 10
        lanes.dispatch(3.0)   # lane 1 finishes at 3
        lanes.dispatch(7.0)   # lane 1 again: finishes at 10 (tie)
        order = [(c.lane_id, c.finish)
                 for c in lanes.merged_completions()]
        # finish ascending, then lane id: lane 0@10 before lane 1@10.
        assert order == [(1, 3.0), (0, 10.0), (1, 10.0)]

    def test_makespan_and_utilization(self):
        lanes = LaneSet(2)
        lanes.dispatch(10.0)
        lanes.dispatch(5.0)
        assert lanes.makespan() == 10.0
        assert lanes.lane_utilization_permille() == [1000, 500]


# ---------------------------------------------------------------------------
# conflicts.py


def access(reads=(), writes=(), entangled=False):
    return AccessSet(reads=frozenset(reads), writes=frozenset(writes),
                     created=(), coinbase_delta=0, entangled=entangled)


class TestConflicts:
    def test_write_read_overlap_conflicts(self):
        a = access(writes={("bal", 1)})
        b = access(reads={("bal", 1)})
        assert conflicts(a, b)
        assert not conflicts(access(reads={("bal", 1)}),
                             access(reads={("bal", 1)}))

    def test_graph_edges_and_rate(self):
        sets = [access(writes={("slot", 9, 0)}),
                access(reads={("slot", 9, 0)}),
                access(reads={("bal", 7)})]
        graph = build_conflict_graph(sets)
        assert graph.edges == ((0, 1),)
        assert graph.possible_pairs == 3
        assert graph.conflict_rate == pytest.approx(1 / 3)

    def test_entangled_conflicts_with_everyone(self):
        sets = [access(reads={("bal", 1)}),
                access(entangled=True),
                access(reads={("bal", 2)})]
        graph = build_conflict_graph(sets)
        assert (0, 1) in graph.edges and (1, 2) in graph.edges

    def test_greedy_schedule_layers_conflict_chains(self):
        # 0 -> 1 -> 2 chained; 3 independent.
        sets = [access(writes={("slot", 9, 0)}),
                access(reads={("slot", 9, 0)}, writes={("slot", 9, 1)}),
                access(reads={("slot", 9, 1)}),
                access(reads={("bal", 7)})]
        schedule = greedy_schedule(build_conflict_graph(sets))
        assert schedule.depth == 3
        assert schedule.generation_of[0] == 0
        assert schedule.generation_of[1] == 1
        assert schedule.generation_of[2] == 2
        assert schedule.generation_of[3] == 0


# ---------------------------------------------------------------------------
# admission.py


class FakeTx:
    _seq = 0

    def __init__(self, gas_price=10**9, to=0xC0FFEE):
        FakeTx._seq += 1
        self.hash = FakeTx._seq
        self.gas_price = gas_price
        self.to = to
        self.sender = 0xA11CE


def controller(**overrides):
    config = SchedConfig(**overrides) if overrides else SchedConfig()
    return AdmissionController(config=config,
                               registry=MetricsRegistry())


class TestAdmission:
    def test_orders_by_score_then_sequence(self):
        ctrl = controller()
        cheap, rich = FakeTx(gas_price=10**9), FakeTx(gas_price=10**12)
        admitted = ctrl.admit([(cheap, [1]), (rich, [2])], head=1)
        assert [r.tx for r in admitted] == [rich, cheap]

    def test_queue_capacity_defers_overflow(self):
        ctrl = controller(queue_capacity=2)
        txs = [FakeTx() for _ in range(5)]
        admitted = ctrl.admit([(tx, [1]) for tx in txs], head=1)
        assert len(admitted) == 2
        assert ctrl.has_backlog()
        # The deferred requests come back on the next same-head cycle.
        readmitted = ctrl.admit([], head=1)
        assert len(readmitted) == 2

    def test_stale_head_deferrals_are_dropped(self):
        ctrl = controller(queue_capacity=1)
        ctrl.admit([(FakeTx(), [1]), (FakeTx(), [1])], head=1)
        assert ctrl.has_backlog()
        ctrl.admit([], head=2)  # new chain head: stale work is dropped
        assert not ctrl.has_backlog()
        assert ctrl.c_dropped.value >= 1

    def test_per_tx_context_cap(self):
        ctrl = controller()
        tx = FakeTx()
        admitted = ctrl.admit([(tx, list(range(10)))], head=1)
        assert len(admitted) == ctrl.max_contexts_per_head
        for request in admitted:
            ctrl.note_dispatched(request)
        # The budget for this (tx, head) is now spent: further
        # requests are capped outright.
        assert ctrl.admit([(tx, [99])], head=1) == []
        assert ctrl.c_capped.value == 1

    def test_likelihood_prior_then_ewma(self):
        estimator = HitLikelihoodEstimator()
        assert estimator.likelihood(0xC0FFEE) == 1.0  # neutral prior
        estimator.observe(0xC0FFEE, False)
        low = estimator.likelihood(0xC0FFEE)
        assert low < 1.0
        estimator.observe(0xC0FFEE, True)
        assert estimator.likelihood(0xC0FFEE) > low

    def test_prefetch_queue_is_bounded(self):
        ctrl = controller(prefetch_queue_capacity=2)
        ctrl.queue_prefetch([1], tx_sender=1, tx_to=0xA, score=5.0)
        ctrl.queue_prefetch([2], tx_sender=2, tx_to=0xB, score=1.0)
        ctrl.queue_prefetch([3], tx_sender=3, tx_to=0xC, score=3.0)
        drained = ctrl.drain_prefetches()
        # Lowest-score request dropped; FIFO order preserved.
        assert [r.score for r in drained] == [5.0, 3.0]
        assert ctrl.c_prefetch_dropped.value == 1


# ---------------------------------------------------------------------------
# executor.py — commit-order invariance over every workload kind

LANE_COUNTS = (1, 2, 4, 8)

#: One traffic profile per workload module in ``repro.workloads``
#: (all other kinds muted), plus the full mixed profile.
_SILENT = dict(token_rate=0.0, dex_rate=0.0, auction_rate=0.0,
               registry_rate=0.0, lending_rate=0.0, compute_rate=0.0,
               deploy_rate=0.0, eth_transfer_rate=0.0,
               oracle_feeds=0, oracle_reporters=0)

WORKLOADS = {
    "oracle": dict(_SILENT, oracle_feeds=2, oracle_reporters=4),
    "tokens": dict(_SILENT, token_rate=2.0),
    "dex": dict(_SILENT, dex_rate=1.5),
    "auctions": dict(_SILENT, auction_rate=1.5),
    "names": dict(_SILENT, registry_rate=1.5),
    "lending": dict(_SILENT, lending_rate=1.5),
    "compute": dict(_SILENT, compute_rate=0.8),
    "deployments": dict(_SILENT, deploy_rate=0.8),
    "eth": dict(_SILENT, eth_transfer_rate=2.0),
    "mixed": {},
}

#: Oracle reporters submit inside a per-round window that mostly falls
#: beyond the first few seconds; everything else lands plenty of
#: transactions in a short period.
_DURATIONS = {"oracle": 45.0}


@pytest.fixture(scope="module")
def workload_datasets():
    datasets = {}
    for name, overrides in WORKLOADS.items():
        traffic = TrafficConfig(duration=_DURATIONS.get(name, 8.0),
                                seed=13, **overrides)
        datasets[name] = record_dataset(DatasetConfig(
            name=f"sched-{name}", traffic=traffic,
            observers={"live": LatencyModel()}, seed=13))
    return datasets


def test_every_workload_commits_transactions(workload_datasets):
    """Guards the matrix against vacuity: each profile must actually
    commit transactions for the invariance assertions to bite."""
    for name, dataset in workload_datasets.items():
        assert dataset.tx_count > 0, f"{name} produced no transactions"


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_lane_count_invariance_per_workload(name, workload_datasets):
    """Lanes ∈ {1,2,4,8}: byte-identical roots/receipts/baseline
    columns on each workload kind."""
    dataset = workload_datasets[name]
    digests = set()
    for lanes in LANE_COUNTS:
        run = replay(dataset, "live", lanes=lanes)
        assert run.roots_matched == run.blocks_executed
        digests.add(digest_bytes(run))
    assert len(digests) == 1, f"{name}: lane count changed commitments"


def test_parallel_blocks_actually_ran(workload_datasets):
    """The invariance above must not pass vacuously: the mixed
    workload schedules real multi-tx blocks through the parallel
    pipeline and commits some forks cleanly."""
    run = replay(workload_datasets["mixed"], "live", lanes=4)
    executor = run.sched["executor"]
    assert executor["blocks_parallel"] > 0
    assert executor["clean_commits"] > 0
    assert executor["critical_path_units"] < executor["serial_cost_units"]


def test_two_runs_same_seed_byte_identity(workload_datasets):
    """Scheduler determinism: two same-seed replays agree byte-for-byte
    on commitments *and* on the full scheduler report payload."""
    first = replay(workload_datasets["mixed"], "live", lanes=4)
    second = replay(workload_datasets["mixed"], "live", lanes=4)
    assert digest_bytes(first) == digest_bytes(second)
    assert canonical_json(first.sched) == canonical_json(second.sched)
