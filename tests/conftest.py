"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import amm, auction, erc20, pricefeed, registry
from repro.state.statedb import StateDB
from repro.state.world import WorldState

ALICE = 0xA11CE
BOB = 0xB0B
FEED = 0xFEED
TOKEN = 0x70CE2
POOL = 0xF00
TOKEN1 = 0x70CE3
AUCTION_ADDR = 0xA0C
REGISTRY_ADDR = 0x4E6

ROUND = 3990300


@pytest.fixture
def world():
    """Fresh world with funded EOAs and all library contracts deployed."""
    w = WorldState()
    w.create_account(ALICE, balance=10**24)
    w.create_account(BOB, balance=10**24)
    w.create_account(FEED, code=pricefeed().code)
    w.create_account(TOKEN, code=erc20().code)
    w.create_account(TOKEN1, code=erc20().code)
    w.create_account(POOL, code=amm().code)
    w.create_account(AUCTION_ADDR, code=auction().code)
    w.create_account(REGISTRY_ADDR, code=registry().code)
    return w


@pytest.fixture
def state(world):
    return StateDB(world)


@pytest.fixture
def header():
    return BlockHeader(number=1, timestamp=3990462, coinbase=0xBEEF)


def make_tx(sender=ALICE, to=FEED, data=b"", nonce=0, value=0,
            gas_price=10**9, gas_limit=500_000):
    return Transaction(sender=sender, to=to, data=data, nonce=nonce,
                       value=value, gas_price=gas_price,
                       gas_limit=gas_limit)


@pytest.fixture
def oracle_world(world):
    """World with an active oracle round (the paper's FC1 state)."""
    account = world.get_account(FEED)
    pf = pricefeed()
    account.set_storage(pf.slot_of("activeRoundID"), ROUND)
    account.set_storage(pf.slot_of("prices", ROUND), 2000)
    account.set_storage(pf.slot_of("submissionCounts", ROUND), 4)
    return world
