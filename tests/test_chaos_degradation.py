"""Graceful-degradation sweeps (ISSUE satellite: fault-probability 0→1).

For every injection site and for uniform all-site plans the properties
under test are the paper's safety contract (§2, §7):

* **No escape** — a replay under any plan completes without raising.
* **Commitment equivalence** — committed state roots, receipts and the
  Table 2/3 baseline columns are byte-identical to the fault-free run.
* **Monotone degradation** — raising the fault probability can only
  lose acceleration, collapsing toward ~1.0x at probability 1.0; sites
  in :data:`LETHAL_SITES` reach exactly 1.0x there.
* **Determinism** — two same-seed faulted replays produce identical
  digests, metric snapshots and chaos reports.
"""

import pytest

from repro.faults.injector import LETHAL_SITES, SITES, FaultPlan
from repro.faults.invariants import (
    check_equivalence,
    digest_bytes,
    run_digest,
)
from repro.obs.export import canonical_json
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig


@pytest.fixture(scope="module")
def dataset():
    config = DatasetConfig(
        name="chaos-sweep",
        traffic=TrafficConfig(duration=20.0, seed=2021),
        observers={"live": LatencyModel()}, seed=2021)
    return record_dataset(config)


@pytest.fixture(scope="module")
def clean_run(dataset):
    return replay(dataset, "live")


def test_zero_probability_plan_changes_nothing(dataset, clean_run):
    plan = FaultPlan.uniform(seed=1, probability=0.0)
    report = check_equivalence(dataset, plan, clean_run=clean_run)
    assert report.ok, report.mismatches
    assert report.faults_fired == 0
    assert report.speedup_faulted == pytest.approx(report.speedup_clean)


@pytest.mark.parametrize("site", SITES)
def test_single_site_at_full_rate(site, dataset, clean_run):
    """p=1.0 at one site: no escape, commitments identical; lethal
    sites collapse the effective speedup to exactly baseline."""
    plan = FaultPlan.uniform(seed=1, probability=1.0, sites=(site,))
    report = check_equivalence(dataset, plan, clean_run=clean_run)
    assert report.ok, (site, report.mismatches)
    assert report.faults_fired > 0, f"{site} never exercised"
    if site in LETHAL_SITES:
        assert report.speedup_faulted == pytest.approx(1.0), site
    else:
        assert report.speedup_faulted >= 1.0


@pytest.mark.parametrize("probability", [0.05, 0.25, 0.6, 1.0])
def test_uniform_rate_never_escapes(probability, dataset, clean_run):
    plan = FaultPlan.uniform(seed=3, probability=probability)
    report = check_equivalence(dataset, plan, clean_run=clean_run)
    assert report.ok, (probability, report.mismatches)


def test_degradation_is_monotone_toward_baseline(dataset, clean_run):
    """Sweeping the uniform fault rate 0→1 only ever loses speedup
    (within a small jitter floor) and bottoms out at exactly 1.0x."""
    rates = [0.0, 0.1, 0.3, 0.6, 1.0]
    speedups = []
    for rate in rates:
        plan = FaultPlan.uniform(seed=3, probability=rate)
        report = check_equivalence(dataset, plan, clean_run=clean_run)
        assert report.ok, (rate, report.mismatches)
        speedups.append(report.speedup_faulted)
    assert speedups[0] == pytest.approx(report.speedup_clean)
    assert speedups[-1] == pytest.approx(1.0)
    # Seeded draws shuffle *which* txs fault, so allow a small jitter
    # floor while requiring the overall trend to be non-increasing.
    for earlier, later in zip(speedups, speedups[1:]):
        assert later <= earlier * 1.05, speedups


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_seeded_random_plans_preserve_commitments(seed, dataset,
                                                  clean_run):
    plan = FaultPlan.seeded_random(seed=seed)
    report = check_equivalence(dataset, plan, clean_run=clean_run)
    assert report.ok, (seed, report.mismatches)
    assert report.speedup_retained > 0.0


def test_same_seed_faulted_replays_are_byte_identical(dataset):
    plan = FaultPlan.seeded_random(seed=0)
    first = replay(dataset, "live", fault_plan=plan)
    second = replay(dataset, "live", fault_plan=plan)
    assert digest_bytes(first) == digest_bytes(second)
    assert canonical_json(first.metrics()) == \
        canonical_json(second.metrics())


def test_report_payload_is_deterministic(dataset, clean_run):
    plan = FaultPlan.seeded_random(seed=2)
    a = check_equivalence(dataset, plan, clean_run=clean_run)
    b = check_equivalence(dataset, plan, clean_run=clean_run)
    assert canonical_json(a.as_dict()) == canonical_json(b.as_dict())


def test_full_rate_run_reports_containment(dataset, clean_run):
    """With every pipeline site faulting at p=1.0 the guard visibly
    absorbs the chaos: nothing reaches the caller.  (``gossip.deliver``
    is excluded — dropping every message empties the pipeline, which
    degrades gracefully but leaves the guard nothing to contain.)"""
    sites = tuple(s for s in SITES if s != "gossip.deliver")
    plan = FaultPlan.uniform(seed=7, probability=1.0, sites=sites)
    report = check_equivalence(dataset, plan, clean_run=clean_run)
    assert report.ok, report.mismatches
    assert report.guard["contained"] > 0
    assert report.guard["contained_unexpected"] == 0
    assert report.speedup_faulted == pytest.approx(1.0)


def test_digest_ignores_performance_fields(dataset, clean_run):
    """The digest anchors commitments only: a faulted run with a
    different speedup still digests identically."""
    plan = FaultPlan.uniform(seed=5, probability=0.5)
    faulted = replay(dataset, "live", fault_plan=plan)
    assert run_digest(faulted) == run_digest(clean_run)
