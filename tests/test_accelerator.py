"""TransactionAccelerator outcome and envelope tests."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.accelerator import (
    OUTCOME_NO_AP,
    OUTCOME_SATISFIED,
    OUTCOME_VIOLATED,
    TransactionAccelerator,
    context_matches,
)
from repro.core.speculator import FutureContext, Speculator
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState

from tests.conftest import ALICE, FEED, ROUND

PF = pricefeed()


def fresh_world(active_round=ROUND, price=2000, count=4):
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(FEED, code=PF.code)
    account = world.get_account(FEED)
    account.set_storage(PF.slot_of("activeRoundID"), active_round)
    if active_round == ROUND:
        account.set_storage(PF.slot_of("prices", ROUND), price)
        account.set_storage(PF.slot_of("submissionCounts", ROUND), count)
    return world


def tx_e(nonce=0):
    return Transaction(sender=ALICE, to=FEED,
                       data=PF.calldata("submit", ROUND, 1980),
                       nonce=nonce)


def make_ap(ts=3990462):
    world = fresh_world()
    speculator = Speculator(world)
    speculator.speculate(
        tx_e(), FutureContext(1, BlockHeader(1, ts, 0xBEEF)))
    return speculator.get_ap(tx_e().hash)


def test_no_ap_falls_through_to_plain():
    accelerator = TransactionAccelerator()
    world = fresh_world()
    receipt = accelerator.execute(
        tx_e(), BlockHeader(1, 3990462, 0xBEEF), StateDB(world), None)
    assert receipt.outcome == OUTCOME_NO_AP
    assert receipt.result.success
    assert not receipt.used_ap


def test_satisfied_outcome_and_perfect_flag():
    accelerator = TransactionAccelerator()
    ap = make_ap()
    receipt = accelerator.execute(
        tx_e(), BlockHeader(1, 3990462, 0xBEEF),
        StateDB(fresh_world()), ap)
    assert receipt.outcome == OUTCOME_SATISFIED
    assert receipt.used_ap
    assert receipt.perfect_context_ids == (1,)


def test_imperfect_satisfied():
    accelerator = TransactionAccelerator()
    ap = make_ap()
    receipt = accelerator.execute(
        tx_e(), BlockHeader(1, 3990500, 0xBEEF),
        StateDB(fresh_world(price=1500, count=2)), ap)
    assert receipt.outcome == OUTCOME_SATISFIED
    assert receipt.perfect_context_ids == ()


def test_violation_falls_back_with_correct_result():
    accelerator = TransactionAccelerator()
    ap = make_ap()
    world = fresh_world()
    receipt = accelerator.execute(
        tx_e(), BlockHeader(1, ROUND + 900, 0xBEEF), StateDB(world), ap)
    assert receipt.outcome == OUTCOME_VIOLATED
    assert not receipt.result.success  # stale round reverts


def test_violation_cost_includes_fallback_work():
    accelerator = TransactionAccelerator()
    ap = make_ap()
    plain_world = fresh_world()
    plain = accelerator.execute_plain(
        tx_e(), BlockHeader(1, ROUND + 900, 0xBEEF), StateDB(plain_world))
    world = fresh_world()
    receipt = accelerator.execute(
        tx_e(), BlockHeader(1, ROUND + 900, 0xBEEF), StateDB(world), ap)
    assert receipt.tally.cpu_units >= plain.tally.cpu_units


def test_bad_nonce_short_circuits():
    accelerator = TransactionAccelerator()
    ap = make_ap()
    world = fresh_world()
    receipt = accelerator.execute(
        tx_e(nonce=7), BlockHeader(1, 3990462, 0xBEEF),
        StateDB(world), ap)
    assert not receipt.result.success
    assert receipt.result.error == "bad nonce"
    assert receipt.result.gas_used == 0


def test_envelope_matches_evm_exactly():
    """Balances (fee + refund + coinbase) after AP execution must equal
    a plain execution's."""
    accelerator = TransactionAccelerator()
    ap = make_ap()
    header = BlockHeader(1, 3990470, 0xBEEF)

    evm_world = fresh_world()
    state = StateDB(evm_world)
    EVM(state, header, tx_e()).execute_transaction()
    state.commit()

    ap_world = fresh_world()
    state2 = StateDB(ap_world)
    accelerator.execute(tx_e(), header, state2, ap)
    state2.commit()

    assert evm_world.get_account(ALICE).balance == \
        ap_world.get_account(ALICE).balance
    assert evm_world.get_account(0xBEEF).balance == \
        ap_world.get_account(0xBEEF).balance
    assert evm_world.root() == ap_world.root()


def test_context_matches_checks_all_kinds():
    world = fresh_world()
    state = StateDB(world)
    header = BlockHeader(1, 3990462, 0xBEEF)
    read_set = {
        ("storage", (FEED, PF.slot_of("activeRoundID"))): ROUND,
        ("header", ("timestamp",)): 3990462,
        ("balance", (ALICE,)): 10**24,
    }
    assert context_matches(read_set, state, header, lambda n: 0)
    read_set[("header", ("timestamp",))] = 1
    assert not context_matches(read_set, state, header, lambda n: 0)


def test_cost_satisfied_below_plain():
    accelerator = TransactionAccelerator()
    ap = make_ap()
    header = BlockHeader(1, 3990462, 0xBEEF)
    plain = accelerator.execute_plain(
        tx_e(), header, StateDB(fresh_world()))
    fast = accelerator.execute(tx_e(), header, StateDB(fresh_world()), ap)
    assert fast.tally.total < plain.tally.total
