"""EVM operand stack tests."""

import pytest

from repro.constants import STACK_LIMIT
from repro.errors import StackOverflow, StackUnderflow
from repro.evm.stack import Stack


def test_push_pop_lifo():
    stack = Stack()
    stack.push(1)
    stack.push(2)
    assert stack.pop() == 2
    assert stack.pop() == 1


def test_pop_empty_raises():
    with pytest.raises(StackUnderflow):
        Stack().pop()


def test_overflow():
    stack = Stack()
    for i in range(STACK_LIMIT):
        stack.push(i)
    with pytest.raises(StackOverflow):
        stack.push(0)


def test_pop_n_order():
    stack = Stack()
    for value in (1, 2, 3):
        stack.push(value)
    assert stack.pop_n(2) == [3, 2]
    assert len(stack) == 1


def test_pop_n_underflow():
    stack = Stack()
    stack.push(1)
    with pytest.raises(StackUnderflow):
        stack.pop_n(2)


def test_peek():
    stack = Stack()
    stack.push(10)
    stack.push(20)
    assert stack.peek() == 20
    assert stack.peek(1) == 10
    assert len(stack) == 2


def test_peek_underflow():
    with pytest.raises(StackUnderflow):
        Stack().peek()


def test_dup():
    stack = Stack()
    stack.push(7)
    stack.push(8)
    stack.dup(2)
    assert stack.pop() == 7
    assert stack.pop() == 8


def test_dup_underflow():
    stack = Stack()
    with pytest.raises(StackUnderflow):
        stack.dup(1)


def test_swap():
    stack = Stack()
    for value in (1, 2, 3):
        stack.push(value)
    stack.swap(2)
    assert stack.items == [3, 2, 1]


def test_swap_underflow():
    stack = Stack()
    stack.push(1)
    with pytest.raises(StackUnderflow):
        stack.swap(1)
