"""Trace -> S-EVM translation tests."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import erc20, pricefeed, registry
from repro.core.sevm import GuardMode, SKind, is_reg
from repro.core.trace import trace_transaction
from repro.core.translate import translate_trace
from repro.state.statedb import StateDB

from tests.conftest import ALICE, BOB, FEED, REGISTRY_ADDR, ROUND, TOKEN


def trace_and_translate(world, sender, to, data, timestamp=3990462,
                        nonce=0):
    state = StateDB(world)
    tx = Transaction(sender=sender, to=to, data=data, nonce=nonce)
    header = BlockHeader(number=1, timestamp=timestamp, coinbase=0xBEEF)
    trace = trace_transaction(state, header, tx)
    return trace, translate_trace(trace)


def test_stack_ops_eliminated(oracle_world):
    pf = pricefeed()
    trace, result = trace_and_translate(
        oracle_world, ALICE, FEED, pf.calldata("submit", ROUND, 1980))
    assert result.stats.eliminated_stack > 0
    assert not any(i.op in ("PUSH1", "DUP1", "SWAP1", "POP")
                   for i in result.instrs)


def test_control_flow_becomes_guards(oracle_world):
    pf = pricefeed()
    _, result = trace_and_translate(
        oracle_world, ALICE, FEED, pf.calldata("submit", ROUND, 1980))
    guards = [i for i in result.instrs if i.kind is SKind.GUARD]
    assert guards, "expected control guards"
    assert all(g.guard_mode in (GuardMode.EQ, GuardMode.TRUTH,
                                GuardMode.NEQ) for g in guards)
    assert result.stats.eliminated_control > 0


def test_memory_fully_eliminated(oracle_world):
    pf = pricefeed()
    _, result = trace_and_translate(
        oracle_world, ALICE, FEED, pf.calldata("submit", ROUND, 1980))
    assert not any(i.op in ("MLOAD", "MSTORE") for i in result.instrs)
    assert result.stats.eliminated_mem > 0


def test_reads_and_writes_preserved(oracle_world):
    pf = pricefeed()
    _, result = trace_and_translate(
        oracle_world, ALICE, FEED, pf.calldata("submit", ROUND, 1980))
    reads = [i for i in result.instrs if i.kind is SKind.READ]
    writes = [i for i in result.instrs if i.kind is SKind.WRITE]
    read_ops = {i.op for i in reads}
    assert "TIMESTAMP" in read_ops and "SLOAD" in read_ops
    assert len(writes) == 2  # counts + prices SSTOREs


def test_concrete_values_recorded(oracle_world):
    pf = pricefeed()
    _, result = trace_and_translate(
        oracle_world, ALICE, FEED, pf.calldata("submit", ROUND, 1980))
    for instr in result.instrs:
        if instr.dest is not None:
            assert instr.dest in result.concrete


def test_reverting_path_has_no_writes(oracle_world):
    pf = pricefeed()
    trace, result = trace_and_translate(
        oracle_world, ALICE, FEED, pf.calldata("submit", ROUND, 1980),
        timestamp=ROUND + 600)  # stale round -> revert
    assert not trace.result.success
    assert not result.success
    assert not any(i.kind is SKind.WRITE for i in result.instrs)
    # Constraint checking still present.
    assert any(i.kind is SKind.GUARD for i in result.instrs)


def test_cross_contract_call_inlined(world):
    """transferFrom through the AMM would exercise CALL; use registry's
    registerPaid which extcalls the token."""
    reg = registry()
    token = erc20()
    account = world.get_account(REGISTRY_ADDR)
    account.set_storage(reg.slot_of("feeToken"), TOKEN)
    account.set_storage(reg.slot_of("feeSink"), 0x511C)
    world.get_account(TOKEN).set_storage(
        token.slot_of("balanceOf", REGISTRY_ADDR), 10)
    trace, result = trace_and_translate(
        world, ALICE, REGISTRY_ADDR, reg.calldata("registerPaid", 5))
    assert trace.result.success
    # Writes to BOTH contracts appear in one flat path.
    write_addresses = {i.key[0] for i in result.instrs
                       if i.kind is SKind.WRITE}
    assert TOKEN in write_addresses
    assert REGISTRY_ADDR in write_addresses


def test_loop_unrolled(world):
    reg = registry()
    _, result_2 = trace_and_translate(
        world, ALICE, REGISTRY_ADDR, reg.calldata("registerMany", 10, 2))
    _, result_6 = trace_and_translate(
        world, BOB, REGISTRY_ADDR, reg.calldata("registerMany", 50, 6))
    # More iterations -> proportionally more instructions (unrolling).
    assert len(result_6.instrs) > len(result_2.instrs)


def test_return_data_layout(world):
    token = erc20()
    world.get_account(TOKEN).set_storage(
        token.slot_of("balanceOf", ALICE), 100)
    _, result = trace_and_translate(
        world, ALICE, TOKEN, token.calldata("transfer", BOB, 10))
    # transfer returns bool true -> constant piece.
    assert result.return_size == 32


def test_gas_recorded(oracle_world):
    pf = pricefeed()
    trace, result = trace_and_translate(
        oracle_world, ALICE, FEED, pf.calldata("submit", ROUND, 1980))
    assert result.gas_used == trace.result.gas_used > 21_000


def test_stats_consistency(oracle_world):
    pf = pricefeed()
    _, result = trace_and_translate(
        oracle_world, ALICE, FEED, pf.calldata("submit", ROUND, 1980))
    stats = result.stats
    # The translated length equals what the bookkeeping predicts.
    assert stats.sevm_unoptimized_len() == len(result.instrs)
