"""Dataset persistence and reorg handling tests."""

import pytest

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.chainsync import ChainManager
from repro.core.node import BaselineNode, ForerunnerNode
from repro.errors import ChainError
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.sim.storage import load_dataset, save_dataset
from repro.state.world import WorldState
from repro.workloads.mixed import TrafficConfig

from tests.conftest import ALICE, BOB, FEED, ROUND

PF = pricefeed()


# -- dataset save/load -------------------------------------------------------

@pytest.fixture(scope="module")
def small_dataset():
    config = DatasetConfig(
        name="S1", traffic=TrafficConfig(duration=60.0, seed=55),
        observers={"live": LatencyModel()}, seed=55)
    return record_dataset(config)


def test_dataset_roundtrip_structure(small_dataset, tmp_path):
    path = tmp_path / "dataset.json"
    save_dataset(small_dataset, str(path))
    loaded = load_dataset(str(path))
    assert loaded.name == small_dataset.name
    assert loaded.tx_count == small_dataset.tx_count
    assert loaded.block_count == small_dataset.block_count
    assert loaded.genesis_world.root() == \
        small_dataset.genesis_world.root()
    # Transaction hashes (content identity) survive the round trip.
    original = [tx.hash for _, b in small_dataset.blocks
                for tx in b.transactions]
    reloaded = [tx.hash for _, b in loaded.blocks
                for tx in b.transactions]
    assert original == reloaded


def test_dataset_roundtrip_replays_identically(small_dataset, tmp_path):
    path = tmp_path / "dataset.json"
    save_dataset(small_dataset, str(path))
    loaded = load_dataset(str(path))
    run_a = replay(small_dataset, "live")
    run_b = replay(loaded, "live")
    assert run_b.roots_matched == run_b.blocks_executed
    assert len(run_a.records) == len(run_b.records)
    assert sum(r.forerunner_cost for r in run_a.records) == \
        sum(r.forerunner_cost for r in run_b.records)


def test_dataset_version_check(small_dataset, tmp_path):
    import json
    path = tmp_path / "dataset.json"
    save_dataset(small_dataset, str(path))
    payload = json.loads(path.read_text())
    payload["version"] = 99
    path.write_text(json.dumps(payload))
    with pytest.raises(ValueError):
        load_dataset(str(path))


# -- reorg handling -----------------------------------------------------------

def fresh_world():
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=10**24)
    world.create_account(FEED, code=PF.code)
    return world


def submit_tx(sender, nonce, price):
    return Transaction(sender=sender, to=FEED,
                       data=PF.calldata("submit", ROUND, price),
                       nonce=nonce)


def make_block(parent, txs, ts_offset=13, coinbase=0xE0):
    header = BlockHeader(
        number=parent.number + 1,
        timestamp=parent.header.timestamp + ts_offset,
        coinbase=coinbase,
        parent_hash=parent.hash)
    return Block(header=header, transactions=txs)


def genesis_block():
    return Block(header=BlockHeader(number=0, timestamp=ROUND + 10,
                                    coinbase=0))


def test_linear_growth_no_reorg():
    node = BaselineNode(fresh_world())
    manager = ChainManager(node, genesis_block())
    b1 = make_block(manager.head, [submit_tx(ALICE, 0, 2000)])
    b2 = make_block(b1, [submit_tx(BOB, 0, 2010)])
    assert manager.receive_block(b1) is not None
    assert manager.receive_block(b2) is not None
    assert manager.reorgs == 0
    assert node.world.get_account(FEED).get_storage(
        PF.slot_of("submissionCounts", ROUND)) == 2


def test_losing_fork_not_executed():
    node = BaselineNode(fresh_world())
    manager = ChainManager(node, genesis_block())
    b1 = make_block(manager.head, [submit_tx(ALICE, 0, 2000)])
    rival = make_block(manager.chain.genesis,
                       [submit_tx(BOB, 0, 1000)], ts_offset=14)
    manager.receive_block(b1)
    assert manager.receive_block(rival) is None  # same height, loses
    assert node.world.get_account(FEED).get_storage(
        PF.slot_of("prices", ROUND)) == 2000  # Alice's, not Bob's


def test_reorg_switches_branch_state():
    node = BaselineNode(fresh_world())
    manager = ChainManager(node, genesis_block())
    genesis = manager.chain.genesis
    # Canonical: one block with Alice's 2000 submission.
    a1 = make_block(genesis, [submit_tx(ALICE, 0, 2000)])
    manager.receive_block(a1)
    # Competing branch: two blocks, Bob's 1500 then Alice's 1700.
    b1 = make_block(genesis, [submit_tx(BOB, 0, 1500)], ts_offset=14)
    b2 = make_block(b1, [submit_tx(ALICE, 0, 1700)])
    assert manager.receive_block(b1) is None   # fork, shorter
    assert manager.receive_block(b2) is not None  # now longer: reorg
    assert manager.reorgs == 1
    assert manager.blocks_reexecuted == 2
    feed = node.world.get_account(FEED)
    # The fork branch's state won: avg(1500, 1700) = 1600, count 2.
    assert feed.get_storage(PF.slot_of("prices", ROUND)) == 1600
    assert feed.get_storage(PF.slot_of("submissionCounts", ROUND)) == 2


def test_reorg_equals_straight_execution():
    """Post-reorg state must equal executing the winning branch from
    scratch on a fresh node."""
    node = BaselineNode(fresh_world())
    manager = ChainManager(node, genesis_block())
    genesis = manager.chain.genesis
    a1 = make_block(genesis, [submit_tx(ALICE, 0, 2000)])
    manager.receive_block(a1)
    b1 = make_block(genesis, [submit_tx(BOB, 0, 1500)], ts_offset=14)
    b2 = make_block(b1, [submit_tx(ALICE, 0, 1700)])
    manager.receive_block(b1)
    manager.receive_block(b2)

    reference = BaselineNode(fresh_world())
    reference.process_block(b1)
    reference.process_block(b2)
    assert node.world.root() == reference.world.root()


def test_forerunner_reorg_requeues_pool():
    node = ForerunnerNode(fresh_world())
    manager = ChainManager(node, genesis_block())
    genesis = manager.chain.genesis
    alice_tx = submit_tx(ALICE, 0, 2000)
    node.on_transaction(alice_tx, now=0.0)
    a1 = make_block(genesis, [alice_tx])
    manager.receive_block(a1, now=1.0)
    assert len(node.pool) == 0
    # The fork branch does NOT include Alice's tx.
    b1 = make_block(genesis, [submit_tx(BOB, 0, 1500)], ts_offset=14)
    b2 = make_block(b1, [])
    manager.receive_block(b1, now=2.0)
    manager.receive_block(b2, now=2.5)
    # Alice's abandoned transaction is pending again.
    assert alice_tx.hash in node.pool
    # And the world reflects only Bob's submission.
    assert node.world.get_account(FEED).get_storage(
        PF.slot_of("prices", ROUND)) == 1500


def test_reorg_beyond_snapshot_depth_rejected():
    node = BaselineNode(fresh_world())
    manager = ChainManager(node, genesis_block(), snapshot_depth=2)
    genesis = manager.chain.genesis
    parent = genesis
    for i in range(4):
        block = make_block(parent, [])
        manager.receive_block(block)
        parent = block
    # A fork from genesis is now beyond the retained snapshots.
    rival_parent = genesis
    rivals = []
    for i in range(5):
        rival = make_block(rival_parent, [], ts_offset=15 + i)
        rivals.append(rival)
        rival_parent = rival
    for rival in rivals[:-1]:
        manager.receive_block(rival)
    with pytest.raises(ChainError):
        manager.receive_block(rivals[-1])
