"""Wire-plane integration: the tentpole's acceptance criteria.

* **Clean equivalence** — with the wire plane on (every inter-replica
  interaction framed, sequenced, and flushed through the network
  simulator) but no faults, fleet commitments and every joined-record
  column are byte-identical to the in-process fleet at shards
  1/2/4/8 — which PR 9 proved byte-identical to the single node.
* **Chaos containment** — ``net.drop`` / ``net.duplicate`` /
  ``net.reorder`` / ``net.delay`` / ``net.partition`` at 1%, 5% and
  100% (seeds 0-2) leave chain commitments (roots + receipts)
  byte-identical to the clean wire run, and two same-seed faulted runs
  are byte-identical to each other down to every speculation-quality
  column.  Faults may degrade speculation accuracy (a dropped AP
  snapshot means an older prediction context) — that is the paper's
  contract: speculation quality is best-effort, commitments are not.
* **Partition safety** — isolating the coordinator expires its lease,
  a quorum-side replica is promoted through a voted election, the
  minority assembles no quorum, and the heal replays parked traffic to
  byte-identical state; the lease oracle re-verifies at most one
  holder per term over the whole trace.
"""

from __future__ import annotations

import dataclasses
import hashlib

import pytest

from repro.fleet import (
    NET_SITES,
    SITE_NET_PARTITION,
    FleetConfig,
    WireConfig,
    fleet_replay,
    net_fault_plan,
)
from repro.obs.export import canonical_json
from repro.p2p.latency import LatencyModel
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

SHARD_COUNTS = (1, 2, 4, 8)
LOSS_SITES = tuple(site for site in NET_SITES
                   if site != SITE_NET_PARTITION)


@pytest.fixture(scope="module")
def dataset():
    return record_dataset(DatasetConfig(
        name="wire-fleet",
        traffic=TrafficConfig(duration=8.0, seed=13),
        observers={"live": LatencyModel()},
        seed=13))


@pytest.fixture(scope="module")
def clean_wire_run(dataset):
    return fleet_replay(dataset, config=FleetConfig(
        shards=4, wire=WireConfig()))


def commitment_digest(run) -> str:
    """SHA-256 over merged roots + receipt cores + every joined-record
    column (the same anchor ``tests/test_fleet_equivalence.py`` uses)."""
    payload = {
        "blocks": [
            {"number": report.block_number,
             "root": f"{report.state_root:#x}",
             "receipts": [(f"{r.tx_hash:#x}", r.gas_used, r.success)
                          for r in report.records]}
            for report in run.supervisor.reports],
        "records": [canonical_json(dataclasses.asdict(record))
                    for record in run.records],
    }
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


def chain_digest(run) -> str:
    """SHA-256 over chain commitments only (roots + receipt cores) —
    the containment anchor.  Network faults may legitimately shift
    speculation-quality columns (an AP snapshot delayed past a block
    boundary yields an older prediction context); they must never move
    what the chain committed."""
    payload = [
        {"number": report.block_number,
         "root": f"{report.state_root:#x}",
         "receipts": [(f"{r.tx_hash:#x}", r.gas_used, r.success)
                      for r in report.records]}
        for report in run.supervisor.reports]
    return hashlib.sha256(
        canonical_json(payload).encode("utf-8")).hexdigest()


# -- clean equivalence ----------------------------------------------------


@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_wire_clean_network_byte_identical(dataset, shards):
    """Framing + sequencing + flush barriers on a clean network change
    nothing: wire-on == wire-off (== single node, by PR 9's proof) at
    every shard count, down to every Table 2/3 column."""
    off = fleet_replay(dataset, config=FleetConfig(shards=shards))
    on = fleet_replay(dataset, config=FleetConfig(
        shards=shards, wire=WireConfig()))
    assert commitment_digest(on) == commitment_digest(off)
    assert on.speculation_jobs == off.speculation_jobs
    # Every block's merged root also matched the baseline node.
    assert on.roots_matched == on.blocks_executed


def test_wire_actually_carries_the_traffic(clean_wire_run):
    """Anti-vacuity: the clean run really crossed the wire — framed
    sends, deliveries, acks, heartbeats — and the bootstrap lease held
    (admission was never halted on a clean network)."""
    supervisor = clean_wire_run.supervisor
    wire = supervisor.wire.summary()
    assert wire["sent"] > 0
    assert wire["delivered"] > 0
    assert wire["acks"] > 0
    assert supervisor.wire.c_heartbeats.value > 0
    assert wire["retries"] == 0
    assert supervisor.c_admission_halted.value == 0
    assert supervisor.lease.current is not None
    supervisor.lease.assert_single_holder_per_term()


# -- chaos containment ----------------------------------------------------


@pytest.mark.parametrize("site", NET_SITES)
def test_net_site_containment_at_full_rate(dataset, clean_wire_run,
                                           site):
    """Every ``net.*`` site at p=1.0: the fault fires constantly and
    chain commitments stay byte-identical to the clean wire run."""
    plan = net_fault_plan(seed=0, probability=1.0, sites=(site,))
    run = fleet_replay(dataset, config=FleetConfig(
        shards=4, wire=WireConfig(), fault_plan=plan))
    assert run.supervisor.injector.fired(site) > 0
    assert chain_digest(run) == chain_digest(clean_wire_run)
    run.supervisor.lease.assert_single_holder_per_term()


@pytest.mark.parametrize("seed", (0, 1, 2))
@pytest.mark.parametrize("probability", (0.01, 0.05))
def test_loss_rates_converge_and_are_deterministic(dataset,
                                                   clean_wire_run,
                                                   probability, seed):
    """Drop+duplicate+reorder+delay together at 1% and 5% (seeds 0-2):
    chain commitments byte-identical to clean, and two same-seed runs
    byte-identical to each other down to every record column."""
    plan = net_fault_plan(seed=seed, probability=probability,
                          sites=LOSS_SITES)
    config = FleetConfig(shards=4, wire=WireConfig(), fault_plan=plan)
    first = fleet_replay(dataset, config=config)
    again = fleet_replay(dataset, config=config)
    fired = sum(first.supervisor.injector.fired(site)
                for site in LOSS_SITES)
    assert fired > 0
    assert chain_digest(first) == chain_digest(clean_wire_run)
    assert commitment_digest(first) == commitment_digest(again)


# -- partition / lease election -------------------------------------------


def test_partition_elects_quorum_side_and_heals(dataset,
                                                clean_wire_run):
    """Repeated coordinator isolation under chaos: leases lapse,
    quorum-side replicas win voted elections (promotions), minority
    campaigns fail, heals replay parked traffic — and the committed
    chain never moves."""
    plan = net_fault_plan(seed=1, probability=1.0,
                          sites=(SITE_NET_PARTITION,))
    run = fleet_replay(dataset, config=FleetConfig(
        shards=4, wire=WireConfig(), fault_plan=plan))
    supervisor = run.supervisor
    assert supervisor.wire.sim.partitions > 0
    assert supervisor.wire.sim.heals > 0
    assert supervisor.c_promotions.value > 0
    # More elections than grants: the doomed minority campaigns.
    assert supervisor.lease.elections > len(supervisor.lease.history)
    assert chain_digest(run) == chain_digest(clean_wire_run)
    supervisor.lease.assert_single_holder_per_term()


def test_partitioned_coordinator_halts_and_minority_has_no_quorum(
        dataset):
    """Direct drive of the ISSUE's partition scenario: isolate the
    coordinator, let its lease lapse — admission halts; the minority
    campaign assembles no quorum while the majority promotes; the heal
    re-joins the replica through the failure detector."""
    from repro.fleet import FleetSupervisor

    supervisor = FleetSupervisor(dataset.genesis_world,
                                 dataset.genesis_block,
                                 FleetConfig(shards=4,
                                             wire=WireConfig()))
    old = supervisor.coordinator_id
    supervisor.wire.partition({old}, now=0.0, seconds=100.0)
    # Lease (granted at t=0, 6s) has lapsed by t=7; no tick has run an
    # election yet, so admission is gated shut.
    assert supervisor.run_speculation(7.0) == 0
    assert supervisor.c_admission_halted.value == 1
    # The tick pumps heartbeats (the coordinator's parks at the cut),
    # detects its silence, and elects a quorum-side successor.
    supervisor.tick(7.0)
    assert supervisor.coordinator_id != old
    assert supervisor.c_promotions.value == 1
    assert supervisor.c_detector_leaves.value == 1
    assert old not in supervisor.shardmap
    # The minority candidate opened a term but won nothing: strictly
    # more elections than granted leases.
    lease = supervisor.lease
    assert lease.elections > len(lease.history)
    assert lease.current.holder == supervisor.coordinator_id
    # Admission flows again under the new lease.
    assert supervisor.lease.valid(supervisor.coordinator_id, 7.5)
    # Heal: the ex-coordinator's next heartbeat re-joins the ring.
    supervisor.wire.heal(8.0)
    supervisor.tick(8.0)
    assert old in supervisor.shardmap
    assert supervisor.c_detector_joins.value == 1
    lease.assert_single_holder_per_term()
    supervisor.close()


def test_crash_membership_flows_through_detector(dataset):
    """With the wire on, a crash changes no membership directly: the
    ring leave waits for observed heartbeat silence, and the restart
    re-joins via a fresh-incarnation heartbeat."""
    from repro.fleet import FleetSupervisor

    supervisor = FleetSupervisor(
        dataset.genesis_world, dataset.genesis_block,
        FleetConfig(shards=4, wire=WireConfig(), restart_delay=10.0))
    supervisor.tick(2.0)  # heartbeats prime the detector
    victim = 2
    generation = supervisor.shardmap.generation
    assert supervisor.crash(victim, 2.5)
    # Still a ring member: no heartbeat silence observed yet.
    assert victim in supervisor.shardmap
    assert supervisor.shardmap.generation == generation
    supervisor.tick(4.0)  # silence 2s < suspect_after
    assert victim in supervisor.shardmap
    supervisor.tick(8.0)  # silence 6s >= 5s: detector drives the leave
    assert victim not in supervisor.shardmap
    assert supervisor.c_detector_leaves.value == 1
    supervisor.tick(13.0)  # restart due at 12.5; fresh incarnation
    assert supervisor.is_up(victim)
    assert victim in supervisor.shardmap
    assert supervisor.c_detector_joins.value == 1
    supervisor.close()


# -- warmth-weighted read placement ---------------------------------------


def test_warmth_weighted_read_placement(dataset):
    """A measurably warmer ring successor attracts reads; ties keep
    the deterministic lower-id choice."""
    from repro.edge.server import EdgeConfig
    from repro.fleet import FleetRouter, FleetSupervisor

    supervisor = FleetSupervisor(dataset.genesis_world,
                                 dataset.genesis_block,
                                 FleetConfig(shards=4,
                                             wire=WireConfig()))
    router = FleetRouter(supervisor, EdgeConfig())
    raw = ('{"jsonrpc": "2.0", "id": "r1", "method": "eth_call", '
           '"params": [{"to": "0x1234"}]}')
    key = router._routing_key(raw)
    owner, kind = router._resolve(key)
    assert kind == "read"
    successor = supervisor.shardmap.successor(owner)
    # Cold start: both warmths are 0.0 — the lower replica id wins.
    expected_cold = min(owner, successor)
    assert router._warmth_read_target(owner) == expected_cold
    # Make the successor measurably warmer: reads move to it.
    supervisor.warmth.update(successor, 0.9)
    supervisor.warmth.update(owner, 0.1)
    assert router._warmth_read_target(owner) == successor
    _, _, route = router.dispatch(raw, client_id=0, now=1.0)
    assert route.replica == successor
    assert route.warmth == (successor != owner)
    assert router.c_warmth.value == (1 if successor != owner else 0)
    # Swing warmth back (EWMA, so it takes a few samples each way):
    # the owner reclaims its reads.
    for _ in range(3):
        supervisor.warmth.update(owner, 1.0)
        supervisor.warmth.update(successor, 0.0)
    assert router._warmth_read_target(owner) == owner
    supervisor.close()
