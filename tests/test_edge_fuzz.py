"""Seeded JSON-RPC fuzzing: hostile frames never crash the edge.

Every malformed input — truncated frames, wrong field types, oversized
params, unknown methods, garbage hex — must surface as a *structured*
JSON-RPC error response: no uncaught exception, no stuck queue state,
and the metrics registry stays cleanly snapshotable afterwards.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.node import ForerunnerNode
from repro.edge import EdgeConfig, EdgeServer
from repro.edge import rpc
from repro.obs.registry import MetricsRegistry
from repro.utils.hashing import hash_words

from tests.conftest import ALICE, BOB


def _server(world):
    registry = MetricsRegistry()
    node = ForerunnerNode(world, registry=registry)
    # Generous limits: rejections in this test must come from parsing,
    # not from overload protection.
    config = EdgeConfig(bucket_capacity=1e9,
                        bucket_refill_per_second=1e9)
    return EdgeServer(node, config, registry=registry), registry


def _valid_frame(rng) -> str:
    method = rng.choice(["eth_call", "eth_getTransactionReceipt",
                         "eth_sendRawTransaction",
                         "debug_traceTransaction"])
    if method == "eth_call":
        params = [{"from": ALICE, "to": BOB, "value": 1, "data": "0x"}]
    elif method == "eth_sendRawTransaction":
        params = [{"from": ALICE, "to": BOB, "value": 1, "data": "0x",
                   "nonce": 0}]
    else:
        params = [f"{rng.getrandbits(64):#x}"]
    return rpc.make_request(method, params, rng.randrange(1000))


def _mutate(rng, frame: str) -> str:
    mode = rng.randrange(6)
    if mode == 0:  # truncation
        return frame[:rng.randrange(len(frame))]
    if mode == 1:  # garbled byte
        index = rng.randrange(len(frame))
        return frame[:index] + chr(33 + rng.randrange(90)) \
            + frame[index + 1:]
    if mode == 2:  # wrong top-level type
        return rng.choice(['[]', '42', '"x"', 'null', 'true',
                           '[1,2,3]'])
    if mode == 3:  # wrong field types
        return json.dumps({
            "jsonrpc": rng.choice(["1.0", 2.0, None, "2.0"]),
            "id": rng.choice([True, [1], {"a": 1}, 3]),
            "method": rng.choice([None, 7, "", "eth_call"]),
            "params": rng.choice(["not-a-list", {"a": 1}, 9, [1]]),
        })
    if mode == 4:  # oversized params / frames
        if rng.random() < 0.5:
            return rpc.make_request("eth_call", list(range(20)), 1)
        return '{"jsonrpc":"2.0","id":1,"method":"eth_call",' \
               '"params":["' + "A" * rpc.MAX_FRAME_BYTES + '"]}'
    # unknown methods / garbage params for known methods
    if rng.random() < 0.5:
        return rpc.make_request(
            "eth_" + "".join(rng.choice("abcdefgh")
                             for _ in range(8)), [], 1)
    return rpc.make_request(rng.choice([
        "eth_call", "eth_getTransactionReceipt",
        "eth_sendRawTransaction", "debug_traceTransaction",
    ]), rng.choice([
        [], ["zzz-not-hex"], [{"from": "0xNOPE", "to": -1}],
        [{"from": [], "to": {}, "data": 5}], [None], [1, 2],
        [{"from": ALICE, "to": BOB, "data": "0x" + "ff" * 9000}],
    ]), 1)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fuzzed_frames_always_yield_structured_errors(world, seed):
    server, registry = _server(world)
    rng = random.Random(hash_words((seed, 0xF022)))
    outcomes = {}
    for index in range(300):
        frame = _mutate(rng, _valid_frame(rng))
        response, outcome = server.handle_raw(
            frame, client_id=index % 7, now=float(index))
        # Structured response, always: a dict with the protocol
        # envelope, encodable canonically.
        assert isinstance(response, dict)
        assert response["jsonrpc"] == "2.0"
        assert ("result" in response) != ("error" in response)
        encoded = rpc.encode(response)
        assert json.loads(encoded)["jsonrpc"] == "2.0"
        if "error" in response:
            error = response["error"]
            assert isinstance(error["code"], int)
            assert isinstance(error["message"], str)
        outcomes[outcome.status] = outcomes.get(outcome.status, 0) + 1
    # The fuzzer genuinely exercised the defensive surface.
    assert sum(count for status, count in outcomes.items()
               if status != "served") > 50
    # No queue residue: every bulkhead drains, the depth gauge is
    # clean, and the registry snapshots deterministically.
    late = 10_000.0
    assert all(b.depth(late) == 0 for b in server.bulkheads.values())
    snapshot = registry.snapshot()
    assert snapshot["edge.requests"]["value"] == 300
    assert server.c_internal_errors.value == 0


def test_fuzz_is_deterministic(world):
    def run():
        server, _ = _server(world)
        rng = random.Random(hash_words((9, 0xF022)))
        lines = []
        for index in range(120):
            frame = _mutate(rng, _valid_frame(rng))
            response, _ = server.handle_raw(frame, index % 5,
                                            float(index))
            lines.append(rpc.encode(response))
        return lines

    assert run() == run()


def test_specific_hostile_frames(world):
    server, _ = _server(world)
    cases = [
        ("", rpc.PARSE_ERROR),
        ("{", rpc.PARSE_ERROR),
        ("[1,2]", rpc.INVALID_REQUEST),
        ('{"jsonrpc":"2.0","id":1}', rpc.INVALID_REQUEST),  # no method
        ('{"jsonrpc":"1.0","id":1,"method":"eth_call"}',
         rpc.INVALID_REQUEST),
        ('{"jsonrpc":"2.0","id":true,"method":"eth_call"}',
         rpc.INVALID_REQUEST),
        ('{"jsonrpc":"2.0","id":1,"method":"eth_call",'
         '"params":"nope"}', rpc.INVALID_REQUEST),
        (rpc.make_request("web3_clientVersion", [], 1),
         rpc.METHOD_NOT_FOUND),
        (rpc.make_request("eth_call", [1, 2, 3, 4, 5, 6, 7, 8, 9], 1),
         rpc.INVALID_PARAMS),
        (rpc.make_request("eth_call", [{"from": "0xZZ", "to": 1}], 1),
         rpc.INVALID_PARAMS),
        (rpc.make_request("eth_getTransactionReceipt", ["nope"], 1),
         rpc.INVALID_PARAMS),
        ("x" * (rpc.MAX_FRAME_BYTES + 1), rpc.INVALID_REQUEST),
    ]
    for index, (frame, expected) in enumerate(cases):
        response, _ = server.handle_raw(frame, 1, float(index))
        assert rpc.response_error_code(response) == expected, frame[:60]
