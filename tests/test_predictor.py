"""Multi-future predictor tests."""

import pytest

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.core.predictor import (
    HeaderStats,
    MultiFuturePredictor,
    PredictorConfig,
)


def tx(sender=1, to=0xC, nonce=0, price=100, origin_miner=None):
    return Transaction(sender=sender, to=to, nonce=nonce, gas_price=price,
                       origin_miner=origin_miner)


def block(number, timestamp, coinbase, parent_hash=0):
    return Block(header=BlockHeader(number=number, timestamp=timestamp,
                                    coinbase=coinbase,
                                    parent_hash=parent_hash))


def feed_blocks(predictor, count=5, interval=13, miner=0xE0):
    for i in range(count):
        predictor.observe_block(block(i + 1, 100 + i * interval, miner))


def test_header_stats_interval_and_miners():
    stats = HeaderStats()
    for i in range(4):
        stats.observe(block(i + 1, i * 10, coinbase=0xE0 + (i % 2)))
    assert stats.mean_interval() == pytest.approx(10.0)
    assert set(stats.top_miners(2)) == {0xE0, 0xE1}


def test_predict_headers_follow_observations():
    predictor = MultiFuturePredictor()
    feed_blocks(predictor, count=6, interval=13)
    headers = predictor.predict_headers()
    assert headers
    for header in headers:
        assert header.number == 7
        assert header.timestamp >= 100 + 5 * 13 + 13
        assert header.coinbase == 0xE0


def test_rank_pending_price_priority_and_cap():
    config = PredictorConfig(max_candidates=3)
    predictor = MultiFuturePredictor(config)
    pending = [tx(sender=i + 1, price=(i + 1) * 10) for i in range(10)]
    ranked = predictor.rank_pending(pending, block_gas_limit=10**9)
    assert len(ranked) == 3
    assert ranked[0].gas_price >= ranked[-1].gas_price


def test_rank_pending_self_priority():
    predictor = MultiFuturePredictor()
    own = tx(sender=1, price=1, origin_miner=0xE0)
    rich = tx(sender=2, price=10**12)
    ranked = predictor.rank_pending([rich, own], block_gas_limit=10**9)
    assert ranked[0] is own


def test_group_dependencies_by_contract():
    predictor = MultiFuturePredictor()
    a1, a2 = tx(sender=1, to=0xA), tx(sender=2, to=0xA)
    b1 = tx(sender=3, to=0xB)
    groups = predictor.group_dependencies([a1, a2, b1])
    assert {t.hash for t in groups[0xA]} == {a1.hash, a2.hash}
    assert [t.hash for t in groups[0xB]] == [b1.hash]


def test_contexts_capped_and_distinct_ids():
    config = PredictorConfig(max_contexts_per_tx=4)
    predictor = MultiFuturePredictor(config)
    feed_blocks(predictor)
    target = tx(sender=1)
    group = [target] + [tx(sender=i + 2) for i in range(5)]
    contexts = predictor.contexts_for(target, group)
    assert len(contexts) == 4
    ids = [c.context_id for c in contexts]
    assert len(set(ids)) == 4


def test_contexts_include_empty_ordering():
    predictor = MultiFuturePredictor()
    feed_blocks(predictor)
    target = tx(sender=1)
    group = [target, tx(sender=2), tx(sender=3)]
    contexts = predictor.contexts_for(target, group)
    assert any(not c.predecessors for c in contexts)


def test_sender_chain_is_mandatory_prefix():
    predictor = MultiFuturePredictor()
    feed_blocks(predictor)
    earlier = [tx(sender=1, nonce=0), tx(sender=1, nonce=1)]
    target = tx(sender=1, nonce=2)
    contexts = predictor.contexts_for(target, [target],
                                      sender_chain=earlier)
    for context in contexts:
        nonces = [t.nonce for t in context.predecessors[:2]]
        assert nonces == [0, 1]


def test_deep_sender_chain_skipped():
    config = PredictorConfig(max_predecessors=2)
    predictor = MultiFuturePredictor(config)
    feed_blocks(predictor)
    chain = [tx(sender=1, nonce=i) for i in range(10)]
    target = tx(sender=1, nonce=10)
    assert predictor.contexts_for(target, [target],
                                  sender_chain=chain) == []


def test_predict_full_cycle():
    predictor = MultiFuturePredictor()
    feed_blocks(predictor)
    pending = [tx(sender=i + 1, to=0xA, price=100) for i in range(6)]
    prediction = predictor.predict(pending, block_gas_limit=15_000_000)
    assert prediction.candidates
    for candidate in prediction.candidates:
        assert candidate.hash in prediction.contexts
        assert prediction.contexts[candidate.hash]


def test_ordering_diversity_across_contexts():
    """Multiple contexts should explore different predecessor orderings
    (the many-future coverage mechanism)."""
    predictor = MultiFuturePredictor(PredictorConfig(max_contexts_per_tx=6))
    feed_blocks(predictor)
    target = tx(sender=1, to=0xA)
    group = [target] + [tx(sender=i + 2, to=0xA) for i in range(3)]
    contexts = predictor.contexts_for(target, group)
    orderings = {tuple(t.hash for t in c.predecessors) for c in contexts}
    assert len(orderings) >= 3
