"""CLI smoke tests (invoked in-process)."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_synthesize_prints_ap(capsys):
    assert main(["synthesize"]) == 0
    out = capsys.readouterr().out
    assert "TIMESTAMP" in out
    assert "GUARD" in out
    assert "SSTORE" in out


def test_synthesize_fresh_round(capsys):
    # A timestamp outside the seeded round traces the revert path.
    assert main(["synthesize", "--timestamp", "4000000"]) == 0
    out = capsys.readouterr().out
    assert "GUARD" in out


def test_history(capsys):
    assert main(["history", "--months", "12", "--step", "4"]) == 0
    out = capsys.readouterr().out
    assert "gas limit" in out


def test_compile(tmp_path, capsys):
    source = tmp_path / "counter.sol"
    source.write_text("""
        contract Counter {
            uint256 public count;
            function bump(uint256 by) public { count = count + by; }
        }
    """)
    assert main(["compile", str(source), "--disassemble"]) == 0
    out = capsys.readouterr().out
    assert "contract Counter" in out
    assert "bump(uint256)" in out
    assert "slot 0: count" in out
    assert "SSTORE" in out


def test_simulate_tiny(capsys):
    assert main(["simulate", "--duration", "30", "--seed", "9"]) == 0
    out = capsys.readouterr().out
    assert "Merkle roots matched" in out
    assert "Forerunner" in out


def test_synthesize_merged_tree(capsys):
    assert main(["synthesize", "--merged"]) == 0
    out = capsys.readouterr().out
    assert "branch True" in out
    assert "branch False" in out
    assert "TERMINAL" in out
    assert "shortcut" in out


def test_record_and_replay_roundtrip(tmp_path, capsys):
    path = str(tmp_path / "period.json")
    assert main(["record", "--out", path, "--duration", "30",
                 "--seed", "4", "--name", "T"]) == 0
    assert main(["replay", path]) == 0
    out = capsys.readouterr().out
    assert "recorded" in out
    assert "roots matched" in out
    assert "effective speedup" in out


def test_chaos_report(tmp_path, capsys):
    json_out = str(tmp_path / "chaos.json")
    assert main(["chaos", "--seed", "0", "--duration", "12",
                 "--json-out", json_out]) == 0
    out = capsys.readouterr().out
    assert "fault plan" in out
    assert "equivalence      : OK" in out
    assert "effective speedup" in out
    import json
    with open(json_out, encoding="utf-8") as handle:
        payload = json.load(handle)
    assert payload["ok"] is True
    assert payload["dataset"] == "chaos"


def test_chaos_full_rate_collapses_to_baseline(capsys):
    assert main(["chaos", "--seed", "1", "--duration", "12",
                 "--rate", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "equivalence      : OK" in out
    assert "faulted 1.000x" in out
