"""Transaction / block / blockchain tests."""

import pytest

from repro.chain.block import Block, BlockHeader
from repro.chain.blockchain import Blockchain
from repro.chain.transaction import Transaction
from repro.errors import ChainError


def test_tx_hash_stable_and_distinct():
    tx1 = Transaction(sender=1, to=2, nonce=0)
    tx2 = Transaction(sender=1, to=2, nonce=0)
    tx3 = Transaction(sender=1, to=2, nonce=1)
    assert tx1.hash == tx2.hash
    assert tx1.hash != tx3.hash


def test_tx_max_fee():
    tx = Transaction(sender=1, to=2, gas_price=10, gas_limit=100, value=5)
    assert tx.max_fee() == 1005


def test_header_hash_depends_on_fields():
    h1 = BlockHeader(number=1, timestamp=10, coinbase=3)
    h2 = BlockHeader(number=1, timestamp=11, coinbase=3)
    assert h1.hash != h2.hash


def make_block(parent: Block, number: int, ts: int = 0) -> Block:
    header = BlockHeader(number=number,
                         timestamp=ts or parent.header.timestamp + 13,
                         coinbase=9, parent_hash=parent.hash)
    return Block(header=header)


@pytest.fixture
def chain():
    genesis = Block(header=BlockHeader(number=0, timestamp=0, coinbase=0))
    return Blockchain(genesis)


def test_genesis_must_be_zero():
    bad = Block(header=BlockHeader(number=1, timestamp=0, coinbase=0))
    with pytest.raises(ChainError):
        Blockchain(bad)


def test_add_extends_head(chain):
    b1 = make_block(chain.genesis, 1)
    assert chain.add(b1)
    assert chain.head is b1


def test_unknown_parent_rejected(chain):
    orphan = Block(header=BlockHeader(
        number=1, timestamp=13, coinbase=0, parent_hash=0xDEAD))
    with pytest.raises(ChainError):
        chain.add(orphan)


def test_bad_number_rejected(chain):
    wrong = Block(header=BlockHeader(
        number=5, timestamp=13, coinbase=0,
        parent_hash=chain.genesis.hash))
    with pytest.raises(ChainError):
        chain.add(wrong)


def test_fork_tracking(chain):
    b1 = make_block(chain.genesis, 1, ts=13)
    rival = make_block(chain.genesis, 1, ts=14)
    chain.add(b1)
    assert not chain.add(rival)  # same height: first seen stays head
    assert chain.head is b1
    assert rival.hash in chain
    assert [b.hash for b in chain.fork_blocks()] == [rival.hash]
    assert chain.block_count() == 3  # genesis + b1 + rival


def test_canonical_chain_order(chain):
    b1 = make_block(chain.genesis, 1)
    b2 = make_block(b1, 2)
    chain.add(b1)
    chain.add(b2)
    numbers = [b.number for b in chain.canonical_chain()]
    assert numbers == [0, 1, 2]


def test_duplicate_add_is_noop(chain):
    b1 = make_block(chain.genesis, 1)
    chain.add(b1)
    assert not chain.add(b1)
    assert chain.block_count() == 2


def test_block_gas_used():
    txs = [Transaction(sender=1, to=2, nonce=i, gas_limit=50_000)
           for i in range(3)]
    block = Block(header=BlockHeader(number=1, timestamp=1, coinbase=0),
                  transactions=txs)
    assert block.gas_used() == 150_000
    assert len(block.tx_hashes()) == 3
