"""Workload generator tests."""

import random

import pytest

from repro.chain.block import BlockHeader
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.workloads.gasprice import GasPriceModel
from repro.workloads.mixed import MixedWorkload, TrafficConfig


def test_gas_price_levels_discrete():
    model = GasPriceModel()
    rng = random.Random(3)
    samples = {model.sample(rng) for _ in range(500)}
    assert len(samples) <= len(model.levels)
    assert all(s % 10**9 == 0 for s in samples)


def test_gas_price_ties_common():
    """Discrete levels must produce frequent ties (paper §4.2 fn. 8)."""
    model = GasPriceModel()
    rng = random.Random(4)
    samples = [model.sample(rng) for _ in range(300)]
    most_common = max(set(samples), key=samples.count)
    assert samples.count(most_common) > 30


@pytest.fixture(scope="module")
def generated():
    config = TrafficConfig(duration=120.0, seed=11)
    workload = MixedWorkload(config)
    return workload.generate()


def test_stream_sorted_by_time(generated):
    _, stream = generated
    times = [t.time for t in stream]
    assert times == sorted(times)


def test_stream_has_all_kinds(generated):
    _, stream = generated
    kinds = {t.kind for t in stream}
    assert {"oracle", "token", "dex", "eth"} <= kinds


def test_nonces_sequential_per_sender(generated):
    _, stream = generated
    seen = {}
    for timed in stream:
        sender = timed.tx.sender
        expected = seen.get(sender, 0)
        assert timed.tx.nonce == expected
        seen[sender] = expected + 1


def test_generated_txs_execute_in_order(generated):
    """Every generated transaction must be executable when applied in
    creation order (the genesis world funds everything needed)."""
    world, stream = generated
    state = StateDB(world.copy() if hasattr(world, "copy") else world)
    header = BlockHeader(number=1, timestamp=int(stream[-1].time) + 1,
                         coinbase=0xBEEF)
    failures = 0
    for timed in stream[:150]:
        result = EVM(state, header, timed.tx).execute_transaction()
        if not result.success and timed.kind not in ("oracle", "auction"):
            failures += 1
    # Oracle/auction txs may revert by design (round/deadline); others
    # should essentially always succeed.
    assert failures <= 2


def test_deterministic_given_seed():
    c1 = MixedWorkload(TrafficConfig(duration=60.0, seed=5)).generate()
    c2 = MixedWorkload(TrafficConfig(duration=60.0, seed=5)).generate()
    assert [t.tx.hash for t in c1[1]] == [t.tx.hash for t in c2[1]]
    assert c1[0].root() == c2[0].root()


def test_different_seeds_differ():
    c1 = MixedWorkload(TrafficConfig(duration=60.0, seed=5)).generate()
    c2 = MixedWorkload(TrafficConfig(duration=60.0, seed=6)).generate()
    assert [t.tx.hash for t in c1[1]] != [t.tx.hash for t in c2[1]]
