"""Pending pool tests."""

import random

from repro.chain.transaction import Transaction
from repro.txpool.pool import TxPool


def tx(sender=1, nonce=0, price=100, origin_miner=None):
    return Transaction(sender=sender, to=0xC, nonce=nonce,
                       gas_price=price, origin_miner=origin_miner)


def test_add_and_lookup():
    pool = TxPool()
    t = tx()
    assert pool.add(t, now=1.0)
    assert t.hash in pool
    assert len(pool) == 1
    assert pool.arrival_times[t.hash] == 1.0


def test_same_nonce_replacement_requires_higher_price():
    pool = TxPool()
    low = tx(price=100)
    high = tx(price=200)
    equal = tx(price=200)
    pool.add(low)
    assert pool.add(high)
    assert low.hash not in pool
    assert not pool.add(equal)  # not strictly higher
    assert len(pool) == 1


def test_remove():
    pool = TxPool()
    t = tx()
    pool.add(t)
    assert pool.remove(t.hash) is t
    assert pool.remove(t.hash) is None
    assert len(pool) == 0


def test_remove_all():
    pool = TxPool()
    txs = [tx(nonce=i) for i in range(3)]
    for t in txs:
        pool.add(t)
    assert pool.remove_all(t.hash for t in txs) == 3


def test_price_sorted_descending():
    pool = TxPool()
    for i, price in enumerate([50, 300, 100]):
        pool.add(tx(sender=i + 1, price=price))
    prices = [t.gas_price for t in pool.price_sorted()]
    assert prices == sorted(prices, reverse=True)


def test_price_sorted_random_tiebreak():
    """Same-price transactions appear in varying orders per rng (the
    geth behaviour the paper's predictor simulates)."""
    pool = TxPool()
    for i in range(8):
        pool.add(tx(sender=i + 1, price=100))
    order_a = [t.hash for t in pool.price_sorted(random.Random(1))]
    order_b = [t.hash for t in pool.price_sorted(random.Random(2))]
    assert sorted(order_a) == sorted(order_b)
    assert order_a != order_b


def test_miner_self_priority():
    pool = TxPool()
    own = tx(sender=1, price=10, origin_miner=0xE0)
    rich = tx(sender=2, price=10**12)
    pool.add(own)
    pool.add(rich)
    ordered = pool.price_sorted(prioritize_miner=0xE0)
    assert ordered[0] is own


def test_ready_for_consecutive_nonces():
    pool = TxPool()
    for nonce in (0, 1, 3):
        pool.add(tx(nonce=nonce))
    ready = pool.ready_for(1, 0)
    assert [t.nonce for t in ready] == [0, 1]  # gap at 2 stops the run
    assert pool.ready_for(1, 5) == []
