"""Deep-internal tests: data constraints with computed offsets,
reverted inner frames, MCONCAT resolution, merge/prune edge cases,
shortcut mechanics."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core.accelerator import TransactionAccelerator
from repro.core.ap import (
    AcceleratedProgram,
    Terminal,
    branch_key_for,
    observed_branch_key,
)
from repro.core.ap_exec import execute_ap, materialize_return
from repro.core.memoize import build_shortcuts
from repro.core.merge import merge_path, prune_tree
from repro.core.sevm import GuardMode, Reg, SInstr, SKind
from repro.core.speculator import FutureContext, Speculator, synthesize_path
from repro.core.trace import trace_transaction
from repro.errors import ConstraintViolation
from repro.evm.assembler import assemble
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState

SENDER = 0xAA
CODE = 0xCC
OTHER = 0xDD


def run_traced(code_src, extra=(), timestamp=1000, data=b""):
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CODE, code=assemble(code_src))
    for address, src in extra:
        world.create_account(address, code=assemble(src))
    tx = Transaction(sender=SENDER, to=CODE, data=data, nonce=0)
    header = BlockHeader(1, timestamp, 0xBEEF)
    trace = trace_transaction(StateDB(world), header, tx)
    return world, tx, header, trace


# -- data constraints on computed memory offsets --------------------------------

COMPUTED_OFFSET = """
    PUSH 777
    PUSH 96
    MSTORE            ; mem[96] = 777
    TIMESTAMP
    PUSH 32
    MUL               ; offset = 32 * timestamp (context-dependent!)
    MLOAD             ; read at computed offset
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN
"""


def test_computed_offset_emits_data_guard():
    _, _, _, trace = run_traced(COMPUTED_OFFSET, timestamp=3)
    path = synthesize_path(trace)
    data_guards = [i for i in path.instrs
                   if i.kind is SKind.GUARD and not i.is_control]
    assert data_guards, "expected a data constraint on the MLOAD offset"
    assert path.stats.inserted_data_constraints >= 1


def test_computed_offset_ap_matches_and_violates():
    """Same offset (ts=3 -> 96) satisfies; different offset violates
    the data constraint and falls back."""
    world, tx, header, trace = run_traced(COMPUTED_OFFSET, timestamp=3)
    path = synthesize_path(trace)
    ap = AcceleratedProgram(tx.hash)
    merge_path(ap, path)
    prune_tree(ap)
    build_shortcuts(ap)

    # Satisfied at ts=3 (offset 96 -> reads the stored 777).
    world2 = WorldState()
    world2.create_account(SENDER, balance=10**21)
    world2.create_account(CODE, code=assemble(COMPUTED_OFFSET))
    outcome = execute_ap(ap, StateDB(world2), BlockHeader(1, 3, 0xB), tx)
    assert int.from_bytes(outcome.return_data, "big") == 777

    # Violated at ts=2 (offset 64: the dependency changed).
    with pytest.raises(ConstraintViolation):
        execute_ap(ap, StateDB(world2), BlockHeader(1, 2, 0xB), tx)


# -- reverted inner frames ---------------------------------------------------------

INNER_REVERTS = f"""
    PUSH 0
    PUSH 0
    PUSH 0
    PUSH 0
    PUSH 0
    PUSH {OTHER}
    PUSH 100000
    CALL              ; callee SSTOREs then REVERTs
    PUSH 0
    MSTORE
    PUSH 9
    PUSH 3
    SSTORE            ; outer write survives
    PUSH 32
    PUSH 0
    RETURN
"""

CALLEE_WRITES_THEN_REVERTS = """
    PUSH 5
    PUSH 1
    SSTORE
    PUSH 0
    PUSH 0
    REVERT
"""


def test_reverted_inner_frame_writes_dropped():
    world, tx, header, trace = run_traced(
        INNER_REVERTS, extra=[(OTHER, CALLEE_WRITES_THEN_REVERTS)])
    assert trace.result.success
    path = synthesize_path(trace)
    writes = [i for i in path.instrs if i.kind is SKind.WRITE]
    # Only the outer SSTORE survives; the reverted callee's is dropped.
    assert len(writes) == 1
    assert writes[0].key == (CODE,)


def test_reverted_inner_frame_ap_equivalence():
    world, tx, header, trace = run_traced(
        INNER_REVERTS, extra=[(OTHER, CALLEE_WRITES_THEN_REVERTS)])
    path = synthesize_path(trace)
    ap = AcceleratedProgram(tx.hash)
    merge_path(ap, path)
    prune_tree(ap)

    def build():
        w = WorldState()
        w.create_account(SENDER, balance=10**21)
        w.create_account(CODE, code=assemble(INNER_REVERTS))
        w.create_account(OTHER,
                         code=assemble(CALLEE_WRITES_THEN_REVERTS))
        return w

    evm_world = build()
    s1 = StateDB(evm_world)
    EVM(s1, header, tx).execute_transaction()
    s1.commit()

    ap_world = build()
    s2 = StateDB(ap_world)
    receipt = TransactionAccelerator().execute(tx, header, s2, ap)
    s2.commit()
    assert receipt.outcome == "satisfied"
    assert ap_world.root() == evm_world.root()
    assert ap_world.get_account(OTHER).get_storage(1) == 0
    assert ap_world.get_account(CODE).get_storage(3) == 9


# -- MCONCAT through sub-call boundaries ----------------------------------------------

def test_partial_word_calldata_in_callee():
    """The callee reads calldata straddling the caller's selector word
    and an argument word — resolved via MCONCAT at synthesis."""
    callee = """
        PUSH 2
        CALLDATALOAD      ; straddles selector tail + arg word
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    caller = f"""
        TIMESTAMP         ; context-dependent arg
        PUSH 4
        MSTORE
        PUSH 3735928559
        PUSH 224
        SHL
        PUSH 0
        MSTORE            ; selector 0xdeadbeef at [0..4)
        PUSH 32
        PUSH 64
        PUSH 36
        PUSH 0
        PUSH 0
        PUSH {OTHER}
        GAS
        CALL
        POP
        PUSH 64
        MLOAD
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    world, tx, header, trace = run_traced(
        caller, extra=[(OTHER, callee)], timestamp=1000)
    assert trace.result.success
    path = synthesize_path(trace)
    mconcats = [i for i in path.instrs if i.op == "MCONCAT"]
    assert mconcats, "expected an MCONCAT for the straddling read"
    # AP execution at a different timestamp recomputes correctly.
    ap = AcceleratedProgram(tx.hash)
    merge_path(ap, path)
    prune_tree(ap)
    build_shortcuts(ap)
    for ts in (1000, 123456):
        w = WorldState()
        w.create_account(SENDER, balance=10**21)
        w.create_account(CODE, code=assemble(caller))
        w.create_account(OTHER, code=assemble(callee))
        evm_w = w.copy()
        s = StateDB(evm_w)
        expected = EVM(s, BlockHeader(1, ts, 0xB), tx) \
            .execute_transaction()
        outcome = execute_ap(ap, StateDB(w), BlockHeader(1, ts, 0xB), tx)
        assert outcome.return_data == expected.return_data, ts


# -- merge / branch-key mechanics ------------------------------------------------------

def test_branch_keys():
    eq_guard = SInstr(kind=SKind.GUARD, op="GUARD", args=(Reg(0),),
                      guard_mode=GuardMode.EQ, expected=42)
    truth_guard = SInstr(kind=SKind.GUARD, op="GUARD", args=(Reg(0),),
                         guard_mode=GuardMode.TRUTH, expected=True)
    neq_guard = SInstr(kind=SKind.GUARD, op="GUARD",
                       args=(Reg(0), Reg(1)),
                       guard_mode=GuardMode.NEQ, expected=True)
    assert branch_key_for(eq_guard) == 42
    assert branch_key_for(truth_guard) is True
    assert branch_key_for(neq_guard) is True
    assert observed_branch_key(eq_guard, (42,)) == 42
    assert observed_branch_key(truth_guard, (7,)) is True
    assert observed_branch_key(truth_guard, (0,)) is False
    assert observed_branch_key(neq_guard, (1, 2)) is True
    assert observed_branch_key(neq_guard, (2, 2)) is None


def test_merge_failure_counted():
    """Structurally incompatible paths (different tx shapes forced
    together) bump merge_failures instead of corrupting the tree."""
    from repro.core.ap import APPath
    from repro.core.translate import SynthStats

    def fake_path(path_id, ops):
        instrs = [SInstr(kind=SKind.COMPUTE, op=op, dest=Reg(i),
                         args=(i,)) for i, op in enumerate(ops)]
        return APPath(
            path_id=path_id, context_id=path_id, instrs=instrs,
            pre_dce_instrs=instrs, concrete={Reg(i): i for i in
                                             range(len(ops))},
            return_pieces=[], return_size=0, success=True,
            gas_used=21000, stats=SynthStats(), read_set={},
            write_set={})

    ap = AcceleratedProgram(1)
    assert merge_path(ap, fake_path(0, ["ADD", "MUL"]))
    assert not merge_path(ap, fake_path(1, ["ADD", "SUB"]))
    assert ap.merge_failures == 1
    assert len(ap.paths) == 1


def test_linear_routes_enumeration(oracle_world):
    from repro.contracts import pricefeed
    from tests.conftest import ALICE, FEED, ROUND
    pf = pricefeed()
    tx = Transaction(sender=ALICE, to=FEED,
                     data=pf.calldata("submit", ROUND, 1980), nonce=0)
    speculator = Speculator(oracle_world)
    speculator.speculate(tx, FutureContext(1, BlockHeader(1, 3990462,
                                                          0xBEEF)))
    ap = speculator.get_ap(tx.hash)
    routes = ap.linear_routes()
    assert len(routes) == 1
    assert isinstance(routes[0][-1], Terminal)


def test_materialize_return_mixed_pieces():
    regs = {Reg(0): int.from_bytes(b"\x11" * 32, "big")}
    pieces = [(0, ("bytes", b"\xAA\xBB")),
              (2, ("reg", Reg(0), 30, 2)),
              (4, ("zero", 2))]
    data = materialize_return(pieces, 6, regs)
    assert data == b"\xAA\xBB\x11\x11\x00\x00"
    assert materialize_return([], 0, {}) == b""
