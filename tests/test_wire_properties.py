"""Property-based wire-plane validation (hypothesis).

Two universally-quantified claims behind the tentpole:

* **Exactly-once, order-preserving delivery** — for ANY seeded
  hostile-network plan (drop/duplicate/reorder at any rates) and ANY
  interleaving of sends with flush barriers, every (sender, channel)
  stream is delivered to its receiver exactly once, in send order,
  with no retry state left behind.
* **Lease safety** — for ANY sequence of vote/tally/grant operations
  that respects the protocol (grant only on a quorum tally), the
  registry never records two holders for one term.  The one-vote
  ledger makes a second majority impossible by intersection; the
  property test drives randomized elections to hunt for a
  counterexample.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.fleet.faults import (
    SITE_NET_DELAY,
    SITE_NET_DROP,
    SITE_NET_DUPLICATE,
    SITE_NET_REORDER,
    net_fault_plan,
)
from repro.fleet.lease import LeaseRegistry
from repro.fleet.wire import WireConfig, WirePlane
from repro.obs.registry import MetricsRegistry

LOSS_SITES = (SITE_NET_DROP, SITE_NET_DUPLICATE, SITE_NET_REORDER,
              SITE_NET_DELAY)


@st.composite
def hostile_plans(draw):
    """A seeded fault plan over a random subset of the loss sites at a
    random rate — from pristine to total loss."""
    sites = tuple(draw(st.sets(st.sampled_from(LOSS_SITES), min_size=1)))
    probability = draw(st.sampled_from((0.05, 0.25, 0.5, 1.0)))
    seed = draw(st.integers(0, 2**16))
    return net_fault_plan(seed=seed, probability=probability,
                          sites=sorted(sites))


@st.composite
def send_scripts(draw):
    """A random interleaving of sends across 2 senders x 2 channels,
    with flush barriers sprinkled between them."""
    ops = []
    for _ in range(draw(st.integers(1, 60))):
        if draw(st.integers(0, 4)) == 0:
            ops.append(("flush",))
        else:
            ops.append(("send", draw(st.integers(0, 1)),
                        draw(st.sampled_from(("a", "b")))))
    return ops


@given(plan=hostile_plans(), script=send_scripts())
@settings(max_examples=60, deadline=None)
def test_exactly_once_order_preserving(plan, script):
    plane = WirePlane(WireConfig(inflight_capacity=128,
                                 holdback_capacity=32),
                      injector=FaultInjector(plan,
                                             registry=MetricsRegistry()),
                      registry=MetricsRegistry())
    effects = {}

    def receiver(src, channel):
        effects[(src, channel)] = bucket = []

        def handler(payload, attachment, at):
            bucket.append(payload["n"])

        return handler

    for src in (0, 1):
        for channel in ("a", "b"):
            plane.register(9, channel + str(src), receiver(src, channel))

    sent = {(src, ch): [] for src in (0, 1) for ch in ("a", "b")}
    now = 0.0
    serial = 0
    for op in script:
        now += 0.1
        if op[0] == "flush":
            plane.flush(now)
            continue
        _, src, channel = op
        plane.send(src, 9, channel + str(src), {"n": serial}, now=now)
        sent[(src, channel)].append(serial)
        serial += 1
    plane.flush(now + 1.0)

    for key, expected in sent.items():
        assert effects[key] == expected
    assert len(plane._inflight) == 0
    summary = plane.summary()
    assert summary["effects"] == serial


@st.composite
def elections(draw):
    """A randomized multi-term election: per term, members vote for
    candidates chosen by a (possibly conflicting) preference draw."""
    members = tuple(range(draw(st.integers(2, 7))))
    terms = []
    for _ in range(draw(st.integers(1, 6))):
        # Each member independently picks a candidate — adversarial
        # schedules where votes split across many candidates included.
        terms.append([(member, draw(st.sampled_from(members)))
                      for member in members])
    return members, terms


@given(election=elections())
@settings(max_examples=100, deadline=None)
def test_lease_single_holder_per_term(election):
    members, terms = election
    quorum = len(members) // 2 + 1
    lease = LeaseRegistry(lease_seconds=6.0)
    now = 0.0
    for ballots in terms:
        term = lease.open_term()
        tally = {}
        for member, candidate in ballots:
            if lease.cast_vote(term, member, candidate):
                lease.record_grant(term, candidate, member)
                tally[candidate] = tally.get(candidate, 0) + 1
        # Every candidate that believes it won claims the lease; at
        # most one can have a real quorum, and the registry must
        # reject any impostor.
        winners = [c for c in sorted(tally) if tally[c] >= quorum]
        assert len(winners) <= 1
        for candidate in sorted(tally):
            if len(lease.tally(term, candidate)) >= quorum:
                lease.grant(term, candidate, now)
        now += 1.0
    lease.assert_single_holder_per_term()
    # At most one lease per term ever granted.
    assert len(lease.leases) == len(
        {grant.term for grant in lease.history})


@given(election=elections(), forged=st.integers(0, 6))
@settings(max_examples=60, deadline=None)
def test_lease_rejects_grant_without_quorum_intersection(election,
                                                         forged):
    """A candidate that claims a term some other candidate already won
    is always rejected — even when its (minority) tally is non-zero."""
    members, terms = election
    quorum = len(members) // 2 + 1
    lease = LeaseRegistry(lease_seconds=6.0)
    for ballots in terms:
        term = lease.open_term()
        for member, candidate in ballots:
            if lease.cast_vote(term, member, candidate):
                lease.record_grant(term, candidate, member)
        granted = None
        for candidate in sorted(set(c for _, c in ballots)):
            if len(lease.tally(term, candidate)) >= quorum:
                lease.grant(term, candidate, 0.0)
                granted = candidate
                break
        if granted is not None and forged % len(members) != granted:
            with pytest.raises(SimulationError):
                lease.grant(term, forged % len(members), 0.0)
    lease.assert_single_holder_per_term()
