"""DELEGATECALL / STATICCALL / RETURNDATA semantics, and their
translation through the Forerunner pipeline."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import aggregator, lending, pricefeed
from repro.core.accelerator import TransactionAccelerator
from repro.core.speculator import FutureContext, Speculator
from repro.evm.assembler import assemble
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState

SENDER = 0xAA
CALLER_ADDR = 0xCC
CALLEE_ADDR = 0xDD


def build_pair(caller_src, callee_src):
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CALLER_ADDR, code=assemble(caller_src))
    world.create_account(CALLEE_ADDR, code=assemble(callee_src))
    return world


def run(world, data=b"", timestamp=1000):
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CALLER_ADDR, data=data, nonce=0)
    header = BlockHeader(number=1, timestamp=timestamp, coinbase=0xBEEF)
    result = EVM(state, header, tx).execute_transaction()
    return result, state


# Callee writes 7 into slot 5 and returns CALLER.
WRITER_CALLEE = """
    PUSH 7
    PUSH 5
    SSTORE
    CALLER
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN
"""


def test_delegatecall_uses_caller_storage():
    caller = f"""
        PUSH 32
        PUSH 64
        PUSH 0
        PUSH 0
        PUSH {CALLEE_ADDR}
        GAS
        DELEGATECALL
        POP
        PUSH 64
        MLOAD
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    world = build_pair(caller, WRITER_CALLEE)
    result, state = run(world)
    assert result.success
    # The write landed in the CALLER's storage, not the callee's.
    assert state.get_storage(CALLER_ADDR, 5) == 7
    assert state.get_storage(CALLEE_ADDR, 5) == 0
    # CALLER inside the delegate is the ORIGINAL sender.
    assert int.from_bytes(result.return_data, "big") == SENDER


def test_staticcall_blocks_writes():
    # Forward bounded gas: a WriteProtection fault consumes everything
    # forwarded (unlike REVERT), exactly like the real EVM.
    caller = f"""
        PUSH 32
        PUSH 64
        PUSH 0
        PUSH 0
        PUSH {CALLEE_ADDR}
        PUSH 50000
        STATICCALL
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    world = build_pair(caller, WRITER_CALLEE)
    result, state = run(world)
    assert result.success
    # The static frame failed (SSTORE forbidden) -> pushed 0.
    assert int.from_bytes(result.return_data, "big") == 0
    assert state.get_storage(CALLEE_ADDR, 5) == 0


def test_staticcall_allows_reads():
    reader = """
        PUSH 5
        SLOAD
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    caller = f"""
        PUSH 32
        PUSH 64
        PUSH 0
        PUSH 0
        PUSH {CALLEE_ADDR}
        GAS
        STATICCALL
        POP
        PUSH 64
        MLOAD
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    world = build_pair(caller, reader)
    world.get_account(CALLEE_ADDR).set_storage(5, 1234)
    result, _ = run(world)
    assert result.success
    assert int.from_bytes(result.return_data, "big") == 1234


def test_returndatasize_and_copy():
    callee = """
        PUSH 0xAB
        PUSH 0
        MSTORE
        PUSH 32
        PUSH 0
        RETURN
    """
    caller = f"""
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH {CALLEE_ADDR}
        GAS
        CALL
        POP
        RETURNDATASIZE        ; 32
        PUSH 0
        MSTORE
        PUSH 32               ; size
        PUSH 0                ; src offset
        PUSH 32               ; dest
        RETURNDATACOPY
        PUSH 64
        PUSH 0
        RETURN
    """
    world = build_pair(caller, callee)
    result, _ = run(world)
    assert result.success
    assert int.from_bytes(result.return_data[:32], "big") == 32
    assert int.from_bytes(result.return_data[32:], "big") == 0xAB


def test_returndatacopy_out_of_bounds_fails():
    caller = """
        PUSH 64
        PUSH 0
        PUSH 0
        RETURNDATACOPY
        STOP
    """
    world = build_pair(caller, "STOP")
    result, _ = run(world)
    assert not result.success


# -- pipeline equivalence with the new contracts -----------------------------

ROUND = 3990300
POOL, FA, FB, FC, AGG = 0x100, 0x201, 0x202, 0x203, 0x300


def lending_world(prices=(2000, 2010, 1990), collateral=10**6):
    L, AG, PF = lending(), aggregator(), pricefeed()
    world = WorldState()
    world.create_account(SENDER, balance=10**24)
    world.create_account(POOL, code=L.code)
    for feed, price in zip((FA, FB, FC), prices):
        world.create_account(feed, code=PF.code)
        world.get_account(feed).set_storage(
            PF.slot_of("prices", ROUND), price)
    world.create_account(AGG, code=AG.code)
    agg = world.get_account(AGG)
    agg.set_storage(AG.slot_of("feedA"), FA)
    agg.set_storage(AG.slot_of("feedB"), FB)
    agg.set_storage(AG.slot_of("feedC"), FC)
    pool = world.get_account(POOL)
    pool.set_storage(L.slot_of("priceFeed"), FA)
    pool.set_storage(L.slot_of("activeRound"), ROUND)
    pool.set_storage(L.slot_of("totalSupplied"), 10**12)
    pool.set_storage(L.slot_of("lastAccrual"), 3990000)
    pool.set_storage(L.slot_of("borrowIndex"), 10_000_000)
    pool.set_storage(L.slot_of("totalBorrowed"), 10**9)
    pool.set_storage(L.slot_of("collateral", SENDER), collateral)
    return world


@pytest.mark.parametrize("fn_args", [
    ("accrue",),
    ("borrow", 500_000),
    ("supply", 1000),
])
@pytest.mark.parametrize("actual_ts", [3990462, 3990599])
def test_lending_ap_equivalence(fn_args, actual_ts):
    """Timestamp-dependent interest accrual through the AP pipeline."""
    L = lending()
    tx = Transaction(sender=SENDER, to=POOL,
                     data=L.calldata(fn_args[0], *fn_args[1:]), nonce=0)
    speculator = Speculator(lending_world())
    speculator.speculate(
        tx, FutureContext(1, BlockHeader(1, 3990462, 0xBEEF)))
    ap = speculator.get_ap(tx.hash)
    assert ap is not None and ap.root is not None

    header = BlockHeader(1, actual_ts, 0xBEEF)
    evm_world = lending_world()
    state = StateDB(evm_world)
    expected = EVM(state, header, tx).execute_transaction()
    state.commit()

    ap_world = lending_world()
    state2 = StateDB(ap_world)
    receipt = TransactionAccelerator().execute(tx, header, state2, ap)
    state2.commit()
    assert receipt.result.success == expected.success
    assert receipt.result.gas_used == expected.gas_used
    assert ap_world.root() == evm_world.root()


def test_aggregator_median_branches():
    """Different feed orderings take different median branches; each
    synthesizes its own AP path and all merge into one program."""
    AG = aggregator()
    tx = Transaction(sender=SENDER, to=AGG,
                     data=AG.calldata("update", ROUND), nonce=0)
    orderings = [(2000, 2010, 1990), (1990, 2000, 2010),
                 (2010, 1990, 2000)]
    speculator = Speculator(lending_world(prices=orderings[0]))
    for i, prices in enumerate(orderings):
        speculator.world = lending_world(prices=prices)
        speculator.speculate(
            tx, FutureContext(i + 1, BlockHeader(1, 3990462, 0xBEEF)))
    ap = speculator.get_ap(tx.hash)
    assert ap.path_count() >= 2  # distinct median branches

    # Execute in a context following yet another branch combination.
    actual = (2005, 1995, 2001)
    header = BlockHeader(1, 3990470, 0xBEEF)
    evm_world = lending_world(prices=actual)
    state = StateDB(evm_world)
    EVM(state, header, tx).execute_transaction()
    state.commit()
    ap_world = lending_world(prices=actual)
    state2 = StateDB(ap_world)
    receipt = TransactionAccelerator().execute(tx, header, state2, ap)
    state2.commit()
    assert ap_world.root() == evm_world.root()
    expected_median = sorted(actual)[1]
    assert ap_world.get_account(AGG).get_storage(
        AG.slot_of("lastMedian")) in (expected_median,)
