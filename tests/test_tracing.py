"""Instrumented-tracing structures: step records, frames, read order."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed, registry
from repro.core.trace import trace_transaction
from repro.evm.assembler import assemble
from repro.state.statedb import StateDB
from repro.state.world import WorldState

from tests.conftest import ALICE, FEED, REGISTRY_ADDR, ROUND, TOKEN

PF = pricefeed()


def trace_pricefeed(oracle_world, timestamp=3990462):
    tx = Transaction(sender=ALICE, to=FEED,
                     data=PF.calldata("submit", ROUND, 1980), nonce=0)
    header = BlockHeader(1, timestamp, 0xBEEF)
    return trace_transaction(StateDB(oracle_world), header, tx)


def test_steps_are_sequential(oracle_world):
    trace = trace_pricefeed(oracle_world)
    indices = [step.index for step in trace.steps]
    assert indices == list(range(len(indices)))


def test_read_set_keys_and_values(oracle_world):
    trace = trace_pricefeed(oracle_world)
    assert trace.read_set[("header", ("timestamp",))] == 3990462
    active_key = ("storage", (FEED, PF.slot_of("activeRoundID")))
    assert trace.read_set[active_key] == ROUND


def test_write_set_holds_final_values(oracle_world):
    trace = trace_pricefeed(oracle_world)
    counts_key = ("storage", (FEED, PF.slot_of("submissionCounts",
                                               ROUND)))
    assert trace.write_set[counts_key] == 5  # 4 + 1


def test_reads_in_order_keeps_duplicates(oracle_world):
    """The prefetcher wants every read occurrence, first-read values
    deduplicate only in the read set."""
    trace = trace_pricefeed(oracle_world)
    assert len(trace.reads_in_order) >= len(trace.read_set)


def test_frame_events_for_cross_contract_call(world):
    reg = registry()
    from repro.contracts import erc20
    token = erc20()
    account = world.get_account(REGISTRY_ADDR)
    account.set_storage(reg.slot_of("feeToken"), TOKEN)
    account.set_storage(reg.slot_of("feeSink"), 0x511C)
    world.get_account(TOKEN).set_storage(
        token.slot_of("balanceOf", REGISTRY_ADDR), 10)
    tx = Transaction(sender=ALICE, to=REGISTRY_ADDR,
                     data=reg.calldata("registerPaid", 5), nonce=0)
    trace = trace_transaction(
        StateDB(world), BlockHeader(1, 1, 0xB), tx)
    assert trace.result.success
    assert len(trace.frames) == 2  # registry frame + token frame
    depths = sorted(event.depth for event in trace.frames.values())
    assert depths == [0, 1]
    inner = [e for e in trace.frames.values() if e.depth == 1][0]
    assert inner.code_address == TOKEN
    assert inner.success
    assert inner.end_index > inner.start_index


def test_failed_frame_marked(world):
    callee = "PUSH 0\nPUSH 0\nREVERT"
    caller = """
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 0
        PUSH 0xDD
        GAS
        CALL
        POP
        STOP
    """
    w = WorldState()
    w.create_account(ALICE, balance=10**21)
    w.create_account(0xCA, code=assemble(caller))
    w.create_account(0xDD, code=assemble(callee))
    tx = Transaction(sender=ALICE, to=0xCA, nonce=0)
    trace = trace_transaction(StateDB(w), BlockHeader(1, 1, 0xB), tx)
    failed = [e for e in trace.frames.values() if not e.success]
    assert len(failed) == 1


def test_step_extras_for_memory_ops(oracle_world):
    trace = trace_pricefeed(oracle_world)
    sha3_steps = [s for s in trace.steps if s.name == "SHA3"]
    assert sha3_steps
    for step in sha3_steps:
        assert "mem_offset" in step.extra
        assert len(step.extra["data"]) == step.extra["mem_size"]


def test_trace_length_property(oracle_world):
    trace = trace_pricefeed(oracle_world)
    assert trace.trace_length == len(trace.steps) > 100
