"""The central correctness property (paper §3, §5.2):

    When the constraints are satisfied in the actual context, executing
    the specialized fast-path program produces exactly the same result
    as the original transaction execution — same state root, same gas,
    same return data, same logs.  When they are violated, the fallback
    produces it instead.

Property-based: speculate each contract's transactions in random
contexts, execute in *other* random contexts through the accelerator,
and compare against a plain EVM execution bit for bit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import amm, auction, erc20, pricefeed, registry
from repro.core.accelerator import TransactionAccelerator
from repro.core.speculator import FutureContext, Speculator
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState

from tests.conftest import ALICE, BOB, ROUND

FEED = 0xFEED
TOKEN = 0x70CE2
TOKEN1 = 0x70CE3
POOL = 0xF00
AUCTION_ADDR = 0xA0C

PF = pricefeed()
TOK = erc20()
AMM = amm()
AUC = auction()


def build_world(active_round, price, count, alice_tokens, bob_tokens,
                reserve0, reserve1, deadline, high_bid):
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=10**24)
    world.create_account(FEED, code=PF.code)
    world.create_account(TOKEN, code=TOK.code)
    world.create_account(TOKEN1, code=TOK.code)
    world.create_account(POOL, code=AMM.code)
    world.create_account(AUCTION_ADDR, code=AUC.code)

    feed = world.get_account(FEED)
    feed.set_storage(PF.slot_of("activeRoundID"), active_round)
    if price:
        feed.set_storage(PF.slot_of("prices", active_round), price)
        feed.set_storage(PF.slot_of("submissionCounts", active_round),
                         count)

    token = world.get_account(TOKEN)
    token.set_storage(TOK.slot_of("balanceOf", ALICE), alice_tokens)
    token.set_storage(TOK.slot_of("balanceOf", BOB), bob_tokens)
    token.set_storage(TOK.slot_of("allowance", ALICE, POOL), 10**18)
    world.get_account(TOKEN1).set_storage(
        TOK.slot_of("balanceOf", POOL), 10**15)

    pool = world.get_account(POOL)
    pool.set_storage(AMM.slot_of("reserve0"), reserve0)
    pool.set_storage(AMM.slot_of("reserve1"), reserve1)
    pool.set_storage(AMM.slot_of("token0"), TOKEN)
    pool.set_storage(AMM.slot_of("token1"), TOKEN1)
    pool.set_storage(AMM.slot_of("selfAddr"), POOL)

    auction_account = world.get_account(AUCTION_ADDR)
    auction_account.set_storage(AUC.slot_of("deadline"), deadline)
    auction_account.set_storage(AUC.slot_of("highBid"), high_bid)
    if high_bid:
        auction_account.set_storage(AUC.slot_of("highBidder"), BOB)
    return world


def transactions():
    return [
        Transaction(sender=ALICE, to=FEED,
                    data=PF.calldata("submit", ROUND, 1980), nonce=0),
        Transaction(sender=ALICE, to=TOKEN,
                    data=TOK.calldata("transfer", BOB, 500), nonce=0),
        Transaction(sender=ALICE, to=POOL,
                    data=AMM.calldata("swap0to1", 1000, 0), nonce=0),
        Transaction(sender=ALICE, to=AUCTION_ADDR,
                    data=AUC.calldata("bid", 120), nonce=0),
    ]


world_params = st.tuples(
    st.sampled_from([ROUND, ROUND - 300, 3990000]),   # active round
    st.integers(min_value=0, max_value=3000),          # price
    st.integers(min_value=1, max_value=10),            # count
    st.integers(min_value=0, max_value=10**6),         # alice tokens
    st.integers(min_value=0, max_value=10**6),         # bob tokens
    st.integers(min_value=10**3, max_value=10**9),     # reserve0
    st.integers(min_value=10**3, max_value=10**9),     # reserve1
    st.sampled_from([100, ROUND + 150, ROUND + 10**6]),  # deadline
    st.integers(min_value=0, max_value=200),           # high bid
)

timestamps = st.sampled_from(
    [ROUND, ROUND + 60, ROUND + 150, ROUND + 299, ROUND + 300,
     ROUND + 900])


@settings(max_examples=40, deadline=None)
@given(spec_params=world_params, actual_params=world_params,
       spec_ts=timestamps, actual_ts=timestamps)
def test_accelerated_equals_plain(spec_params, actual_params,
                                  spec_ts, actual_ts):
    """AP execution must be bit-identical to plain EVM execution in ANY
    actual context, whether constraints hold (fast path) or not
    (fallback)."""
    accelerator = TransactionAccelerator()
    for tx in transactions():
        spec_world = build_world(*spec_params)
        speculator = Speculator(spec_world)
        speculator.speculate(
            tx, FutureContext(1, BlockHeader(1, spec_ts, 0xBEEF)))
        ap = speculator.get_ap(tx.hash)

        actual_header = BlockHeader(1, actual_ts, 0xBEEF)
        evm_world = build_world(*actual_params)
        evm_state = StateDB(evm_world)
        expected = EVM(evm_state, actual_header, tx).execute_transaction()
        evm_state.commit()

        ap_world = build_world(*actual_params)
        ap_state = StateDB(ap_world)
        receipt = accelerator.execute(tx, actual_header, ap_state, ap)
        ap_state.commit()

        assert receipt.result.success == expected.success
        assert receipt.result.gas_used == expected.gas_used
        assert receipt.result.return_data == expected.return_data
        assert receipt.result.logs == expected.logs
        assert ap_world.root() == evm_world.root(), (
            f"state divergence for tx to {tx.to:#x} "
            f"(outcome={receipt.outcome})")


@settings(max_examples=15, deadline=None)
@given(params=world_params, ts=timestamps)
def test_multi_future_merged_ap_equivalence(params, ts):
    """Same property with an AP merged from several speculated futures."""
    accelerator = TransactionAccelerator()
    tx = Transaction(sender=ALICE, to=FEED,
                     data=PF.calldata("submit", ROUND, 1980), nonce=0)
    spec_worlds = [
        (ROUND, 2000, 4, 0, 0, 10**6, 10**6, 100, 0),
        (3990000, 0, 1, 0, 0, 10**6, 10**6, 100, 0),
        (ROUND, 2010, 6, 0, 0, 10**6, 10**6, 100, 0),
    ]
    speculator = None
    ap = None
    for i, sp in enumerate(spec_worlds):
        world = build_world(*sp)
        if speculator is None:
            speculator = Speculator(world)
        else:
            speculator.world = world
        speculator.speculate(
            tx, FutureContext(i + 1,
                              BlockHeader(1, ROUND + 100 + i, 0xBEEF)))
    ap = speculator.get_ap(tx.hash)

    header = BlockHeader(1, ts, 0xBEEF)
    evm_world = build_world(*params)
    evm_state = StateDB(evm_world)
    expected = EVM(evm_state, header, tx).execute_transaction()
    evm_state.commit()

    ap_world = build_world(*params)
    ap_state = StateDB(ap_world)
    receipt = accelerator.execute(tx, header, ap_state, ap)
    ap_state.commit()

    assert receipt.result.success == expected.success
    assert receipt.result.gas_used == expected.gas_used
    assert ap_world.root() == evm_world.root()
