"""Consensus model tests: PoW schedule, packing, miner views."""

import random

import pytest

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.consensus.miner import Miner
from repro.consensus.packing import pack_block
from repro.consensus.pow import PowSchedule


def tx(sender=1, nonce=0, price=100, gas_limit=50_000, origin_miner=None):
    return Transaction(sender=sender, to=0xC, nonce=nonce,
                       gas_price=price, gas_limit=gas_limit,
                       origin_miner=origin_miner)


class TestPow:
    def test_intervals_roughly_exponential(self):
        schedule = PowSchedule({1: 1.0, 2: 1.0}, mean_interval=13.0,
                               seed=3)
        now = 0.0
        times = []
        for _ in range(600):
            nxt, _ = schedule.next_block(now)
            times.append(nxt - now)
            now = nxt
        mean = sum(times) / len(times)
        assert 10.0 < mean < 16.0

    def test_miner_selection_proportional(self):
        schedule = PowSchedule({1: 3.0, 2: 1.0}, seed=5)
        wins = {1: 0, 2: 0}
        now = 0.0
        for _ in range(2000):
            now, winner = schedule.next_block(now)
            wins[winner] += 1
        ratio = wins[1] / wins[2]
        assert 2.2 < ratio < 4.0  # ~3x hash power

    def test_no_dominant_miner_with_flat_power(self):
        """The many-future premise: no miner dominates (paper §2)."""
        schedule = PowSchedule({i: 1.0 for i in range(8)}, seed=9)
        wins = {i: 0 for i in range(8)}
        now = 0.0
        for _ in range(4000):
            now, winner = schedule.next_block(now)
            wins[winner] += 1
        assert max(wins.values()) / 4000 < 0.25

    def test_competing_miner_differs(self):
        schedule = PowSchedule({1: 1.0, 2: 1.0}, seed=1)
        assert schedule.competing_miner(1) == 2


class TestPacking:
    def test_price_priority(self):
        txs = [tx(sender=i + 1, price=p)
               for i, p in enumerate([50, 500, 100])]
        packed = pack_block(txs, {})
        assert [t.gas_price for t in packed] == [500, 100, 50]

    def test_gas_limit_respected(self):
        txs = [tx(sender=i + 1, gas_limit=60_000) for i in range(5)]
        packed = pack_block(txs, {}, gas_limit=150_000)
        assert len(packed) == 2

    def test_nonce_ordering_within_sender(self):
        txs = [tx(nonce=2, price=900), tx(nonce=0, price=10),
               tx(nonce=1, price=500)]
        packed = pack_block(txs, {1: 0})
        assert [t.nonce for t in packed] == [0, 1, 2]

    def test_future_nonce_deferred(self):
        txs = [tx(nonce=5)]
        packed = pack_block(txs, {1: 0})
        assert packed == []

    def test_self_priority(self):
        own = tx(sender=1, price=1, origin_miner=0xE0)
        rich = tx(sender=2, price=10**12)
        packed = pack_block([own, rich], {}, miner_id=0xE0)
        assert packed[0] is own

    def test_tie_break_varies_with_rng(self):
        txs = [tx(sender=i + 1, price=100) for i in range(6)]
        a = pack_block(txs, {}, rng=random.Random(1))
        b = pack_block(txs, {}, rng=random.Random(2))
        assert [t.hash for t in a] != [t.hash for t in b]

    def test_exclude_set(self):
        t1, t2 = tx(sender=1), tx(sender=2)
        packed = pack_block([t1, t2], {}, exclude={t1.hash})
        assert packed == [t2]


class TestMiner:
    def test_visibility_by_arrival_time(self):
        miner = Miner(miner_id=0xE0)
        t1, t2 = tx(sender=1), tx(sender=2)
        miner.hear(t1, 5.0)
        miner.hear(t2, 50.0)
        visible = miner.visible_at(10.0, set())
        assert [t.hash for t in visible] == [t1.hash]

    def test_infinite_arrival_never_heard(self):
        miner = Miner(miner_id=0xE0)
        miner.hear(tx(), float("inf"))
        assert miner.visible_at(10**9, set()) == []

    def test_build_block_monotone_timestamp(self):
        miner = Miner(miner_id=0xE0, clock_skew=-100.0)
        genesis = Block(header=BlockHeader(number=0, timestamp=50,
                                           coinbase=0))
        block = miner.build_block(10.0, genesis, {}, set())
        assert block.header.timestamp > genesis.header.timestamp
        assert block.header.parent_hash == genesis.hash
        assert block.number == 1
        assert block.miner_id == 0xE0
