"""Optimization pass tests."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import erc20, pricefeed
from repro.core.optimize import (
    eliminate_dead_code,
    evaluate_compute,
    evaluate_mconcat,
    fold_and_cse,
    optimize_path,
    partition_constraint_fastpath,
    promote_context_accesses,
)
from repro.core.sevm import GuardMode, Reg, SInstr, SKind
from repro.core.trace import trace_transaction
from repro.core.translate import SynthStats, translate_trace
from repro.state.statedb import StateDB
from repro.utils.hashing import keccak_int
from repro.utils.words import int_to_bytes32

from tests.conftest import ALICE, BOB, FEED, ROUND, TOKEN


def compute(op, dest, *args, **meta):
    return SInstr(kind=SKind.COMPUTE, op=op, dest=Reg(dest), args=args,
                  meta=dict(meta))


def test_constant_folding_chains():
    stats = SynthStats()
    instrs = [
        compute("ADD", 0, 1, 2),        # v0 = 3
        compute("MUL", 1, Reg(0), 10),  # v1 = 30
        compute("ADD", 2, Reg(1), Reg(0)),  # v2 = 33
    ]
    out = fold_and_cse(instrs, stats)
    assert out == []
    assert stats.eliminated_constant == 3


def test_cse_removes_duplicates():
    stats = SynthStats()
    r_in = SInstr(kind=SKind.READ, op="TIMESTAMP", dest=Reg(0),
                  key=("timestamp",))
    instrs = [
        r_in,
        compute("ADD", 1, Reg(0), 5),
        compute("ADD", 2, Reg(0), 5),   # duplicate
        SInstr(kind=SKind.WRITE, op="SSTORE", args=(1, Reg(2)), key=(9,)),
    ]
    out = fold_and_cse(instrs, stats)
    assert stats.eliminated_duplicate == 1
    # The write now references the surviving register.
    assert out[-1].args == (1, Reg(1))


def test_static_guard_dropped():
    stats = SynthStats()
    stats.inserted_guards = 1
    guard = SInstr(kind=SKind.GUARD, op="GUARD", args=(7,),
                   guard_mode=GuardMode.EQ, expected=7, is_control=True)
    out = fold_and_cse([guard], stats)
    assert out == []
    assert stats.inserted_guards == 0


def test_sha3_folding_matches_reference():
    stats = SynthStats()
    instr = compute("SHA3", 0, 1, 2, size=64)
    out = fold_and_cse([instr,
                        SInstr(kind=SKind.WRITE, op="SSTORE",
                               args=(Reg(0), 1), key=(1,))], stats)
    expected = keccak_int(int_to_bytes32(1) + int_to_bytes32(2))
    assert out[0].args == (expected, 1)


def test_evaluate_mconcat_layout():
    # Word = [4 const bytes][28 bytes from reg's tail]
    layout = [("bytes", 0, b"\xaa\xbb\xcc\xdd"),
              ("reg", 4, 0, 4, 28)]
    value = evaluate_mconcat(layout, (int(("1" * 64), 16),), 32)
    raw = int_to_bytes32(value)
    assert raw[:4] == b"\xaa\xbb\xcc\xdd"
    assert raw[4:] == int_to_bytes32(int("1" * 64, 16))[4:32]


def test_promotion_dedups_header_reads():
    stats = SynthStats()
    instrs = [
        SInstr(kind=SKind.READ, op="TIMESTAMP", dest=Reg(0),
               key=("timestamp",)),
        SInstr(kind=SKind.READ, op="TIMESTAMP", dest=Reg(1),
               key=("timestamp",)),
        SInstr(kind=SKind.WRITE, op="SSTORE", args=(1, Reg(1)), key=(9,)),
    ]
    out = promote_context_accesses(instrs, {Reg(0): 5, Reg(1): 5}, stats)
    assert stats.eliminated_promoted_reads == 1
    assert out[-1].args == (1, Reg(0))


def test_promotion_forwards_store_to_load():
    stats = SynthStats()
    instrs = [
        SInstr(kind=SKind.WRITE, op="SSTORE", args=(3, 42), key=(9,)),
        SInstr(kind=SKind.READ, op="SLOAD", dest=Reg(0), args=(3,),
               key=(9,)),
        SInstr(kind=SKind.WRITE, op="SSTORE", args=(4, Reg(0)), key=(9,)),
    ]
    out = promote_context_accesses(instrs, {Reg(0): 42}, stats)
    assert stats.eliminated_promoted_reads == 1
    assert out[-1].args == (4, 42)


def test_promotion_variable_slots_get_neq_guard():
    """Reusing a binding across an intervening variable-slot write must
    pin non-aliasing with a NEQ data guard."""
    stats = SynthStats()
    concrete = {Reg(0): 111, Reg(1): 222, Reg(2): 7}
    instrs = [
        SInstr(kind=SKind.READ, op="SLOAD", dest=Reg(2), args=(Reg(0),),
               key=(9,)),
        # Intervening write to a DIFFERENT variable slot.
        SInstr(kind=SKind.WRITE, op="SSTORE", args=(Reg(1), 5), key=(9,)),
        # Re-read the first slot: reusable only if slots stay distinct.
        SInstr(kind=SKind.READ, op="SLOAD", dest=Reg(3), args=(Reg(0),),
               key=(9,)),
        SInstr(kind=SKind.WRITE, op="SSTORE", args=(1, Reg(3)), key=(9,)),
    ]
    out = promote_context_accesses(instrs, concrete, stats)
    neq = [i for i in out if i.kind is SKind.GUARD
           and i.guard_mode is GuardMode.NEQ]
    assert len(neq) == 1
    assert stats.eliminated_promoted_reads == 1


def test_promotion_aliased_slot_not_reused():
    """If the intervening write concretely aliased the slot during
    speculation, the old binding is stale and must NOT be reused."""
    stats = SynthStats()
    concrete = {Reg(0): 111, Reg(1): 111, Reg(2): 7, Reg(3): 5}
    instrs = [
        SInstr(kind=SKind.READ, op="SLOAD", dest=Reg(2), args=(Reg(0),),
               key=(9,)),
        SInstr(kind=SKind.WRITE, op="SSTORE", args=(Reg(1), 5), key=(9,)),
        SInstr(kind=SKind.READ, op="SLOAD", dest=Reg(3), args=(Reg(0),),
               key=(9,)),
        SInstr(kind=SKind.WRITE, op="SSTORE", args=(1, Reg(3)), key=(9,)),
    ]
    out = promote_context_accesses(instrs, concrete, stats)
    # The second SLOAD cannot be promoted away...
    assert stats.eliminated_promoted_reads == 0
    # ...but the forwarding from the aliasing SSTORE is legitimate —
    # either way the final write's value must reflect the stored 5.
    reads = [i for i in out if i.kind is SKind.READ]
    assert len(reads) >= 1


def test_dce_keeps_guard_feeders():
    instrs = [
        SInstr(kind=SKind.READ, op="TIMESTAMP", dest=Reg(0),
               key=("timestamp",)),
        compute("ADD", 1, Reg(0), 5),
        compute("MUL", 2, Reg(0), 3),  # dead: feeds nothing
        SInstr(kind=SKind.GUARD, op="GUARD", args=(Reg(1),),
               guard_mode=GuardMode.EQ, expected=10, is_control=True),
    ]
    stats = SynthStats()
    out = eliminate_dead_code(instrs, set(), stats)
    assert stats.eliminated_dead == 1
    assert all(i.dest != Reg(2) for i in out)


def test_dce_respects_return_roots():
    instrs = [compute("ADD", 0, 1, 2)]
    out = eliminate_dead_code(list(instrs), {Reg(0)}, SynthStats())
    assert len(out) == 1
    out = eliminate_dead_code(list(instrs), set(), SynthStats())
    assert out == []


def test_partition_constraints_vs_fastpath():
    instrs = [
        SInstr(kind=SKind.READ, op="TIMESTAMP", dest=Reg(0),
               key=("timestamp",)),
        compute("ADD", 1, Reg(0), 5),
        SInstr(kind=SKind.GUARD, op="GUARD", args=(Reg(1),),
               guard_mode=GuardMode.EQ, expected=10, is_control=True),
        SInstr(kind=SKind.READ, op="SLOAD", dest=Reg(2), args=(3,),
               key=(9,)),
        compute("MUL", 3, Reg(2), 2),
        SInstr(kind=SKind.WRITE, op="SSTORE", args=(3, Reg(3)), key=(9,)),
    ]
    constraint, fastpath = partition_constraint_fastpath(instrs)
    assert [i.op for i in constraint] == ["TIMESTAMP", "ADD", "GUARD"]
    assert [i.op for i in fastpath] == ["SLOAD", "MUL", "SSTORE"]


def test_full_pipeline_on_pricefeed(oracle_world):
    pf = pricefeed()
    state = StateDB(oracle_world)
    tx = Transaction(sender=ALICE, to=FEED,
                     data=pf.calldata("submit", ROUND, 1980), nonce=0)
    header = BlockHeader(number=1, timestamp=3990462, coinbase=0xBEEF)
    trace = trace_transaction(state, header, tx)
    result = translate_trace(trace)
    optimize_path(result)
    # Figure 15 shape: the optimized path is a small fraction of the
    # original EVM trace.
    assert result.stats.final_len < 0.3 * result.stats.trace_len
    assert result.pre_dce_instrs is not None
    assert result.stats.constraint_section_len > 0
    assert result.stats.fast_path_len > 0
