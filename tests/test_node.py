"""BaselineNode / ForerunnerNode tests."""

import pytest

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.node import BaselineNode, ForerunnerConfig, ForerunnerNode
from repro.errors import ChainError
from repro.state.world import WorldState

from tests.conftest import ALICE, BOB, FEED, ROUND

PF = pricefeed()


def fresh_world():
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=10**24)
    world.create_account(FEED, code=PF.code)
    account = world.get_account(FEED)
    account.set_storage(PF.slot_of("activeRoundID"), ROUND)
    account.set_storage(PF.slot_of("prices", ROUND), 2000)
    account.set_storage(PF.slot_of("submissionCounts", ROUND), 4)
    return world


def make_block(txs, number=1, ts=3990462, parent_hash=0):
    header = BlockHeader(number=number, timestamp=ts, coinbase=0xBEEF,
                         parent_hash=parent_hash)
    return Block(header=header, transactions=txs)


def tx_e(nonce=0, sender=ALICE):
    return Transaction(sender=sender, to=FEED,
                       data=PF.calldata("submit", ROUND, 1980),
                       nonce=nonce)


def test_baseline_processes_and_commits():
    node = BaselineNode(fresh_world())
    report = node.process_block(make_block([tx_e()]))
    assert len(report.records) == 1
    assert report.records[0].success
    assert report.records[0].cost > 0
    assert node.world.get_account(FEED).get_storage(
        PF.slot_of("submissionCounts", ROUND)) == 5


def test_baseline_io_reads_counted():
    node = BaselineNode(fresh_world())
    report = node.process_block(make_block([tx_e()]))
    assert report.records[0].io_reads > 3


def test_forerunner_equals_baseline_root():
    block = make_block([tx_e(), tx_e(sender=BOB)])
    baseline = BaselineNode(fresh_world())
    fore = ForerunnerNode(fresh_world())
    for tx in block.transactions:
        fore.on_transaction(tx, now=0.0)
    fore.run_speculation(1.0)
    base_report = baseline.process_block(block)
    fore_report = fore.process_block(block, now=5.0)
    assert base_report.state_root == fore_report.state_root


def test_forerunner_accelerates_heard_tx():
    fore = ForerunnerNode(fresh_world())
    # Give the header predictor a recent parent block to extrapolate
    # from (otherwise its timestamp guess lands in the wrong round).
    fore.predictor.observe_block(make_block([], number=0, ts=3990449))
    fore.on_transaction(tx_e(), now=0.0)
    fore.run_speculation(0.5)
    report = fore.process_block(make_block([tx_e()]), now=5.0)
    record = report.records[0]
    assert record.heard
    assert record.ap_ready
    assert record.outcome == "satisfied"
    assert record.heard_delay == pytest.approx(5.0)


def test_forerunner_unheard_tx_marked():
    fore = ForerunnerNode(fresh_world())
    report = fore.process_block(make_block([tx_e()]), now=5.0)
    record = report.records[0]
    assert not record.heard
    assert record.outcome == "no_ap"


def test_ap_not_ready_until_worker_finishes():
    config = ForerunnerConfig(workers=1, worker_speed=1.0)  # glacial
    fore = ForerunnerNode(fresh_world(), config)
    fore.on_transaction(tx_e(), now=0.0)
    fore.run_speculation(0.0)
    ap = fore.speculator.get_ap(tx_e().hash)
    assert ap is not None
    assert ap.ready_at > 10.0  # far in the future at 1 unit/s
    report = fore.process_block(make_block([tx_e()]), now=1.0)
    assert not report.records[0].ap_ready


def test_root_mismatch_raises():
    fore = ForerunnerNode(fresh_world())
    block = make_block([tx_e()])
    block.state_root = 0xBAD
    with pytest.raises(ChainError):
        fore.process_block(block, now=1.0)


def test_pool_drained_after_execution():
    fore = ForerunnerNode(fresh_world())
    fore.on_transaction(tx_e(), now=0.0)
    fore.process_block(make_block([tx_e()]), now=1.0)
    assert len(fore.pool) == 0
    # Late gossip of an executed tx is ignored.
    fore.on_transaction(tx_e(), now=2.0)
    assert len(fore.pool) == 0


def test_speculation_cycle_noop_when_nothing_changed():
    fore = ForerunnerNode(fresh_world())
    fore.on_transaction(tx_e(), now=0.0)
    first = fore.run_speculation(0.5)
    second = fore.run_speculation(0.6)
    assert first > 0
    assert second == 0


def test_speculation_caps_per_head():
    config = ForerunnerConfig(max_contexts_per_head=2)
    fore = ForerunnerNode(fresh_world(), config)
    fore.on_transaction(tx_e(), now=0.0)
    fore.run_speculation(0.5)
    assert fore._total_spec[tx_e().hash] <= 2
