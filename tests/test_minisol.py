"""minisol compiler tests: lexer, parser, codegen behaviour."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.errors import CompileError
from repro.evm.interpreter import EVM
from repro.minisol import compile_contract, decode_uint, mapping_slot
from repro.minisol.abi import encode_call, selector
from repro.minisol.lexer import tokenize
from repro.minisol.parser import parse
from repro.state.statedb import StateDB
from repro.state.world import WorldState

SENDER = 0x51
CONTRACT = 0xC0


def deploy_and_call(source, fn, *args, timestamp=1000, sender=SENDER,
                    storage=None):
    compiled = compile_contract(source)
    world = WorldState()
    world.create_account(sender, balance=10**21)
    world.create_account(CONTRACT, code=compiled.code)
    if storage:
        account = world.get_account(CONTRACT)
        for slot, value in storage.items():
            account.set_storage(slot, value)
    state = StateDB(world)
    tx = Transaction(sender=sender, to=CONTRACT,
                     data=compiled.calldata(fn, *args), nonce=0)
    header = BlockHeader(number=1, timestamp=timestamp, coinbase=0xBEEF)
    result = EVM(state, header, tx).execute_transaction()
    return compiled, result, state


# -- lexer ----------------------------------------------------------------

def test_tokenize_basics():
    tokens = tokenize("contract C { uint256 x; }")
    kinds = [t.kind for t in tokens]
    assert kinds == ["contract", "ident", "{", "uint256", "ident", ";", "}"]


def test_tokenize_numbers():
    tokens = tokenize("123 0xff 1_000")
    assert [t.value for t in tokens] == [123, 255, 1000]


def test_tokenize_comments():
    tokens = tokenize("1 // line\n2 /* block\nblock */ 3")
    assert [t.value for t in tokens] == [1, 2, 3]


def test_tokenize_operators_maximal_munch():
    tokens = tokenize("a <= b == c => d")
    assert [t.kind for t in tokens] == ["ident", "<=", "ident", "==",
                                        "ident", "=>", "ident"]


def test_tokenize_bad_char():
    with pytest.raises(CompileError):
        tokenize("a $ b")


def test_unterminated_comment():
    with pytest.raises(CompileError):
        tokenize("/* never ends")


# -- parser ----------------------------------------------------------------

def test_parse_contract_shape():
    contract = parse("""
        contract Demo {
            uint256 public total;
            mapping(uint256 => uint256) public items;
            event Ping(uint256 a);
            function bump(uint256 n) public { total = total + n; }
        }
    """)
    assert contract.name == "Demo"
    assert [v.name for v in contract.state_vars] == ["total", "items"]
    assert contract.state_vars[0].slot == 0
    assert contract.state_vars[1].slot == 1
    assert contract.functions[0].signature == "bump(uint256)"
    assert contract.events[0].name == "Ping"


def test_parse_nested_mapping_depth():
    contract = parse("""
        contract D {
            mapping(address => mapping(address => uint256)) public m;
        }
    """)
    assert contract.state_vars[0].type.depth() == 2


def test_parse_if_else_chain():
    contract = parse("""
        contract D {
            uint256 public x;
            function f(uint256 a) public {
                if (a > 1) { x = 1; } else if (a > 0) { x = 2; }
                else { x = 3; }
            }
        }
    """)
    body = contract.functions[0].body
    assert len(body) == 1


def test_parse_rejects_bad_assignment_target():
    with pytest.raises(CompileError):
        parse("contract D { function f() public { 1 = 2; } }")


def test_parse_rejects_unknown_env_field():
    with pytest.raises(CompileError):
        parse("contract D { function f() public { uint256 t = block.nope; } }")


# -- selectors / ABI -----------------------------------------------------------

def test_selector_is_4_bytes_of_hash():
    sel = selector("transfer(address,uint256)")
    assert 0 <= sel < 2**32


def test_encode_call_layout():
    data = encode_call("f(uint256)", [5])
    assert len(data) == 4 + 32
    assert int.from_bytes(data[4:], "big") == 5


def test_mapping_slot_nesting():
    base = 3
    one = mapping_slot(base, 7)
    two = mapping_slot(one, 9)
    from repro.minisol.abi import nested_mapping_slot
    assert nested_mapping_slot(base, 7, 9) == two


# -- codegen / execution ----------------------------------------------------------

ARITH = """
contract Math {
    function calc(uint256 a, uint256 b) public returns (uint256) {
        return (a + b) * 2 - a / (b + 1);
    }
}
"""


def test_arithmetic_codegen():
    _, result, _ = deploy_and_call(ARITH, "calc", 10, 4)
    assert result.success
    assert decode_uint(result.return_data) == (10 + 4) * 2 - 10 // 5


def test_local_variables_and_assignment():
    source = """
    contract L {
        uint256 public out;
        function f(uint256 a) public {
            uint256 x = a + 1;
            uint256 y = x * 2;
            x = y + x;
            out = x;
        }
    }
    """
    compiled, result, state = deploy_and_call(source, "f", 5)
    assert result.success
    assert state.get_storage(CONTRACT, compiled.slot_of("out")) == 18


def test_mapping_read_write():
    source = """
    contract M {
        mapping(uint256 => uint256) public table;
        function put(uint256 k, uint256 v) public { table[k] = v; }
    }
    """
    compiled, result, state = deploy_and_call(source, "put", 7, 99)
    assert result.success
    assert state.get_storage(
        CONTRACT, compiled.slot_of("table", 7)) == 99


def test_nested_mapping_access():
    source = """
    contract N {
        mapping(address => mapping(address => uint256)) public grid;
        function put(address a, address b, uint256 v) public {
            grid[a][b] = v;
        }
        function get(address a, address b) public returns (uint256) {
            return grid[a][b];
        }
    }
    """
    compiled, result, state = deploy_and_call(source, "put", 1, 2, 55)
    assert result.success
    assert state.get_storage(
        CONTRACT, compiled.slot_of("grid", 1, 2)) == 55


def test_require_reverts():
    source = """
    contract R {
        uint256 public x;
        function f(uint256 a) public { require(a > 10); x = a; }
    }
    """
    compiled, result, state = deploy_and_call(source, "f", 5)
    assert not result.success
    assert state.get_storage(CONTRACT, compiled.slot_of("x")) == 0
    _, result2, state2 = deploy_and_call(source, "f", 11)
    assert result2.success


def test_if_else_branches():
    source = """
    contract B {
        uint256 public out;
        function f(uint256 a) public {
            if (a >= 10) { out = 1; } else { out = 2; }
        }
    }
    """
    compiled, _, state = deploy_and_call(source, "f", 10)
    assert state.get_storage(CONTRACT, compiled.slot_of("out")) == 1
    compiled, _, state = deploy_and_call(source, "f", 9)
    assert state.get_storage(CONTRACT, compiled.slot_of("out")) == 2


def test_while_loop():
    source = """
    contract W {
        uint256 public total;
        function sum(uint256 n) public {
            uint256 i = 1;
            uint256 acc = 0;
            while (i <= n) { acc = acc + i; i = i + 1; }
            total = acc;
        }
    }
    """
    compiled, result, state = deploy_and_call(source, "sum", 10)
    assert result.success
    assert state.get_storage(CONTRACT, compiled.slot_of("total")) == 55


def test_short_circuit_and_or():
    source = """
    contract S {
        mapping(uint256 => uint256) public d;
        function f(uint256 a, uint256 b) public returns (uint256) {
            if (a > 1 && b > 1) { return 3; }
            if (a > 1 || b > 1) { return 2; }
            return 1;
        }
    }
    """
    for (a, b), expected in {(2, 2): 3, (2, 0): 2, (0, 2): 2, (0, 0): 1}.items():
        _, result, _ = deploy_and_call(source, "f", a, b)
        assert decode_uint(result.return_data) == expected


def test_unary_not_and_neg():
    source = """
    contract U {
        function f(uint256 a) public returns (uint256) {
            if (!(a > 5)) { return 0 - 1; }
            return a;
        }
    }
    """
    _, result, _ = deploy_and_call(source, "f", 3)
    assert decode_uint(result.return_data) == 2**256 - 1


def test_env_reads():
    source = """
    contract E {
        function who() public returns (address) { return msg.sender; }
        function when() public view returns (uint256) {
            return block.timestamp;
        }
    }
    """
    _, result, _ = deploy_and_call(source, "who")
    assert decode_uint(result.return_data) == SENDER
    _, result, _ = deploy_and_call(source, "when", timestamp=777)
    assert decode_uint(result.return_data) == 777


def test_public_getter_generated():
    source = """
    contract G {
        uint256 public answer;
        mapping(uint256 => uint256) public table;
    }
    """
    compiled, result, state = deploy_and_call(
        source, "answer",
        storage={compile_contract(source).slot_of("answer"): 42})
    assert result.success
    assert decode_uint(result.return_data) == 42


def test_events_emit_topic_and_data():
    source = """
    contract Ev {
        event Fired(uint256 a, uint256 b);
        function f() public { emit Fired(7, 8); }
    }
    """
    _, result, _ = deploy_and_call(source, "f")
    assert result.success
    assert len(result.logs) == 1
    _, topics, data = result.logs[0]
    from repro.minisol.abi import event_topic
    assert topics == (event_topic("Fired(uint256,uint256)"),)
    assert int.from_bytes(data[:32], "big") == 7
    assert int.from_bytes(data[32:64], "big") == 8


def test_unknown_selector_reverts():
    compiled = compile_contract(ARITH)
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CONTRACT, code=compiled.code)
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CONTRACT, data=b"\xde\xad\xbe\xef",
                     nonce=0)
    result = EVM(state, BlockHeader(1, 1, 0xB), tx).execute_transaction()
    assert not result.success


def test_duplicate_state_var_rejected():
    with pytest.raises(CompileError):
        compile_contract("contract D { uint256 public a; uint256 a; }")


def test_duplicate_function_rejected():
    with pytest.raises(CompileError):
        compile_contract(
            "contract D { function f() public {} function f() public {} }")


def test_getter_collision_rejected():
    with pytest.raises(CompileError):
        compile_contract(
            "contract D { uint256 public f; function f() public {} }")


def test_calldata_arity_checked():
    compiled = compile_contract(ARITH)
    with pytest.raises(CompileError):
        compiled.calldata("calc", 1)


def test_unknown_function_in_calldata():
    compiled = compile_contract(ARITH)
    with pytest.raises(CompileError):
        compiled.calldata("nope")
