"""Serving edge: deadlines, backpressure, brownout, durability, and
serving determinism (docs/EDGE.md)."""

from __future__ import annotations

import pytest

from repro.chain.transaction import Transaction
from repro.core.node import ForerunnerConfig, ForerunnerNode
from repro.edge import (
    AcceptedTxLog,
    BrownoutConfig,
    BrownoutController,
    Bulkhead,
    Deadline,
    EdgeConfig,
    EdgeServer,
    RetryBudget,
    RetryConfig,
    ScenarioConfig,
    TokenBucket,
    build_scenario,
    recover_accepted,
    restore_pool,
    run_serving,
)
from repro.edge import rpc
from repro.edge.brownout import LEVEL_DEGRADED, LEVEL_FULL, LEVEL_SHED
from repro.obs.export import canonical_json
from repro.obs.registry import MetricsRegistry
from repro.p2p.latency import LatencyModel
from repro.sched.admission import AdmissionController, SpeculationRequest
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.state.world import WorldState
from repro.witness.format import witness_digest
from repro.workloads.mixed import TrafficConfig

from tests.conftest import ALICE, BOB, make_tx


# -- primitives --------------------------------------------------------------


def test_token_bucket_refill():
    bucket = TokenBucket(capacity=2.0, refill_per_second=1.0)
    assert bucket.try_take(0.0)
    assert bucket.try_take(0.0)
    assert not bucket.try_take(0.0)
    assert bucket.try_take(1.0)  # one token refilled
    assert not bucket.try_take(1.0)


def test_bulkhead_deterministic_queueing():
    bulkhead = Bulkhead("m", capacity=2, service_rate=1000.0)
    start, finish = bulkhead.occupy(0.0, 500)
    assert (start, finish) == (0.0, 0.5)
    start, finish = bulkhead.occupy(0.0, 500)
    assert (start, finish) == (0.5, 1.0)  # queued behind the first
    assert bulkhead.depth(0.0) == 2
    assert not bulkhead.has_room(0.0)
    assert bulkhead.has_room(0.6)  # first finished at 0.5
    assert bulkhead.depth(2.0) == 0


def test_deadline_budget_translation():
    deadline = Deadline.from_budget(10.0, 5000, service_rate=1000.0)
    assert deadline.expires_at == 15.0
    assert not deadline.expired(14.999)
    assert deadline.expired(15.0)


def test_retry_carries_original_deadline_and_is_seeded():
    config = RetryConfig(max_attempts=3, base_backoff_seconds=0.5)
    deadline = Deadline(expires_at=0.6, budget_units=1)
    budget_a = RetryBudget(config, seed=7)
    budget_b = RetryBudget(config, seed=7)
    # A retry that could only land after the original deadline is not
    # scheduled at all.
    assert budget_a.next_retry(1, 1, 0.2, deadline) is None
    # Same seed -> identical jitter draws, attempt for attempt (a
    # fresh client stream on both sides).
    patient = Deadline(expires_at=100.0, budget_units=1)
    first_a = budget_a.next_retry(2, 1, 0.0, patient)
    first_b = budget_b.next_retry(2, 1, 0.0, patient)
    assert first_a == first_b and first_a is not None
    assert budget_a.next_retry(2, 3, 0.0, patient) is None  # attempts


def test_retry_token_pool_bounds_amplification():
    config = RetryConfig(budget_tokens=2.0,
                         budget_refill_per_success=0.0)
    budget = RetryBudget(config, seed=0)
    patient = Deadline(expires_at=1000.0, budget_units=1)
    assert budget.next_retry(1, 1, 0.0, patient) is not None
    assert budget.next_retry(2, 1, 0.0, patient) is not None
    assert budget.next_retry(3, 1, 0.0, patient) is None
    assert budget.denied == 1


# -- brownout ladder ---------------------------------------------------------


def _ladder():
    config = BrownoutConfig(depth_degraded=4, depth_shed=8,
                            latency_degraded=1000, latency_shed=5000,
                            min_dwell_seconds=1.0, exit_fraction=0.5)
    return BrownoutController(config, MetricsRegistry())


def test_brownout_ladder_enters_and_exits_with_hysteresis():
    ladder = _ladder()
    assert ladder.observe(0.0, depth=0) == LEVEL_FULL
    assert ladder.observe(1.0, depth=5) == LEVEL_DEGRADED
    # Dwell: an immediate worse reading cannot transition yet.
    assert ladder.observe(1.5, depth=20) == LEVEL_DEGRADED
    assert ladder.observe(2.5, depth=20) == LEVEL_SHED
    # Exit needs the gauge *below* the hysteresis band, plus dwell.
    assert ladder.observe(4.0, depth=5) == LEVEL_SHED
    assert ladder.observe(5.5, depth=3) == LEVEL_DEGRADED
    assert ladder.observe(7.0, depth=1) == LEVEL_FULL
    assert [t.new_level for t in ladder.transitions] == [1, 2, 1, 0]


def test_brownout_shedding_decision():
    ladder = _ladder()
    ladder.score(1, weight=2.0)  # max weight seen -> shed floor 1.0
    assert ladder.admits(0.1, cheap=True)  # full: everything goes
    ladder.level = LEVEL_DEGRADED
    assert ladder.admits(0.1, cheap=True)
    assert not ladder.admits(9.9, cheap=False)  # no fresh execution
    ladder.level = LEVEL_SHED
    assert ladder.admits(1.5, cheap=True)  # top-priority cheap only
    assert not ladder.admits(0.5, cheap=True)
    assert not ladder.admits(1.5, cheap=False)
    assert ladder.c_shed.value == 3


# -- deadline propagation into the scheduler ---------------------------------


def test_admission_cancels_expired_speculation():
    admission = AdmissionController(registry=MetricsRegistry())
    tx = make_tx()
    admission.set_deadline(tx.hash, 5.0)
    request = SpeculationRequest(tx=tx, context=None, seq=0, score=1.0,
                                 head=1, deadline=5.0)
    assert admission.allows_dispatch(request, now=4.9)
    assert not admission.allows_dispatch(request, now=5.0)
    assert admission.c_expired.value == 1
    assert admission.snapshot()["expired"] == 1
    # Without a clock the check is inert (plain replay is unchanged).
    assert admission.allows_dispatch(request)
    # A release forgets the stamp.
    admission.release(tx.hash)
    assert admission.deadline_for(tx.hash) is None


# -- the server's admission pipeline -----------------------------------------


def _server(world, **overrides):
    registry = MetricsRegistry()
    node = ForerunnerNode(world, ForerunnerConfig(), registry=registry)
    config = EdgeConfig(**overrides)
    return EdgeServer(node, config, registry=registry)


def _call_frame(req_id, value=1, data="0x"):
    return rpc.make_request("eth_call", [{
        "from": ALICE, "to": BOB, "value": value, "data": data}], req_id)


def test_rate_limit_per_client(world):
    server = _server(world, bucket_capacity=2.0,
                     bucket_refill_per_second=0.0)
    for index in range(2):
        response, outcome = server.handle_raw(
            _call_frame(index, value=index), client_id=1, now=0.0)
        assert outcome.status == "served"
    response, outcome = server.handle_raw(
        _call_frame(9, value=9), client_id=1, now=0.0)
    assert rpc.response_error_code(response) == rpc.RATE_LIMITED
    # Another client has its own bucket.
    _, outcome = server.handle_raw(_call_frame(0, value=0),
                                   client_id=2, now=0.0)
    assert outcome.status == "served"


def test_backpressure_when_queue_full(world):
    server = _server(world, queue_capacity=1, service_rate=50.0)
    _, first = server.handle_raw(_call_frame(0, value=1), 1, now=0.0)
    assert first.status in ("served", "deadline_expired")
    response, second = server.handle_raw(
        _call_frame(1, value=2), 2, now=0.0)
    assert rpc.response_error_code(response) == rpc.OVERLOADED
    assert server.c_backpressure.value == 1


def test_expired_queued_work_is_cancelled_not_executed(world):
    # Slow server: the first call occupies it for many seconds; the
    # second one's deadline passes before its start slot, so it is
    # cancelled at admission and the node never executes it.
    server = _server(world, queue_capacity=10, service_rate=200.0)
    _, first = server.handle_raw(_call_frame(0, value=1), 1, now=0.0,
                                 deadline_units=10_000_000)
    assert first.status == "served"
    executed_before = server.c_call_plain.value
    response, second = server.handle_raw(
        _call_frame(1, value=2), 1, now=0.0, deadline_units=100)
    assert rpc.response_error_code(response) == rpc.DEADLINE_EXCEEDED
    assert response["error"]["data"]["phase"] == "queued"
    assert server.c_deadline_cancelled.value == 1
    assert server.c_call_plain.value == executed_before  # never ran


def test_inflight_deadline_overrun_is_reported(world):
    server = _server(world, service_rate=50.0)
    response, outcome = server.handle_raw(
        _call_frame(0, value=1), 1, now=0.0, deadline_units=10)
    assert rpc.response_error_code(response) == rpc.DEADLINE_EXCEEDED
    assert response["error"]["data"]["phase"] == "inflight"
    assert server.c_deadline_overrun.value == 1


def test_internal_faults_are_contained_and_trip_the_breaker(world):
    server = _server(world, breaker_threshold=3)

    def boom(request, now, stale):
        raise RuntimeError("handler bug")

    server._dispatch = boom
    codes = []
    for index in range(5):
        response, _ = server.handle_raw(
            _call_frame(index, value=index), 1, now=float(index))
        codes.append(rpc.response_error_code(response))
    assert codes[:3] == [rpc.INTERNAL_ERROR] * 3
    assert rpc.BREAKER_OPEN in codes[3:]
    assert server.c_internal_errors.value == 3


def test_send_raw_transaction_enters_pool_with_deadline(world):
    server = _server(world)
    tx = make_tx(nonce=0, value=5, to=BOB)
    frame = rpc.make_request("eth_sendRawTransaction", [{
        "from": tx.sender, "to": tx.to, "value": tx.value,
        "data": "0x", "gasPrice": tx.gas_price, "gas": tx.gas_limit,
        "nonce": tx.nonce}], "send-1")
    response, outcome = server.handle_raw(frame, 1, now=2.0)
    assert outcome.status == "served"
    assert response["result"]["accepted"] is True
    node = server.node
    assert tx.hash in node.pool
    stamp = node.admission.deadline_for(tx.hash)
    assert stamp == 2.0 + server.config.speculation_deadline_seconds
    # Idempotent: a duplicate send is acknowledged but not re-added.
    response, _ = server.handle_raw(frame, 1, now=3.0)
    assert response["result"]["accepted"] is False
    assert server.c_accepted.value == 1


def test_accepted_tx_log_recovery(world, tmp_path):
    path = str(tmp_path / "accepted.wal")
    registry = MetricsRegistry()
    node = ForerunnerNode(world, registry=registry)
    log = AcceptedTxLog(path, obs=registry)
    server = EdgeServer(node, EdgeConfig(), registry=registry,
                        accepted_log=log)
    txs = [make_tx(nonce=n, value=n + 1, to=BOB) for n in range(3)]
    for index, tx in enumerate(txs):
        frame = rpc.make_request("eth_sendRawTransaction", [{
            "from": tx.sender, "to": tx.to, "value": tx.value,
            "data": "0x", "gasPrice": tx.gas_price,
            "gas": tx.gas_limit, "nonce": tx.nonce}], f"s{index}")
        _, outcome = server.handle_raw(frame, 1, now=float(index))
        assert outcome.status == "served"
    log.close()
    # A fresh edge (post-crash) replays the journal into a new node.
    entries, torn, next_seq = recover_accepted(path)
    assert torn == 0 and len(entries) == 3 and next_seq == 3
    assert [heard for _, heard in entries] == [0.0, 1.0, 2.0]
    fresh = ForerunnerNode(WorldState(), registry=MetricsRegistry())
    assert restore_pool(fresh, entries) == 3
    assert sorted(fresh.pool) == sorted(tx.hash for tx in txs)
    # Transactions already committed are skipped on restore.
    fresh2 = ForerunnerNode(WorldState(), registry=MetricsRegistry())
    assert restore_pool(fresh2, entries,
                        committed={txs[0].hash}) == 2


# -- serving scenarios (integration) -----------------------------------------


@pytest.fixture(scope="module")
def dataset():
    return record_dataset(DatasetConfig(
        name="edge-test",
        traffic=TrafficConfig(duration=12.0, seed=2021),
        observers={"live": LatencyModel()},
        seed=2021))


def test_serving_trace_is_byte_identical(dataset):
    scenario = build_scenario(dataset, ScenarioConfig(seed=3, load=1.5))
    assert scenario, "scenario must generate requests"
    runs = [run_serving(dataset, scenario,
                        edge_config=EdgeConfig(verify_responses=True))
            for _ in range(2)]
    assert runs[0].trace_lines == runs[1].trace_lines
    assert runs[0].trace_lines  # non-empty
    assert runs[0].server.verify_mismatches == 0


def test_fast_path_responses_equal_direct_execution(dataset):
    scenario = build_scenario(dataset, ScenarioConfig(seed=3, load=2.0))
    result = run_serving(dataset, scenario,
                         edge_config=EdgeConfig(verify_responses=True))
    server = result.server
    # The speculative fast paths genuinely fired ...
    assert server.c_call_memo_hits.value + server.c_call_ap_hits.value > 0
    # ... and every fast-path answer matched fresh plain execution.
    assert server.verify_mismatches == 0
    assert result.goodput > 0.5


def test_witness_carrying_responses(dataset):
    scenario = build_scenario(dataset, ScenarioConfig(seed=5, load=1.0))
    config = EdgeConfig(attach_witnesses=True)
    node_config = ForerunnerConfig(enable_witness=True)
    results = [run_serving(dataset, scenario, edge_config=config,
                           node_config=node_config) for _ in range(2)]
    result = results[0]
    # Byte-stable across runs, witness bodies included.
    assert results[0].trace_lines == results[1].trace_lines
    witnessed = [line for line in result.trace_lines
                 if '"witness"' in line]
    assert witnessed, "no witness-carrying response was served"
    # The digest in a trace response is the digest of the node's own
    # witness for that transaction.
    import json
    by_hash = {w.tx_hash: w for w in result.node.witnesses}
    checked = 0
    for line in witnessed:
        entry = json.loads(line)
        response_result = entry["response"].get("result") or {}
        witness = response_result.get("witness")
        if not witness or "body" not in witness:
            continue
        tx_hash = int(response_result["transactionHash"], 16)
        assert witness["digest"] == witness_digest(by_hash[tx_hash])
        checked += 1
    assert checked > 0


def test_overload_degrades_gracefully(dataset):
    scenario_1x = build_scenario(dataset, ScenarioConfig(seed=3, load=1.0))
    scenario_8x = build_scenario(dataset, ScenarioConfig(seed=3, load=8.0))
    calm = run_serving(dataset, scenario_1x)
    storm = run_serving(dataset, scenario_8x)
    assert calm.goodput >= 0.9
    # Overload protections engaged instead of collapsing: goodput
    # holds a floor and rejections are explicit, structured outcomes.
    assert storm.goodput >= 0.5
    server = storm.server
    engaged = (server.c_backpressure.value + server.c_rate_limited.value
               + server.brownout.c_shed.value
               + server.c_deadline_cancelled.value)
    assert engaged > 0
    assert server.c_internal_errors.value == 0


def test_serving_report_is_canonical(dataset):
    from repro.edge import build_report
    scenario = build_scenario(dataset, ScenarioConfig(seed=3, load=1.0))
    reports = [
        canonical_json(build_report(run_serving(dataset, scenario)))
        for _ in range(2)]
    assert reports[0] == reports[1]
