"""Compiler robustness: malformed input must raise CompileError (or
AssemblerError), never anything else."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AssemblerError, CompileError
from repro.minisol import compile_contract
from repro.minisol.lexer import tokenize
from repro.minisol.parser import parse

TOKENS = ["contract", "C", "{", "}", "(", ")", "uint256", "public",
          "function", "f", "x", ";", "=", "+", "if", "else", "return",
          "mapping", "=>", "[", "]", "require", "7", "while", ",",
          "emit", "event", "private", "returns", "for", "+="]


@settings(max_examples=200)
@given(st.lists(st.sampled_from(TOKENS), max_size=30))
def test_parser_never_crashes(soup):
    source = " ".join(soup)
    try:
        parse(source)
    except CompileError:
        pass  # rejection is the expected failure mode


@settings(max_examples=100)
@given(st.text(max_size=60))
def test_lexer_never_crashes(text):
    try:
        tokenize(text)
    except CompileError:
        pass


@settings(max_examples=80)
@given(st.lists(st.sampled_from(TOKENS), max_size=40))
def test_compile_never_crashes(soup):
    source = "contract C { " + " ".join(soup) + " }"
    try:
        compile_contract(source)
    except (CompileError, AssemblerError):
        pass


@pytest.mark.parametrize("source", [
    "",                                  # empty
    "contract",                          # truncated
    "contract C {",                      # unterminated
    "contract C { uint256 }",            # missing name
    "contract C { function () public {} }",   # missing fn name
    "contract C { mapping(mapping(uint256=>uint256) => uint256) m; }",
    "contract C { function f() public { x = ; } }",
    "contract C { function f() public { if () {} } }",
    "contract C { function f() public { for (;;) {} } }",
])
def test_malformed_sources_rejected(source):
    with pytest.raises(CompileError):
        compile_contract(source)


def test_deeply_nested_expressions_compile():
    expr = "1"
    for _ in range(40):
        expr = f"({expr} + 1)"
    source = f"""
    contract D {{
        function f() public returns (uint256) {{ return {expr}; }}
    }}
    """
    compiled = compile_contract(source)
    assert compiled.code
