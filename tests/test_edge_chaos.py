"""Edge chaos containment: serving faults never reach node commitments.

Each ``edge.*`` fault site runs at 100% probability through a serving
scenario (mirroring tests/test_chaos_degradation.py for the pipeline
sites).  The containment contract: a faulted request can only change
*that request's* response — per-block state roots and receipt cores
are byte-identical to the fault-free serving run, and no fault ever
surfaces as an uncaught exception.
"""

from __future__ import annotations

import pytest

from repro.edge import ScenarioConfig, build_scenario, run_serving
from repro.edge.faults import EDGE_SITES, edge_fault_plan
from repro.p2p.latency import LatencyModel
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig


@pytest.fixture(scope="module")
def dataset():
    return record_dataset(DatasetConfig(
        name="edge-chaos-test",
        traffic=TrafficConfig(duration=12.0, seed=2021),
        observers={"live": LatencyModel()},
        seed=2021))


@pytest.fixture(scope="module")
def scenario(dataset):
    return build_scenario(dataset, ScenarioConfig(seed=0, load=2.0))


@pytest.fixture(scope="module")
def clean(dataset, scenario):
    return run_serving(dataset, scenario)


@pytest.mark.parametrize("site", EDGE_SITES)
def test_single_site_at_full_rate_is_contained(dataset, scenario,
                                               clean, site):
    plan = edge_fault_plan(seed=0, probability=1.0, sites=(site,))
    faulted = run_serving(dataset, scenario, fault_plan=plan)
    # The site genuinely fired ...
    assert faulted.injector.fired(site) > 0, site
    # ... every fault surfaced as a structured response, never an
    # uncaught exception ...
    assert faulted.server.c_internal_errors.value == 0
    # ... and node commitments are byte-identical to the clean run.
    assert faulted.commitments() == clean.commitments(), site
    assert faulted.state_roots() == clean.state_roots(), site


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_faulted_serving_is_deterministic(dataset, scenario, seed):
    plan = edge_fault_plan(seed=seed, probability=0.3)
    runs = [run_serving(dataset, scenario, fault_plan=plan)
            for _ in range(2)]
    assert runs[0].trace_lines == runs[1].trace_lines
    assert (runs[0].injector.fire_summary()
            == runs[1].injector.fire_summary())


def test_all_sites_together_still_contained(dataset, scenario, clean):
    plan = edge_fault_plan(seed=3, probability=0.5)
    faulted = run_serving(dataset, scenario, fault_plan=plan)
    assert faulted.injector.total_fired() > 0
    assert faulted.server.c_internal_errors.value == 0
    assert faulted.commitments() == clean.commitments()
