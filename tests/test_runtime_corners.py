"""Runtime corners: NEQ data guards catching aliasing, LOG replay
through APs, and emulator bookkeeping."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core.accelerator import TransactionAccelerator
from repro.core.ap import AcceleratedProgram
from repro.core.memoize import build_shortcuts
from repro.core.merge import merge_path, prune_tree
from repro.core.sevm import GuardMode, SKind
from repro.core.speculator import synthesize_path
from repro.core.trace import trace_transaction
from repro.evm.assembler import assemble
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState

SENDER = 0xAA
CODE = 0xCC

# Reads slot[timestamp], writes slot[2*timestamp], re-reads
# slot[timestamp]: promotion reuses the first read ONLY under a NEQ
# data guard between the two computed slots.
ALIASING = """
    TIMESTAMP
    SLOAD             ; v = storage[ts]
    PUSH 77
    TIMESTAMP
    PUSH 2
    MUL
    SSTORE            ; storage[2*ts] = 77
    TIMESTAMP
    SLOAD             ; re-read storage[ts]
    ADD
    PUSH 0
    MSTORE
    PUSH 32
    PUSH 0
    RETURN
"""


def make_world(seed_slots=()):
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CODE, code=assemble(ALIASING))
    account = world.get_account(CODE)
    for slot, value in seed_slots:
        account.set_storage(slot, value)
    return world


def build_ap(tx, speculation_ts):
    world = make_world(seed_slots=[(speculation_ts, 5)])
    trace = trace_transaction(
        StateDB(world), BlockHeader(1, speculation_ts, 0xB), tx)
    path = synthesize_path(trace)
    ap = AcceleratedProgram(tx.hash)
    merge_path(ap, path)
    prune_tree(ap)
    build_shortcuts(ap)
    return ap, path


def test_neq_guard_emitted_for_promotion():
    tx = Transaction(sender=SENDER, to=CODE, nonce=0)
    _, path = build_ap(tx, speculation_ts=100)
    neq = [i for i in path.instrs if i.kind is SKind.GUARD
           and i.guard_mode is GuardMode.NEQ]
    assert neq, "promotion across variable slots must emit a NEQ guard"


@pytest.mark.parametrize("actual_ts", [100, 300])
def test_non_aliasing_context_accelerates(actual_ts):
    """ts != 0: slots ts and 2*ts stay distinct -> NEQ holds."""
    tx = Transaction(sender=SENDER, to=CODE, nonce=0)
    ap, _ = build_ap(tx, speculation_ts=100)
    world = make_world(seed_slots=[(actual_ts, 9)])
    evm_world = world.copy()
    header = BlockHeader(1, actual_ts, 0xB)
    expected = EVM(StateDB(evm_world), header, tx).execute_transaction()
    receipt = TransactionAccelerator().execute(
        tx, header, StateDB(world), ap)
    assert receipt.outcome == "satisfied"
    assert receipt.result.return_data == expected.return_data


def test_aliasing_context_violates():
    """ts == 0: both computed slots collapse to slot 0 — the promotion's
    non-aliasing assumption breaks, the NEQ guard fires, and the
    fallback still produces the exact EVM result."""
    tx = Transaction(sender=SENDER, to=CODE, nonce=0)
    ap, _ = build_ap(tx, speculation_ts=100)
    world = make_world(seed_slots=[(0, 9)])
    evm_world = world.copy()
    header = BlockHeader(1, 0, 0xB)
    state = StateDB(evm_world)
    expected = EVM(state, header, tx).execute_transaction()
    state.commit()
    state2 = StateDB(world)
    receipt = TransactionAccelerator().execute(tx, header, state2, ap)
    state2.commit()
    assert receipt.outcome == "violated"
    assert receipt.result.return_data == expected.return_data
    assert world.root() == evm_world.root()


def test_ap_log_replay_bit_exact():
    """LOG topics and straddled data replay exactly through the AP."""
    source = """
        TIMESTAMP
        PUSH 0
        MSTORE
        CALLER
        PUSH 32
        MSTORE
        PUSH 999          ; topic1
        PUSH 48           ; size: straddles both words
        PUSH 16           ; offset
        LOG1
        STOP
    """
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CODE, code=assemble(source))
    tx = Transaction(sender=SENDER, to=CODE, nonce=0)
    trace = trace_transaction(
        StateDB(world.copy()), BlockHeader(1, 1234, 0xB), tx)
    path = synthesize_path(trace)
    ap = AcceleratedProgram(tx.hash)
    merge_path(ap, path)
    prune_tree(ap)
    for ts in (1234, 99999):
        header = BlockHeader(1, ts, 0xB)
        evm_world = world.copy()
        expected = EVM(StateDB(evm_world), header, tx) \
            .execute_transaction()
        ap_world = world.copy()
        receipt = TransactionAccelerator().execute(
            tx, header, StateDB(ap_world), ap)
        assert receipt.result.logs == expected.logs, ts
        assert len(expected.logs) == 1
