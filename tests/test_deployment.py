"""Contract deployment: CREATE, CODECOPY, and deployment transactions."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.node import BaselineNode, ForerunnerNode
from repro.core.speculator import FutureContext, Speculator
from repro.evm.assembler import assemble
from repro.evm.interpreter import EVM
from repro.minisol import compile_contract, decode_uint
from repro.state.statedb import StateDB
from repro.state.world import WorldState

SENDER = 0xDE

COUNTER_SOURCE = """
contract Counter {
    uint256 public count;
    function bump(uint256 by) public { count += by; }
}
"""


def deploy(world, compiled, nonce=0):
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=0, data=compiled.deploy_code(),
                     nonce=nonce, gas_limit=2_000_000)
    result = EVM(state, BlockHeader(1, 1, 0xB), tx).execute_transaction()
    state.commit()
    address = int.from_bytes(result.return_data, "big")
    return result, address


def test_deployment_tx_installs_runtime_code():
    compiled = compile_contract(COUNTER_SOURCE)
    world = WorldState()
    world.create_account(SENDER, balance=10**24)
    result, address = deploy(world, compiled)
    assert result.success
    assert world.get_account(address).code == compiled.code


def test_deployed_contract_is_callable():
    compiled = compile_contract(COUNTER_SOURCE)
    world = WorldState()
    world.create_account(SENDER, balance=10**24)
    _, address = deploy(world, compiled)
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=address,
                     data=compiled.calldata("bump", 5), nonce=1)
    result = EVM(state, BlockHeader(1, 2, 0xB), tx).execute_transaction()
    state.commit()
    assert result.success
    assert world.get_account(address).get_storage(
        compiled.slot_of("count")) == 5


def test_deployment_addresses_unique_per_nonce():
    compiled = compile_contract(COUNTER_SOURCE)
    world = WorldState()
    world.create_account(SENDER, balance=10**24)
    _, addr0 = deploy(world, compiled, nonce=0)
    _, addr1 = deploy(world, compiled, nonce=1)
    assert addr0 != addr1
    assert world.get_account(addr0).code == compiled.code
    assert world.get_account(addr1).code == compiled.code


def test_failed_init_reverts_deployment():
    world = WorldState()
    world.create_account(SENDER, balance=10**24)
    init = assemble("PUSH 0\nPUSH 0\nREVERT")
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=0, data=init, nonce=0,
                     gas_limit=1_000_000)
    result = EVM(state, BlockHeader(1, 1, 0xB), tx).execute_transaction()
    assert not result.success
    assert result.gas_used > 0  # gas still consumed
    assert state.get_nonce(SENDER) == 1


def test_create_opcode_from_contract():
    """A factory contract deploying a child via CREATE."""
    child_runtime = assemble("PUSH 42\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN")
    # Init code returning the child runtime via CODECOPY.
    init = bytes([
        0x61, *len(child_runtime).to_bytes(2, "big"),
        0x61, 0x00, 0x0F,
        0x60, 0x00,
        0x39,
        0x61, *len(child_runtime).to_bytes(2, "big"),
        0x60, 0x00,
        0xF3,
    ]) + child_runtime
    # Factory: stores init code in memory, CREATEs, returns the address.
    factory_lines = []
    for i in range(0, len(init), 32):
        word = init[i:i + 32].ljust(32, b"\x00")
        factory_lines += [f"PUSH {int.from_bytes(word, 'big')}",
                          f"PUSH {i}", "MSTORE"]
    factory_lines += [
        f"PUSH {len(init)}",  # size
        "PUSH 0",             # offset
        "PUSH 0",             # value
        "CREATE",
        "PUSH 0", "MSTORE", "PUSH 32", "PUSH 0", "RETURN",
    ]
    world = WorldState()
    world.create_account(SENDER, balance=10**24)
    world.create_account(0xFAC, code=assemble("\n".join(factory_lines)))
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=0xFAC, nonce=0,
                     gas_limit=2_000_000)
    result = EVM(state, BlockHeader(1, 1, 0xB), tx).execute_transaction()
    state.commit()
    assert result.success
    child = decode_uint(result.return_data)
    assert child != 0
    assert world.get_account(child).code == child_runtime
    # The child is callable.
    state = StateDB(world)
    tx2 = Transaction(sender=SENDER, to=child, nonce=1)
    result2 = EVM(state, BlockHeader(1, 2, 0xB), tx2) \
        .execute_transaction()
    assert decode_uint(result2.return_data) == 42


def test_deployment_not_speculated_but_executes_in_nodes():
    """Deployment txs degrade gracefully: no AP, identical state on
    both node types."""
    compiled = compile_contract(COUNTER_SOURCE)

    def fresh():
        world = WorldState()
        world.create_account(SENDER, balance=10**24)
        return world

    tx = Transaction(sender=SENDER, to=0, data=compiled.deploy_code(),
                     nonce=0, gas_limit=2_000_000)
    speculator = Speculator(fresh())
    assert speculator.speculate(
        tx, FutureContext(1, BlockHeader(1, 1, 0xB))) is None
    assert any("deployment" in (r.error or "")
               for r in speculator.records)

    from repro.chain.block import Block
    block = Block(header=BlockHeader(number=1, timestamp=5,
                                     coinbase=0xE0), transactions=[tx])
    baseline = BaselineNode(fresh())
    fore = ForerunnerNode(fresh())
    fore.on_transaction(tx, now=0.0)
    fore.run_speculation(0.5)
    base_report = baseline.process_block(block)
    fore_report = fore.process_block(block, now=1.0)
    assert base_report.state_root == fore_report.state_root
    assert fore_report.records[0].outcome == "no_ap"


def test_inner_create_makes_trace_unspecializable():
    """A transaction whose trace hits CREATE gets no AP (graceful)."""
    init = bytes([0x60, 0x00, 0x60, 0x00, 0xF3])  # returns empty code
    init_word = int.from_bytes(init + b"\x00" * (32 - len(init)), "big")
    factory = assemble(f"""
        PUSH {init_word}
        PUSH 0
        MSTORE
        PUSH {len(init)}
        PUSH 0
        PUSH 0
        CREATE
        POP
        STOP
    """)
    world = WorldState()
    world.create_account(SENDER, balance=10**24)
    world.create_account(0xFAD, code=factory)
    tx = Transaction(sender=SENDER, to=0xFAD, nonce=0,
                     gas_limit=1_000_000)
    speculator = Speculator(world)
    path = speculator.speculate(
        tx, FutureContext(1, BlockHeader(1, 1, 0xB)))
    assert path is None
    assert any("creation" in (r.error or "")
               for r in speculator.records)
