"""The example scripts must stay runnable (they are documentation)."""

import importlib.util
import os
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples")


def load_example(name):
    path = os.path.join(EXAMPLES_DIR, name)
    spec = importlib.util.spec_from_file_location(
        f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    load_example("quickstart.py").main()
    out = capsys.readouterr().out
    assert "Accelerated Program synthesized" in out
    assert "state-root OK" in out
    assert "MISMATCH" not in out


def test_defi_swaps_runs(capsys):
    load_example("defi_swaps.py").main()
    out = capsys.readouterr().out
    assert "outcome=satisfied" in out
    assert out.count("amountOut") == 2


def test_live_node_simulation_runs(capsys):
    load_example("live_node_simulation.py").main(duration=40.0)
    out = capsys.readouterr().out
    assert "Merkle roots matched" in out
    assert "Forerunner" in out
    assert "Table 3" in out


def test_reorg_handling_runs(capsys):
    load_example("reorg_handling.py").main()
    out = capsys.readouterr().out
    assert "reorgs=1" in out
    assert "state root equals straight-line execution: True" in out
    assert "outcome=satisfied" in out
