"""minisol language extensions: for loops, compound assignment,
private-function inlining — including through the AP pipeline."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core.accelerator import TransactionAccelerator
from repro.core.speculator import FutureContext, Speculator
from repro.errors import CompileError
from repro.evm.interpreter import EVM
from repro.minisol import compile_contract, decode_uint
from repro.state.statedb import StateDB
from repro.state.world import WorldState

SENDER = 0x99
CONTRACT = 0xC9


def run(source, fn, *args, timestamp=1000, storage=None):
    compiled = compile_contract(source)
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CONTRACT, code=compiled.code)
    if storage:
        account = world.get_account(CONTRACT)
        for slot, value in storage.items():
            account.set_storage(slot, value)
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CONTRACT,
                     data=compiled.calldata(fn, *args), nonce=0,
                     gas_limit=3_000_000)
    header = BlockHeader(1, timestamp, 0xB)
    result = EVM(state, header, tx).execute_transaction()
    return compiled, result, state


class TestForLoops:
    def test_basic_for(self):
        source = """
        contract F {
            function sum(uint256 n) public returns (uint256) {
                uint256 acc = 0;
                for (uint256 i = 1; i <= n; i += 1) { acc += i; }
                return acc;
            }
        }
        """
        _, result, _ = run(source, "sum", 10)
        assert decode_uint(result.return_data) == 55

    def test_for_without_init_and_post(self):
        source = """
        contract F {
            function countdown(uint256 n) public returns (uint256) {
                uint256 steps = 0;
                for (; n > 0;) { n -= 1; steps += 1; }
                return steps;
            }
        }
        """
        _, result, _ = run(source, "countdown", 7)
        assert decode_uint(result.return_data) == 7

    def test_nested_for(self):
        source = """
        contract F {
            function grid(uint256 n) public returns (uint256) {
                uint256 cells = 0;
                for (uint256 i = 0; i < n; i += 1) {
                    for (uint256 j = 0; j < n; j += 1) { cells += 1; }
                }
                return cells;
            }
        }
        """
        _, result, _ = run(source, "grid", 5)
        assert decode_uint(result.return_data) == 25

    def test_zero_iterations(self):
        source = """
        contract F {
            function sum(uint256 n) public returns (uint256) {
                uint256 acc = 99;
                for (uint256 i = 0; i < n; i += 1) { acc = 0; }
                return acc;
            }
        }
        """
        _, result, _ = run(source, "sum", 0)
        assert decode_uint(result.return_data) == 99


class TestCompoundAssignment:
    @pytest.mark.parametrize("op,expected", [
        ("+=", 13), ("-=", 7), ("*=", 30), ("/=", 3), ("%=", 1),
    ])
    def test_ops(self, op, expected):
        source = f"""
        contract C {{
            function f(uint256 a, uint256 b) public returns (uint256) {{
                uint256 x = a;
                x {op} b;
                return x;
            }}
        }}
        """
        _, result, _ = run(source, "f", 10, 3)
        assert decode_uint(result.return_data) == expected

    def test_compound_on_mapping(self):
        source = """
        contract C {
            mapping(uint256 => uint256) public table;
            function bump(uint256 k, uint256 by) public {
                table[k] += by;
            }
        }
        """
        compiled, result, state = run(source, "bump", 5, 40)
        assert result.success
        assert state.get_storage(
            CONTRACT, compiled.slot_of("table", 5)) == 40

    def test_compound_on_state_var(self):
        source = """
        contract C {
            uint256 public total;
            function add(uint256 by) public { total += by; }
        }
        """
        compiled, result, state = run(source, "add", 9)
        assert state.get_storage(CONTRACT, compiled.slot_of("total")) == 9


class TestInlining:
    LIB = """
    contract Lib {
        uint256 public log2floor;

        function half(uint256 x) private returns (uint256) {
            return x / 2;
        }

        function ilog2(uint256 x) private returns (uint256) {
            uint256 bits = 0;
            while (x > 1) { x = half(x); bits += 1; }
            return bits;
        }

        function store(uint256 x) public returns (uint256) {
            uint256 b = ilog2(x);
            log2floor = b;
            return b;
        }
    }
    """

    def test_nested_inlining(self):
        compiled, result, state = run(self.LIB, "store", 1000)
        assert result.success
        assert decode_uint(result.return_data) == 9  # floor(log2(1000))
        assert state.get_storage(
            CONTRACT, compiled.slot_of("log2floor")) == 9

    def test_private_not_in_abi(self):
        compiled = compile_contract(self.LIB)
        assert "half" not in compiled.functions
        assert "ilog2" not in compiled.functions
        assert "store" in compiled.functions

    def test_early_return_in_branch(self):
        source = """
        contract C {
            function sign(uint256 x) private returns (uint256) {
                if (x == 0) { return 0; }
                return 1;
            }
            function f(uint256 x) public returns (uint256) {
                return sign(x) * 100 + sign(0);
            }
        }
        """
        _, result, _ = run(source, "f", 5)
        assert decode_uint(result.return_data) == 100

    def test_void_internal_call(self):
        source = """
        contract C {
            uint256 public counter;
            function bump() private { counter += 1; }
            function thrice() public {
                bump(); bump(); bump();
            }
        }
        """
        compiled, result, state = run(source, "thrice")
        assert result.success
        assert state.get_storage(
            CONTRACT, compiled.slot_of("counter")) == 3

    def test_recursion_rejected(self):
        source = """
        contract C {
            function loop(uint256 x) private returns (uint256) {
                return loop(x);
            }
            function f() public returns (uint256) { return loop(1); }
        }
        """
        with pytest.raises(CompileError):
            compile_contract(source)

    def test_unknown_function_rejected(self):
        source = """
        contract C {
            function f() public returns (uint256) { return nope(1); }
        }
        """
        with pytest.raises(CompileError):
            compile_contract(source)

    def test_arity_checked(self):
        source = """
        contract C {
            function g(uint256 a, uint256 b) private returns (uint256) {
                return a + b;
            }
            function f() public returns (uint256) { return g(1); }
        }
        """
        with pytest.raises(CompileError):
            compile_contract(source)


class TestInliningThroughAP:
    def test_inlined_function_ap_equivalence(self):
        source = """
        contract C {
            uint256 public out;
            function weight(uint256 x) private returns (uint256) {
                if (x > 100) { return x * 2; }
                return x * 3;
            }
            function f(uint256 x) public {
                out = weight(x) + weight(x + 200);
            }
        }
        """
        compiled = compile_contract(source)

        def make_world():
            world = WorldState()
            world.create_account(SENDER, balance=10**21)
            world.create_account(CONTRACT, code=compiled.code)
            return world

        tx = Transaction(sender=SENDER, to=CONTRACT,
                         data=compiled.calldata("f", 50), nonce=0)
        header = BlockHeader(1, 1000, 0xB)
        speculator = Speculator(make_world())
        speculator.speculate(tx, FutureContext(1, header))
        ap = speculator.get_ap(tx.hash)

        evm_world = make_world()
        s1 = StateDB(evm_world)
        EVM(s1, header, tx).execute_transaction()
        s1.commit()
        ap_world = make_world()
        s2 = StateDB(ap_world)
        receipt = TransactionAccelerator().execute(tx, header, s2, ap)
        s2.commit()
        assert receipt.outcome == "satisfied"
        assert ap_world.root() == evm_world.root()
        assert ap_world.get_account(CONTRACT).get_storage(
            compiled.slot_of("out")) == 50 * 3 + 250 * 2
