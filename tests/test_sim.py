"""Recorder / emulator integration tests (paper §5.1, §5.4)."""

import pytest

from repro.core import stats as S
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig


@pytest.fixture(scope="module")
def dataset():
    config = DatasetConfig(
        name="T1",
        traffic=TrafficConfig(duration=90.0, seed=21),
        observers={"live": LatencyModel(),
                   "replay": LatencyModel(median=2.2)},
        seed=21,
    )
    return record_dataset(config)


@pytest.fixture(scope="module")
def run(dataset):
    return replay(dataset, "live")


class TestRecorder:
    def test_blocks_pack_all_heard_traffic(self, dataset):
        assert dataset.tx_count > 50
        assert len(dataset.blocks) > 2

    def test_block_numbers_sequential(self, dataset):
        numbers = [b.number for _, b in dataset.blocks]
        assert numbers == list(range(1, len(numbers) + 1))

    def test_state_roots_stamped(self, dataset):
        assert all(b.state_root is not None for _, b in dataset.blocks)

    def test_no_duplicate_packing(self, dataset):
        seen = set()
        for _, block in dataset.blocks:
            for tx in block.transactions:
                assert tx.hash not in seen
                seen.add(tx.hash)

    def test_nonce_order_within_chain(self, dataset):
        next_nonce = {}
        for _, block in dataset.blocks:
            for tx in block.transactions:
                expected = next_nonce.get(tx.sender, 0)
                assert tx.nonce == expected
                next_nonce[tx.sender] = expected + 1

    def test_observers_have_distinct_streams(self, dataset):
        live = dict((tx.hash, t) for t, tx in dataset.tx_arrivals["live"])
        rep = dict((tx.hash, t) for t, tx in dataset.tx_arrivals["replay"])
        common = set(live) & set(rep)
        assert common
        assert any(abs(live[h] - rep[h]) > 0.01 for h in common)

    def test_timestamps_monotone(self, dataset):
        ts = [b.header.timestamp for _, b in dataset.blocks]
        assert all(b > a for a, b in zip(ts, ts[1:]))


class TestEmulator:
    def test_all_roots_match(self, run):
        """§5.2 correctness validation: every block's post-state root
        from the Forerunner node equals the baseline's."""
        assert run.roots_matched == run.blocks_executed > 0

    def test_heard_fraction_realistic(self, run):
        assert 0.85 <= run.heard_fraction() <= 1.0

    def test_majority_satisfied(self, run):
        summary = S.summarize(run.records)
        assert summary.satisfied_fraction > 0.75

    def test_effective_speedup_above_comparators(self, run):
        rows = S.table2(run.records)
        by_name = {row.name: row for row in rows}
        forerunner = by_name["Forerunner"]
        single = by_name["Perfect matching"]
        multi = by_name["Perfect matching + multi-future prediction"]
        assert forerunner.speedup > multi.speedup >= single.speedup > 1.0
        assert forerunner.satisfied_fraction > multi.satisfied_fraction

    def test_outcome_breakdown_ordering(self, run):
        rows = {r.name: r for r in S.table3(run.records)}
        assert rows["satisfied/perfect"].speedup > 1.0
        assert rows["satisfied/imperfect"].speedup > 1.0
        assert rows["unsatisfied/missed"].speedup >= 0.9

    def test_unheard_txs_slower(self, run):
        summary = S.summarize(run.records)
        if any(not r.heard for r in run.records):
            assert summary.unheard_speedup < 1.0

    def test_replay_observer_changes_heard_rate(self, dataset, run):
        other = replay(dataset, "replay")
        assert other.roots_matched == other.blocks_executed
        assert other.heard_fraction() != run.heard_fraction()

    def test_unknown_observer_rejected(self, dataset):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            replay(dataset, "nope")

    def test_speculation_happened(self, run):
        assert run.speculation_jobs > 0
        assert run.total_speculation_cost > 0

    def test_synthesis_report_populated(self, run):
        report = S.synthesis_report(
            run.forerunner_node.speculator.archive, run.records)
        assert report.paths > 0
        assert 0 < report.final_pct < 50.0
        assert report.eliminated_stack_pct > 30.0
        assert report.skip_rate > 0.2

    def test_heard_delay_cdf_monotone(self, run):
        cdf = S.heard_delay_reverse_cdf(run.records)
        fractions = [f for _, f in cdf]
        assert all(a >= b for a, b in zip(fractions, fractions[1:]))
        assert fractions[0] > 0.5
