"""Tests for hashing helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.hashing import hash_words, keccak, keccak_int


def test_keccak_deterministic():
    assert keccak(b"abc") == keccak(b"abc")
    assert keccak(b"abc") != keccak(b"abd")


def test_keccak_length():
    assert len(keccak(b"")) == 32


@given(st.binary(max_size=256))
def test_keccak_int_matches_bytes(data):
    assert keccak_int(data) == int.from_bytes(keccak(data), "big")


@given(st.lists(st.integers(min_value=0, max_value=2**256 - 1),
                max_size=8))
def test_hash_words_deterministic(words):
    assert hash_words(words) == hash_words(list(words))


def test_hash_words_order_sensitive():
    assert hash_words([1, 2]) != hash_words([2, 1])
