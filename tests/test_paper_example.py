"""Integration test: the paper's running example, end to end.

Reproduces §4.2/§4.3: transaction Tx_e (submit(3990300, 1980) to
PriceFeed) speculated in the four future contexts FC1-FC4 of Figure 5,
synthesized into APs shaped like Figures 8/9, merged like Figure 10,
and executed in actual contexts that exercise perfect matches,
imperfect matches (footnote 13's example), branch selection, shortcut
stitching, and constraint violation.
"""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.accelerator import TransactionAccelerator
from repro.core.sevm import GuardMode, SKind
from repro.core.speculator import FutureContext, Speculator
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState

ALICE = 0xA11CE
BOB = 0xB0B
FEED = 0xFEED
PF = pricefeed()
ROUND = 3990300

# Figure 5's four future contexts: (timestamp, activeRoundID, price,
# count) where activeRoundID < ROUND means the round is fresh (FC4).
FC1 = dict(ts=3990462, active=ROUND, price=2000, count=4)
FC2 = dict(ts=3990462, active=ROUND, price=2010, count=6)
FC3 = dict(ts=3990478, active=ROUND, price=2000, count=4)
FC4 = dict(ts=3990478, active=3990000, price=0, count=0)


def world_for(fc):
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=10**24)
    world.create_account(FEED, code=PF.code)
    account = world.get_account(FEED)
    account.set_storage(PF.slot_of("activeRoundID"), fc["active"])
    if fc["active"] == ROUND:
        account.set_storage(PF.slot_of("prices", ROUND), fc["price"])
        account.set_storage(
            PF.slot_of("submissionCounts", ROUND), fc["count"])
    return world


def tx_e():
    return Transaction(sender=ALICE, to=FEED,
                       data=PF.calldata("submit", ROUND, 1980), nonce=0)


@pytest.fixture(scope="module")
def merged_ap():
    """Tx_e speculated in FC1..FC4 and merged into one AP."""
    speculator = Speculator(world_for(FC1))
    for i, fc in enumerate((FC1, FC2, FC3, FC4), start=1):
        speculator.world = world_for(fc)
        speculator.speculate(
            tx_e(),
            FutureContext(i, BlockHeader(1, fc["ts"], 0xBEEF)))
    return speculator.get_ap(tx_e().hash)


def run_actual(ap, fc, ts):
    accelerator = TransactionAccelerator()
    world = world_for(fc)
    state = StateDB(world)
    receipt = accelerator.execute(
        tx_e(), BlockHeader(1, ts, 0xBEEF), state, ap)
    state.commit()
    return receipt, world


def reference(fc, ts):
    world = world_for(fc)
    state = StateDB(world)
    result = EVM(state, BlockHeader(1, ts, 0xBEEF), tx_e()) \
        .execute_transaction()
    state.commit()
    return result, world


def test_four_contexts_merge_into_two_paths(merged_ap):
    """§5.5's shape: FC1/FC2/FC3 share one path; FC4 brings a second."""
    assert len(merged_ap.paths) == 4
    assert merged_ap.path_count() == 2
    assert merged_ap.merge_failures == 0
    assert merged_ap.context_ids == {1, 2, 3, 4}


def test_ap_structure_matches_figure8(merged_ap):
    """The else-branch path has the Figure 8 instruction skeleton."""
    ops = [node.instr.op for node in merged_ap.all_nodes()]
    # Reads: timestamp + three storage loads (activeRoundID, prices,
    # counts); computes include MOD/SUB/EQ/LT/MUL/ADD/DIV; two guards.
    for expected in ("TIMESTAMP", "MOD", "SUB", "EQ", "SLOAD", "LT",
                     "GUARD", "MUL", "ADD", "DIV", "SSTORE"):
        assert expected in ops, f"missing {expected} in AP"


def test_diverging_guard_case_branches(merged_ap):
    """Figure 10: the guard on (activeRoundID < roundID) carries both
    branch keys and routes FC1-3 vs FC4."""
    two_way = [n for n in merged_ap.all_nodes()
               if n.is_guard() and len(n.branches) == 2]
    assert len(two_way) == 1
    guard = two_way[0]
    assert guard.instr.guard_mode is GuardMode.TRUTH
    assert set(guard.branches) == {True, False}


def test_perfect_fc1_all_shortcuts(merged_ap):
    receipt, world = run_actual(merged_ap, FC1, FC1["ts"])
    expected, evm_world = reference(FC1, FC1["ts"])
    assert receipt.outcome == "satisfied"
    assert 1 in receipt.perfect_context_ids
    assert receipt.ap_stats.guards_checked == 0  # memoized away
    assert world.root() == evm_world.root()
    # Paper's FC1 outcome: price 1996, count 5.
    assert world.get_account(FEED).get_storage(
        PF.slot_of("prices", ROUND)) == 1996


def test_perfect_fc4_branch(merged_ap):
    receipt, world = run_actual(merged_ap, FC4, FC4["ts"])
    assert receipt.outcome == "satisfied"
    assert 4 in receipt.perfect_context_ids
    feed = world.get_account(FEED)
    assert feed.get_storage(PF.slot_of("activeRoundID")) == ROUND
    assert feed.get_storage(PF.slot_of("prices", ROUND)) == 1980
    assert feed.get_storage(PF.slot_of("submissionCounts", ROUND)) == 1


def test_footnote13_imperfect_match(merged_ap):
    """v1=3990555 and v5=3990000: m1 takes the else transition but the
    guard still passes -> imperfect prediction, accelerated anyway."""
    receipt, world = run_actual(merged_ap, FC4, 3990555)
    expected, evm_world = reference(FC4, 3990555)
    assert receipt.outcome == "satisfied"
    assert receipt.perfect_context_ids == ()  # no context matched fully
    assert world.root() == evm_world.root()


def test_shortcut_stitching_across_contexts(merged_ap):
    """§4.3: 'the correct parts of several predicted contexts can be
    stitched together' — FC3's timestamp with FC2's storage values."""
    stitched = dict(FC2)
    receipt, world = run_actual(merged_ap, stitched, FC3["ts"])
    expected, evm_world = reference(stitched, FC3["ts"])
    assert receipt.outcome == "satisfied"
    assert receipt.ap_stats.shortcut_hits > 0
    assert world.root() == evm_world.root()


def test_constraint_violation_falls_back(merged_ap):
    """A context outside every constraint set (stale round) triggers
    the fallback, still producing the exact EVM outcome."""
    receipt, world = run_actual(merged_ap, FC1, ROUND + 901)
    expected, evm_world = reference(FC1, ROUND + 901)
    assert receipt.outcome == "violated"
    assert not receipt.result.success
    assert receipt.result.gas_used == expected.gas_used
    assert world.root() == evm_world.root()


def test_imperfect_values_recomputed(merged_ap):
    """Different prices/counts than ANY speculated context: every
    shortcut misses, the fast path recomputes, result is exact."""
    odd = dict(ts=3990470, active=ROUND, price=3333, count=7)
    receipt, world = run_actual(merged_ap, odd, odd["ts"])
    assert receipt.outcome == "satisfied"
    assert world.get_account(FEED).get_storage(
        PF.slot_of("prices", ROUND)) == (3333 * 7 + 1980) // 8


def test_code_reduction_order_of_magnitude(merged_ap):
    """Figure 15: the AP path is a small fraction of the EVM trace."""
    for path in merged_ap.paths:
        stats = path.stats
        assert stats.final_len <= 0.25 * stats.trace_len
