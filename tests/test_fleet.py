"""Fleet subsystem units (:mod:`repro.fleet`).

Covers the consistent-hash shard map (minimal-movement rebalance, home
shard election, snapshots), the sharded nonce-aware txpool (routing,
entangled escalation, cross-shard replace-by-fee, requeue, handoff),
the replica lifecycle supervisor (crash / promotion / journal-replay
restart), the fleet router (placement, failover, deadline penalties),
and the bounded per-client edge maps the fleet leans on.

The cross-shard ordering guarantees ride on seeded property tests
(hypothesis): commit order follows nonce order regardless of which
shard-map generation admitted each transaction, and a reorg requeues
every affected transaction into its *current* home shard's live queue.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chain.transaction import Transaction
from repro.edge.limits import Deadline, LruMap, RetryBudget, RetryConfig
from repro.fleet import (
    FleetConfig,
    FleetSupervisor,
    ShardMap,
    ShardedTxPool,
)
from repro.fleet.shardmap import DEFAULT_VNODES, key_point, ring_point
from repro.obs.registry import MetricsRegistry


def make_tx(sender=0xA1, to=0xB1, nonce=0, gas_price=10, value=1):
    return Transaction(sender=sender, to=to, data=b"", value=value,
                       gas_price=gas_price, gas_limit=100_000,
                       nonce=nonce)


# ---------------------------------------------------------------------------
# shardmap.py


class TestShardMap:
    def test_ownership_is_deterministic(self):
        a = ShardMap(replicas=4)
        b = ShardMap(replicas=4)
        for key in range(200):
            assert a.owner(key) == b.owner(key)

    def test_every_replica_owns_keys(self):
        shardmap = ShardMap(replicas=4)
        owners = {shardmap.owner(key) for key in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_leave_moves_only_the_leavers_keys(self):
        shardmap = ShardMap(replicas=4)
        keys = list(range(400))
        before = {key: shardmap.owner(key) for key in keys}
        assert shardmap.leave(2)
        for key in keys:
            after = shardmap.owner(key)
            if before[key] != 2:
                assert after == before[key], "non-leaver key moved"
            else:
                assert after != 2

    def test_rejoin_restores_ownership_exactly(self):
        shardmap = ShardMap(replicas=4)
        keys = list(range(400))
        before = {key: shardmap.owner(key) for key in keys}
        shardmap.leave(1)
        shardmap.join(1)
        assert {key: shardmap.owner(key) for key in keys} == before

    def test_generation_bumps_on_membership_change_only(self):
        shardmap = ShardMap(replicas=3)
        generation = shardmap.generation
        shardmap.owner(42)
        assert shardmap.generation == generation
        shardmap.leave(0)
        assert shardmap.generation == generation + 1
        assert not shardmap.join(1)  # already a member: no-op
        assert shardmap.generation == generation + 1

    def test_last_member_never_leaves(self):
        shardmap = ShardMap(replicas=2)
        assert shardmap.leave(0)
        assert not shardmap.leave(1)
        assert shardmap.members == (1,)

    def test_home_shard_single_owner_short_circuit(self):
        shardmap = ShardMap(replicas=4)
        key = 7
        assert shardmap.home_shard(key) == shardmap.owner(key)

    def test_home_shard_lowest_ring_position_wins(self):
        shardmap = ShardMap(replicas=4)
        sender, to = 11, 23
        owners = {shardmap.owner(sender), shardmap.owner(to)}
        home = shardmap.home_shard(sender, to)
        assert home in owners
        expected = min(owners, key=lambda rid:
                       (shardmap.ring_position(rid), rid))
        assert home == expected

    def test_snapshot_answers_like_the_live_map_did(self):
        shardmap = ShardMap(replicas=4)
        snapshot = shardmap.snapshot()
        before = {key: shardmap.owner(key) for key in range(200)}
        shardmap.leave(3)
        assert {key: snapshot.owner(key) for key in range(200)} == before

    def test_diff_owners_reports_exact_handoffs(self):
        shardmap = ShardMap(replicas=4)
        keys = list(range(300))
        snapshot = shardmap.snapshot()
        shardmap.leave(2)
        moves = shardmap.diff_owners(keys, snapshot)
        assert moves, "leave must hand off something"
        for key, handoff in moves.items():
            assert handoff.source == 2
            assert handoff.target == shardmap.owner(key)

    def test_ring_points_are_stable_tags(self):
        assert ring_point(0, 0) == ring_point(0, 0)
        assert ring_point(0, 0) != ring_point(0, 1)
        assert key_point(5) != ring_point(5, 0)

    def test_vnode_count_smooths_the_ring(self):
        coarse = ShardMap(replicas=4, vnodes=1)
        fine = ShardMap(replicas=4, vnodes=DEFAULT_VNODES)

        def spread(shardmap):
            counts = {}
            for key in range(2000):
                owner = shardmap.owner(key)
                counts[owner] = counts.get(owner, 0) + 1
            return max(counts.values()) / min(counts.values())

        assert spread(fine) <= spread(coarse)


# ---------------------------------------------------------------------------
# shardpool.py


def make_shardpool(shards=4):
    registry = MetricsRegistry()
    shardmap = ShardMap(replicas=shards)
    return ShardedTxPool(shardmap, registry), shardmap


class TestShardedTxPool:
    def test_routes_to_home_shard(self):
        pool, shardmap = make_shardpool()
        tx = make_tx(sender=3, to=3)
        pool.add(tx, now=1.0)
        home = shardmap.home_shard(tx.sender, tx.to)
        assert tx.hash in pool.pools[home]
        assert pool.shard_of(tx) == home

    def test_entangled_tx_escalates_to_home_shard(self):
        pool, shardmap = make_shardpool()
        tx = None
        for sender in range(64):
            for to in range(64, 128):
                candidate = make_tx(sender=sender, to=to)
                if shardmap.owner(sender) != shardmap.owner(to):
                    tx = candidate
                    break
            if tx is not None:
                break
        assert tx is not None
        assert pool.is_entangled(tx)
        pool.add(tx, now=1.0)
        assert pool.shard_of(tx) == shardmap.home_shard(tx.sender, tx.to)

    def test_cross_shard_replace_by_fee(self):
        pool, shardmap = make_shardpool()
        low = make_tx(sender=9, to=17, nonce=0, gas_price=5)
        high = make_tx(sender=9, to=17, nonce=0, gas_price=9)
        pool.add(low, now=1.0)
        pool.add(high, now=2.0)
        pending = pool.pending()
        assert high.hash in {tx.hash for tx in pending}
        assert low.hash not in {tx.hash for tx in pending}

    def test_requeue_recomputes_home_after_membership_change(self):
        pool, shardmap = make_shardpool()
        tx = make_tx(sender=5, to=5)
        pool.add(tx, now=1.0)
        old_home = pool.shard_of(tx)
        shardmap.leave(old_home)
        pool.requeue(tx, now=2.0)
        new_home = shardmap.home_shard(tx.sender, tx.to)
        assert new_home != old_home
        assert tx.hash in pool.pools[new_home]
        assert tx.hash not in pool.pools[old_home]

    def test_rebalance_moves_exactly_the_handed_off_keys(self):
        pool, shardmap = make_shardpool()
        txs = [make_tx(sender=i, to=i) for i in range(60)]
        for i, tx in enumerate(txs):
            pool.add(tx, float(i))
        homes = {tx.hash: pool.shard_of(tx) for tx in txs}
        leaver = 1
        shardmap.leave(leaver)
        moves, torn = pool.rebalance()
        assert not torn
        moved = {tx.hash for tx in txs if homes[tx.hash] == leaver}
        assert {tx_hash for tx_hash, _, _ in moves} == moved
        assert all(source == leaver for _, source, _ in moves)
        for tx in txs:
            assert tx.hash in pool.pools[pool.shard_of(tx)]
        assert sum(pool.shard_sizes().values()) == len(txs)

    def test_price_sorted_merges_across_shards(self):
        pool, _ = make_shardpool()
        txs = [make_tx(sender=i, to=i, gas_price=1 + (i % 7))
               for i in range(40)]
        for i, tx in enumerate(txs):
            pool.add(tx, float(i))
        merged = pool.price_sorted()
        assert len(merged) == len(txs)
        prices = [tx.gas_price for tx in merged]
        assert prices == sorted(prices, reverse=True)

    def test_ready_for_walks_the_fleet_wide_nonce_index(self):
        pool, _ = make_shardpool()
        sender = 31
        for nonce in (0, 1, 2):
            pool.add(make_tx(sender=sender, to=100 + nonce,
                             nonce=nonce), float(nonce))
        run = pool.ready_for(sender, 0)
        assert [tx.nonce for tx in run] == [0, 1, 2]
        assert pool.ready_for(sender, 1) and \
            pool.ready_for(sender, 1)[0].nonce == 1
        assert pool.ready_for(sender, 5) == []


# ---------------------------------------------------------------------------
# property tests: cross-shard ordering (satellite: seeded hypothesis)


@st.composite
def nonce_chains(draw):
    """A few senders, each with a contiguous nonce chain, plus a
    schedule of shard-map membership changes interleaved with adds."""
    senders = draw(st.lists(st.integers(1, 2**32), min_size=1,
                            max_size=4, unique=True))
    chains = {sender: draw(st.integers(1, 5)) for sender in senders}
    churn = draw(st.lists(st.sampled_from(["leave", "join"]),
                          max_size=4))
    return senders, chains, churn


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=nonce_chains(), seed=st.integers(0, 2**16))
def test_commit_order_follows_nonce_order_across_generations(data, seed):
    """Adds interleaved with shard-map churn: whatever generation
    admitted each tx, the fleet-wide nonce index yields every sender's
    chain in nonce order, and no transaction is lost or duplicated."""
    senders, chains, churn = data
    rng = random.Random(seed)
    registry = MetricsRegistry()
    shardmap = ShardMap(replicas=4)
    pool = ShardedTxPool(shardmap, registry)
    txs = [make_tx(sender=sender, to=rng.getrandbits(32),
                   nonce=nonce, gas_price=1 + rng.randrange(9))
           for sender in senders
           for nonce in range(chains[sender])]
    rng.shuffle(txs)
    events = txs + [("churn", op) for op in churn]
    rng.shuffle(events)
    now = 0.0
    for event in events:
        now += 0.25
        if isinstance(event, tuple):
            _, op = event
            members = list(shardmap.members)
            if op == "leave" and len(members) > 1:
                shardmap.leave(rng.choice(members))
                pool.rebalance()
            elif op == "join":
                absent = [rid for rid in range(4) if rid not in shardmap]
                if absent:
                    shardmap.join(rng.choice(absent))
                    pool.rebalance()
        else:
            pool.add(event, now)
    assert sum(pool.shard_sizes().values()) == len(txs)
    for sender in senders:
        run = pool.ready_for(sender, 0)
        assert [tx.nonce for tx in run] == list(range(chains[sender]))
        homes = {pool.shard_of(tx) for tx in run}
        for tx in run:
            assert tx.hash in pool.pools[pool.shard_of(tx)]
        assert all(home in shardmap for home in homes)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16), count=st.integers(1, 12),
       churn=st.booleans())
def test_reorg_requeue_lands_in_owning_shards_live_queue(seed, count,
                                                        churn):
    """Requeued (reorged) transactions re-enter through their *current*
    home shard — including after a membership change between the
    original admission and the reorg."""
    rng = random.Random(seed)
    registry = MetricsRegistry()
    shardmap = ShardMap(replicas=4)
    pool = ShardedTxPool(shardmap, registry)
    txs = [make_tx(sender=rng.getrandbits(32), to=rng.getrandbits(32),
                   nonce=0) for _ in range(count)]
    for i, tx in enumerate(txs):
        pool.add(tx, float(i))
    # The block "commits" them...
    pool.remove_all([tx.hash for tx in txs])
    assert sum(pool.shard_sizes().values()) == 0
    if churn and len(shardmap.members) > 1:
        shardmap.leave(rng.choice(list(shardmap.members)))
        pool.rebalance()
    # ...then the reorg throws them back.
    for tx in txs:
        pool.requeue(tx, 100.0)
    for tx in txs:
        home = shardmap.home_shard(tx.sender, tx.to)
        assert tx.hash in pool.pools[home]
        others = [rid for rid in shardmap.members if rid != home]
        assert all(tx.hash not in pool.pools[rid] for rid in others)


# ---------------------------------------------------------------------------
# supervisor.py lifecycle


@pytest.fixture()
def small_fleet(world):
    from repro.chain.block import Block, BlockHeader
    genesis = Block(header=BlockHeader(number=0, timestamp=0,
                                       coinbase=0))
    genesis.state_root = world.copy().root()
    supervisor = FleetSupervisor(world, genesis, FleetConfig(shards=4),
                                 registry=MetricsRegistry())
    yield supervisor
    supervisor.close()


class TestSupervisorLifecycle:
    def test_crash_promotes_and_rebalances(self, small_fleet):
        supervisor = small_fleet
        assert supervisor.coordinator_id == 0
        generation = supervisor.shardmap.generation
        assert supervisor.crash(0, now=1.0)
        assert supervisor.replicas[0].status == "down"
        assert supervisor.coordinator_id == 1
        assert supervisor.shardmap.generation == generation + 1
        assert supervisor.c_promotions.value == 1
        # All live replicas share the promoted coordinator's admission.
        for rid in supervisor.live():
            assert supervisor.replicas[rid].node.admission \
                is supervisor.admission

    def test_crash_never_kills_the_last_replica(self, small_fleet):
        supervisor = small_fleet
        for rid in (0, 1, 2):
            assert supervisor.crash(rid, now=1.0)
        assert not supervisor.crash(3, now=1.0)
        assert supervisor.live() == [3]

    def test_restart_rejoins_and_journal_survives(self, small_fleet,
                                                  world):
        supervisor = small_fleet
        tx = make_tx(sender=0xA1, to=0xB1)
        supervisor.on_transaction(tx, now=0.5)
        home = supervisor.home_of(tx)
        victim = home
        supervisor.crash(victim, now=1.0)
        assert victim not in supervisor.shardmap
        # The tx survived the crash in another shard's live queue.
        assert sum(supervisor.shardpool.shard_sizes().values()) == 1
        supervisor.restart(victim, now=5.0)
        assert victim in supervisor.shardmap
        assert supervisor.replicas[victim].status == "up"
        # Restarted node heard the pending tx again via peer resync.
        assert tx.hash in supervisor.replicas[victim].node.pool

    def test_tick_runs_due_restarts(self, small_fleet):
        supervisor = small_fleet
        supervisor.crash(2, now=1.0)
        assert supervisor.pending_restarts
        supervisor.tick(now=1.0 + supervisor.config.restart_delay + 1.0)
        assert not supervisor.pending_restarts
        assert supervisor.replicas[2].status == "up"


# ---------------------------------------------------------------------------
# edge maps are bounded (satellite: LRU eviction regression)


class TestBoundedClientMaps:
    def test_lru_map_caps_and_evicts_in_access_order(self):
        lru = LruMap(capacity=3)
        for key in range(5):
            lru.set(key, key)
        assert len(lru) == 3
        assert lru.evictions == 2
        assert list(lru.keys()) == [2, 3, 4]
        lru.get(2)  # touch: 2 becomes most-recent
        lru.set(99, 99)
        assert list(lru.keys()) == [4, 2, 99]

    def test_ten_thousand_clients_stay_bounded_and_deterministic(self,
                                                                 world):
        from repro.edge.server import EdgeConfig, EdgeServer
        from repro.core.node import ForerunnerNode

        def storm():
            node = ForerunnerNode(world.copy(),
                                  registry=MetricsRegistry())
            config = EdgeConfig(client_state_capacity=256)
            server = EdgeServer(node, config,
                                registry=MetricsRegistry())
            outcomes = []
            for i in range(10_000):
                raw = ('{"jsonrpc":"2.0","id":"c%d","method":"eth_call",'
                       '"params":[{"to":"0x1"}]}' % i)
                _, outcome = server.handle_raw(raw, client_id=i,
                                               now=0.001 * i)
                outcomes.append(outcome.status)
            return server, outcomes

        first, outcomes_a = storm()
        second, outcomes_b = storm()
        assert len(first.buckets) <= 256
        assert first.buckets.evictions == 10_000 - 256
        # Deterministic: same eviction points, byte-identical outcomes.
        assert outcomes_a == outcomes_b
        assert list(first.buckets.keys()) == list(second.buckets.keys())

    def test_retry_budget_rng_map_is_bounded(self):
        budget = RetryBudget(RetryConfig(client_state_capacity=64,
                                         budget_tokens=1e9,
                                         max_attempts=3), seed=7)
        deadline = Deadline(expires_at=1e9, budget_units=1)
        for client in range(1000):
            budget.next_retry(client, 1, now=0.0, deadline=deadline)
        assert len(budget._rngs) <= 64
        # Evicted client streams restart deterministically.
        first = budget.next_retry(0, 1, now=0.0, deadline=deadline)
        fresh = RetryBudget(RetryConfig(client_state_capacity=64,
                                        budget_tokens=1e9), seed=7)
        assert first == fresh.next_retry(0, 1, now=0.0,
                                         deadline=deadline)
