"""Speculator and prefetcher unit tests."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.prefetcher import Prefetcher
from repro.core.speculator import FutureContext, Speculator
from repro.state.nodecache import NodeCache
from repro.state.statedb import StateDB
from repro.state.world import WorldState

from tests.conftest import ALICE, BOB, FEED, ROUND

PF = pricefeed()


def fresh_world():
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=10**24)
    world.create_account(FEED, code=PF.code)
    account = world.get_account(FEED)
    account.set_storage(PF.slot_of("activeRoundID"), ROUND)
    account.set_storage(PF.slot_of("prices", ROUND), 2000)
    account.set_storage(PF.slot_of("submissionCounts", ROUND), 4)
    return world


def tx_e(sender=ALICE, nonce=0, price=1980):
    return Transaction(sender=sender, to=FEED,
                       data=PF.calldata("submit", ROUND, price),
                       nonce=nonce)


def header(ts=3990462):
    return BlockHeader(number=1, timestamp=ts, coinbase=0xBEEF)


class TestSpeculator:
    def test_speculate_creates_ap(self):
        speculator = Speculator(fresh_world())
        path = speculator.speculate(tx_e(), FutureContext(1, header()))
        assert path is not None
        ap = speculator.get_ap(tx_e().hash)
        assert ap is not None and ap.root is not None

    def test_world_not_mutated_by_speculation(self):
        world = fresh_world()
        root_before = world.root()
        speculator = Speculator(world)
        speculator.speculate(tx_e(), FutureContext(1, header()))
        assert world.root() == root_before

    def test_predecessors_applied_to_context(self):
        """Speculating after a predecessor submission sees its effect
        (the FC2 mechanism of Figure 5)."""
        world = fresh_world()
        speculator = Speculator(world)
        predecessor = tx_e(sender=BOB, price=2060)
        context = FutureContext(2, header(), predecessors=(predecessor,))
        path = speculator.speculate(tx_e(), context)
        assert path is not None
        # The read set saw count=5 (after Bob's submission), not 4.
        key = ("storage", (FEED, PF.slot_of("submissionCounts", ROUND)))
        assert path.read_set[key] == 5

    def test_envelope_failure_skipped(self):
        world = fresh_world()
        speculator = Speculator(world)
        bad = tx_e(nonce=99)
        assert speculator.speculate(bad, FutureContext(1, header())) is None
        assert speculator.get_ap(bad.hash) is None
        assert any("envelope" in (r.error or "")
                   for r in speculator.records)

    def test_speculation_cost_accumulates(self):
        speculator = Speculator(fresh_world())
        speculator.speculate(tx_e(), FutureContext(1, header()))
        cost1 = speculator.total_speculation_cost
        assert cost1 > 0
        speculator.speculate(tx_e(), FutureContext(2, header(3990470)))
        assert speculator.total_speculation_cost > cost1

    def test_drop_archives_stats(self):
        speculator = Speculator(fresh_world())
        speculator.speculate(tx_e(), FutureContext(1, header()))
        speculator.drop(tx_e().hash)
        assert speculator.get_ap(tx_e().hash) is None
        assert len(speculator.archive) == 1
        assert speculator.archive[0].paths

    def test_speculate_many(self):
        speculator = Speculator(fresh_world())
        contexts = [FutureContext(i, header(3990462 + i))
                    for i in range(1, 4)]
        merged = speculator.speculate_many(tx_e(), contexts)
        assert merged == 3
        assert len(speculator.get_ap(tx_e().hash).paths) == 3

    def test_drop_releases_prefix_cache_pins(self):
        """Regression: a transaction leaving the pipeline must not stay
        pinned as a predecessor inside cached prefixes — each cached
        prefix holds a frozen StateDB overlay (and the fork chain under
        it) alive for no future benefit."""
        speculator = Speculator(fresh_world())
        predecessor = tx_e(sender=BOB, price=2060)
        context = FutureContext(2, header(),
                                predecessors=(predecessor,))
        speculator.speculate(tx_e(), context)
        cache = speculator.prefix_cache
        assert any(predecessor.hash in key[7] for key in cache._entries)
        speculator.drop(predecessor.hash)
        assert not any(predecessor.hash in key[7]
                       for key in cache._entries)
        assert not any(predecessor.hash in key[7] for key in cache._seen)

    def test_discard_releases_prefix_cache_pins(self):
        speculator = Speculator(fresh_world())
        predecessor = tx_e(sender=BOB, price=2060)
        speculator.speculate(
            tx_e(), FutureContext(2, header(),
                                  predecessors=(predecessor,)))
        speculator.discard(predecessor.hash)
        assert not any(predecessor.hash in key[7]
                       for key in speculator.prefix_cache._entries)

    def test_speculate_contains_unexpected_stage_bugs(self, monkeypatch):
        """Regression (ISSUE satellite): a genuine bug inside one
        context's speculation is contained per-context — speculate
        returns None, appends a failed record, and never escapes."""
        speculator = Speculator(fresh_world())
        monkeypatch.setattr(
            "repro.core.speculator.trace_transaction",
            lambda *a, **k: (_ for _ in ()).throw(
                RuntimeError("stage bug")))
        path = speculator.speculate(tx_e(), FutureContext(1, header()))
        assert path is None
        record = speculator.records[-1]
        assert record.faulted is True
        assert "stage bug" in record.error
        assert speculator.guard.c_unexpected.value == 1

    def test_speculate_many_survives_one_broken_context(self,
                                                        monkeypatch):
        """One broken context never aborts the batch: the other
        contexts still merge and exactly one failed record is kept."""
        from repro.core import speculator as spec_mod

        real_trace = spec_mod.trace_transaction
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("context 2 exploded")
            return real_trace(*args, **kwargs)

        monkeypatch.setattr(spec_mod, "trace_transaction", flaky)
        speculator = Speculator(fresh_world())
        contexts = [FutureContext(i, header(3990462 + i))
                    for i in range(1, 4)]
        merged = speculator.speculate_many(tx_e(), contexts)
        assert merged == 2
        faulted = [r for r in speculator.records if r.faulted]
        assert len(faulted) == 1
        assert faulted[0].context_id == 2


class TestPrefetcher:
    def test_prefetch_warms_node_cache(self):
        world = fresh_world()
        cache = NodeCache()
        prefetcher = Prefetcher(world, cache)
        slot = PF.slot_of("prices", ROUND)
        warmed = prefetcher.prefetch(
            [("storage", (FEED, slot)), ("balance", (ALICE,))],
            tx_sender=ALICE, tx_to=FEED)
        assert warmed >= 2
        state = StateDB(world, node_cache=cache)
        state.get_storage(FEED, slot)
        assert state.disk.stats.cold_slot_loads == 0

    def test_prefetch_cost_accounted_offpath(self):
        world = fresh_world()
        prefetcher = Prefetcher(world, NodeCache())
        prefetcher.prefetch([("storage", (FEED, 0))])
        assert prefetcher.offpath_cost > 0

    def test_prefetch_turns_cold_reads_into_warm_hits(self):
        """Isolation: after a prefetch, a fresh critical-path StateDB
        performs zero cold trie walks on the prefetched keys — every
        lookup is a warm NodeCache hit at exactly WARM_COST units."""
        from repro.state.diskio import WARM_COST

        world = fresh_world()
        cache = NodeCache()
        slot = PF.slot_of("prices", ROUND)

        # Without prefetching, the same reads walk the trie from disk.
        cold_state = StateDB(world, node_cache=NodeCache())
        cold_state.get_storage(FEED, slot)
        cold_state.get_balance(ALICE)
        assert cold_state.disk.stats.cold_account_loads > 0
        assert cold_state.disk.stats.cold_slot_loads > 0

        prefetcher = Prefetcher(world, cache)
        prefetcher.prefetch(
            [("storage", (FEED, slot)), ("balance", (ALICE,))],
            tx_sender=ALICE, tx_to=FEED)
        # The cold-walk expense was paid off the critical path.
        assert prefetcher.offpath_cost > 0

        warm_state = StateDB(world, node_cache=cache)
        warm_state.get_storage(FEED, slot)
        warm_state.get_balance(ALICE)
        stats = warm_state.disk.stats
        assert stats.cold_account_loads == 0
        assert stats.cold_slot_loads == 0
        assert stats.warm_hits > 0
        assert stats.cost_units == stats.warm_hits * WARM_COST

    def test_prefetch_idempotent(self):
        world = fresh_world()
        prefetcher = Prefetcher(world, NodeCache())
        keys = [("storage", (FEED, 0))]
        first = prefetcher.prefetch(keys)
        second = prefetcher.prefetch(keys)
        assert first >= 1
        assert second == 0
