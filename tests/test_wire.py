"""Wire-plane units: exactly-once ordered delivery, retry/escalation,
bounded link state (the 10^4-message soak), partitions, the failure
detector, the warmth tracker, and the lease registry's safety math.

Integration-level proofs (clean byte-identity with the in-process
fleet, net chaos containment, partition-driven lease elections) live
in ``tests/test_fleet_wire.py``.
"""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.faults.injector import FaultInjector
from repro.fleet.faults import (
    SITE_NET_DROP,
    SITE_NET_DUPLICATE,
    SITE_NET_REORDER,
    net_fault_plan,
)
from repro.fleet.lease import LeaseRegistry
from repro.fleet.wire import (
    Envelope,
    FailureDetector,
    WarmthTracker,
    WireConfig,
    WirePlane,
)
from repro.obs.registry import MetricsRegistry


def make_plane(plan=None, **overrides):
    config = WireConfig(**overrides)
    if plan is not None:
        injector = FaultInjector(plan, registry=MetricsRegistry())
    else:
        from repro.faults.injector import NULL_INJECTOR
        injector = NULL_INJECTOR
    return WirePlane(config, injector=injector,
                     registry=MetricsRegistry())


def collect(plane, dst, channel):
    """Register a list-appending handler; returns the effect list."""
    effects = []

    def handler(payload, attachment, at):
        effects.append((payload["i"], attachment, at))

    plane.register(dst, channel, handler)
    return effects


class TestCleanDelivery:
    def test_fifo_exactly_once(self):
        plane = make_plane()
        effects = collect(plane, 1, "ch")
        for i in range(10):
            plane.send(0, 1, "ch", {"i": i}, now=float(i))
        plane.flush(10.0)
        assert [e[0] for e in effects] == list(range(10))
        # Every reliable message was acked — no retry state remains.
        assert len(plane._inflight) == 0
        assert plane.c_retries.value == 0
        assert plane.c_dedup.value == 0

    def test_clean_network_zero_latency(self):
        """On a clean network the flush micro-clock never advances:
        effects land at the send-time barrier."""
        plane = make_plane()
        effects = collect(plane, 1, "ch")
        plane.send(0, 1, "ch", {"i": 0}, now=3.5)
        clock = plane.flush(3.5)
        assert clock == 3.5
        assert effects == [(0, None, 3.5)]

    def test_attachment_rides_outside_frame(self):
        """Data plane by reference: the attachment is delivered as-is
        while the control payload round-trips through canonical JSON."""
        plane = make_plane()
        effects = collect(plane, 1, "ch")
        blob = object()
        env = plane.send(0, 1, "ch", {"i": 7}, now=0.0, attachment=blob)
        plane.flush(0.0)
        assert effects[0][1] is blob
        assert '"payload": {"i": 7}' not in env.framed()  # canonical:
        assert '"payload":{"i":7}' in env.framed()  # compact separators

    def test_sequences_are_per_link_and_channel(self):
        plane = make_plane()
        a = plane.send(0, 1, "ch", {"i": 0}, now=0.0)
        b = plane.send(0, 1, "other", {"i": 0}, now=0.0)
        c = plane.send(0, 2, "ch", {"i": 0}, now=0.0)
        d = plane.send(0, 1, "ch", {"i": 1}, now=0.0)
        assert (a.seq, b.seq, c.seq, d.seq) == (0, 0, 0, 1)

    def test_missing_handler_is_an_error(self):
        plane = make_plane()
        plane.send(0, 9, "nowhere", {"i": 0}, now=0.0)
        with pytest.raises(SimulationError):
            plane.flush(0.0)


class TestHostileDelivery:
    def test_full_drop_converges_by_escalation(self):
        """p=1.0 drop: every first transmission is lost; retransmits
        escalate past fault evaluation and the stream still arrives
        exactly once, in order."""
        plan = net_fault_plan(seed=0, probability=1.0,
                              sites=(SITE_NET_DROP,))
        plane = make_plane(plan)
        effects = collect(plane, 1, "ch")
        for i in range(20):
            plane.send(0, 1, "ch", {"i": i}, now=0.0)
        plane.flush(0.0)
        assert [e[0] for e in effects] == list(range(20))
        assert plane.c_retries.value > 0
        assert plane.c_escalations.value >= 20
        assert len(plane._inflight) == 0

    def test_full_duplication_dedups(self):
        plan = net_fault_plan(seed=0, probability=1.0,
                              sites=(SITE_NET_DUPLICATE,))
        plane = make_plane(plan)
        effects = collect(plane, 1, "ch")
        for i in range(20):
            plane.send(0, 1, "ch", {"i": i}, now=0.0)
        plane.flush(0.0)
        assert [e[0] for e in effects] == list(range(20))
        assert plane.c_dedup.value > 0

    def test_reorder_holds_back_future_sequences(self):
        plan = net_fault_plan(seed=1, probability=0.5,
                              sites=(SITE_NET_REORDER,))
        plane = make_plane(plan)
        effects = collect(plane, 1, "ch")
        for i in range(30):
            plane.send(0, 1, "ch", {"i": i}, now=0.0)
        plane.flush(0.0)
        assert [e[0] for e in effects] == list(range(30))
        assert plane.c_held.value > 0
        assert plane.holdback_high_water > 0

    def test_unreliable_newest_wins(self):
        plane = make_plane()
        effects = collect(plane, 1, "hb")
        for i in range(3):
            plane.send(0, 1, "hb", {"i": i}, now=float(i),
                       reliable=False)
        plane.flush(3.0)
        # Forge a stale (already superseded) copy arriving late.
        stale = Envelope(src=0, dst=1, channel="hb", seq=0,
                         generation=0, payload={"i": 0}, reliable=False)
        plane.sim.transmit(stale, 4.0)
        plane.flush(4.0)
        assert [e[0] for e in effects] == [0, 1, 2]
        assert plane.c_dedup.value == 1
        # Unreliable sends never occupy retry state.
        assert len(plane._inflight) == 0

    def test_partition_parks_and_heal_delivers(self):
        plane = make_plane()
        effects = collect(plane, 1, "ch")
        plane.partition({1}, now=0.0, seconds=10.0)
        plane.send(0, 1, "ch", {"i": 0}, now=0.0)
        plane.flush(0.0)
        assert effects == []
        assert plane.sim.parked_count == 1
        # The cut link is excluded from retries — flush quiesces.
        assert plane.c_retries.value == 0
        plane.heal(5.0)
        plane.flush(5.0)
        assert [e[0] for e in effects] == [0]
        assert plane.sim.parked_count == 0

    def test_reset_peer_clears_link_state(self):
        plane = make_plane()
        collect(plane, 1, "ch")
        collect(plane, 2, "ch")
        plane.send(0, 1, "ch", {"i": 0}, now=0.0)
        plane.send(0, 2, "ch", {"i": 0}, now=0.0)
        plane.flush(0.0)
        assert plane._next_seq[(0, 1, "ch")] == 1
        plane.reset_peer(1)
        assert (0, 1, "ch") not in plane._next_seq
        assert (0, 1, "ch") not in plane._recv
        # The untouched peer keeps its window.
        assert plane._next_seq[(0, 2, "ch")] == 1


class TestSoakBounds:
    """Satellite: the per-link in-flight and dedup-window maps are
    LruMap-bounded — a 10^4-message lossy soak cannot grow memory."""

    def test_soak_10k_messages_bounded_and_ordered(self):
        plan = net_fault_plan(seed=3, probability=0.05,
                              sites=(SITE_NET_DROP, SITE_NET_DUPLICATE,
                                     SITE_NET_REORDER))
        plane = make_plane(plan, inflight_capacity=256,
                           holdback_capacity=64)
        receivers = {dst: collect(plane, dst, "soak")
                     for dst in range(1, 5)}
        total = 10_000
        for i in range(total):
            dst = 1 + (i % 4)
            plane.send(0, dst, "soak", {"i": i}, now=float(i) * 0.01)
            if i % 50 == 49:
                plane.flush(float(i) * 0.01)
        plane.flush(float(total) * 0.01)
        # Exactly-once, order-preserving per (sender, channel) stream.
        for dst, effects in receivers.items():
            expected = [i for i in range(total) if 1 + (i % 4) == dst]
            assert [e[0] for e in effects] == expected
        # Bounded state: high-water marks respect the LruMap caps and
        # nothing is left in flight after the final settle.
        assert plane.inflight_high_water <= 256
        assert plane.holdback_high_water <= 64
        assert len(plane._inflight) == 0
        assert len(plane._recv) == 4
        summary = plane.summary()
        assert summary["delivered"] == summary["effects"] == total
        assert summary["retries"] > 0
        assert summary["dedup_dropped"] > 0


class TestFailureDetector:
    def test_silence_makes_suspects(self):
        detector = FailureDetector(suspect_after=5.0, members=(0, 1, 2))
        detector.heard(0, 4.0)
        detector.heard(1, 4.0)
        assert detector.suspects(8.0, (0, 1, 2)) == [2]
        assert detector.suspects(9.5, (0, 1, 2)) == [0, 1, 2]

    def test_fresh_incarnation_flags_restart(self):
        detector = FailureDetector(suspect_after=5.0, members=(0,))
        assert detector.heard(0, 1.0, incarnation=0) is True
        assert detector.heard(0, 2.0, incarnation=0) is False
        assert detector.heard(0, 3.0, incarnation=1) is True

    def test_heard_never_goes_backwards(self):
        detector = FailureDetector(suspect_after=5.0, members=(0,))
        detector.heard(0, 4.0)
        detector.heard(0, 2.0)  # a healed, late heartbeat
        assert detector.last_seen[0] == 4.0


class TestWarmthTracker:
    def test_ewma_and_snapshot(self):
        tracker = WarmthTracker(alpha=0.5)
        assert tracker.warmth(0) == 0.0
        tracker.update(0, 1.0)
        tracker.update(0, 0.0)
        assert tracker.warmth(0) == pytest.approx(0.5)
        tracker.update(1, 0.25)
        assert tracker.snapshot() == {0: 0.5, 1: 0.25}


class TestLeaseRegistry:
    def test_one_vote_per_member_per_term(self):
        lease = LeaseRegistry(lease_seconds=6.0)
        term = lease.open_term()
        assert lease.cast_vote(term, member=0, candidate=1)
        assert not lease.cast_vote(term, member=0, candidate=2)
        assert lease.cast_vote(term, member=0, candidate=1)
        assert lease.denied_votes == 1

    def test_quorum_grant_and_validity(self):
        lease = LeaseRegistry(lease_seconds=6.0)
        term = lease.open_term()
        for member in (0, 1, 2):
            lease.cast_vote(term, member, candidate=1)
            lease.record_grant(term, 1, member)
        granted = lease.grant(term, 1, now=10.0)
        assert granted.votes == (0, 1, 2)
        assert lease.valid(1, 12.0)
        assert not lease.valid(1, 16.0)  # expired
        assert not lease.valid(2, 12.0)  # wrong holder
        assert lease.remaining(12.0) == pytest.approx(4.0)

    def test_split_brain_grant_is_impossible(self):
        lease = LeaseRegistry(lease_seconds=6.0)
        term = lease.open_term()
        lease.grant(term, 1, now=0.0)
        with pytest.raises(SimulationError):
            lease.grant(term, 2, now=0.0)
        # Same-holder re-grant is the idempotent path, not an error.
        assert lease.grant(term, 1, now=1.0).holder == 1
        lease.assert_single_holder_per_term()

    def test_oracle_checks_ledger_backing(self):
        lease = LeaseRegistry(lease_seconds=6.0)
        term = lease.open_term()
        for member in (0, 1):
            lease.cast_vote(term, member, candidate=0)
            lease.record_grant(term, 0, member)
        lease.grant(term, 0, now=0.0)
        lease.assert_single_holder_per_term()
        # Tamper: claim a vote the ledger never recorded.
        lease.votes[term].pop(1)
        with pytest.raises(SimulationError):
            lease.assert_single_holder_per_term()
