"""Differential conformance oracle + the signed/edge opcode audit.

Satellite coverage, in one place:

* the full oracle sweep — >= 200 generated cases per seed across the
  arithmetic / comparison / memory / storage categories, seeds 0-2,
  zero divergences, byte-identical reports across two runs;
* a named regression test per audited edge case (SDIV INT_MIN / -1,
  SMOD sign, SAR >= 256, SIGNEXTEND >= 31, BYTE >= 32, EXP exponent
  0), each pinned to its hand-computed Yellow-Paper value and run
  through interpreter, walk, JIT, and checker;
* a deterministic regression for the JIT return-piece overlap bug the
  oracle found (folded pieces bake into the compile-time template,
  which runtime patches overwrite regardless of piece order).
"""

from __future__ import annotations

import random

import pytest

from repro.core.ap import AcceleratedProgram, Terminal, build_chain
from repro.core.ap_exec import execute_ap
from repro.core.costmodel import CostTally
from repro.core.sevm import GuardMode, Reg, SInstr, SKind
from repro.evm.jit.specialize import compile_ap
from repro.obs.export import canonical_json
from repro.state.statedb import StateDB
from repro.state.world import WorldState
from repro.witness.oracle import (
    _EVM_HEADER,
    _run_evm_reference,
    CATEGORIES,
    DIRECTED_CASES,
    generate_case,
    run_case,
    run_oracle,
)

_M = 1 << 256
_SEEDS = (0, 1, 2)
_CASES = 200


# ---------------------------------------------------------------------------
# Full sweep: seeds 0-2, >= 200 cases, zero divergences, byte-stable
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sweeps():
    return {seed: run_oracle(seed, cases=_CASES) for seed in _SEEDS}


@pytest.mark.parametrize("seed", _SEEDS)
def test_sweep_has_zero_divergences(sweeps, seed):
    report = sweeps[seed]
    assert report.cases >= _CASES
    assert report.divergences == []
    assert report.ok


@pytest.mark.parametrize("seed", _SEEDS)
def test_sweep_covers_every_category(sweeps, seed):
    report = sweeps[seed]
    for category in CATEGORIES:
        assert report.by_category.get(category, 0) > 0, category


@pytest.mark.parametrize("seed", _SEEDS)
def test_sweep_exercises_every_tier(sweeps, seed):
    report = sweeps[seed]
    assert report.jit_compiled > 0
    assert report.evm_cross_checks > 0
    assert report.witness_checks == report.cases


def test_two_runs_produce_byte_identical_reports():
    first = canonical_json(run_oracle(0, cases=60).as_dict())
    second = canonical_json(run_oracle(0, cases=60).as_dict())
    assert first == second


def test_directed_cases_always_lead_the_plan():
    """The audit list runs under every seed, before the random fill."""
    report = run_oracle(7, cases=len(DIRECTED_CASES))
    assert report.cases == len(DIRECTED_CASES)
    assert report.ok


# ---------------------------------------------------------------------------
# Satellite 1: named edge-case regressions, one per audited semantic.
# Each expected value is hand-computed from the Yellow Paper; the case
# then runs through every tier via run_case (walk, JIT, checker, and —
# since the operands are constants — the assembled-bytecode
# interpreter), so a regression in ANY tier fails the named test.
# ---------------------------------------------------------------------------

def _check_edge(op: str, operands: tuple, expected_word: int) -> None:
    case = generate_case(random.Random(0), 0, (op, operands))
    assert case.evm_check == (op, operands)
    actual = int.from_bytes(case.expected_return[:32], "big")
    assert actual == expected_word % _M, (
        f"reference model for {op}{operands} disagrees with the "
        f"hand-computed value")
    divergences, jit_compiled = run_case(case)
    assert divergences == [], divergences
    assert jit_compiled
    # Belt and braces: the plain interpreter on assembled bytecode.
    evm = _run_evm_reference(op, operands)
    assert evm["success"], evm
    assert evm["word"] == expected_word % _M


def test_sdiv_int_min_overflow():
    # INT_MIN / -1 overflows to INT_MIN (the EVM wraps, it must not
    # raise or produce +2^255).
    _check_edge("SDIV", (1 << 255, _M - 1), 1 << 255)
    # Truncation toward zero: -7 / 2 == -3 (not floor's -4).
    _check_edge("SDIV", (_M - 7, 2), _M - 3)
    _check_edge("SDIV", (7, _M - 2), _M - 3)
    _check_edge("SDIV", (5, 0), 0)


def test_smod_sign_convention():
    # The result takes the dividend's sign: -7 smod 5 == -2.
    _check_edge("SMOD", (_M - 7, 5), _M - 2)
    # Positive dividend, negative divisor: 7 smod -5 == +2.
    _check_edge("SMOD", (7, _M - 5), 2)
    _check_edge("SMOD", (_M - 8, _M - 3), _M - 2)   # -8 smod -3 == -2
    _check_edge("SMOD", (7, 0), 0)


def test_sar_shift_ge_256():
    # Shifts >= 256 saturate: all-ones for negative, zero otherwise.
    _check_edge("SAR", (256, _M - 1), _M - 1)
    _check_edge("SAR", (300, 1 << 255), _M - 1)
    _check_edge("SAR", (256, 5), 0)
    # In-range negative shift keeps the sign bits: -8 >> 1 == -4.
    _check_edge("SAR", (1, _M - 8), _M - 4)


def test_signextend_index_ge_31():
    # Byte index >= 31 means the value is already full width: identity.
    _check_edge("SIGNEXTEND", (31, _M - 1), _M - 1)
    _check_edge("SIGNEXTEND", (32, 0x80), 0x80)
    _check_edge("SIGNEXTEND", (100, 0xFF), 0xFF)
    # In-range: byte 0 of 0x80 has its high bit set -> -128.
    _check_edge("SIGNEXTEND", (0, 0x80), _M - 128)
    _check_edge("SIGNEXTEND", (0, 0x7F), 0x7F)


def test_byte_index_ge_32():
    # Out-of-range byte index reads as zero, never wraps.
    _check_edge("BYTE", (32, _M - 1), 0)
    _check_edge("BYTE", (255, _M - 1), 0)
    _check_edge("BYTE", (31, 0xAB), 0xAB)           # least significant
    _check_edge("BYTE", (0, 0xAB << 248), 0xAB)     # most significant


def test_exp_zero_exponent():
    # Anything ** 0 == 1, including 0 ** 0.
    _check_edge("EXP", (0, 0), 1)
    _check_edge("EXP", (7, 0), 1)
    _check_edge("EXP", (0, 7), 0)
    _check_edge("EXP", (2, 256), 0)                 # wraps mod 2^256


def test_shift_amount_ge_256_zeroes():
    _check_edge("SHL", (256, 1), 0)
    _check_edge("SHR", (256, _M - 1), 0)
    _check_edge("SHL", (255, 1), 1 << 255)


# ---------------------------------------------------------------------------
# Satellite 2: the walked-vs-JIT return-piece overlap regression.
# ---------------------------------------------------------------------------

_SENDER = 0xA11CE
_CONTRACT = 0xC0DE


def _overlap_ap() -> AcceleratedProgram:
    """AP whose return layout triggers the folded-piece overlap bug.

    ``v0`` is live (an SLOAD the specializer must materialize at run
    time); ``v1`` is a constant compute the specializer folds.  The
    pieces place the live patch FIRST and an overlapping folded piece
    SECOND: since pieces apply in order, the folded bytes must win on
    the overlap — but folded pieces are baked into the compile-time
    template, which runtime patches get applied over.  A specializer
    without the overlap check returns v0's bytes where v1's belong.
    """
    v0, v1 = Reg(0), Reg(1)
    instrs = [
        SInstr(SKind.READ, "SLOAD", dest=v0, args=(0,),
               key=(_CONTRACT,)),
        SInstr(SKind.COMPUTE, "ADD", dest=v1,
               args=(0x1111, 0x2222)),
        SInstr(SKind.GUARD, "GUARD", args=(v0,),
               guard_mode=GuardMode.EQ,
               expected=0xDEADBEEF, is_control=False),
    ]
    pieces = [
        (8, ("reg", v0, 0, 32)),        # live patch, applied first
        (16, ("reg", v1, 0, 32)),       # folded, overlaps [16, 40)
    ]
    terminal = Terminal(path_ids=[1], success=True, gas_used=30_000,
                        return_pieces=pieces, return_size=48,
                        read_set={})
    ap = AcceleratedProgram(tx_hash=1)
    ap.root = build_chain(instrs, terminal)
    ap.context_ids = {0}
    return ap


def _overlap_world() -> WorldState:
    world = WorldState()
    world.create_account(_SENDER, balance=10 ** 24)
    world.create_account(_CONTRACT).set_storage(0, 0xDEADBEEF)
    return world


def test_jit_return_piece_overlap_matches_walk():
    ap = _overlap_ap()
    walk = execute_ap(ap, StateDB(_overlap_world()), _EVM_HEADER, None,
                      tally=CostTally())
    compiled = compile_ap(ap, version=0)
    jit = compiled.fn(StateDB(_overlap_world()), _EVM_HEADER,
                      lambda n: 0, CostTally())
    assert walk.return_data == jit.return_data
    # And both equal the spec: piece 2's folded constant owns the
    # overlap, so bytes [16, 48) are v1's word and only [8, 16) holds
    # v0's leading zeros.
    expected = bytearray(48)
    expected[8:40] = (0xDEADBEEF).to_bytes(32, "big")
    expected[16:48] = (0x3333).to_bytes(32, "big")
    assert walk.return_data == bytes(expected)


def test_jit_folded_piece_without_overlap_stays_templated():
    """Disjoint folded pieces keep the fast template path (no generic
    fallback) and still match the walk byte for byte."""
    v0, v1 = Reg(0), Reg(1)
    instrs = [
        SInstr(SKind.READ, "SLOAD", dest=v0, args=(0,),
               key=(_CONTRACT,)),
        SInstr(SKind.COMPUTE, "ADD", dest=v1, args=(7, 8)),
        SInstr(SKind.GUARD, "GUARD", args=(v0,),
               guard_mode=GuardMode.EQ,
               expected=0xDEADBEEF, is_control=False),
    ]
    pieces = [(0, ("reg", v1, 24, 8)), (32, ("reg", v0, 24, 8))]
    terminal = Terminal(path_ids=[1], success=True, gas_used=30_000,
                        return_pieces=pieces, return_size=40,
                        read_set={})
    ap = AcceleratedProgram(tx_hash=2)
    ap.root = build_chain(instrs, terminal)
    ap.context_ids = {0}
    walk = execute_ap(ap, StateDB(_overlap_world()), _EVM_HEADER, None,
                      tally=CostTally())
    jit = compile_ap(ap, version=0).fn(
        StateDB(_overlap_world()), _EVM_HEADER, lambda n: 0, CostTally())
    assert walk.return_data == jit.return_data
    expected = bytearray(40)
    expected[0:8] = (15).to_bytes(8, "big")
    expected[32:40] = (0xDEADBEEF).to_bytes(8, "big")
    assert walk.return_data == bytes(expected)
