"""Behavioural tests for the contract library."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import amm, auction, erc20, pricefeed, registry
from repro.evm.interpreter import EVM
from repro.minisol import decode_uint
from repro.state.statedb import StateDB
from repro.state.world import WorldState

from tests.conftest import (
    ALICE,
    AUCTION_ADDR,
    BOB,
    FEED,
    POOL,
    REGISTRY_ADDR,
    ROUND,
    TOKEN,
    TOKEN1,
)


def send(world, sender, to, data, *, nonce=0, timestamp=3990462):
    state = StateDB(world)
    tx = Transaction(sender=sender, to=to, data=data, nonce=nonce)
    header = BlockHeader(number=1, timestamp=timestamp, coinbase=0xBEEF)
    result = EVM(state, header, tx).execute_transaction()
    state.commit()
    return result


# -- PriceFeed (paper Figure 4) ----------------------------------------------

class TestPriceFeed:
    def test_first_submission_opens_round(self, world):
        pf = pricefeed()
        result = send(world, ALICE, FEED,
                      pf.calldata("submit", ROUND, 1980))
        assert result.success
        feed = world.get_account(FEED)
        assert feed.get_storage(pf.slot_of("activeRoundID")) == ROUND
        assert feed.get_storage(pf.slot_of("prices", ROUND)) == 1980
        assert feed.get_storage(
            pf.slot_of("submissionCounts", ROUND)) == 1

    def test_later_submission_averages(self, oracle_world):
        pf = pricefeed()
        # FC1 state: price 2000, count 4.  1980 arrives -> avg 1996.
        result = send(oracle_world, ALICE, FEED,
                      pf.calldata("submit", ROUND, 1980))
        assert result.success
        feed = oracle_world.get_account(FEED)
        assert feed.get_storage(pf.slot_of("prices", ROUND)) == 1996
        assert feed.get_storage(
            pf.slot_of("submissionCounts", ROUND)) == 5

    def test_stale_round_reverts(self, oracle_world):
        pf = pricefeed()
        result = send(oracle_world, ALICE, FEED,
                      pf.calldata("submit", ROUND, 1980),
                      timestamp=ROUND + 600)
        assert not result.success

    def test_round_boundaries(self, world):
        pf = pricefeed()
        # Last second of the round is still valid.
        result = send(world, ALICE, FEED,
                      pf.calldata("submit", ROUND, 5),
                      timestamp=ROUND + 299)
        assert result.success
        result = send(world, BOB, FEED,
                      pf.calldata("submit", ROUND, 5),
                      timestamp=ROUND + 300)
        assert not result.success


# -- ERC20 ----------------------------------------------------------------------

class TestToken:
    def _fund(self, world, holder, amount):
        token = erc20()
        world.get_account(TOKEN).set_storage(
            token.slot_of("balanceOf", holder), amount)

    def test_transfer_moves_balance(self, world):
        token = erc20()
        self._fund(world, ALICE, 1000)
        result = send(world, ALICE, TOKEN,
                      token.calldata("transfer", BOB, 300))
        assert result.success and decode_uint(result.return_data) == 1
        account = world.get_account(TOKEN)
        assert account.get_storage(token.slot_of("balanceOf", ALICE)) == 700
        assert account.get_storage(token.slot_of("balanceOf", BOB)) == 300

    def test_transfer_insufficient_reverts(self, world):
        token = erc20()
        self._fund(world, ALICE, 10)
        result = send(world, ALICE, TOKEN,
                      token.calldata("transfer", BOB, 300))
        assert not result.success

    def test_transfer_emits_event(self, world):
        token = erc20()
        self._fund(world, ALICE, 1000)
        result = send(world, ALICE, TOKEN,
                      token.calldata("transfer", BOB, 1))
        assert len(result.logs) == 1

    def test_approve_and_transfer_from(self, world):
        token = erc20()
        self._fund(world, ALICE, 1000)
        send(world, ALICE, TOKEN, token.calldata("approve", BOB, 500))
        result = send(world, BOB, TOKEN,
                      token.calldata("transferFrom", ALICE, BOB, 400))
        assert result.success
        account = world.get_account(TOKEN)
        assert account.get_storage(
            token.slot_of("allowance", ALICE, BOB)) == 100
        assert account.get_storage(token.slot_of("balanceOf", BOB)) == 400

    def test_transfer_from_over_allowance_reverts(self, world):
        token = erc20()
        self._fund(world, ALICE, 1000)
        send(world, ALICE, TOKEN, token.calldata("approve", BOB, 100))
        result = send(world, BOB, TOKEN,
                      token.calldata("transferFrom", ALICE, BOB, 400))
        assert not result.success

    def test_mint(self, world):
        token = erc20()
        result = send(world, ALICE, TOKEN,
                      token.calldata("mint", BOB, 777))
        assert result.success
        account = world.get_account(TOKEN)
        assert account.get_storage(token.slot_of("totalSupply")) == 777


# -- AMM --------------------------------------------------------------------------

class TestAmm:
    def _setup_pool(self, world, r0=10**6, r1=10**6):
        pool = amm()
        token = erc20()
        account = world.get_account(POOL)
        account.set_storage(pool.slot_of("reserve0"), r0)
        account.set_storage(pool.slot_of("reserve1"), r1)
        account.set_storage(pool.slot_of("token0"), TOKEN)
        account.set_storage(pool.slot_of("token1"), TOKEN1)
        account.set_storage(pool.slot_of("selfAddr"), POOL)
        world.get_account(TOKEN).set_storage(
            token.slot_of("balanceOf", ALICE), 10**9)
        world.get_account(TOKEN).set_storage(
            token.slot_of("allowance", ALICE, POOL), 10**18)
        world.get_account(TOKEN1).set_storage(
            token.slot_of("balanceOf", POOL), 10**9)

    def test_swap_constant_product(self, world):
        self._setup_pool(world)
        pool = amm()
        result = send(world, ALICE, POOL,
                      pool.calldata("swap0to1", 1000, 0))
        assert result.success
        amount_in_fee = 1000 * 997
        expected = amount_in_fee * 10**6 // (10**6 * 1000 + amount_in_fee)
        assert decode_uint(result.return_data) == expected
        account = world.get_account(POOL)
        assert account.get_storage(pool.slot_of("reserve0")) == 10**6 + 1000
        assert account.get_storage(pool.slot_of("reserve1")) == \
            10**6 - expected

    def test_swap_respects_min_out(self, world):
        self._setup_pool(world)
        pool = amm()
        result = send(world, ALICE, POOL,
                      pool.calldata("swap0to1", 1000, 10**9))
        assert not result.success

    def test_zero_amount_rejected(self, world):
        self._setup_pool(world)
        pool = amm()
        result = send(world, ALICE, POOL,
                      pool.calldata("swap0to1", 0, 0))
        assert not result.success

    def test_swap_order_changes_outputs(self, world):
        """Dense inter-dependence: order of two swaps changes results."""
        pool = amm()
        token = erc20()
        self._setup_pool(world)
        world.get_account(TOKEN).set_storage(
            token.slot_of("balanceOf", BOB), 10**9)
        world.get_account(TOKEN).set_storage(
            token.slot_of("allowance", BOB, POOL), 10**18)
        world_b = world.copy()
        # Order A: Alice then Bob.
        r1 = send(world, ALICE, POOL, pool.calldata("swap0to1", 5000, 0))
        r2 = send(world, BOB, POOL, pool.calldata("swap0to1", 5000, 0))
        # Order B: Bob then Alice.
        r3 = send(world_b, BOB, POOL, pool.calldata("swap0to1", 5000, 0))
        r4 = send(world_b, ALICE, POOL, pool.calldata("swap0to1", 5000, 0))
        assert decode_uint(r2.return_data) < decode_uint(r1.return_data)
        assert decode_uint(r4.return_data) == decode_uint(r2.return_data)


# -- Auction -----------------------------------------------------------------------

class TestAuction:
    def _setup(self, world, deadline=5000):
        compiled = auction()
        world.get_account(AUCTION_ADDR).set_storage(
            compiled.slot_of("deadline"), deadline)
        return compiled

    def test_first_bid(self, world):
        compiled = self._setup(world)
        result = send(world, ALICE, AUCTION_ADDR,
                      compiled.calldata("bid", 100), timestamp=1000)
        assert result.success
        account = world.get_account(AUCTION_ADDR)
        assert account.get_storage(compiled.slot_of("highBid")) == 100
        assert account.get_storage(
            compiled.slot_of("highBidder")) == ALICE

    def test_outbid_credits_refund(self, world):
        compiled = self._setup(world)
        send(world, ALICE, AUCTION_ADDR, compiled.calldata("bid", 100),
             timestamp=1000)
        result = send(world, BOB, AUCTION_ADDR,
                      compiled.calldata("bid", 150), timestamp=1001)
        assert result.success
        account = world.get_account(AUCTION_ADDR)
        assert account.get_storage(
            compiled.slot_of("refunds", ALICE)) == 100
        assert len(result.logs) == 2  # Outbid + NewHighBid

    def test_low_bid_rejected(self, world):
        compiled = self._setup(world)
        send(world, ALICE, AUCTION_ADDR, compiled.calldata("bid", 100),
             timestamp=1000)
        result = send(world, BOB, AUCTION_ADDR,
                      compiled.calldata("bid", 100), timestamp=1001)
        assert not result.success

    def test_bid_after_deadline_rejected(self, world):
        compiled = self._setup(world, deadline=500)
        result = send(world, ALICE, AUCTION_ADDR,
                      compiled.calldata("bid", 100), timestamp=501)
        assert not result.success

    def test_settle_only_after_deadline(self, world):
        compiled = self._setup(world, deadline=500)
        early = send(world, ALICE, AUCTION_ADDR,
                     compiled.calldata("settle"), timestamp=499)
        assert not early.success
        late = send(world, ALICE, AUCTION_ADDR,
                    compiled.calldata("settle"), timestamp=500, nonce=1)
        assert late.success
        again = send(world, BOB, AUCTION_ADDR,
                     compiled.calldata("settle"), timestamp=501)
        assert not again.success


# -- Registry ----------------------------------------------------------------------

class TestRegistry:
    def test_register(self, world):
        compiled = registry()
        result = send(world, ALICE, REGISTRY_ADDR,
                      compiled.calldata("register", 777))
        assert result.success
        account = world.get_account(REGISTRY_ADDR)
        assert account.get_storage(
            compiled.slot_of("ownerOf", 777)) == ALICE
        assert account.get_storage(
            compiled.slot_of("registrations")) == 1

    def test_register_taken_name_reverts(self, world):
        compiled = registry()
        send(world, ALICE, REGISTRY_ADDR, compiled.calldata("register", 1))
        result = send(world, BOB, REGISTRY_ADDR,
                      compiled.calldata("register", 1))
        assert not result.success

    def test_register_many_loop(self, world):
        compiled = registry()
        result = send(world, ALICE, REGISTRY_ADDR,
                      compiled.calldata("registerMany", 100, 8))
        assert result.success
        account = world.get_account(REGISTRY_ADDR)
        for i in range(8):
            assert account.get_storage(
                compiled.slot_of("ownerOf", 100 + i)) == ALICE
        assert account.get_storage(
            compiled.slot_of("holdings", ALICE)) == 8

    def test_register_paid_pulls_fee(self, world):
        compiled = registry()
        token = erc20()
        sink = 0x511C
        account = world.get_account(REGISTRY_ADDR)
        account.set_storage(compiled.slot_of("feeToken"), TOKEN)
        account.set_storage(compiled.slot_of("feeSink"), sink)
        world.get_account(TOKEN).set_storage(
            token.slot_of("balanceOf", REGISTRY_ADDR), 100)
        result = send(world, ALICE, REGISTRY_ADDR,
                      compiled.calldata("registerPaid", 55))
        assert result.success
        token_account = world.get_account(TOKEN)
        assert token_account.get_storage(
            token.slot_of("balanceOf", sink)) == 1
        assert token_account.get_storage(
            token.slot_of("balanceOf", REGISTRY_ADDR)) == 99

    def test_transfer_name(self, world):
        compiled = registry()
        send(world, ALICE, REGISTRY_ADDR, compiled.calldata("register", 9))
        result = send(world, ALICE, REGISTRY_ADDR,
                      compiled.calldata("transferName", 9, BOB), nonce=1)
        assert result.success
        account = world.get_account(REGISTRY_ADDR)
        assert account.get_storage(compiled.slot_of("ownerOf", 9)) == BOB

    def test_transfer_name_requires_ownership(self, world):
        compiled = registry()
        send(world, ALICE, REGISTRY_ADDR, compiled.calldata("register", 9))
        result = send(world, BOB, REGISTRY_ADDR,
                      compiled.calldata("transferName", 9, BOB))
        assert not result.success
