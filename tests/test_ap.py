"""AP structure, merging, memoization, and execution tests —
including the paper's §4.2 running example (Figures 8-10)."""

import pytest

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.contracts import pricefeed
from repro.core.accelerator import TransactionAccelerator
from repro.core.ap import AcceleratedProgram, Terminal
from repro.core.ap_exec import execute_ap
from repro.core.memoize import build_shortcuts
from repro.core.merge import merge_path, prune_tree, structurally_equal
from repro.core.sevm import SKind
from repro.core.speculator import FutureContext, Speculator, synthesize_path
from repro.core.trace import trace_transaction
from repro.errors import ConstraintViolation
from repro.evm.interpreter import EVM
from repro.state.statedb import StateDB
from repro.state.world import WorldState

from tests.conftest import ALICE, FEED, ROUND

PF = pricefeed()


def fresh_world(active_round=ROUND, price=2000, count=4):
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(FEED, code=PF.code)
    account = world.get_account(FEED)
    account.set_storage(PF.slot_of("activeRoundID"), active_round)
    if active_round == ROUND:
        account.set_storage(PF.slot_of("prices", ROUND), price)
        account.set_storage(PF.slot_of("submissionCounts", ROUND), count)
    return world


def tx_e():
    return Transaction(sender=ALICE, to=FEED,
                       data=PF.calldata("submit", ROUND, 1980), nonce=0)


def header(ts):
    return BlockHeader(number=1, timestamp=ts, coinbase=0xBEEF)


def build_merged_ap():
    """Speculate Tx_e in FC1 (else-branch) and FC4 (if-branch)."""
    world = fresh_world(ROUND)
    spec = Speculator(world)
    spec.speculate(tx_e(), FutureContext(1, header(3990462)))
    world.get_account(FEED).set_storage(
        PF.slot_of("activeRoundID"), 3990000)
    spec.speculate(tx_e(), FutureContext(4, header(3990478)))
    return spec.get_ap(tx_e().hash)


class TestSynthesis:
    def test_single_path(self):
        world = fresh_world()
        trace = trace_transaction(StateDB(world), header(3990462), tx_e())
        path = synthesize_path(trace)
        assert path.success
        assert path.gas_used == trace.result.gas_used
        assert path.read_set


class TestMerging:
    def test_two_branch_merge(self):
        ap = build_merged_ap()
        assert ap is not None
        assert len(ap.paths) == 2
        assert ap.path_count() == 2
        assert ap.merge_failures == 0

    def test_same_path_different_values_merges_to_one_terminal(self):
        world = fresh_world(price=2000, count=4)
        spec = Speculator(world)
        spec.speculate(tx_e(), FutureContext(1, header(3990462)))
        world.get_account(FEED).set_storage(
            PF.slot_of("prices", ROUND), 2010)
        world.get_account(FEED).set_storage(
            PF.slot_of("submissionCounts", ROUND), 6)
        spec.speculate(tx_e(), FutureContext(2, header(3990462)))
        ap = spec.get_ap(tx_e().hash)
        assert len(ap.paths) == 2
        assert ap.path_count() == 1  # same control path (FC1 vs FC2)

    def test_structural_equality_ignores_guard_expectation(self):
        ap = build_merged_ap()
        nodes = ap.all_nodes()
        guards = [n for n in nodes if n.is_guard()]
        assert guards
        for g in guards:
            assert structurally_equal(g.instr, g.instr)

    def test_guard_case_branching(self):
        """The diverging guard holds BOTH branch keys (paper Fig. 10)."""
        ap = build_merged_ap()
        branch_guards = [n for n in ap.all_nodes()
                         if n.is_guard() and len(n.branches) == 2]
        assert branch_guards, "expected a two-way case-branching guard"

    def test_prune_keeps_all_guards(self):
        ap = build_merged_ap()
        guards_before = sum(1 for n in ap.all_nodes() if n.is_guard())
        prune_tree(ap)
        guards_after = sum(1 for n in ap.all_nodes() if n.is_guard())
        assert guards_before == guards_after


class TestShortcuts:
    def test_shortcuts_built(self):
        ap = build_merged_ap()
        assert ap.shortcut_count > 0
        with_shortcut = [n for n in ap.all_nodes() if n.shortcut]
        assert with_shortcut

    def test_merged_shortcut_entries(self):
        """Shortcut entries from multiple contexts coexist on one node
        (paper Figure 10: m3 holds 2000 and 2010)."""
        world = fresh_world(price=2000, count=4)
        spec = Speculator(world)
        spec.speculate(tx_e(), FutureContext(1, header(3990462)))
        world.get_account(FEED).set_storage(
            PF.slot_of("prices", ROUND), 2010)
        world.get_account(FEED).set_storage(
            PF.slot_of("submissionCounts", ROUND), 6)
        spec.speculate(tx_e(), FutureContext(2, header(3990462)))
        ap = spec.get_ap(tx_e().hash)
        multi_entry = [n for n in ap.all_nodes()
                       if n.shortcut and len(n.shortcut.entries) >= 2]
        assert multi_entry


class TestExecution:
    def test_perfect_match_skips_guards(self):
        ap = build_merged_ap()
        world = fresh_world(ROUND)
        state = StateDB(world)
        outcome = execute_ap(ap, state, header(3990462), tx_e())
        assert outcome.success
        assert outcome.stats.shortcut_hits > 0
        assert outcome.stats.guards_checked == 0  # all skipped

    def test_imperfect_match_executes(self):
        ap = build_merged_ap()
        world = fresh_world(ROUND, price=1234, count=9)
        state = StateDB(world)
        outcome = execute_ap(ap, state, header(3990500), tx_e())
        assert outcome.success
        # Values changed -> recompute: 1234*9+1980 // 10
        assert state.get_storage(
            FEED, PF.slot_of("prices", ROUND)) == (1234 * 9 + 1980) // 10

    def test_branch_selection(self):
        ap = build_merged_ap()
        world = fresh_world(3990000)  # fresh round -> FC4 branch
        state = StateDB(world)
        outcome = execute_ap(ap, state, header(3990478), tx_e())
        assert outcome.success
        assert state.get_storage(FEED, PF.slot_of("activeRoundID")) == ROUND
        assert state.get_storage(FEED, PF.slot_of("prices", ROUND)) == 1980

    def test_violation_raises_and_leaves_state_untouched(self):
        ap = build_merged_ap()
        world = fresh_world(ROUND)
        state = StateDB(world)
        root_before = world.root()
        with pytest.raises(ConstraintViolation):
            execute_ap(ap, state, header(ROUND + 700), tx_e())
        state.commit()
        assert world.root() == root_before  # rollback-free

    def test_gas_constant_per_path(self):
        ap = build_merged_ap()
        world = fresh_world(ROUND, price=55, count=2)
        outcome = execute_ap(ap, StateDB(world), header(3990470), tx_e())
        evm_world = fresh_world(ROUND, price=55, count=2)
        state = StateDB(evm_world)
        result = EVM(state, header(3990470), tx_e()).execute_transaction()
        assert outcome.gas_used == result.gas_used
