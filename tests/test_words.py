"""Unit and property tests for 256-bit word helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constants import UINT256_MAX, UINT256_MOD
from repro.utils.words import (
    bytes_to_int,
    int_to_bytes32,
    to_signed,
    to_unsigned,
    u256,
)

words = st.integers(min_value=0, max_value=UINT256_MAX)


def test_u256_wraps():
    assert u256(UINT256_MOD) == 0
    assert u256(UINT256_MOD + 5) == 5
    assert u256(-1) == UINT256_MAX


def test_to_signed_boundaries():
    assert to_signed(0) == 0
    assert to_signed(UINT256_MAX) == -1
    assert to_signed(2**255) == -(2**255)
    assert to_signed(2**255 - 1) == 2**255 - 1


@given(words)
def test_signed_roundtrip(value):
    assert to_unsigned(to_signed(value)) == value


@given(words)
def test_bytes_roundtrip(value):
    assert bytes_to_int(int_to_bytes32(value)) == value


@given(words)
def test_bytes32_length(value):
    assert len(int_to_bytes32(value)) == 32


@given(st.integers())
def test_u256_always_in_range(value):
    assert 0 <= u256(value) <= UINT256_MAX


def test_int_to_bytes_truncates():
    from repro.utils.words import int_to_bytes
    assert int_to_bytes(0x1234, 1) == b"\x34"
    assert int_to_bytes(0xABCD, 2) == b"\xab\xcd"
