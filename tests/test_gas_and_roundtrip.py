"""Gas accounting details and assembler round-trip properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.evm import opcodes
from repro.evm.assembler import assemble, disassemble
from repro.evm.interpreter import EVM, MEMORY_WORD_GAS, SHA3_WORD_GAS
from repro.state.statedb import StateDB
from repro.state.world import WorldState

SENDER = 0xAB
CODE = 0xCD


def gas_of(source, gas_limit=500_000):
    world = WorldState()
    world.create_account(SENDER, balance=10**21)
    world.create_account(CODE, code=assemble(source))
    state = StateDB(world)
    tx = Transaction(sender=SENDER, to=CODE, nonce=0,
                     gas_limit=gas_limit)
    result = EVM(state, BlockHeader(1, 1, 0xB), tx).execute_transaction()
    assert result.success, result.error
    return result.gas_used


class TestGas:
    def test_stop_costs_intrinsic_only(self):
        assert gas_of("STOP") == 21_000

    def test_arithmetic_costs_add_up(self):
        base = gas_of("STOP")
        # PUSH(3) + PUSH(3) + ADD(3) + POP(2)
        assert gas_of("PUSH 1\nPUSH 2\nADD\nPOP") == base + 3 + 3 + 3 + 2

    def test_memory_expansion_charged_per_word(self):
        # MSTORE at 0 expands 1 word; at 32 expands one more.
        one = gas_of("PUSH 1\nPUSH 0\nMSTORE")
        two = gas_of("PUSH 1\nPUSH 0\nMSTORE\nPUSH 1\nPUSH 32\nMSTORE")
        mstore_static = opcodes.OPCODES[0x52].gas + 2 * 3  # op + pushes
        assert two - one == mstore_static + MEMORY_WORD_GAS

    def test_memory_reuse_not_recharged(self):
        once = gas_of("PUSH 1\nPUSH 0\nMSTORE")
        twice = gas_of("PUSH 1\nPUSH 0\nMSTORE\nPUSH 2\nPUSH 0\nMSTORE")
        mstore_static = opcodes.OPCODES[0x52].gas + 2 * 3
        assert twice - once == mstore_static  # no expansion second time

    def test_sha3_word_gas(self):
        small = gas_of("PUSH 32\nPUSH 0\nSHA3\nPOP")
        large = gas_of("PUSH 64\nPUSH 0\nSHA3\nPOP")
        # One extra hashed word + one extra memory word expanded.
        assert large - small == SHA3_WORD_GAS + MEMORY_WORD_GAS

    def test_gas_opcode_reports_remaining(self):
        world = WorldState()
        world.create_account(SENDER, balance=10**21)
        world.create_account(CODE, code=assemble(
            "GAS\nPUSH 0\nMSTORE\nPUSH 32\nPUSH 0\nRETURN"))
        state = StateDB(world)
        tx = Transaction(sender=SENDER, to=CODE, nonce=0,
                         gas_limit=100_000)
        result = EVM(state, BlockHeader(1, 1, 0xB), tx) \
            .execute_transaction()
        remaining = int.from_bytes(result.return_data, "big")
        assert 0 < remaining < 100_000 - 21_000


_SIMPLE_OPS = ["ADD", "MUL", "SUB", "DIV", "AND", "OR", "XOR", "POP",
               "DUP1", "DUP2", "SWAP1", "JUMPDEST", "CALLER",
               "TIMESTAMP", "MLOAD", "MSTORE", "SLOAD", "ISZERO"]


@st.composite
def programs(draw):
    lines = []
    for _ in range(draw(st.integers(1, 30))):
        if draw(st.booleans()):
            lines.append(f"PUSH {draw(st.integers(0, 2**256 - 1))}")
        else:
            lines.append(draw(st.sampled_from(_SIMPLE_OPS)))
    return "\n".join(lines)


class TestAssemblerRoundTrip:
    @settings(max_examples=80)
    @given(programs())
    def test_disassemble_reassemble_identity(self, source):
        code = assemble(source)
        listing = disassemble(code)
        rebuilt_lines = []
        for _, name, imm in listing:
            if imm is not None:
                width = int(name[4:])
                rebuilt_lines.append(f"PUSH{width} {imm}")
            else:
                rebuilt_lines.append(name)
        assert assemble("\n".join(rebuilt_lines)) == code

    @settings(max_examples=40)
    @given(programs())
    def test_disassembly_covers_every_byte(self, source):
        code = assemble(source)
        listing = disassemble(code)
        covered = 0
        for pc, name, imm in listing:
            assert pc == covered
            if imm is not None:
                covered += 1 + int(name[4:])
            else:
                covered += 1
        assert covered == len(code)
