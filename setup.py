"""Legacy setup shim: lets `setup.py develop` work where pip's
wheel-based editable install is unavailable (offline environment)."""
from setuptools import setup

setup()
