"""Price-oracle feed under speculation: the paper's motivating workload.

Oracle feeds are infrastructure for DeFi (paper §4.2): many reporters
submit prices into shared 300-second rounds, so submissions to the same
feed are inter-dependent AND timestamp-sensitive.  This example builds
an oracle-only traffic period, runs the full DiCE simulation, and shows
how Forerunner handles the two context-variation axes (ordering of
submissions, block timestamps) — the exact Figure 5 situation, at
traffic scale.

Run:  python examples/price_oracle_feed.py
"""

from repro.core import stats as S
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig


def main():
    # Oracle-heavy traffic: 4 feeds x 8 reporters, almost nothing else.
    traffic = TrafficConfig(
        duration=400.0, seed=31,
        oracle_feeds=4, oracle_reporters=8,
        token_rate=0.1, dex_rate=0.05, auction_rate=0.0,
        registry_rate=0.0, eth_transfer_rate=0.1,
    )
    config = DatasetConfig(name="oracle", traffic=traffic,
                           observers={"live": LatencyModel()}, seed=31)
    print("Recording an oracle-dominated traffic period "
          "(4 feeds x 8 reporters, 300s rounds)...")
    dataset = record_dataset(config)
    print(f"  {dataset.tx_count} transactions in "
          f"{len(dataset.blocks)} blocks\n")

    run = replay(dataset, "live")
    oracle_records = [r for r in run.records if r.kind == "oracle"]
    heard = [r for r in oracle_records if r.heard]
    satisfied = [r for r in heard if r.outcome == "satisfied"]
    perfect = [r for r in satisfied if r.perfect]

    print("Oracle submissions:")
    print(f"  total executed:        {len(oracle_records)}")
    print(f"  heard in advance:      {len(heard)}")
    print(f"  constraints satisfied: {len(satisfied)} "
          f"({len(satisfied) / max(1, len(heard)):.1%})")
    print(f"  perfectly predicted:   {len(perfect)} "
          f"({len(perfect) / max(1, len(heard)):.1%})")
    print(f"  speedup (all heard):   "
          f"{S.aggregate_speedup(heard):.2f}x")
    imperfect = [r for r in satisfied if not r.perfect]
    if imperfect:
        print(f"  speedup (imperfect):   "
              f"{S.aggregate_speedup(imperfect):.2f}x   <- the "
              f"constraint-based win:")
        print("     these contexts matched NO speculated future exactly")
        print("     (different submission counts / timestamps), yet the")
        print("     CD-Equiv constraints held and the fast path ran.")

    print(f"\nMerkle roots matched on all {run.roots_matched} blocks; "
          f"whole-run effective speedup "
          f"{S.summarize(run.records).effective_speedup:.2f}x")


if __name__ == "__main__":
    main()
