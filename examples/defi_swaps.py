"""DeFi swaps: the many-future problem and multi-future speculation.

Concurrent AMM swaps are densely inter-dependent — the pool's reserves
change with every swap, so the *order* miners pick changes everyone's
output (the paper's §4.2 cause (i)).  A single-future speculator
predicts one order and loses whenever reality picks another; Forerunner
speculates several orderings and merges them into one AP whose guards
case-branch between the constraint sets.

This example sets up one pool and two pending swaps, speculates the
second swap under both orderings, and executes it under each reality.

Run:  python examples/defi_swaps.py
"""

from repro.chain import BlockHeader, Transaction
from repro.contracts import amm, erc20
from repro.core.accelerator import TransactionAccelerator
from repro.core.speculator import FutureContext, Speculator
from repro.evm.interpreter import EVM
from repro.minisol import decode_uint
from repro.state import StateDB, WorldState

ALICE, BOB = 0xA11CE, 0xB0B
TOKEN0, TOKEN1, POOL = 0x70, 0x71, 0xF00
AMM = amm()
TOK = erc20()


def make_world():
    world = WorldState()
    for trader in (ALICE, BOB):
        world.create_account(trader, balance=10**24)
    world.create_account(TOKEN0, code=TOK.code)
    world.create_account(TOKEN1, code=TOK.code)
    world.create_account(POOL, code=AMM.code)
    pool = world.get_account(POOL)
    pool.set_storage(AMM.slot_of("reserve0"), 10**9)
    pool.set_storage(AMM.slot_of("reserve1"), 10**9)
    pool.set_storage(AMM.slot_of("token0"), TOKEN0)
    pool.set_storage(AMM.slot_of("token1"), TOKEN1)
    pool.set_storage(AMM.slot_of("selfAddr"), POOL)
    for trader in (ALICE, BOB):
        world.get_account(TOKEN0).set_storage(
            TOK.slot_of("balanceOf", trader), 10**12)
        world.get_account(TOKEN0).set_storage(
            TOK.slot_of("allowance", trader, POOL), 10**18)
    world.get_account(TOKEN1).set_storage(
        TOK.slot_of("balanceOf", POOL), 10**12)
    return world


def main():
    header = BlockHeader(1, 1000, 0xBEEF)
    bob_swap = Transaction(sender=BOB, to=POOL,
                           data=AMM.calldata("swap0to1", 5_000_000, 0),
                           nonce=0)
    alice_swap = Transaction(sender=ALICE, to=POOL,
                             data=AMM.calldata("swap0to1", 5_000_000, 0),
                             nonce=0)

    # Speculate ALICE's swap under both orderings miners might pick.
    speculator = Speculator(make_world())
    speculator.speculate(alice_swap, FutureContext(1, header))  # Alice first
    speculator.speculate(alice_swap, FutureContext(
        2, header, predecessors=(bob_swap,)))                   # Bob first
    ap = speculator.get_ap(alice_swap.hash)
    print(f"AP for Alice's swap: {len(ap.paths)} speculated futures, "
          f"{ap.path_count()} distinct control path(s), "
          f"{ap.shortcut_count} shortcuts\n")

    accelerator = TransactionAccelerator()
    for label, predecessors in (("Alice's swap executes FIRST", ()),
                                ("Bob's swap lands BEFORE Alice's",
                                 (bob_swap,))):
        world = make_world()
        state = StateDB(world)
        for predecessor in predecessors:
            EVM(state, header, predecessor).execute_transaction()
        receipt = accelerator.execute(alice_swap, header, state, ap)
        out = decode_uint(receipt.result.return_data)
        print(f"{label}:")
        print(f"  outcome={receipt.outcome}  amountOut={out:,}  "
              f"perfect_contexts={receipt.perfect_context_ids}")
        shortcut = receipt.ap_stats
        if shortcut:
            print(f"  nodes executed={shortcut.executed_nodes} "
                  f"skipped={shortcut.skipped_nodes} "
                  f"(shortcut hits={shortcut.shortcut_hits})")
        print()

    print("Both orderings were covered by ONE merged AP; the ordering")
    print("only changes which memoized values apply — Figure 10's")
    print("\"stitching together the correct parts of several predicted")
    print("contexts\".")


if __name__ == "__main__":
    main()
