"""Quickstart: the paper's running example, in ~80 lines of API use.

Reproduces §4.2/§4.3: transaction Tx_e submits a price to the PriceFeed
oracle (Figure 4).  We speculate it in two future contexts (FC1's
"later submission" path and FC4's "first submission of a fresh round"
path), merge the synthesized accelerated programs, and execute against
actual contexts — including one that matches no speculated context
perfectly yet still satisfies the CD-Equiv constraints.

Run:  python examples/quickstart.py
"""

from repro.chain import BlockHeader, Transaction
from repro.contracts import pricefeed
from repro.core.accelerator import TransactionAccelerator
from repro.core.prefetcher import Prefetcher
from repro.core.speculator import FutureContext, Speculator
from repro.evm.interpreter import EVM
from repro.state import NodeCache, StateDB, WorldState

ALICE = 0xA11CE
FEED = 0xFEED
ROUND = 3990300
PF = pricefeed()


def make_world(active_round, price=2000, count=4):
    """A world with the PriceFeed deployed and one funded sender."""
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(FEED, code=PF.code)
    feed = world.get_account(FEED)
    feed.set_storage(PF.slot_of("activeRoundID"), active_round)
    if active_round == ROUND:
        feed.set_storage(PF.slot_of("prices", ROUND), price)
        feed.set_storage(PF.slot_of("submissionCounts", ROUND), count)
    return world


def main():
    tx_e = Transaction(sender=ALICE, to=FEED,
                       data=PF.calldata("submit", ROUND, 1980), nonce=0)
    print(f"Tx_e: submit(roundID={ROUND}, price=1980)  "
          f"[{len(tx_e.data)} bytes of calldata]\n")

    # --- Speculation phase (off the critical path) --------------------
    speculator = Speculator(make_world(ROUND))
    speculator.speculate(
        tx_e, FutureContext(1, BlockHeader(1, 3990462, 0xBEEF)))
    # FC4: a fresh round (activeRoundID behind), different timestamp.
    speculator.world = make_world(3990000)
    speculator.speculate(
        tx_e, FutureContext(4, BlockHeader(1, 3990478, 0xBEEF)))

    ap = speculator.get_ap(tx_e.hash)
    path = ap.paths[0]
    print("Accelerated Program synthesized:")
    print(f"  EVM trace length:      {path.stats.trace_len} instructions")
    print(f"  optimized AP path:     {path.stats.final_len} instructions "
          f"({path.stats.final_len / path.stats.trace_len:.1%} of trace)")
    print(f"  constraint section:    {path.stats.constraint_section_len}")
    print(f"  fast path:             {path.stats.fast_path_len}")
    print(f"  merged paths:          {ap.path_count()} "
          f"(FC1 else-branch + FC4 if-branch)")
    print(f"  shortcut nodes:        {ap.shortcut_count}\n")

    # --- Execution phase (the critical path) --------------------------
    accelerator = TransactionAccelerator()
    scenarios = [
        ("perfect match (FC1 exactly)", make_world(ROUND), 3990462),
        ("imperfect match (new values, same constraints)",
         make_world(ROUND, price=2024, count=7), 3990555),
        ("other branch (fresh round, FC4)", make_world(3990000), 3990478),
        ("constraint violation (stale round -> fallback)",
         make_world(ROUND), ROUND + 900),
    ]
    for label, world, timestamp in scenarios:
        header = BlockHeader(1, timestamp, 0xBEEF)
        # Ground truth: plain EVM execution on a copy.
        truth_world = world.copy()
        truth_state = StateDB(truth_world)
        EVM(truth_state, header, tx_e).execute_transaction()
        truth_state.commit()
        # Accelerated execution: the prefetcher has warmed the caches
        # with the speculated read set (off the critical path, §4.4).
        cache = NodeCache()
        Prefetcher(world, cache).prefetch(
            ap.prefetch_keys, tx_sender=tx_e.sender, tx_to=tx_e.to,
            coinbase=0xBEEF)
        state = StateDB(world, node_cache=cache)
        plain = accelerator.execute_plain(tx_e, header, StateDB(world.copy()))
        receipt = accelerator.execute(tx_e, header, state, ap)
        state.commit()
        speedup = plain.tally.total / receipt.tally.total
        roots = "OK" if world.root() == truth_world.root() else "MISMATCH"
        print(f"{label}:")
        print(f"  outcome={receipt.outcome}  "
              f"perfect_contexts={receipt.perfect_context_ids}  "
              f"speedup={speedup:.1f}x  state-root {roots}")
    print("\nEvery outcome is bit-identical to a plain EVM execution.")


if __name__ == "__main__":
    main()
