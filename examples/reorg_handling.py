"""Temporary forks and reorgs under speculation.

The paper's §1 notes 8.4% of successfully mined blocks land on
temporary forks — a node sometimes executes a block, then learns a
competing branch won, and must roll back.  This example drives a
Forerunner node through exactly that: one branch executes Alice's
oracle submission, a longer rival branch arrives carrying Bob's
instead, the node reorgs (restoring the fork-point state and requeueing
Alice's transaction), and the final state is bit-identical to a node
that only ever saw the winning branch.

Run:  python examples/reorg_handling.py
"""

from repro.chain import Block, BlockHeader, Transaction
from repro.contracts import pricefeed
from repro.core.chainsync import ChainManager
from repro.core.node import BaselineNode, ForerunnerNode
from repro.state import WorldState

ALICE, BOB, FEED = 0xA11CE, 0xB0B, 0xFEED
ROUND = 3990300
PF = pricefeed()


def fresh_world():
    world = WorldState()
    world.create_account(ALICE, balance=10**24)
    world.create_account(BOB, balance=10**24)
    world.create_account(FEED, code=PF.code)
    return world


def submit(sender, price):
    return Transaction(sender=sender, to=FEED,
                       data=PF.calldata("submit", ROUND, price), nonce=0)


def block_on(parent, txs, ts_offset=13, coinbase=0xE0):
    return Block(header=BlockHeader(
        number=parent.number + 1,
        timestamp=parent.header.timestamp + ts_offset,
        coinbase=coinbase, parent_hash=parent.hash), transactions=txs)


def main():
    genesis = Block(header=BlockHeader(number=0, timestamp=ROUND + 20,
                                       coinbase=0))
    node = ForerunnerNode(fresh_world())
    manager = ChainManager(node, genesis)

    alice_tx, bob_tx = submit(ALICE, 2000), submit(BOB, 1500)
    node.on_transaction(alice_tx, now=0.0)
    node.on_transaction(bob_tx, now=0.2)
    node.run_speculation(0.5)

    # Branch A wins the first race: Alice's submission executes.
    block_a = block_on(genesis, [alice_tx])
    manager.receive_block(block_a, now=2.0)
    price = node.world.get_account(FEED).get_storage(
        PF.slot_of("prices", ROUND))
    print(f"after branch A : price={price} (Alice's 2000), "
          f"pool={len(node.pool)} pending")

    # A competing branch with Bob's submission arrives — same height
    # first (ignored), then one longer (reorg!).
    rival_1 = block_on(genesis, [bob_tx], ts_offset=14, coinbase=0xE1)
    rival_2 = block_on(rival_1, [], coinbase=0xE1)
    manager.receive_block(rival_1, now=2.5)
    manager.receive_block(rival_2, now=3.0)
    price = node.world.get_account(FEED).get_storage(
        PF.slot_of("prices", ROUND))
    print(f"after reorg    : price={price} (Bob's 1500), "
          f"reorgs={manager.reorgs}, "
          f"blocks re-executed={manager.blocks_reexecuted}")
    print(f"Alice's abandoned tx back in the pool: "
          f"{alice_tx.hash in node.pool}")

    # Ground truth: a node that only ever saw the winning branch.
    reference = BaselineNode(fresh_world())
    reference.process_block(rival_1)
    reference.process_block(rival_2)
    match = reference.world.root() == node.world.root()
    print(f"state root equals straight-line execution: {match}")

    # Alice's transaction gets re-speculated and lands in the next
    # block on the winning branch.
    node.run_speculation(3.5)
    block_3 = block_on(rival_2, [alice_tx], coinbase=0xE1)
    report = manager.receive_block(block_3, now=5.0)
    record = report.records[0]
    print(f"Alice's tx finally executes: outcome={record.outcome}, "
          f"accelerated={record.ap_ready}")
    price = node.world.get_account(FEED).get_storage(
        PF.slot_of("prices", ROUND))
    print(f"final price    : {price} (avg of 1500 and 2000)")


if __name__ == "__main__":
    main()
