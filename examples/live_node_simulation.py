"""Live-node simulation: the paper's §5 evaluation, end to end.

Generates a period of DeFi-shaped traffic (oracle rounds, token
transfers, AMM swaps, auctions, registrations, plain transfers),
disseminates it over a simulated gossip network to eight PoW miners and
an observer, mines blocks with realistic packing (gas-price priority,
random tie-breaks, self-priority, temporary forks), and replays the
recorded stream through a baseline node and a Forerunner node.

Prints the paper's headline numbers: Table 1 (heard rates), Table 2
(effective speedup vs. perfect matching), Table 3 (prediction-outcome
breakdown), and the §5.2 Merkle-root correctness check.

Run:  python examples/live_node_simulation.py [duration-seconds]
"""

import sys

from repro.core import stats as S
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig


def main(duration: float = 150.0):
    print(f"Recording {duration:.0f}s of simulated Ethereum traffic...")
    config = DatasetConfig(
        name="demo",
        traffic=TrafficConfig(duration=duration, seed=2021),
        observers={"live": LatencyModel()},
        seed=2021,
    )
    dataset = record_dataset(config)
    lo, hi = dataset.block_number_range()
    print(f"  blocks {lo}-{hi} "
          f"({dataset.block_count} incl. {len(dataset.fork_blocks)} "
          f"temporary forks), {dataset.tx_count} transactions\n")

    print("Replaying through a baseline node and a Forerunner node...")
    run = replay(dataset, "live")
    summary = S.summarize(run.records)

    print(f"\n=== Correctness (paper §5.2) ===")
    print(f"  Merkle roots matched: {run.roots_matched}/"
          f"{run.blocks_executed} blocks")

    print(f"\n=== Dissemination (paper Table 1 / Figure 11) ===")
    print(f"  heard before execution: {summary.heard_fraction:.2%} "
          f"({summary.heard_weighted:.2%} weighted)")
    for x, fraction in S.heard_delay_reverse_cdf(run.records,
                                                 [0, 4, 8, 16, 32]):
        print(f"    delay > {x:>4.0f}s : {fraction:.2%} of heard txs")

    print(f"\n=== Speedup (paper Table 2) ===")
    for row in S.table2(run.records):
        print(f"  {row.name:<44} {row.speedup:>6.2f}x  "
              f"satisfied {row.satisfied_fraction:.2%} "
              f"(weighted {row.satisfied_weighted:.2%})")
    print(f"  {'End-to-end (incl. unheard)':<44} "
          f"{summary.end_to_end_speedup:>6.2f}x")

    print(f"\n=== Prediction outcomes (paper Table 3) ===")
    for row in S.table3(run.records):
        print(f"  {row.name:<22} {row.tx_fraction:>7.2%} of txs "
              f"({row.weighted_fraction:.2%} weighted)  "
              f"{row.speedup:>6.2f}x")

    report = S.synthesis_report(
        run.forerunner_node.speculator.archive, run.records)
    print(f"\n=== AP synthesis (paper Figure 15 / §5.5) ===")
    print(f"  avg EVM trace: {report.trace_len_avg:.0f} instrs -> "
          f"S-EVM {report.sevm_unoptimized_pct:.1f}% -> "
          f"AP {report.final_pct:.1f}% "
          f"(constraints {report.constraint_pct:.1f}% + "
          f"fast path {report.fastpath_pct:.1f}%)")
    print(f"  critical-path instructions skipped by shortcuts: "
          f"{report.skip_rate:.1%}")
    print(f"  AP paths per tx: {dict(sorted(report.paths_per_ap.items()))}")

    overhead = S.offpath_overhead(run)
    print(f"\n=== Off-critical-path overhead (paper §5.6) ===")
    print(f"  speculation work / on-path baseline work: "
          f"{overhead.ratio:.1f}x")
    print(f"\nWall-clock on the critical path: baseline "
          f"{run.wall_seconds_baseline:.2f}s vs Forerunner "
          f"{run.wall_seconds_forerunner:.2f}s")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 150.0)
