"""Ablation benches for the design choices DESIGN.md calls out:

* memoization on/off (shortcut skipping, §4.3),
* prefetcher on/off (the missed-prediction 1.21x, §4.4),
* number of speculated futures K (multi-future coverage, §4.4),
* optimization passes (folding / CSE / promotion / DCE, Figure 6).
"""

import pytest

from repro.bench import ascii_table, write_report
from repro.core import stats as S
from repro.core.node import ForerunnerConfig
from repro.core.optimize import PassConfig
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

from benchmarks.conftest import SCALE


@pytest.fixture(scope="module")
def ablation_dataset():
    config = DatasetConfig(
        name="ABL",
        traffic=TrafficConfig(duration=max(60.0, SCALE * 0.6), seed=777,
                              compute_rate=0.0),
        observers={"live": LatencyModel()},
        seed=777)
    return record_dataset(config)


def run_with(dataset, **config_kwargs):
    config = ForerunnerConfig(**config_kwargs)
    return replay(dataset, "live", config=config)


@pytest.mark.benchmark(group="ablation")
def test_ablation_memoization(benchmark, ablation_dataset):
    with_memo = run_with(ablation_dataset, enable_memoization=True)
    without = benchmark.pedantic(
        run_with, args=(ablation_dataset,),
        kwargs=dict(enable_memoization=False), rounds=1, iterations=1)
    s_with = S.summarize(with_memo.records)
    s_without = S.summarize(without.records)
    report = ascii_table(
        ["Configuration", "Effective speedup", "% satisfied"],
        [["memoization ON", f"{s_with.effective_speedup:.2f}x",
          f"{s_with.satisfied_fraction:.2%}"],
         ["memoization OFF", f"{s_without.effective_speedup:.2f}x",
          f"{s_without.satisfied_fraction:.2%}"]],
        title="Ablation — memoized shortcuts")
    write_report("ablation_memoization", report)
    # Shortcuts speed things up without changing coverage.
    assert s_with.effective_speedup > s_without.effective_speedup
    assert abs(s_with.satisfied_fraction
               - s_without.satisfied_fraction) < 0.05
    # Correctness unaffected either way.
    assert without.roots_matched == without.blocks_executed


@pytest.mark.benchmark(group="ablation")
def test_ablation_prefetch(benchmark, ablation_dataset):
    with_prefetch = run_with(ablation_dataset, enable_prefetch=True)
    without = benchmark.pedantic(
        run_with, args=(ablation_dataset,),
        kwargs=dict(enable_prefetch=False), rounds=1, iterations=1)
    s_with = S.summarize(with_prefetch.records)
    s_without = S.summarize(without.records)

    def missed_speedup(run):
        missed = [r for r in run.records
                  if r.heard and r.outcome != "satisfied"]
        return S.aggregate_speedup(missed) if missed else 0.0

    report = ascii_table(
        ["Configuration", "Effective speedup", "Missed-class speedup"],
        [["prefetch ON", f"{s_with.effective_speedup:.2f}x",
          f"{missed_speedup(with_prefetch):.2f}x"],
         ["prefetch OFF", f"{s_without.effective_speedup:.2f}x",
          f"{missed_speedup(without):.2f}x"]],
        title="Ablation — state prefetcher")
    write_report("ablation_prefetch", report)
    assert s_with.effective_speedup >= s_without.effective_speedup * 0.95
    assert without.roots_matched == without.blocks_executed


@pytest.mark.benchmark(group="ablation")
def test_ablation_future_count(benchmark, ablation_dataset):
    def sweep():
        results = []
        for k in (1, 2, 4, 8):
            run = run_with(ablation_dataset, max_contexts_per_head=k)
            summary = S.summarize(run.records)
            results.append((k, summary))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[k, f"{s.effective_speedup:.2f}x",
             f"{s.satisfied_fraction:.2%}",
             f"{s.satisfied_weighted:.2%}"] for k, s in results]
    report = ascii_table(
        ["Futures per tx (K)", "Effective speedup", "% satisfied",
         "% (weighted)"],
        rows, title="Ablation — number of speculated futures")
    write_report("ablation_future_count", report)
    # More futures never hurt coverage.
    satisfied = [s.satisfied_fraction for _, s in results]
    assert satisfied[-1] >= satisfied[0] - 0.02


@pytest.mark.benchmark(group="ablation")
def test_ablation_optimization_passes(benchmark, ablation_dataset):
    configs = [
        ("all passes", PassConfig()),
        ("no constant folding", PassConfig(fold_constants=False)),
        ("no CSE", PassConfig(cse=False)),
        ("no promotion", PassConfig(promote=False)),
        ("no DCE", PassConfig(dce=False)),
    ]

    def sweep():
        results = []
        for label, pass_config in configs:
            run = run_with(ablation_dataset, pass_config=pass_config)
            summary = S.summarize(run.records)
            report_obj = S.synthesis_report(
                run.forerunner_node.speculator.archive, run.records)
            results.append((label, summary, report_obj, run))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[label, f"{s.effective_speedup:.2f}x",
             f"{rep.final_pct:.1f}%", f"{s.satisfied_fraction:.2%}"]
            for label, s, rep, _ in results]
    report = ascii_table(
        ["Configuration", "Effective speedup", "AP size (% of trace)",
         "% satisfied"],
        rows, title="Ablation — specialization passes")
    write_report("ablation_passes", report)

    baseline_pct = results[0][2].final_pct
    for label, summary, rep, run in results[1:]:
        # Every disabled pass inflates the AP (folding is the largest).
        assert rep.final_pct >= baseline_pct - 0.5, label
        # Correctness never depends on optimizations.
        assert run.roots_matched == run.blocks_executed, label
