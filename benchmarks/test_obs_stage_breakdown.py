"""Observability stage breakdown + determinism benchmark.

The obs layer turns the speculation pipeline's cost accounting into a
per-stage span tree: materialize_prefix / pre_execute / fingerprint /
synthesize / merge off the critical path, execute on it.  This
benchmark publishes the L1 stage breakdown as ``BENCH_obs.json`` and
asserts the two properties the layer promises:

* **determinism** — replaying the same period twice yields byte-
  identical canonical JSONL traces and identical metrics snapshots;
* **neutrality** — the instruments only observe: every speculator
  counter agrees with the pipeline's own accounting, and the stage
  costs add up to the speculator's total logical cost.
"""

import json
import os

from repro.bench import ascii_table, write_report
from repro.obs.export import trace_lines
from repro.sim.emulator import replay

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_obs_stage_breakdown(datasets, l1):
    totals = l1.tracer.stage_totals()
    for stage in ("speculate", "materialize_prefix", "pre_execute",
                  "fingerprint", "synthesize", "merge", "execute",
                  "block"):
        assert stage in totals, f"missing stage span: {stage}"

    # The root speculate spans carry the actual (cache-discounted)
    # off-path cost; neutrality means they agree exactly with the
    # speculator's own §5.6 accounting.
    spec = l1.forerunner_node.speculator
    assert totals["speculate"]["cost"] == spec.total_speculation_cost
    offpath = ("materialize_prefix", "pre_execute", "fingerprint",
               "synthesize")
    stage_cost = sum(totals[name]["cost"] for name in offpath)
    # Sibling stage spans partition the same cost (envelope-failed
    # speculations charge only their prefix, so the partition is a
    # lower bound on the sibling sum, never above the total).
    assert stage_cost >= totals["speculate"]["cost"]
    assert stage_cost <= totals["speculate"]["cost"] \
        + totals["pre_execute"]["cost"]

    # Span counts agree with the pipeline's own accounting.
    assert totals["speculate"]["count"] == l1.speculation_jobs
    assert totals["speculate"]["count"] == \
        l1.registry.value("speculator.speculations")
    assert totals["block"]["count"] == l1.blocks_executed
    assert totals["execute"]["count"] == \
        l1.registry.value("node.transactions")

    # Determinism: a second replay of the same period produces byte-
    # identical trace lines and an identical snapshot.
    rerun = replay(datasets["L1"], "live")
    meta = {"dataset": "L1", "observer": "live"}
    lines = trace_lines(l1.tracer, l1.registry, meta=meta)
    rerun_lines = trace_lines(rerun.tracer, rerun.registry, meta=meta)
    assert lines == rerun_lines
    assert l1.metrics() == rerun.metrics()

    rows = [[name, f"{entry['count']:,}", f"{entry['cost']:,}"]
            for name, entry in totals.items()]
    report = ascii_table(
        ["Stage", "Spans", "Cost units"], rows,
        title="Pipeline stage breakdown (L1, logical cost units)")
    report += ("\n\n(two replays of the period produce byte-identical "
               f"{len(lines)}-line JSONL traces; wall clock lives only "
               "in nondeterministic gauges and never reaches them)")
    write_report("obs_stage_breakdown", report)

    payload = {
        "dataset": "L1",
        "stages": {name: {"count": entry["count"],
                          "cost": entry["cost"]}
                   for name, entry in totals.items()},
        "offpath_sibling_stage_cost": stage_cost,
        "logical_cost": spec.total_logical_cost,
        "actual_cost": spec.total_speculation_cost,
        "trace_lines": len(lines),
        "trace_deterministic": lines == rerun_lines,
        "snapshot_deterministic": l1.metrics() == rerun.metrics(),
        "instruments": len(l1.registry.names()),
        "wall_seconds_forerunner": round(l1.wall_seconds_forerunner, 3),
    }
    with open(os.path.join(REPO_ROOT, "BENCH_obs.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
