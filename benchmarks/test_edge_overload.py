"""Serving-edge overload benchmark: goodput under offered load.

Runs the canonical serving scenario at 1x / 2x / 5x offered load and
emits ``BENCH_edge.json``:

* goodput (fraction of client requests that end served, retries
  included) and p50/p99 cost-unit latency per load level;
* overload-protection engagement counters (backpressure, rate
  limiting, brownout shedding, deadline cancellations);
* the acceptance gates: >= 90% goodput at 1x, >= 50% at 5x, zero
  uncontained errors, zero serving-equivalence mismatches, and
  two-run byte-identity of the serving trace at every load level.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench import ascii_table, write_report
from repro.edge import (
    EdgeConfig,
    ScenarioConfig,
    build_report,
    build_scenario,
    run_serving,
)
from repro.p2p.latency import LatencyModel
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "150"))
#: Seconds of recorded traffic behind the serving run.
DURATION = max(20.0, SCALE * 0.4)
LOADS = (1.0, 2.0, 5.0)
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def test_edge_overload_goodput():
    dataset = record_dataset(DatasetConfig(
        name="edge-bench",
        traffic=TrafficConfig(duration=DURATION, seed=2021),
        observers={"live": LatencyModel()},
        seed=2021))
    levels = []
    rows = []
    wall_started = time.perf_counter()
    for load in LOADS:
        scenario = build_scenario(dataset,
                                  ScenarioConfig(seed=0, load=load))
        config = EdgeConfig(verify_responses=True)
        result = run_serving(dataset, scenario, edge_config=config)
        rerun = run_serving(dataset, scenario, edge_config=config)
        identical = result.trace_lines == rerun.trace_lines
        report = build_report(result, meta={"load": load})
        edge = report["edge"]
        engaged = (edge["backpressure"] + edge["rate_limited"]
                   + edge["brownout"]["shed"]
                   + edge["deadline_cancelled"]
                   + edge["deadline_overrun"])
        levels.append({
            "load": load,
            "offered": report["offered"],
            "goodput": report["goodput"],
            "latency_units": report["latency_units"],
            "protections_engaged": engaged,
            "uncontained_errors": edge["internal_errors"],
            "verify_mismatches": edge["verify_mismatches"],
            "brownout_transitions":
                len(edge["brownout"]["transitions"]),
            "trace_identical": identical,
        })
        rows.append([
            f"{load:.0f}x", report["offered"],
            f"{report['goodput']:.1%}",
            report["latency_units"]["p50"],
            report["latency_units"]["p99"],
            engaged, "yes" if identical else "NO",
        ])
        # Determinism gate: byte-identical serving trace, per level.
        assert identical, f"trace diverged at {load}x"
        # Containment + equivalence gates, per level.
        assert edge["internal_errors"] == 0
        assert edge["verify_mismatches"] == 0
    wall = time.perf_counter() - wall_started

    # The goodput gates.
    by_load = {level["load"]: level for level in levels}
    assert by_load[1.0]["goodput"] >= 0.90, by_load[1.0]
    assert by_load[5.0]["goodput"] >= 0.50, by_load[5.0]
    # Overload protection genuinely engaged at 5x.
    assert by_load[5.0]["protections_engaged"] > 0

    table = ascii_table(
        ["Load", "Offered", "Goodput", "p50", "p99 (units)",
         "Protections", "Trace=="],
        rows,
        title=f"Serving edge under offered load "
              f"({DURATION:.0f}s dataset, seed 0)")
    table += (f"\n\ngates: goodput >= 90% at 1x "
              f"(got {by_load[1.0]['goodput']:.1%}), >= 50% at 5x "
              f"(got {by_load[5.0]['goodput']:.1%}); "
              f"zero uncontained errors; zero equivalence mismatches"
              f"\nwall-clock {wall:.1f}s (trend only; gates use "
              f"deterministic quantities)")
    write_report("edge_overload", table)

    payload = {
        "duration": DURATION,
        "levels": levels,
        "wall_seconds": round(wall, 3),
    }
    with open(os.path.join(REPO_ROOT, "BENCH_edge.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
