"""Chaos degradation benchmark: speedup retained under fault rates.

Forerunner's speedup is pure acceleration, so injected faults may only
shave it — never corrupt commitments.  This benchmark quantifies the
"shave": it replays L1 under uniform fault plans at 1%, 5% and 20%
per-site rates, checks commitment equivalence at each, and publishes
the effective speedup retained as ``BENCH_chaos.json``.
"""

import json
import os

from repro.bench import ascii_table, write_report
from repro.faults.injector import FaultPlan
from repro.faults.invariants import check_equivalence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FAULT_RATES = (0.01, 0.05, 0.20)


def test_chaos_degradation(datasets, l1):
    rows = []
    payload_rates = {}
    for rate in FAULT_RATES:
        plan = FaultPlan.uniform(seed=1, probability=rate)
        report = check_equivalence(datasets["L1"], plan,
                                   observer="live", clean_run=l1)
        assert report.ok, (rate, report.mismatches)
        assert report.faults_fired > 0
        rows.append([
            f"{rate:.0%}",
            f"{report.faults_fired:,}/{report.faults_evaluated:,}",
            f"{report.guard.get('contained', 0):,}",
            f"{report.speedup_faulted:.2f}x",
            f"{report.speedup_retained:.1%}",
        ])
        payload_rates[f"{rate:g}"] = {
            "faults_evaluated": report.faults_evaluated,
            "faults_fired": report.faults_fired,
            "contained": report.guard.get("contained", 0),
            "breaker_opened": report.guard.get(
                "breaker", {}).get("opened", 0),
            "speedup_faulted": round(report.speedup_faulted, 4),
            "speedup_retained": round(report.speedup_retained, 4),
            "equivalent": report.ok,
        }

    # Degradation is graceful: mild chaos keeps most of the speedup.
    assert payload_rates["0.01"]["speedup_retained"] > \
        payload_rates["0.2"]["speedup_retained"] * 0.9

    clean = report.speedup_clean
    table = ascii_table(
        ["Fault rate", "Fired/evaluated", "Contained",
         "Effective speedup", "Retained"],
        rows,
        title=f"Speedup retained under uniform chaos "
              f"(L1, clean {clean:.2f}x)")
    table += ("\n\nEvery row passed the commitment-equivalence check: "
              "state roots, receipts and Table 2/3 baseline columns "
              "byte-identical to the fault-free replay.")
    write_report("chaos_degradation", table)

    payload = {
        "dataset": "L1",
        "plan_seed": 1,
        "speedup_clean": round(clean, 4),
        "rates": payload_rates,
    }
    with open(os.path.join(REPO_ROOT, "BENCH_chaos.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
