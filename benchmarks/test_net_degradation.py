"""Network-degradation benchmark: wire-fleet goodput vs. loss rate.

The same open-loop send storm is served by a 4-shard wire-enabled
fleet over progressively worse networks — clean, 1% and 5% loss
(drop + duplicate + reorder + delay at the same per-message rate) —
and a coordinator-partition profile.  At-least-once retries plus
receiver-side dedup must hold goodput up: retransmits cost simulated
time, never acceptance.

Emits ``BENCH_net.json`` with the gates:

* accepted-tx throughput at 1% loss >= 90% of the clean wire fleet;
* chain commitments byte-identical to the clean wire run at every
  loss rate (containment);
* two-run byte-identity of the serving trace at every loss rate;
* the lease oracle (single holder per term) passes on every run.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench import ascii_table, write_report
from repro.fleet import (
    NET_SITES,
    SITE_NET_PARTITION,
    FleetConfig,
    WireConfig,
    net_fault_plan,
    run_fleet_serving,
    send_storm_scenario,
)
from repro.p2p.latency import LatencyModel
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "150"))
DURATION = max(12.0, SCALE * 0.08)
STORM_SECONDS = max(8.0, DURATION * 0.6)
STORM_RATE = 600.0
SHARDS = 4
LOSS_SITES = tuple(site for site in NET_SITES
                   if site != SITE_NET_PARTITION)
#: (label, loss probability, sites) — None means no fault plan.
LEVELS = (
    ("clean", 0.0, None),
    ("loss-1%", 0.01, LOSS_SITES),
    ("loss-5%", 0.05, LOSS_SITES),
    ("partition", 0.25, (SITE_NET_PARTITION,)),
)
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _commitments(reports):
    return [(report.block_number, report.state_root,
             tuple((r.tx_hash, r.gas_used, r.success)
                   for r in report.records))
            for report in reports]


def test_net_degradation_goodput():
    dataset = record_dataset(DatasetConfig(
        name="net-bench",
        traffic=TrafficConfig(duration=DURATION, seed=2021),
        observers={"live": LatencyModel()},
        seed=2021))
    storm = send_storm_scenario(seed=7, rate_per_second=STORM_RATE,
                                duration=STORM_SECONDS)

    def serve(plan):
        return run_fleet_serving(
            dataset, storm,
            fleet_config=FleetConfig(shards=SHARDS, wire=WireConfig(),
                                     fault_plan=plan))

    levels = []
    rows = []
    clean_commitments = None
    clean_accepted = None
    wall_started = time.perf_counter()
    for label, probability, sites in LEVELS:
        plan = (net_fault_plan(seed=0, probability=probability,
                               sites=sites)
                if sites is not None else None)
        result = serve(plan)
        rerun = serve(plan)
        identical = result.trace_lines == rerun.trace_lines
        result.supervisor.lease.assert_single_holder_per_term()
        rerun.supervisor.lease.assert_single_holder_per_term()
        commitments = _commitments(result.supervisor.reports)
        if clean_commitments is None:
            clean_commitments = commitments
            clean_accepted = result.accepted_txs
        contained = commitments == clean_commitments
        wire = result.supervisor.wire.summary()
        throughput = result.accepted_txs / STORM_SECONDS
        levels.append({
            "level": label,
            "probability": probability,
            "accepted_txs": result.accepted_txs,
            "throughput_per_second": round(throughput, 3),
            "goodput": round(result.goodput, 6),
            "retries": wire["retries"],
            "dedup_dropped": wire["dedup_dropped"],
            "escalations": wire["escalations"],
            "contained": contained,
            "trace_identical": identical,
        })
        rows.append([
            label, result.accepted_txs, f"{throughput:.0f}/s",
            f"{result.goodput:.1%}", wire["retries"],
            wire["dedup_dropped"],
            "yes" if contained else "NO",
            "yes" if identical else "NO",
        ])
        assert identical, f"serving trace diverged at {label}"
        assert contained, f"{label} moved chain commitments"
    wall = time.perf_counter() - wall_started

    by_level = {level["level"]: level for level in levels}
    retention = (by_level["loss-1%"]["accepted_txs"]
                 / max(1, clean_accepted))
    assert retention >= 0.90, (
        f"1% loss kept only {retention:.1%} of clean wire throughput "
        f"({by_level['loss-1%']['accepted_txs']} vs {clean_accepted})")

    table = ascii_table(
        ["Network", "Accepted", "Throughput", "Goodput", "Retries",
         "Dedup", "Contained", "Trace=="],
        rows,
        title=f"Wire-fleet degradation vs loss rate "
              f"({STORM_RATE:.0f}/s storm for {STORM_SECONDS:.0f}s, "
              f"{SHARDS} shards)")
    table += (f"\n\ngates: >= 90% of clean accepted throughput at 1% "
              f"loss (got {retention:.1%}); chain commitments "
              f"byte-identical to clean at every loss rate; "
              f"byte-identical serving trace per level; lease oracle "
              f"per run\nwall-clock {wall:.1f}s (trend only; gates "
              f"use deterministic quantities)")
    write_report("net_degradation", table)

    payload = {
        "duration": DURATION,
        "storm_rate": STORM_RATE,
        "storm_seconds": STORM_SECONDS,
        "shards": SHARDS,
        "levels": levels,
        "retention_1pct_vs_clean": round(retention, 4),
        "wall_seconds": round(wall, 3),
    }
    with open(os.path.join(REPO_ROOT, "BENCH_net.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
