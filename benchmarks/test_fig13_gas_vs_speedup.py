"""Figure 13: gas used vs average speedup.

Paper: speedup grows with transaction complexity (gas used) over
effectively-predicted transactions — complex transactions benefit more.
"""

import pytest

from repro.bench import ascii_table, write_report
from repro.core import stats as S


@pytest.mark.benchmark(group="fig13")
def test_fig13_gas_vs_speedup(benchmark, l1):
    buckets = benchmark(S.gas_vs_speedup, l1.records)
    rows = [[f"{gas:,.0f}", f"{speedup:.2f}x", count]
            for gas, speedup, count in buckets]
    report = ascii_table(
        ["Mean gas used", "Avg speedup", "Tx count"],
        rows, title="Figure 13 — gas used vs average speedup "
                    "(satisfied transactions)")
    report += "\n\n(paper: rising trend, bigger txs accelerate more)"
    write_report("fig13_gas_vs_speedup", report)

    assert len(buckets) >= 3
    # Rising shape: heaviest bucket clearly above the lightest.
    light = buckets[0][1]
    heavy = buckets[-1][1]
    assert heavy > light * 1.3
