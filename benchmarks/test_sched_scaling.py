"""Scheduler scaling benchmark: critical-path speedup vs lane count.

Replays two low-conflict traffic profiles (tokens-only and a mixed
profile with light hot-spot contention) at 1/2/4/8 lanes and publishes
the critical-path cost-unit speedup as ``BENCH_sched.json``.  Every
lane count must commit byte-identical state (the determinism check);
the 4-lane acceptance bar is a ≥ 2x critical-path reduction on both
profiles.

The profiles are deliberately low-conflict — many distinct senders and
token holders, light DEX/auction/lending traffic — because conflict
chains through hot contract state (AMM reserves, oracle feeds) are
inherently serial under read/write-set conflict detection; Saraph &
Herlihy make the same observation for historical Ethereum blocks.
"""

import json
import os

import pytest

from repro.bench import ascii_table, write_report
from repro.faults.invariants import digest_bytes
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LANE_COUNTS = (1, 2, 4, 8)
ACCEPTANCE_LANES = 4
ACCEPTANCE_SPEEDUP = 2.0

PROFILES = {
    "tokens": TrafficConfig(
        duration=60.0, seed=7, token_holders=2000, token_rate=2.5,
        dex_rate=0.0, auction_rate=0.0, registry_rate=0.0,
        lending_rate=0.0, compute_rate=0.0, deploy_rate=0.0,
        eth_transfer_rate=0.0, oracle_feeds=1, oracle_reporters=1),
    "mixed": TrafficConfig(
        duration=45.0, seed=11, token_holders=2500, token_rate=2.5,
        eth_senders=800, eth_transfer_rate=2.0, compute_rate=0.15,
        registry_rate=0.3, deploy_rate=0.05, dex_rate=0.05,
        auction_rate=0.05, lending_rate=0.05,
        oracle_feeds=1, oracle_reporters=2),
}


@pytest.fixture(scope="module")
def sched_datasets():
    return {
        name: record_dataset(DatasetConfig(
            name=f"sched-{name}", traffic=traffic,
            observers={"live": LatencyModel()}, seed=traffic.seed))
        for name, traffic in PROFILES.items()
    }


def test_sched_scaling(sched_datasets):
    rows = []
    payload_profiles = {}
    for name, dataset in sched_datasets.items():
        digests = set()
        lanes_payload = {}
        for lanes in LANE_COUNTS:
            run = replay(dataset, "live", lanes=lanes)
            assert run.roots_matched == run.blocks_executed
            digests.add(digest_bytes(run))
            executor = run.sched["executor"]
            lanes_payload[str(lanes)] = {
                "speedup": executor["speedup"],
                "critical_path_units": executor["critical_path_units"],
                "serial_cost_units": executor["serial_cost_units"],
                "commit_cost_units": executor["commit_cost_units"],
                "reexec_cost_units": executor["reexec_cost_units"],
                "conflict_rate": executor["conflict_rate"],
                "aborted": executor["aborted"],
            }
            rows.append([
                name, str(lanes),
                f"{executor['serial_cost_units']:,}",
                f"{executor['critical_path_units']:,}",
                f"{executor['speedup']:.2f}x",
                f"{executor['conflict_rate']:.2%}",
            ])
        # Determinism check: every lane count commits byte-identical
        # roots, receipts and Table 2/3 baseline columns.
        assert len(digests) == 1, f"{name}: lane count changed commits"
        at_bar = lanes_payload[str(ACCEPTANCE_LANES)]["speedup"]
        assert at_bar >= ACCEPTANCE_SPEEDUP, (
            f"{name}: {at_bar:.2f}x at {ACCEPTANCE_LANES} lanes "
            f"(need >= {ACCEPTANCE_SPEEDUP}x)")
        payload_profiles[name] = {
            "txs": dataset.tx_count,
            "blocks": len(dataset.blocks),
            "lanes": lanes_payload,
            "deterministic_across_lanes": True,
        }

    table = ascii_table(
        ["Profile", "Lanes", "Serial units", "Critical path",
         "Speedup", "Conflict rate"],
        rows,
        title="Parallel block execution: critical-path cost-unit "
              "speedup vs lane count")
    table += ("\n\nEvery row committed byte-identical state roots, "
              "receipts and Table 2/3 baseline columns; parallelism "
              "surfaces only in the scheduler's critical-path "
              "accounting.")
    write_report("sched_scaling", table)

    payload = {
        "lane_counts": list(LANE_COUNTS),
        "acceptance": {
            "lanes": ACCEPTANCE_LANES,
            "min_speedup": ACCEPTANCE_SPEEDUP,
        },
        "profiles": payload_profiles,
    }
    with open(os.path.join(REPO_ROOT, "BENCH_sched.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
