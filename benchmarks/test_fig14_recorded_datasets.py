"""Figure 14: evaluations on L1 plus the recorded datasets R1..R5.

Paper: the emulation result on R1 closely matches the live L1 run
(validating the emulator); across all recorded periods, satisfied and
weighted-satisfied stay above 95%, with end-to-end speedups between
4.56x and 8.38x.
"""

import pytest

from repro.bench import ascii_table, write_report
from repro.core import stats as S


@pytest.mark.benchmark(group="fig14")
def test_fig14_recorded_datasets(benchmark, runs):
    def summarize_all():
        return {name: S.summarize(run.records)
                for name, run in runs.items()}

    summaries = benchmark(summarize_all)
    rows = []
    for name in ("L1", "R1", "R2", "R3", "R4", "R5"):
        summary = summaries[name]
        rows.append([
            name,
            f"{summary.satisfied_fraction:.2%}",
            f"{summary.satisfied_weighted:.2%}",
            f"{summary.effective_speedup:.2f}x",
            f"{summary.end_to_end_speedup:.2f}x",
        ])
    report = ascii_table(
        ["Dataset", "% satisfied", "% (weighted)",
         "Effective speedup", "End-to-end speedup"],
        rows, title="Figure 14 — evaluations on L1 and recorded datasets")
    report += ("\n\n(paper: satisfied >95% across the board; "
               "end-to-end 4.56x-8.38x; R1 validates L1)")
    write_report("fig14_recorded_datasets", report)

    for name, summary in summaries.items():
        assert summary.satisfied_fraction > 0.80, name
        assert summary.effective_speedup > 2.0, name
    # Emulator validation: R1 (same traffic, different observer) lands
    # near the live L1 numbers.
    l1s, r1s = summaries["L1"], summaries["R1"]
    assert abs(l1s.effective_speedup - r1s.effective_speedup) \
        / l1s.effective_speedup < 0.30
