"""Table 2: effective speedup vs perfect-matching comparators.

Paper values (L1): Forerunner 8.39x (99.16% satisfied / 98.41%
weighted); perfect matching 2.11x (68.81% / 51.40%); perfect matching +
multi-future 5.13x (87.59% / 84.64%).  The shape to reproduce:

    Forerunner >> perfect+multi >= perfect-single >> baseline,

with Forerunner's satisfied rate in the 90s while perfect matching
covers barely half the transactions.
"""

import pytest

from repro.bench import ascii_table, write_report
from repro.core import stats as S


@pytest.mark.benchmark(group="table2")
def test_table2_effective_speedup(benchmark, l1):
    rows_obj = benchmark(S.table2, l1.records)
    rows = [[r.name, f"{r.speedup:.2f}x",
             f"{r.satisfied_fraction:.2%}",
             f"{r.satisfied_weighted:.2%}"]
            for r in rows_obj]
    report = ascii_table(
        ["Strategy", "Speedup", "% satisfied", "% (weighted)"],
        rows, title="Table 2 — effective speedup (heard transactions)")
    summary = S.summarize(l1.records)
    report += (
        f"\n\nEnd-to-end speedup (incl. unheard): "
        f"{summary.end_to_end_speedup:.2f}x"
        f"\nUnheard-transaction speedup: {summary.unheard_speedup:.2f}x"
        f"\n(paper: 8.39x effective, 6.06x end-to-end, 0.81x unheard)")
    write_report("table2_effective_speedup", report)

    by_name = {r.name: r for r in rows_obj}
    forerunner = by_name["Forerunner"]
    single = by_name["Perfect matching"]
    multi = by_name["Perfect matching + multi-future prediction"]
    assert forerunner.speedup > multi.speedup >= single.speedup > 1.0
    assert forerunner.satisfied_fraction > 0.85
    assert forerunner.satisfied_fraction > multi.satisfied_fraction + 0.2
    assert summary.unheard_speedup < 1.0


@pytest.mark.benchmark(group="table2-wallclock")
def test_wallclock_direction(benchmark, l1, datasets):
    """Secondary check: even in pure Python, the Forerunner node's
    critical path is genuinely faster than the baseline's.

    Wall gauges are nondeterministic; one extra adjacent replay gives
    a second paired sample and each arm takes its min (noise on a wall
    clock is strictly additive), the same discipline the throughput
    bench applies to its cached-vs-uncached gate.
    """
    from repro.sim.emulator import replay

    second = replay(datasets["L1"], "live")
    wall_base = min(l1.wall_seconds_baseline,
                    second.wall_seconds_baseline)
    wall_fore = min(l1.wall_seconds_forerunner,
                    second.wall_seconds_forerunner)
    ratio = benchmark(lambda: wall_base / max(wall_fore, 1e-9))
    print(f"\nWall-clock critical-path ratio (baseline/forerunner, "
          f"min of 2): {ratio:.2f}x")
    assert ratio > 1.0
