"""Shared benchmark fixtures: datasets and replays, built once.

The paper's evaluation uses one live period (L1) plus five recorded
periods (R1..R5, §5.1 Table 1).  We generate six traffic periods with
distinct seeds and traffic mixes; L1 and R1 share the same underlying
network activity but are observed through different connections
(exactly why the paper's L1 and R1 heard rates differ).

Scale with ``REPRO_BENCH_SCALE`` (seconds of traffic per dataset;
default 150, the CI-friendly size).
"""

from __future__ import annotations

import os

import pytest

from repro.core import stats as S
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "150"))


def _dataset_configs():
    live_observers = {
        "live": LatencyModel(median=1.3, sigma=0.5),
        "recorded": LatencyModel(median=1.7, sigma=0.6),
    }
    shared_traffic = TrafficConfig(duration=SCALE, seed=101)
    yield "L1", DatasetConfig(
        name="L1", traffic=shared_traffic, observers=live_observers,
        seed=101)
    # R1 replays the same period through the recorder's connection.
    # R2..R5: independent periods sampled across "months" (different
    # seeds and slightly different traffic mixes — Ethereum's natural
    # workload evolution, §5.1).
    variations = [
        ("R2", 202, dict(token_rate=1.5, dex_rate=0.4)),
        ("R3", 303, dict(dex_rate=0.8, registry_rate=0.35)),
        ("R4", 404, dict(oracle_reporters=7, eth_transfer_rate=0.9)),
        ("R5", 505, dict(token_rate=0.9, auction_rate=0.25)),
    ]
    for name, seed, overrides in variations:
        traffic = TrafficConfig(duration=SCALE, seed=seed, **overrides)
        yield name, DatasetConfig(
            name=name, traffic=traffic,
            observers={"recorded": LatencyModel(median=1.7, sigma=0.6)},
            seed=seed)


@pytest.fixture(scope="session")
def datasets():
    """name -> Dataset for L1 and R2..R5 (R1 = L1 via another observer)."""
    return {name: record_dataset(config)
            for name, config in _dataset_configs()}


@pytest.fixture(scope="session")
def runs(datasets):
    """name -> EvaluationRun for L1 (live) and R1..R5 (recorded)."""
    result = {}
    result["L1"] = replay(datasets["L1"], "live")
    result["R1"] = replay(datasets["L1"], "recorded")
    for name in ("R2", "R3", "R4", "R5"):
        result[name] = replay(datasets[name], "recorded")
    return result


@pytest.fixture(scope="session")
def l1(runs):
    """The main evaluation run (the paper's L1)."""
    return runs["L1"]


@pytest.fixture(scope="session")
def l1_summary(l1):
    return S.summarize(l1.records)
