"""Figure 11: reverse CDF of heard delay.

Paper: for more than 90% of heard transactions, the window between
hearing and executing exceeds 4 seconds (plenty for speculation), with
a long tail out to tens of seconds.
"""

import pytest

from repro.bench import ascii_table, bar_chart, write_report
from repro.core import stats as S


@pytest.mark.benchmark(group="fig11")
def test_fig11_heard_delay(benchmark, l1):
    cdf = benchmark(S.heard_delay_reverse_cdf, l1.records,
                    list(range(0, 49, 4)))
    rows = [[f"{x:.0f}s", f"{fraction:.2%}"] for x, fraction in cdf]
    report = ascii_table(
        ["Delay exceeds", "% of heard txs"],
        rows, title="Figure 11 — reverse CDF of heard delay")
    report += "\n\n" + bar_chart(
        [(f"{x:.0f}s", fraction) for x, fraction in cdf])
    report += "\n\n(paper: >90% of heard txs exceed 4 seconds)"
    write_report("fig11_heard_delay", report)

    as_dict = dict(cdf)
    assert as_dict[0.0] == 1.0
    assert as_dict[4.0] > 0.5          # most txs have a real window
    fractions = [f for _, f in cdf]
    assert all(a >= b for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] < 0.35        # the tail does decay
