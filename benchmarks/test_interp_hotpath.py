"""Interpreter hot-path microbenchmarks (the compile tier's rationale).

Three measurements, all emitted to ``BENCH_interp.json``:

* **dispatch** — per-opcode interpreter dispatch cost on synthetic
  straight-line programs, with the tracer-bypassing fast emit path on
  vs off (the ``fast_emit`` knob on :class:`repro.evm.interpreter.EVM`);
* **specialize** — specialized-closure vs interpreted-walk time on
  hand-built APs exercising each of the 20 hottest opcodes
  (:data:`repro.evm.jit.HOT_OPS`), i.e. the Layer-1 speedup the tier
  buys on the AP fast path;
* **tier** — compile/hit/bailout rates of the jit tier over the L1
  replay (the shared session fixture, jit on by default).

Wall-clock numbers are machine-dependent; the JSON records them for
trending while the assertions only gate on robust relations (closures
beat the walk on average; the tier actually engages on L1).
"""

import json
import os
import time

from repro.bench import ascii_table, write_report
from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.core.ap import AcceleratedProgram, Terminal, build_chain
from repro.core.ap_exec import execute_ap
from repro.core.costmodel import CostTally
from repro.core.sevm import Reg, SInstr, SKind
from repro.evm.assembler import assemble
from repro.evm.interpreter import EVM
from repro.evm.jit import HOT_OPS, compile_ap
from repro.state.statedb import StateDB
from repro.state.world import WorldState

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

SENDER = 0xBE5E
TARGET = 0x7A86E7

#: Stack operands pushed per iteration, by opcode arity.
_TERNARY = ("ADDMOD", "MULMOD")
_UNARY = ("ISZERO", "NOT")

DISPATCH_ITERS = 800
AP_NODES = 150
REPS = 5


def _header():
    return BlockHeader(number=1, timestamp=1000, coinbase=0xBEEF)


def _dispatch_program(op: str) -> str:
    if op in _TERNARY:
        body = f"PUSH 7\nPUSH 5\nPUSH 3\n{op}\nPOP\n"
    elif op in _UNARY:
        body = f"PUSH 12345\n{op}\nPOP\n"
    else:
        body = f"PUSH 12345\nPUSH 67\n{op}\nPOP\n"
    return body * DISPATCH_ITERS + "STOP\n"


def _time_dispatch(code: bytes, fast_emit: bool) -> tuple:
    """(best seconds, instruction count) over REPS executions."""
    best = float("inf")
    instructions = 0
    for _ in range(REPS):
        world = WorldState()
        world.create_account(SENDER, balance=10**24)
        world.create_account(TARGET, code=code)
        state = StateDB(world)
        tx = Transaction(sender=SENDER, to=TARGET, nonce=0,
                         gas_limit=10**9)
        evm = EVM(state, _header(), tx, fast_emit=fast_emit)
        start = time.perf_counter()
        result = evm.execute_transaction()
        best = min(best, time.perf_counter() - start)
        assert result.success, result.error
        instructions = evm.instruction_count
    return best, instructions


def _hot_ap(op: str, index: int) -> AcceleratedProgram:
    """Straight-line AP: one SLOAD feeding AP_NODES ``op`` computes.

    The read keeps the chain out of reach of compile-time constant
    folding, so the closure executes every node — this measures the
    specialized hot-op templates, not the folder.
    """
    r_prev = Reg(0)
    instrs = [SInstr(SKind.READ, "SLOAD", dest=r_prev, args=(0,),
                     key=(TARGET,))]
    for i in range(AP_NODES):
        reg = Reg(i + 1)
        if op in _TERNARY:
            args = (r_prev, 3, 5)
        elif op in _UNARY:
            args = (r_prev,)
        else:
            args = (r_prev, 3)
        instrs.append(SInstr(SKind.COMPUTE, op, dest=reg, args=args))
        r_prev = reg
    terminal = Terminal(path_ids=[0], success=True, gas_used=21000,
                        return_pieces=[], return_size=0, read_set={})
    ap = AcceleratedProgram(tx_hash=0xA90000 + index)
    ap.root = build_chain(instrs, terminal)
    return ap


def _time_ap(runner) -> float:
    best = float("inf")
    for _ in range(REPS):
        start = time.perf_counter()
        outcome = runner()
        best = min(best, time.perf_counter() - start)
        assert outcome.success
    return best


def test_interp_hotpath(l1):
    # -- dispatch cost per hot opcode, fast emit on/off -------------------
    dispatch = {}
    for op in HOT_OPS:
        code_bytes = assemble(_dispatch_program(op))
        fast_s, n_instr = _time_dispatch(code_bytes, fast_emit=True)
        slow_s, _ = _time_dispatch(code_bytes, fast_emit=False)
        dispatch[op] = {
            "instructions": n_instr,
            "ns_per_instr_fast_emit": round(fast_s / n_instr * 1e9, 2),
            "ns_per_instr_tracer_emit": round(slow_s / n_instr * 1e9, 2),
        }

    # -- specialized closure vs interpreted walk per hot opcode -----------
    world = WorldState()
    world.create_account(SENDER, balance=10**24)
    world.create_account(TARGET, code=b"\x00")
    world.get_account(TARGET).set_storage(0, 987654321)
    tx = Transaction(sender=SENDER, to=TARGET, nonce=0)
    hdr = _header()
    specialize = {}
    speedups = []
    for index, op in enumerate(HOT_OPS):
        ap = _hot_ap(op, index)
        artifact = compile_ap(ap)
        assert artifact.node_count == AP_NODES + 1  # the read + computes
        state = StateDB(world)
        walk_s = _time_ap(lambda: execute_ap(
            ap, state, hdr, tx, tally=CostTally()))
        closure_s = _time_ap(lambda: artifact.fn(
            state, hdr, lambda n: 0, CostTally()))
        # Both strategies must agree before their times mean anything.
        walked = execute_ap(ap, state, hdr, tx, tally=CostTally())
        compiled = artifact.fn(state, hdr, lambda n: 0, CostTally())
        assert (walked.success, walked.gas_used, walked.observed_reads) \
            == (compiled.success, compiled.gas_used,
                compiled.observed_reads)
        speedup = walk_s / closure_s if closure_s else 1.0
        speedups.append(speedup)
        specialize[op] = {
            "walk_us": round(walk_s * 1e6, 2),
            "closure_us": round(closure_s * 1e6, 2),
            "speedup": round(speedup, 2),
        }
    mean_speedup = sum(speedups) / len(speedups)

    # -- tier engagement on the L1 replay ---------------------------------
    snap = l1.metrics()
    jit = {key.split(".", 1)[1]: val["value"]
           for key, val in snap.items() if key.startswith("jit.")}
    executions = jit.get("hits", 0) + jit.get("misses", 0) \
        + jit.get("bailouts", 0)
    hit_rate = jit.get("hits", 0) / executions if executions else 0.0
    compiles = jit.get("compiles", 0) + jit.get("compile_aborts", 0)
    abort_rate = jit.get("compile_aborts", 0) / compiles if compiles \
        else 0.0

    # The tier must actually engage, and the closures must win.
    assert jit.get("compiles", 0) > 0
    assert jit.get("hits", 0) > 0
    assert mean_speedup > 1.2, specialize

    rows = [[op,
             f"{dispatch[op]['ns_per_instr_fast_emit']:.0f}",
             f"{dispatch[op]['ns_per_instr_tracer_emit']:.0f}",
             f"{specialize[op]['walk_us']:.1f}",
             f"{specialize[op]['closure_us']:.1f}",
             f"{specialize[op]['speedup']:.2f}x"]
            for op in HOT_OPS]
    rows.append(["mean", "", "", "", "", f"{mean_speedup:.2f}x"])
    report = ascii_table(
        ["opcode", "disp fast ns", "disp tracer ns",
         "walk us", "closure us", "speedup"], rows,
        title="Interpreter hot path: dispatch cost and specialization")
    report += (f"\n\njit tier on L1: hit rate {hit_rate:.2%} over "
               f"{executions} AP executions, compile-abort rate "
               f"{abort_rate:.2%} over {compiles} compile attempts")
    write_report("interp_hotpath", report)

    payload = {
        "dispatch": dispatch,
        "specialize": specialize,
        "specialize_mean_speedup": round(mean_speedup, 3),
        "tier": {
            "counters": jit,
            "hit_rate": round(hit_rate, 4),
            "compile_abort_rate": round(abort_rate, 4),
            "ap_executions": executions,
        },
    }
    with open(os.path.join(REPO_ROOT, "BENCH_interp.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
