"""§5.6: overhead off the critical path.

Paper: pre-executing one transaction in one context and synthesizing
its AP costs ~12.19x a plain execution (unoptimized); the whole
off-path machinery raises CPU utilization 3.33x and memory 2.50x over
the baseline node.
"""

import pytest

from repro.bench import ascii_table, write_report
from repro.core import costmodel
from repro.core import stats as S


@pytest.mark.benchmark(group="sec56")
def test_sec56_offpath_overhead(benchmark, l1):
    overhead = benchmark(S.offpath_overhead, l1)
    cache = S.speculation_cache_report(l1)
    speculations = len(
        [r for r in l1.forerunner_node.speculator.records if not r.error])
    executed = len(l1.records)
    per_spec = (overhead.speculation_cost
                / max(1, speculations))
    baseline_per_tx = overhead.execution_cost_baseline / max(1, executed)

    rows = [
        ["pre-executions performed", speculations],
        ["transactions executed on-path", executed],
        ["pre-executions per executed tx",
         f"{speculations / max(1, executed):.2f}"],
        ["speculation cost (off-path units)",
         f"{overhead.speculation_cost:,}"],
        ["uncached speculation cost (seed accounting)",
         f"{cache.logical_cost:,}"],
        ["saved by prefix cache + synthesis dedup",
         f"{cache.cost_saved:,}"],
        ["prefetch cost (off-path units)",
         f"{overhead.prefetch_cost:,}"],
        ["baseline execution cost (on-path units)",
         f"{overhead.execution_cost_baseline:,}"],
        ["per-pre-execution cost / per-tx baseline cost",
         f"{per_spec / baseline_per_tx:.2f}x"],
        ["total off-path / on-path ratio", f"{overhead.ratio:.2f}x"],
    ]
    report = ascii_table(["Metric", "Value"], rows,
                         title="§5.6 — overhead off the critical path")
    report += ("\n\n(paper: one pre-execution + synthesis ~= 12.19x a "
               "plain execution; total off-path work is a multiple of "
               "that because each tx is speculated in several contexts. "
               "The prefix cache and synthesis dedup cut what is "
               "actually paid below the uncached accounting above.)")
    write_report("sec56_offpath_overhead", report)

    ratio = per_spec / baseline_per_tx
    assert 5.0 < ratio < 40.0
    assert overhead.ratio > 1.0  # off-path work dominates on-path work
    assert costmodel.SPECULATION_COST_FACTOR == pytest.approx(12.19)
