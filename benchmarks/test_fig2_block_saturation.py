"""Figure 2 (background): block size vs throughput over time.

Paper: Ethereum repeatedly raised the block gas limit, and demand
saturated each raise — the staircase-hugging curve motivating
execution acceleration as the path to more throughput.
"""

import pytest

from repro.bench import ascii_table, simulate_block_history, write_report
from repro.bench.history import saturation_fraction


@pytest.mark.benchmark(group="fig2")
def test_fig2_block_saturation(benchmark):
    points = benchmark(simulate_block_history, 66)
    rows = [[p.month, f"{p.gas_limit:,.0f}k", f"{p.gas_used:,.0f}k",
             f"{p.gas_used / p.gas_limit:.0%}"]
            for p in points[::6]]
    report = ascii_table(
        ["Month", "Gas limit", "Gas used", "Utilization"],
        rows, title="Figure 2 — block size (gas limit) vs throughput "
                    "(gas used), simulated 2015-2021 window")
    fraction = saturation_fraction(points)
    report += (f"\n\nMonths at >=90% utilization: {fraction:.0%} "
               f"(paper: limit raises are quickly saturated)")
    write_report("fig2_block_saturation", report)

    # The staircase rises by more than an order of magnitude...
    assert points[-1].gas_limit > 10 * points[0].gas_limit
    # ...monotonically (limits only get voted up in the window)...
    limits = [p.gas_limit for p in points]
    assert all(b >= a for a, b in zip(limits, limits[1:]))
    # ...and demand saturates most of the time.
    assert fraction > 0.5
