"""Witness checker cost: validation without re-execution.

The checker's bet (and the acceptance gate): re-deriving every
accepted speculative result from its witness — constraint replay plus
delta application — costs <= 20% of the cost units the original
execution charged.  Emitted to ``BENCH_witness.json``:

* cost units charged by the witness checker vs the execution tiers,
  overall and on the speculative (satisfied-outcome) slice;
* witness stream size (constraints / delta rows per witness);
* wall-clock of replay-with-witnesses vs replay-without (trend only;
  the assertions gate exclusively on deterministic cost units).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.bench import ascii_table, write_report
from repro.core.node import ForerunnerConfig
from repro.core.stats import witness_report
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.witness import WitnessChecker
from repro.workloads.mixed import TrafficConfig

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DURATION = float(os.environ.get("REPRO_BENCH_SCALE", "60"))


@pytest.fixture(scope="module")
def witness_dataset():
    return record_dataset(DatasetConfig(
        name="witness-bench",
        traffic=TrafficConfig(duration=DURATION, seed=71),
        observers={"live": LatencyModel()}, seed=71))


def _validate(dataset, run):
    node = run.forerunner_node
    by_block: dict = {}
    for witness in node.witnesses:
        by_block.setdefault(witness.block_number, []).append(witness)
    headers = {block.number: block.header
               for _, block in dataset.blocks}
    checker = WitnessChecker(dataset.genesis_world.copy())
    return checker.validate_run(
        [(headers[report.block_number],
          by_block.get(report.block_number, []), report.state_root)
         for report in node.reports])


def test_witness_check_cost(witness_dataset):
    dataset = witness_dataset

    started = time.perf_counter()
    run = replay(dataset, "live",
                 config=ForerunnerConfig(enable_witness=True))
    with_witness_wall = time.perf_counter() - started

    started = time.perf_counter()
    plain = replay(dataset, "live",
                   config=ForerunnerConfig(enable_witness=False))
    without_witness_wall = time.perf_counter() - started

    # Recording witnesses must not perturb commitments.
    assert (run.forerunner_node.world.root()
            == plain.forerunner_node.world.root())

    validation = _validate(dataset, run)
    assert validation.ok, [f.as_dict() for f in validation.failures]
    assert validation.witnesses == sum(
        len(report.records) for report in run.forerunner_node.reports)

    # The acceptance gate: speculative results re-validated at <= 20%
    # of their execution cost, and a healthy margin overall.
    spec_ratio = validation.speculative_cost_ratio()
    assert validation.speculative_witnesses > 0
    assert spec_ratio <= 0.2, (
        f"checker cost ratio {spec_ratio:.2%} exceeds the 20% bound")

    stream = witness_report(run.forerunner_node.witnesses)
    rows = [
        ["witnesses", validation.witnesses, ""],
        ["constraints replayed", validation.constraints_checked, ""],
        ["delta rows applied", validation.deltas_applied, ""],
        ["blocks re-derived",
         f"{validation.roots_matched}/{validation.blocks_checked}", ""],
        ["checker cost units", validation.checker_cost_units,
         f"{validation.cost_ratio():.2%} of execution"],
        ["speculative slice", validation.speculative_witnesses,
         f"{spec_ratio:.2%} of execution (bound 20%)"],
    ]
    report = ascii_table(
        ["Measure", "Value", "Ratio"], rows,
        title="Witness checker: validation without re-execution")
    report += (f"\n\nwall-clock: {with_witness_wall:.2f}s with "
               f"witnesses vs {without_witness_wall:.2f}s without "
               f"(machine-dependent; assertions use cost units only)")
    write_report("witness_check", report)

    payload = {
        "duration": DURATION,
        "validation": validation.as_dict(),
        "stream": stream.as_dict(),
        "wall_seconds": {
            "with_witness": round(with_witness_wall, 3),
            "without_witness": round(without_witness_wall, 3),
        },
    }
    with open(os.path.join(REPO_ROOT, "BENCH_witness.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
