"""Table 3: breakdown by prediction outcome.

Paper values: perfect 87.19% of txs at 11.33x; imperfect 11.96% at
4.55x; missed 0.85% at 1.21x (prefetching already pays).  Shape:
perfect >= imperfect >> missed > 1 (missed still benefits from the
prefetcher), with satisfied classes covering the vast majority.
"""

import pytest

from repro.bench import ascii_table, write_report
from repro.core import stats as S


@pytest.mark.benchmark(group="table3")
def test_table3_prediction_breakdown(benchmark, l1):
    rows_obj = benchmark(S.table3, l1.records)
    rows = [[r.name, f"{r.tx_fraction:.2%}",
             f"{r.weighted_fraction:.2%}", f"{r.speedup:.2f}x"]
            for r in rows_obj]
    report = ascii_table(
        ["Outcome", "% txs", "% (weighted)", "Speedup"],
        rows,
        title="Table 3 — breakdown by prediction outcome (heard txs)")
    report += ("\n\n(paper: perfect 87.19%/11.33x, imperfect "
               "11.96%/4.55x, missed 0.85%/1.21x)")
    write_report("table3_prediction_breakdown", report)

    by_name = {r.name: r for r in rows_obj}
    perfect = by_name["satisfied/perfect"]
    imperfect = by_name["satisfied/imperfect"]
    missed = by_name["unsatisfied/missed"]
    assert perfect.speedup >= imperfect.speedup > missed.speedup
    assert missed.speedup > 1.0          # prefetching still pays
    assert missed.tx_fraction < 0.15
    assert perfect.tx_fraction + imperfect.tx_fraction > 0.85
