"""Speculation throughput: shared-prefix caching + synthesis dedup.

The predictor emits many future contexts whose predecessor lists share
prefixes (every context of a transaction carries the sender's mandatory
nonce chain; the greedy ordering reuses the same price-sorted
predecessors across targets).  The seed speculator re-executed each
shared prefix once per context; the prefix cache materializes it once
per head and the trace-fingerprint layer skips re-synthesis of
byte-identical traces.

This benchmark replays the L1 period twice — caching layers on (the
shared ``l1`` fixture) and off — and checks that

* **redundant** predecessor EVM executions (re-executions of a prefix
  already materialized under the current head) drop at least 2x by
  instruction count — in fact the cache eliminates them entirely;
* every Merkle root still matches and the Table 2 / Table 3 evaluation
  rows are byte-identical: the layers change what speculation *costs*,
  never what it produces.
"""

import json
import os

import pytest

from repro.bench import ascii_table, write_report
from repro.core import stats as S
from repro.core.node import ForerunnerConfig
from repro.sim.emulator import replay

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(scope="module")
def uncached_run(datasets):
    """The L1 replay with both caching layers disabled (seed behaviour)."""
    config = ForerunnerConfig(enable_prefix_cache=False,
                              enable_synth_dedup=False)
    return replay(datasets["L1"], "live", config=config)


def test_speculation_throughput(l1, uncached_run, datasets):
    cached = S.speculation_cache_report(l1)
    uncached = S.speculation_cache_report(uncached_run)

    # -- wall-clock regression gate -----------------------------------------
    # The caching layers must never make block processing *slower* in
    # wall-clock terms (the seed repo had exactly that inversion: the
    # interpreted AP walker's Python overhead outweighed the logical
    # saving).  Single runs are noisy and the session fixtures execute
    # the two arms far apart (cold caches, CPU frequency drift), so the
    # gate re-times both arms adjacently and takes min-of-2 per arm.
    uncached_config = ForerunnerConfig(enable_prefix_cache=False,
                                       enable_synth_dedup=False)
    wall_cached = min(
        l1.wall_seconds_forerunner,
        replay(datasets["L1"], "live").wall_seconds_forerunner)
    wall_uncached = min(
        uncached_run.wall_seconds_forerunner,
        replay(datasets["L1"], "live",
               config=uncached_config).wall_seconds_forerunner)
    regression = wall_cached > wall_uncached

    # Both runs demand the identical predecessor work; the cached run
    # serves part of it from materialized prefixes.
    demanded = cached.pred_instructions + cached.pred_instructions_avoided
    assert uncached.pred_instructions == demanded
    assert uncached.pred_instructions_avoided == 0

    # Redundant = re-execution of a (head, header, prefix) key already
    # materialized since the last invalidation; both runs measure it
    # directly.  The uncached run re-executes every repeat demand; with
    # the cache on only an LRU eviction can force one, so the repeats
    # served from cache plus the eviction-forced leftovers must add up
    # to exactly the uncached run's redundancy.
    redundant_uncached = uncached.pred_instructions_redundant
    redundant_cached = cached.pred_instructions_redundant
    assert redundant_uncached == (cached.pred_instructions_avoided
                                  + redundant_cached)
    assert redundant_uncached > 0
    assert redundant_uncached >= 2 * max(1, redundant_cached)

    total_work_ratio = demanded / max(1, cached.pred_instructions)
    assert total_work_ratio >= 1.25  # whole-run work also shrinks
    assert cached.dedup_hits > 0
    assert cached.cost_saved > 0
    # Worker scheduling uses the logical (seed-accounting) cost, which
    # must not depend on the caching layers.
    assert cached.logical_cost == uncached.logical_cost

    # -- equivalence: the layers must not change a single result ------------
    assert l1.blocks_executed == uncached_run.blocks_executed
    assert l1.roots_matched == l1.blocks_executed
    assert uncached_run.roots_matched == uncached_run.blocks_executed
    assert l1.records == uncached_run.records
    assert S.table2(l1.records) == S.table2(uncached_run.records)
    assert S.table3(l1.records) == S.table3(uncached_run.records)

    rows = [
        ["predecessor instructions demanded", f"{demanded:,}"],
        ["executed with caching layers on",
         f"{cached.pred_instructions:,}"],
        ["executed with caching layers off",
         f"{uncached.pred_instructions:,}"],
        ["redundant (repeat) instructions, layers off",
         f"{redundant_uncached:,}"],
        ["redundant (repeat) instructions, layers on",
         f"{redundant_cached:,}"],
        ["redundancy reduction (off/on)",
         f"{redundant_uncached / max(1, redundant_cached):.2f}x"],
        ["total predecessor work ratio (off/on)",
         f"{total_work_ratio:.2f}x"],
        ["prefix cache hit rate", f"{cached.prefix_hit_rate:.2%}"],
        ["predecessor executions run / served",
         f"{cached.pred_execs} / {cached.pred_execs_avoided}"],
        ["synthesis dedup hit rate", f"{cached.dedup_hit_rate:.2%}"],
        ["off-path cost paid (layers on)", f"{cached.actual_cost:,}"],
        ["off-path cost paid (layers off)", f"{uncached.actual_cost:,}"],
        ["seed (uncached) accounting cost",
         f"{cached.logical_cost:,}"],
        ["saved vs seed accounting", f"{cached.cost_saved:,}"],
        ["forerunner wall seconds (layers on, min of 2)",
         f"{wall_cached:.2f}"],
        ["forerunner wall seconds (layers off, min of 2)",
         f"{wall_uncached:.2f}"],
        ["wall-clock regression (on slower than off)",
         str(regression)],
        ["Merkle roots matched (both runs)",
         f"{l1.roots_matched}/{l1.blocks_executed}"],
    ]
    report = ascii_table(
        ["Metric", "Value"], rows,
        title="Speculation throughput — prefix cache + synthesis dedup")
    report += ("\n\n(redundant = re-execution of a predecessor prefix "
               "already materialized under the current head; the cache "
               "removes all of them while Table 2/3 and every Merkle "
               "root stay byte-identical)")
    write_report("speculation_throughput", report)

    payload = {
        "dataset": "L1",
        "pred_instructions_demanded": demanded,
        "pred_instructions_executed_cached": cached.pred_instructions,
        "pred_instructions_executed_uncached": uncached.pred_instructions,
        "redundant_instructions_uncached": redundant_uncached,
        "redundant_instructions_cached": redundant_cached,
        "redundant_reduction": round(
            redundant_uncached / max(1, redundant_cached), 4),
        "redundant_reduction_min_required": 2.0,
        "prefix_evictions": cached.prefix_evictions,
        "total_work_ratio": round(total_work_ratio, 4),
        "prefix_hit_rate": round(cached.prefix_hit_rate, 4),
        "pred_execs": cached.pred_execs,
        "pred_execs_avoided": cached.pred_execs_avoided,
        "dedup_hits": cached.dedup_hits,
        "dedup_misses": cached.dedup_misses,
        "dedup_hit_rate": round(cached.dedup_hit_rate, 4),
        "offpath_cost_cached": cached.actual_cost,
        "offpath_cost_uncached": uncached.actual_cost,
        "offpath_cost_logical": cached.logical_cost,
        "offpath_cost_saved": cached.cost_saved,
        "wall_seconds_cached": round(wall_cached, 3),
        "wall_seconds_uncached": round(wall_uncached, 3),
        "regression": regression,
        "roots_matched": l1.roots_matched,
        "blocks_executed": l1.blocks_executed,
    }
    with open(os.path.join(REPO_ROOT, "BENCH_speculation.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")

    # The gate proper: with the specialization tier in place the cached
    # run must win (or tie) on wall clock, not just on logical cost.
    assert not regression, (
        f"caching layers are a wall-clock regression: "
        f"{wall_cached:.3f}s cached vs {wall_uncached:.3f}s uncached")
