"""Figure 12: distribution of per-transaction speedups.

Paper: most heard transactions land between 2x and 20x; only 0.88% are
not accelerated (<1x); a small tail (0.53%) exceeds 50x.
"""

import pytest

from repro.bench import ascii_table, bar_chart, write_report
from repro.core import stats as S


@pytest.mark.benchmark(group="fig12")
def test_fig12_speedup_distribution(benchmark, l1):
    histogram = benchmark(S.speedup_histogram, l1.records, 5.0, 50.0)
    rows = [[label, f"{fraction:.2%}"] for label, fraction in histogram]
    report = ascii_table(
        ["Speedup bucket", "% of heard txs"],
        rows, title="Figure 12 — speedup distribution across heard txs")
    report += "\n\n" + bar_chart(histogram)
    report += ("\n\n(paper: mass between 2x and 20x; <1% unaccelerated; "
               "small >=50x tail)")
    write_report("fig12_speedup_distribution", report)

    as_dict = dict(histogram)
    assert sum(as_dict.values()) == pytest.approx(1.0)
    assert as_dict["<1x"] < 0.10
    low_mid = sum(fraction for label, fraction in histogram
                  if label not in ("<1x",))
    assert low_mid > 0.85
