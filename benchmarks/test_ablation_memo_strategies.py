"""Ablation: memoization heuristics (paper fn. 12's "more refined
memoization heuristics" as future work).

Sweeps shortcut-selection strategies from coarse (one shortcut per
segment) through the paper's default (segment + m5-style sub-segment)
to fine (every input-shrinking suffix).
"""

import pytest

from repro.bench import ascii_table, write_report
from repro.core import stats as S
from repro.core.node import ForerunnerConfig
from repro.p2p.latency import LatencyModel
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

from benchmarks.conftest import SCALE


@pytest.fixture(scope="module")
def strategy_dataset():
    config = DatasetConfig(
        name="MEMO",
        traffic=TrafficConfig(duration=max(60.0, SCALE * 0.5), seed=888,
                              compute_rate=0.0),
        observers={"live": LatencyModel()},
        seed=888)
    return record_dataset(config)


@pytest.mark.benchmark(group="ablation-memo")
def test_memoization_strategies(benchmark, strategy_dataset):
    def sweep():
        results = []
        for strategy in ("coarse", "default", "fine"):
            run = replay(strategy_dataset, "live",
                         config=ForerunnerConfig(
                             memoization_strategy=strategy))
            summary = S.summarize(run.records)
            report = S.synthesis_report(
                run.forerunner_node.speculator.archive, run.records)
            results.append((strategy, summary, report, run))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[strategy, f"{s.effective_speedup:.2f}x",
             f"{rep.skip_rate:.1%}", f"{rep.shortcuts_avg:.1f}"]
            for strategy, s, rep, _ in results]
    report = ascii_table(
        ["Strategy", "Effective speedup", "Skip rate", "Shortcuts/AP"],
        rows, title="Ablation — memoization heuristics")
    write_report("ablation_memo_strategies", report)

    by_name = {strategy: (s, rep, run)
               for strategy, s, rep, run in results}
    # Finer strategies place at least as many shortcut nodes...
    assert by_name["fine"][1].shortcuts_avg >= \
        by_name["coarse"][1].shortcuts_avg
    # ...and correctness never depends on the heuristic.
    for strategy, _, _, run in results:
        assert run.roots_matched == run.blocks_executed, strategy
