"""§5.2: correctness validation via Merkle roots.

Paper: 121,210 blocks / 22.5M transactions processed with the
speculative node's post-state root always matching — two states are
identical iff their roots are equal.  Here every replayed block's root
is compared between the Forerunner node and the baseline node (and the
recorder's truth chain).
"""

import pytest

from repro.bench import ascii_table, write_report


@pytest.mark.benchmark(group="correctness")
def test_correctness_merkle_roots(benchmark, runs):
    def tally():
        total_blocks = 0
        total_matched = 0
        total_txs = 0
        rows = []
        for name, run in sorted(runs.items()):
            total_blocks += run.blocks_executed
            total_matched += run.roots_matched
            total_txs += len(run.records)
            rows.append([name, run.blocks_executed, run.roots_matched,
                         len(run.records)])
        return rows, total_blocks, total_matched, total_txs

    rows, blocks, matched, txs = benchmark(tally)
    report = ascii_table(
        ["Dataset", "Blocks executed", "Roots matched", "Transactions"],
        rows, title="§5.2 — correctness validation (Merkle roots)")
    report += (f"\n\nTotal: {matched}/{blocks} roots matched over "
               f"{txs} speculatively-executed transactions "
               f"(paper: always matching over 121,210 blocks)")
    write_report("correctness_merkle", report)

    assert matched == blocks > 0
