"""Figure 15 + §5.5: code reduction during AP synthesis.

Paper: EVM trace 100% -> unoptimized S-EVM 31.73% -> final AP 8.95%
(constraint set 8.39% + fast path 0.56%), with stack elimination the
largest single contribution (-59.37%); shortcuts let 80.92% of S-EVM
instructions be skipped on the critical path; 82.2% of transactions
have one AP path.
"""

import pytest

from repro.bench import ascii_table, write_report
from repro.core import stats as S


@pytest.mark.benchmark(group="fig15")
def test_fig15_code_reduction(benchmark, l1):
    archive = l1.forerunner_node.speculator.archive
    report_obj = benchmark(S.synthesis_report, archive, l1.records)

    rows = [
        ["EVM instruction trace", "100.00%"],
        ["+ complex instruction decomposition",
         f"+{report_obj.decomposed_pct:.2f}%"],
        ["- stack instructions", f"-{report_obj.eliminated_stack_pct:.2f}%"],
        ["- memory instructions", f"-{report_obj.eliminated_mem_pct:.2f}%"],
        ["- control instructions",
         f"-{report_obj.eliminated_control_pct:.2f}%"],
        ["- state/env constants", f"-{report_obj.eliminated_state_pct:.2f}%"],
        ["+ guards (control constraints)",
         f"+{report_obj.inserted_guards_pct:.2f}%"],
        ["+ data constraints", f"+{report_obj.inserted_data_pct:.2f}%"],
        ["= unoptimized S-EVM", f"{report_obj.sevm_unoptimized_pct:.2f}%"],
        ["- constant folding", f"-{report_obj.eliminated_constant_pct:.2f}%"],
        ["- duplicated (CSE)", f"-{report_obj.eliminated_duplicate_pct:.2f}%"],
        ["- promoted context reads",
         f"-{report_obj.eliminated_promoted_pct:.2f}%"],
        ["- dead code", f"-{report_obj.eliminated_dead_pct:.2f}%"],
        ["= final AP", f"{report_obj.final_pct:.2f}%"],
        ["    constraint set", f"{report_obj.constraint_pct:.2f}%"],
        ["    fast path", f"{report_obj.fastpath_pct:.2f}%"],
    ]
    report = ascii_table(["Stage", "% of EVM trace"], rows,
                         title="Figure 15 — code reduction during AP "
                               "synthesis (averages over all AP paths)")
    report += (
        f"\n\nAverage EVM trace length: {report_obj.trace_len_avg:.0f}"
        f"\nAverage AP path length: {report_obj.ap_instrs_avg:.0f}"
        f"\nShortcut nodes per AP: {report_obj.shortcuts_avg:.1f}"
        f"\nS-EVM instructions skipped by shortcuts on the critical "
        f"path: {report_obj.skip_rate:.2%}"
        f"\nAP paths per transaction: "
        f"{dict(sorted(report_obj.paths_per_ap.items()))}"
        f"\nDistinct contexts per transaction: "
        f"{dict(sorted(report_obj.contexts_per_ap.items()))}"
        f"\n\n(paper: S-EVM 31.73%, AP 8.95% = 8.39% constraints + "
        f"0.56% fast path; 80.92% skipped; 82.2% single-path)")
    write_report("fig15_code_reduction", report)

    assert report_obj.paths > 0
    # One order of magnitude reduction.
    assert report_obj.final_pct < 25.0
    assert report_obj.sevm_unoptimized_pct < 50.0
    # Stack traffic is the biggest elimination (paper: -59.37%).
    assert report_obj.eliminated_stack_pct > max(
        report_obj.eliminated_mem_pct, report_obj.eliminated_control_pct)
    # Shortcuts skip a large share of critical-path S-EVM instructions.
    assert report_obj.skip_rate > 0.30
    # Most transactions end with a single AP path (paper: 82.2%).
    single = report_obj.paths_per_ap.get(1, 0)
    assert single / sum(report_obj.paths_per_ap.values()) > 0.6
