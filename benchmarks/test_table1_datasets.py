"""Table 1: datasets and heard rates.

Paper values: heard rates 92.24%-97.59% (91.45%-98.15% weighted); block
counts include temporary forks.
"""

import pytest

from repro.bench import ascii_table, write_report
from repro.core import stats as S


@pytest.mark.benchmark(group="table1")
def test_table1_datasets(benchmark, datasets, runs):
    def build_rows():
        rows = []
        for name, run in sorted(runs.items()):
            dataset = datasets["L1"] if name in ("L1", "R1") \
                else datasets[name]
            lo, hi = dataset.block_number_range()
            summary = S.summarize(run.records)
            rows.append([
                name,
                f"{lo}-{hi}",
                dataset.block_count,
                len(run.records),
                f"{summary.heard_fraction:.2%}",
                f"{summary.heard_weighted:.2%}",
            ])
        return rows

    rows = benchmark(build_rows)
    report = ascii_table(
        ["Tag", "Block range", "Blocks(+forks)", "Tx count",
         "% heard", "% heard (weighted)"],
        rows, title="Table 1 — datasets used in the evaluation")
    write_report("table1_datasets", report)

    # Shape assertions (paper: ~92-98% heard on every dataset).
    for row in rows:
        heard = float(row[4].rstrip("%")) / 100
        assert heard > 0.85, f"dataset {row[0]} heard rate too low"
