"""Fleet scaling benchmark: accepted-tx throughput across shard counts.

An open-loop storm of unique ``eth_sendRawTransaction`` frames (fresh
sender each, spread uniformly over the consistent-hash ring) is served
by fleets of 1 / 2 / 4 replicas.  Each replica fronts its own edge
server, so aggregate acceptance capacity scales with the replica
count while commitments stay byte-identical to the single node.

Emits ``BENCH_fleet.json`` with the gates:

* accepted-tx throughput at 4 shards >= 2.5x the 1-shard fleet;
* two-run byte-identity of the fleet serving trace at every shard
  count;
* a replica-crash chaos run whose journal-replayed restarts converge
  byte-for-byte with the fault-free commitments.
"""

from __future__ import annotations

import json
import os
import time

from repro.bench import ascii_table, write_report
from repro.fleet import (
    SITE_REPLICA_CRASH,
    FleetConfig,
    fleet_fault_plan,
    fleet_replay,
    run_fleet_serving,
    send_storm_scenario,
)
from repro.p2p.latency import LatencyModel
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.workloads.mixed import TrafficConfig

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "150"))
#: Seconds of recorded traffic behind the serving run (kept modest:
#: every replica executes every block).
DURATION = max(12.0, SCALE * 0.08)
#: Simulated seconds of send storm, and its offered rate.
STORM_SECONDS = max(8.0, DURATION * 0.6)
STORM_RATE = 600.0
SHARD_COUNTS = (1, 2, 4)
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _commitments(reports):
    return [(report.block_number, report.state_root,
             tuple((r.tx_hash, r.gas_used, r.success)
                   for r in report.records))
            for report in reports]


def test_fleet_scaling_throughput():
    dataset = record_dataset(DatasetConfig(
        name="fleet-bench",
        traffic=TrafficConfig(duration=DURATION, seed=2021),
        observers={"live": LatencyModel()},
        seed=2021))
    storm = send_storm_scenario(seed=7, rate_per_second=STORM_RATE,
                                duration=STORM_SECONDS)
    levels = []
    rows = []
    commitments = set()
    wall_started = time.perf_counter()
    for shards in SHARD_COUNTS:
        result = run_fleet_serving(
            dataset, storm, fleet_config=FleetConfig(shards=shards))
        rerun = run_fleet_serving(
            dataset, storm, fleet_config=FleetConfig(shards=shards))
        identical = result.trace_lines == rerun.trace_lines
        accepted = result.accepted_txs
        throughput = accepted / STORM_SECONDS
        commitments.add(json.dumps(
            _commitments(result.supervisor.reports), sort_keys=True))
        levels.append({
            "shards": shards,
            "offered": result.offered,
            "accepted_txs": accepted,
            "throughput_per_second": round(throughput, 3),
            "goodput": round(result.goodput, 6),
            "trace_identical": identical,
        })
        rows.append([
            shards, result.offered, accepted,
            f"{throughput:.0f}/s", f"{result.goodput:.1%}",
            "yes" if identical else "NO",
        ])
        assert identical, f"serving trace diverged at {shards} shards"
    wall = time.perf_counter() - wall_started

    # Sharding must not move the committed chain.
    assert len(commitments) == 1, "shard count changed commitments"

    by_shards = {level["shards"]: level for level in levels}
    scaling = (by_shards[4]["accepted_txs"]
               / max(1, by_shards[1]["accepted_txs"]))
    assert scaling >= 2.5, (
        f"4-shard fleet accepted only {scaling:.2f}x the single "
        f"shard ({by_shards[4]['accepted_txs']} vs "
        f"{by_shards[1]['accepted_txs']})")

    # Replica-crash chaos: journal-replayed restarts converge.
    clean = fleet_replay(dataset, "live", FleetConfig(shards=4))
    plan = fleet_fault_plan(seed=0, probability=0.3,
                            sites=(SITE_REPLICA_CRASH,))
    chaotic = fleet_replay(dataset, "live",
                           FleetConfig(shards=4, fault_plan=plan))
    crashes = chaotic.supervisor.c_crashes.value
    restarts = chaotic.supervisor.c_restarts.value
    converged = (_commitments(chaotic.supervisor.reports)
                 == _commitments(clean.supervisor.reports))
    assert crashes > 0, "crash chaos never fired"
    assert converged, "crash chaos changed fleet commitments"

    table = ascii_table(
        ["Shards", "Offered", "Accepted", "Throughput", "Goodput",
         "Trace=="],
        rows,
        title=f"Fleet accepted-tx scaling ({STORM_RATE:.0f}/s storm "
              f"for {STORM_SECONDS:.0f}s, {DURATION:.0f}s dataset)")
    table += (f"\n\ngates: >= 2.5x accepted throughput at 4 shards "
              f"(got {scaling:.2f}x); byte-identical serving trace "
              f"per shard count; crash chaos ({crashes} crashes, "
              f"{restarts} restarts) converged byte-for-byte"
              f"\nwall-clock {wall:.1f}s (trend only; gates use "
              f"deterministic quantities)")
    write_report("fleet_scaling", table)

    payload = {
        "duration": DURATION,
        "storm_rate": STORM_RATE,
        "storm_seconds": STORM_SECONDS,
        "levels": levels,
        "scaling_4_vs_1": round(scaling, 3),
        "crash_chaos": {
            "crashes": crashes,
            "restarts": restarts,
            "converged": converged,
        },
        "wall_seconds": round(wall, 3),
    }
    with open(os.path.join(REPO_ROOT, "BENCH_fleet.json"), "w",
              encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
