"""Account model: balance, nonce, code, and contract storage."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class Account:
    """One Ethereum account.

    Externally-owned accounts have empty ``code``; contract accounts
    carry their bytecode and a private key/value ``storage`` mapping
    256-bit slots to 256-bit values (absent slot == 0).
    """

    balance: int = 0
    nonce: int = 0
    code: bytes = b""
    storage: Dict[int, int] = field(default_factory=dict)

    def copy(self) -> "Account":
        """Deep copy (storage dict duplicated)."""
        return Account(self.balance, self.nonce, self.code, dict(self.storage))

    @property
    def is_contract(self) -> bool:
        """True when the account hosts code."""
        return bool(self.code)

    def get_storage(self, slot: int) -> int:
        """Read a storage slot (0 when never written)."""
        return self.storage.get(slot, 0)

    def set_storage(self, slot: int, value: int) -> None:
        """Write a storage slot; writing 0 deletes the entry."""
        if value:
            self.storage[slot] = value
        else:
            self.storage.pop(slot, None)
