"""Node-wide persistent state cache (cost model only).

A real Ethereum client keeps trie nodes and decoded values cached across
blocks, so a baseline node's state reads are a mix of warm and cold.
The prefetcher's benefit (Table 3's 1.21x for missed predictions) is
warming what would have been cold.  This cache tracks *which* keys are
warm; values always come from the committed world state, so it affects
cost accounting only, never correctness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable


class NodeCache:
    """LRU set of warm state keys shared across a node's lifetime."""

    def __init__(self, capacity: int = 200_000) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: Hashable) -> bool:
        """Check warmness and update recency + hit/miss counters."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def add(self, key: Hashable) -> None:
        """Mark a key warm, evicting the least recently used beyond cap."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def account_key(self, address: int) -> Hashable:
        return ("acct", address)

    def slot_key(self, address: int, slot: int) -> Hashable:
        return ("slot", address, slot)
