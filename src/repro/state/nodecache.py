"""Node-wide persistent state cache (cost model only).

A real Ethereum client keeps trie nodes and decoded values cached across
blocks, so a baseline node's state reads are a mix of warm and cold.
The prefetcher's benefit (Table 3's 1.21x for missed predictions) is
warming what would have been cold.  This cache tracks *which* keys are
warm; values always come from the committed world state, so it affects
cost accounting only, never correctness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable


class NodeCache:
    """LRU set of warm state keys shared across a node's lifetime."""

    def __init__(self, capacity: int = 200_000) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, key: Hashable) -> bool:
        """Check warmness and update recency + hit/miss counters."""
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def add(self, key: Hashable) -> None:
        """Mark a key warm, evicting the least recently used beyond cap."""
        if key in self._entries:
            self._entries.move_to_end(key)
            return
        self._entries[key] = None
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def account_key(self, address: int) -> Hashable:
        return ("acct", address)

    def slot_key(self, address: int, slot: int) -> Hashable:
        return ("slot", address, slot)

    # -- snapshot / restore (repro.recovery) ------------------------------

    def warm_keys(self) -> list:
        """Warm keys in LRU order (least recent first).

        Cross-block warmth decides cold vs warm I/O charges
        (:mod:`repro.state.diskio`), so the per-transaction baseline
        cost columns of Tables 2/3 depend on it: a recovery snapshot
        must capture the cache or a restarted node would re-pay cold
        reads the uncrashed run never paid.
        """
        return list(self._entries)

    def restore(self, keys, hits: int = 0, misses: int = 0) -> None:
        """Rebuild the cache from :meth:`warm_keys` output, preserving
        LRU order so later evictions match the uncrashed node's."""
        self._entries.clear()
        for key in keys:
            self._entries[key] = None
        self.hits = hits
        self.misses = misses
