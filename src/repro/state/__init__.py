"""World state: accounts, storage, Merkle commitment, and StateDB caching.

The paper's prefetcher (§4.4) works by pre-creating StateDB objects so
their internal caches already hold the values the critical path will
read.  This package reproduces that mechanism: a committed
:class:`WorldState` plays the role of the on-disk trie database, a
:class:`StateDB` is a snapshot view with internal caches, and
:class:`DiskModel` accounts for the simulated I/O cost of cold lookups
(trie-walk decoding) versus warm cache hits.
"""

from repro.state.account import Account
from repro.state.world import WorldState
from repro.state.statedb import StateDB
from repro.state.diskio import DiskModel, IOStats
from repro.state.nodecache import NodeCache
from repro.state.trie import storage_root, state_root

__all__ = [
    "Account",
    "WorldState",
    "StateDB",
    "DiskModel",
    "IOStats",
    "NodeCache",
    "storage_root",
    "state_root",
]
