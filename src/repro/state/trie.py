"""Merkle commitment over the world state.

Ethereum commits its state in a Merkle-Patricia trie; two states are
identical iff their roots are equal, which is how the paper validates
correctness (§5.2: every block's post-state root must match the
network's).  We reproduce the *invariant* with a simpler binary Merkle
construction over the sorted account entries: deterministic,
collision-resistant, and incremental enough for our scale.  The
trie *depth* (number of node decodes a cold lookup walks) is modelled
for I/O accounting in :mod:`repro.state.diskio`.
"""

from __future__ import annotations

from typing import Dict, List

from repro.state.account import Account
from repro.utils.hashing import hash_words, keccak_int
from repro.utils.words import bytes_to_int


def _merkle_fold(leaves: List[int]) -> int:
    """Fold a list of leaf hashes into a single root."""
    if not leaves:
        return 0
    level = leaves
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(hash_words((level[i], level[i + 1])))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def storage_root(storage: Dict[int, int]) -> int:
    """Commitment over one contract's storage mapping."""
    leaves = [hash_words((slot, value)) for slot, value in sorted(storage.items())]
    return _merkle_fold(leaves)


def account_hash(address: int, account: Account) -> int:
    """Leaf hash for one account (address, balance, nonce, code, storage)."""
    code_hash = keccak_int(account.code) if account.code else 0
    return hash_words(
        (address, account.balance, account.nonce, code_hash,
         storage_root(account.storage))
    )


def state_root(accounts: Dict[int, Account]) -> int:
    """Commitment over the entire world state."""
    leaves = [account_hash(addr, acct) for addr, acct in sorted(accounts.items())]
    return _merkle_fold(leaves)


def state_root_cached(accounts: Dict[int, Account],
                      leaf_cache: Dict[int, int]) -> int:
    """:func:`state_root` with memoized account leaves.

    ``leaf_cache`` maps address -> leaf hash; the caller owns it and
    must drop an address whenever its committed account object is
    replaced (:meth:`repro.state.world.WorldState.apply` does).  Leaf
    hashes are pure functions of (address, account contents), so a
    cached entry is valid for as long as the account object is not
    mutated — the commit protocol always installs fresh objects.
    """
    leaves = []
    for addr in sorted(accounts):
        leaf = leaf_cache.get(addr)
        if leaf is None:
            leaf = account_hash(addr, accounts[addr])
            leaf_cache[addr] = leaf
        leaves.append(leaf)
    return _merkle_fold(leaves)


def trie_depth(num_entries: int) -> int:
    """Approximate node-walk depth of a trie holding ``num_entries`` keys.

    Used by the disk model: a cold lookup loads and decodes one node per
    level from root to leaf.
    """
    if num_entries <= 1:
        return 1
    depth = 1
    span = 1
    while span < num_entries:
        span *= 16  # hex-ary branching like the Merkle-Patricia trie
        depth += 1
    return depth
