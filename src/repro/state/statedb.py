"""StateDB: a journaled, cached snapshot view over the committed state.

Mirrors geth's StateDB role described in the paper (§4.4): transaction
execution reads state through a StateDB whose internal caches expedite
repeated lookups, and Forerunner's prefetcher pre-populates those caches
off the critical path.  Warmness survives journal reverts (as in real
clients), which is exactly why speculative pre-execution pays even for
missed predictions (Table 3's 1.21× row).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import InsufficientBalance
from repro.state.account import Account
from repro.state.diskio import DiskModel
from repro.state.trie import trie_depth
from repro.state.world import WorldState


@dataclass
class LogEntry:
    """One LOG record emitted during execution."""

    address: int
    topics: Tuple[int, ...]
    data: bytes


class StateDB:
    """Mutable execution view with per-instance caches and a journal.

    Reads fall through: working cache -> committed world (charging the
    simulated cold-I/O cost and warming the cache).  Writes go to working
    copies and are journaled so :meth:`revert_to` can undo them; cache
    warmness deliberately survives reverts.
    """

    def __init__(self, world: WorldState, disk: Optional[DiskModel] = None,
                 node_cache=None,
                 parent: Optional["StateDB"] = None) -> None:
        self.world = world
        self.disk = disk if disk is not None else DiskModel()
        self.disk.account_depth = world.account_trie_depth()
        #: Optional :class:`repro.state.nodecache.NodeCache` — keys warm
        #: there are charged warm even on this view's first touch.
        self.node_cache = node_cache
        #: Copy-on-write parent view (see :meth:`fork`).  Reads fall
        #: through to frozen ancestors before hitting the world, and
        #: are charged warm there — exactly the classification a single
        #: sequential view would have produced.
        self._parent = parent
        self._frozen = False
        self._cache: Dict[int, Account] = {}
        self._loaded_slots: Set[Tuple[int, int]] = set()
        self._journal: List[tuple] = []
        self.logs: List[LogEntry] = []

    # -- copy-on-write forking ----------------------------------------------

    def fork(self) -> "StateDB":
        """A child view layered on this one (prefix-cache support).

        The child sees every change made in this view (and its
        ancestors) and copies touched accounts on first access; this
        view is frozen — further writes through it raise.  The child
        gets a fresh :class:`DiskModel`, so its I/O is accounted
        separately, with ancestor-cached keys charged warm.
        """
        self._frozen = True
        return StateDB(self.world, node_cache=self.node_cache, parent=self)

    def _assert_mutable(self) -> None:
        if self._frozen:
            raise RuntimeError(
                "StateDB is frozen (it has forked children); "
                "write through a fork instead")

    def _inherited_account(self, address: int) -> Optional[Account]:
        """Nearest ancestor's working copy of ``address`` (read-only)."""
        ancestor = self._parent
        while ancestor is not None:
            cached = ancestor._cache.get(address)
            if cached is not None:
                return cached
            ancestor = ancestor._parent
        return None

    def _slot_loaded_in_ancestors(self, key: Tuple[int, int]) -> bool:
        ancestor = self._parent
        while ancestor is not None:
            if key in ancestor._loaded_slots:
                return True
            ancestor = ancestor._parent
        return False

    # -- internal ----------------------------------------------------------

    def _load_account(self, address: int) -> Account:
        """Working copy of ``address``; cold-loads and warms on first touch."""
        cached = self._cache.get(address)
        if cached is not None:
            self.disk.charge_warm()
            return cached
        inherited = self._inherited_account(address)
        if inherited is not None:
            # Copy-on-first-touch from the frozen ancestor chain; the
            # ancestor already paid the cold walk, so this is warm.
            self.disk.charge_warm()
            working = Account(inherited.balance, inherited.nonce,
                              inherited.code, dict(inherited.storage))
            self._cache[address] = working
            return working
        committed = self.world.get_account(address)
        if (self.node_cache is not None
                and self.node_cache.contains(("acct", address))):
            self.disk.charge_warm()
        else:
            self.disk.charge_cold_account()
            if self.node_cache is not None:
                self.node_cache.add(("acct", address))
        if committed is None:
            working = Account()
        else:
            # Shallow copy: storage slots are loaded (and charged) lazily.
            working = Account(committed.balance, committed.nonce, committed.code, {})
        self._cache[address] = working
        return working

    def _committed_slot(self, address: int, slot: int) -> int:
        committed = self.world.get_account(address)
        if committed is None:
            return 0
        return committed.get_storage(slot)

    # -- warmness / prefetch support ----------------------------------------

    def is_account_warm(self, address: int) -> bool:
        """True if ``address`` is already in this view's cache."""
        return (address in self._cache
                or self._inherited_account(address) is not None)

    def is_slot_warm(self, address: int, slot: int) -> bool:
        """True if storage slot is already in this view's cache."""
        key = (address, slot)
        return key in self._loaded_slots \
            or self._slot_loaded_in_ancestors(key)

    def warm_account(self, address: int) -> None:
        """Prefetch one account into the cache (charges this view's disk)."""
        self._load_account(address)

    def warm_slot(self, address: int, slot: int) -> None:
        """Prefetch one storage slot into the cache."""
        self.get_storage(address, slot)

    # -- account access ------------------------------------------------------

    def account_exists(self, address: int) -> bool:
        """True if the account exists in cache or committed state."""
        return (address in self._cache
                or self._inherited_account(address) is not None
                or address in self.world)

    def create_account(self, address: int, balance: int = 0,
                       code: bytes = b"") -> None:
        """Create a fresh account in the working view."""
        self._assert_mutable()
        self._journal.append(("create", address, self._cache.get(address)))
        self._cache[address] = Account(balance=balance, code=code)

    def get_balance(self, address: int) -> int:
        return self._load_account(address).balance

    def set_balance(self, address: int, value: int) -> None:
        self._assert_mutable()
        account = self._load_account(address)
        self._journal.append(("balance", address, account.balance))
        account.balance = value

    def add_balance(self, address: int, amount: int) -> None:
        self.set_balance(address, self.get_balance(address) + amount)

    def sub_balance(self, address: int, amount: int) -> None:
        balance = self.get_balance(address)
        if balance < amount:
            raise InsufficientBalance(
                f"account {address:#x} balance {balance} < {amount}")
        self.set_balance(address, balance - amount)

    def get_nonce(self, address: int) -> int:
        return self._load_account(address).nonce

    def increment_nonce(self, address: int) -> None:
        self._assert_mutable()
        account = self._load_account(address)
        self._journal.append(("nonce", address, account.nonce))
        account.nonce += 1

    def get_code(self, address: int) -> bytes:
        return self._load_account(address).code

    def set_code(self, address: int, code: bytes) -> None:
        self._assert_mutable()
        account = self._load_account(address)
        self._journal.append(("code", address, account.code))
        account.code = code

    # -- storage access -------------------------------------------------------

    def get_storage(self, address: int, slot: int) -> int:
        """SLOAD path with lazy per-slot cold loading."""
        account = self._load_account(address)
        key = (address, slot)
        if key in self._loaded_slots:
            self.disk.charge_warm()
            return account.storage.get(slot, 0)
        if self._slot_loaded_in_ancestors(key):
            # The ancestor chain paid the cold walk; its (possibly
            # written) value arrived with the copied working account.
            self.disk.charge_warm()
            self._loaded_slots.add(key)
            return account.storage.get(slot, 0)
        committed = self.world.get_account(address)
        if (self.node_cache is not None
                and self.node_cache.contains(("slot", address, slot))):
            self.disk.charge_warm()
        else:
            self.disk.slot_depth = trie_depth(
                len(committed.storage) if committed is not None else 0)
            self.disk.charge_cold_slot()
            if self.node_cache is not None:
                self.node_cache.add(("slot", address, slot))
        value = self._committed_slot(address, slot)
        if value:
            account.storage[slot] = value
        self._loaded_slots.add(key)
        return value

    def set_storage(self, address: int, slot: int, value: int) -> None:
        """SSTORE path; journals the previous working value."""
        self._assert_mutable()
        account = self._load_account(address)
        key = (address, slot)
        if key in self._loaded_slots:
            old = account.storage.get(slot, 0)
        elif self._slot_loaded_in_ancestors(key):
            old = account.storage.get(slot, 0)
            self._loaded_slots.add(key)
        else:
            old = self._committed_slot(address, slot)
            self._loaded_slots.add(key)
        self._journal.append(("storage", address, slot, old))
        account.set_storage(slot, value)

    # -- logs -------------------------------------------------------------------

    def add_log(self, address: int, topics: Tuple[int, ...], data: bytes) -> None:
        """Append a LOG entry (journaled)."""
        self._assert_mutable()
        self._journal.append(("log",))
        self.logs.append(LogEntry(address, topics, data))

    # -- journal ------------------------------------------------------------------

    def snapshot(self) -> int:
        """Mark the current journal position."""
        return len(self._journal)

    def revert_to(self, snap: int) -> None:
        """Undo every change made after :meth:`snapshot` returned ``snap``."""
        self._assert_mutable()
        while len(self._journal) > snap:
            entry = self._journal.pop()
            kind = entry[0]
            if kind == "balance":
                self._cache[entry[1]].balance = entry[2]
            elif kind == "nonce":
                self._cache[entry[1]].nonce = entry[2]
            elif kind == "code":
                self._cache[entry[1]].code = entry[2]
            elif kind == "storage":
                self._cache[entry[1]].set_storage(entry[2], entry[3])
            elif kind == "log":
                self.logs.pop()
            elif kind == "create":
                if entry[2] is None:
                    self._cache.pop(entry[1], None)
                else:
                    self._cache[entry[1]] = entry[2]

    # -- witness support ----------------------------------------------------------

    def witness_deltas(self, spans: List[Tuple[int, int]]) -> List[dict]:
        """Per-span state deltas reconstructed from the journal.

        ``spans`` is an ascending, non-overlapping list of
        ``(start, end)`` journal positions (as returned by
        :meth:`snapshot`), one per transaction.  For every span this
        returns ``{"delta": {(kind, key): (pre, post)}, "created":
        [(address, pre_account_or_None)]}`` where *pre* is the value
        just before the span and *post* the value just after it —
        even when later spans overwrote the same key, because the
        journal's old-value chain pins every intermediate value.

        Reverted writes cancel out (their entries were popped), and
        keys whose pre equals post are dropped, so the delta is
        exactly the net effect of the span.  Must be called before
        :meth:`commit` clears the journal.
        """
        if not spans:
            return []
        base = spans[0][0]
        # One forward pass: per-key chains of (position, old_value).
        # The old value at position p is the key's live value over
        # (previous entry for the key, p]; the live value after the
        # last entry is whatever the working cache holds now.
        positions: Dict[tuple, List[int]] = {}
        olds: Dict[tuple, List[object]] = {}
        creates: List[Tuple[int, int, Optional[Account]]] = []
        for pos in range(base, len(self._journal)):
            entry = self._journal[pos]
            kind = entry[0]
            if kind in ("balance", "nonce", "code"):
                key = (kind, (entry[1],))
                old = entry[2]
            elif kind == "storage":
                key = ("storage", (entry[1], entry[2]))
                old = entry[3]
            elif kind == "create":
                creates.append((pos, entry[1], entry[2]))
                continue
            else:  # "log": digested from receipts, not a delta key
                continue
            positions.setdefault(key, []).append(pos)
            olds.setdefault(key, []).append(old)

        def current_value(key: tuple) -> object:
            kind, loc = key
            account = self._cache.get(loc[0])
            if account is None:  # pragma: no cover - journaled => cached
                account = self.world.get_account(loc[0]) or Account()
            if kind == "balance":
                return account.balance
            if kind == "nonce":
                return account.nonce
            if kind == "code":
                return account.code
            return account.storage.get(loc[1], 0)

        def value_at(key: tuple, pos: int) -> object:
            """The key's live value as of journal position ``pos``."""
            chain = positions.get(key)
            if chain:
                index = bisect_left(chain, pos)
                if index < len(chain):
                    return olds[key][index]
            return current_value(key)

        results: List[dict] = []
        for start, end in spans:
            delta: Dict[tuple, Tuple[object, object]] = {}
            created: List[Tuple[int, Optional[Account]]] = []
            created_addrs = set()
            for pos, addr, prev in creates:
                if start <= pos < end:
                    if prev is None:
                        prev = self.world.get_account(addr)
                    created.append((addr, prev))
                    created_addrs.add(addr)
            for key, chain in positions.items():
                index = bisect_left(chain, start)
                if index >= len(chain) or chain[index] >= end:
                    continue  # key untouched inside this span
                pre = olds[key][index]
                post = value_at(key, end)
                if key[1][0] in created_addrs and key[0] != "storage":
                    # Field writes on an account created in-span carry
                    # intra-span pre values; the creation entry is the
                    # authoritative pre (absent or the shadowed account).
                    continue
                if pre != post:
                    delta[key] = (pre, post)
            for addr, _prev in created:
                # Materialize the created account's post fields even
                # when never journaled after creation.
                for kind in ("balance", "nonce", "code"):
                    key = (kind, (addr,))
                    post = value_at(key, end)
                    default = b"" if kind == "code" else 0
                    if post != default:
                        delta[key] = (None, post)
            results.append({"delta": delta, "created": created})
        return results

    # -- commit ----------------------------------------------------------------------

    def dirty_accounts(self) -> Dict[int, Account]:
        """Materialize full post-state accounts for every touched address."""
        result: Dict[int, Account] = {}
        for address, working in self._cache.items():
            committed = self.world.get_account(address)
            if committed is None:
                merged = Account(working.balance, working.nonce, working.code, {})
            else:
                merged = committed.copy()
                merged.balance = working.balance
                merged.nonce = working.nonce
                merged.code = working.code
            for (addr, slot) in list(self._loaded_slots):
                if addr != address:
                    continue
                value = working.storage.get(slot, 0)
                merged.set_storage(slot, value)
            result[address] = merged
        return result

    def commit(self) -> None:
        """Fold this view's changes into the committed world state.

        Forked views cannot commit: their caches only hold the deltas
        since the fork point, so folding them in would lose ancestor
        writes.  Forks are speculative by construction and are simply
        discarded.
        """
        if self._parent is not None:
            raise RuntimeError("cannot commit a forked StateDB view")
        self._assert_mutable()
        self.world.apply(self.dirty_accounts())
        self._journal.clear()
