"""Simulated disk-I/O accounting for state lookups.

On a real node, looking up a state value walks the Merkle-Patricia trie:
each level is a disk read plus RLP decode plus key/value lookup (paper
§4.4).  The prefetcher's payoff comes from doing those walks off the
critical path so critical-path reads hit warm caches.

We model that expense in abstract *cost units* (the same currency as
:mod:`repro.core.costmodel`).  A cold account or slot lookup costs
``NODE_COST`` per trie level; a warm lookup costs ``WARM_COST``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional


#: Cost units to load + decode one trie node from disk.
NODE_COST = 450
#: Cost units for a warm (cached) lookup.
WARM_COST = 12


@dataclass
class IOStats:
    """Counters for one execution's simulated I/O."""

    cold_account_loads: int = 0
    cold_slot_loads: int = 0
    warm_hits: int = 0
    cost_units: int = 0

    def reset(self) -> None:
        self.cold_account_loads = 0
        self.cold_slot_loads = 0
        self.warm_hits = 0
        self.cost_units = 0


@dataclass
class DiskModel:
    """Charges simulated I/O cost for state lookups.

    ``account_depth`` / ``slot_depth`` approximate the trie depths of the
    global account trie and a per-contract storage trie; they are set by
    :class:`repro.state.statedb.StateDB` from the current state size.
    """

    account_depth: int = 6
    slot_depth: int = 4
    stats: IOStats = field(default_factory=IOStats)
    #: Chaos hook (:mod:`repro.faults`): called before every *cold*
    #: read — a disk walk — and may raise a transient storage error.
    #: Only ever installed on speculative StateDBs, never on the
    #: critical path; ``StateDB.fork`` children start with no hook.
    fault_hook: Optional[Callable[[], None]] = None

    def charge_cold_account(self) -> int:
        """Cost of walking the account trie from disk."""
        if self.fault_hook is not None:
            self.fault_hook()
        cost = NODE_COST * self.account_depth
        self.stats.cold_account_loads += 1
        self.stats.cost_units += cost
        return cost

    def charge_cold_slot(self) -> int:
        """Cost of walking one contract's storage trie from disk."""
        if self.fault_hook is not None:
            self.fault_hook()
        cost = NODE_COST * self.slot_depth
        self.stats.cold_slot_loads += 1
        self.stats.cost_units += cost
        return cost

    def charge_warm(self) -> int:
        """Cost of a cache hit."""
        self.stats.warm_hits += 1
        self.stats.cost_units += WARM_COST
        return WARM_COST
