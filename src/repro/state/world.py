"""The committed world state (the "database" behind StateDB views)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.state.account import Account
from repro.state.trie import state_root_cached, trie_depth


class WorldState:
    """Committed account store, playing the role of the on-disk trie DB.

    :class:`repro.state.statedb.StateDB` instances are snapshot views on
    top of a ``WorldState``; :meth:`apply` folds a finished block's write
    set back in.
    """

    def __init__(self) -> None:
        self._accounts: Dict[int, Account] = {}
        #: Monotonic commit counter.  Overlay caches built on top of a
        #: world (the speculator's prefix cache) embed the version in
        #: their keys, so any commit implicitly invalidates them.
        self.version = 0
        #: Memoized Merkle leaves (address -> leaf hash), invalidated
        #: per address whenever the committed account object is
        #: replaced.  Commits install fresh Account copies, so a cached
        #: leaf can only go stale through in-place mutation of a
        #: committed account — which nothing does after the first
        #: root() computation (genesis builders mutate before it).
        self._leaf_cache: Dict[int, int] = {}
        self._root_cache: Optional[tuple] = None

    # -- access -----------------------------------------------------------

    def get_account(self, address: int) -> Optional[Account]:
        """The committed account at ``address`` or None."""
        return self._accounts.get(address)

    def accounts(self) -> Dict[int, Account]:
        """The underlying mapping (callers must not mutate)."""
        return self._accounts

    def __contains__(self, address: int) -> bool:
        return address in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

    # -- mutation ---------------------------------------------------------

    def create_account(self, address: int, balance: int = 0,
                       code: bytes = b"") -> Account:
        """Create (or overwrite) an account; returns it."""
        account = Account(balance=balance, code=code)
        self._accounts[address] = account
        self._leaf_cache.pop(address, None)
        self.version += 1
        return account

    def apply(self, dirty: Dict[int, Account]) -> None:
        """Commit a finished execution's dirty accounts."""
        for address, account in dirty.items():
            self._accounts[address] = account
            self._leaf_cache.pop(address, None)
        self.version += 1

    def copy(self) -> "WorldState":
        """Deep copy; used by the recorder/emulator to reset state (§5.4)."""
        clone = WorldState()
        clone._accounts = {a: acct.copy() for a, acct in self._accounts.items()}
        # Leaf hashes depend only on (address, contents), which the
        # deep copy preserves.
        clone._leaf_cache = dict(self._leaf_cache)
        return clone

    def replace_contents(self, source: "WorldState") -> None:
        """Restore ``source``'s accounts into *this* world, in place.

        Reorg and crash-recovery both need to rewind a live node's
        world without breaking the references every component
        (speculator, prefetcher, executor) already holds.  The restore
        bypasses :meth:`apply`, so the version is bumped here —
        version-keyed overlay caches must never serve state from the
        abandoned timeline.
        """
        self._accounts.clear()
        self._leaf_cache.clear()
        self._root_cache = None
        for address, account in source._accounts.items():
            self._accounts[address] = account.copy()
        self.version += 1

    # -- commitment -------------------------------------------------------

    def root(self) -> int:
        """Merkle root of the committed state (correctness check, §5.2).

        Incremental: account leaves are memoized and only the accounts
        replaced since the last commit are re-hashed; repeated calls at
        the same version return the cached root outright.
        """
        cached = self._root_cache
        if cached is not None and cached[0] == self.version:
            return cached[1]
        root = state_root_cached(self._accounts, self._leaf_cache)
        self._root_cache = (self.version, root)
        return root

    def account_trie_depth(self) -> int:
        """Approximate depth of the account trie (for the disk model)."""
        return trie_depth(len(self._accounts))
