"""The committed world state (the "database" behind StateDB views)."""

from __future__ import annotations

from typing import Dict, Optional

from repro.state.account import Account
from repro.state.trie import state_root, trie_depth


class WorldState:
    """Committed account store, playing the role of the on-disk trie DB.

    :class:`repro.state.statedb.StateDB` instances are snapshot views on
    top of a ``WorldState``; :meth:`apply` folds a finished block's write
    set back in.
    """

    def __init__(self) -> None:
        self._accounts: Dict[int, Account] = {}
        #: Monotonic commit counter.  Overlay caches built on top of a
        #: world (the speculator's prefix cache) embed the version in
        #: their keys, so any commit implicitly invalidates them.
        self.version = 0

    # -- access -----------------------------------------------------------

    def get_account(self, address: int) -> Optional[Account]:
        """The committed account at ``address`` or None."""
        return self._accounts.get(address)

    def accounts(self) -> Dict[int, Account]:
        """The underlying mapping (callers must not mutate)."""
        return self._accounts

    def __contains__(self, address: int) -> bool:
        return address in self._accounts

    def __len__(self) -> int:
        return len(self._accounts)

    # -- mutation ---------------------------------------------------------

    def create_account(self, address: int, balance: int = 0,
                       code: bytes = b"") -> Account:
        """Create (or overwrite) an account; returns it."""
        account = Account(balance=balance, code=code)
        self._accounts[address] = account
        self.version += 1
        return account

    def apply(self, dirty: Dict[int, Account]) -> None:
        """Commit a finished execution's dirty accounts."""
        for address, account in dirty.items():
            self._accounts[address] = account
        self.version += 1

    def copy(self) -> "WorldState":
        """Deep copy; used by the recorder/emulator to reset state (§5.4)."""
        clone = WorldState()
        clone._accounts = {a: acct.copy() for a, acct in self._accounts.items()}
        return clone

    def replace_contents(self, source: "WorldState") -> None:
        """Restore ``source``'s accounts into *this* world, in place.

        Reorg and crash-recovery both need to rewind a live node's
        world without breaking the references every component
        (speculator, prefetcher, executor) already holds.  The restore
        bypasses :meth:`apply`, so the version is bumped here —
        version-keyed overlay caches must never serve state from the
        abandoned timeline.
        """
        self._accounts.clear()
        for address, account in source._accounts.items():
            self._accounts[address] = account.copy()
        self.version += 1

    # -- commitment -------------------------------------------------------

    def root(self) -> int:
        """Merkle root of the committed state (correctness check, §5.2)."""
        return state_root(self._accounts)

    def account_trie_depth(self) -> int:
        """Approximate depth of the account trie (for the disk model)."""
        return trie_depth(len(self._accounts))
