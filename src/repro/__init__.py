"""Forerunner: constraint-based speculative transaction execution for
Ethereum — a full Python reproduction of the SOSP 2021 paper.

Quick tour of the public API::

    from repro import (
        Transaction, BlockHeader, WorldState, StateDB,
        Speculator, FutureContext, TransactionAccelerator,
        BaselineNode, ForerunnerNode,
        compile_contract, record_dataset, replay,
    )

See README.md for the architecture map, docs/PIPELINE.md for a staged
walkthrough of AP synthesis on the paper's running example, and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.core.accelerator import TransactionAccelerator
from repro.core.node import BaselineNode, ForerunnerConfig, ForerunnerNode
from repro.core.speculator import FutureContext, Speculator
from repro.minisol.compiler import compile_contract
from repro.sim.emulator import replay
from repro.sim.recorder import DatasetConfig, record_dataset
from repro.state.statedb import StateDB
from repro.state.world import WorldState

__version__ = "1.0.0"

__all__ = [
    "Block",
    "BlockHeader",
    "Transaction",
    "TransactionAccelerator",
    "BaselineNode",
    "ForerunnerConfig",
    "ForerunnerNode",
    "FutureContext",
    "Speculator",
    "compile_contract",
    "replay",
    "DatasetConfig",
    "record_dataset",
    "StateDB",
    "WorldState",
    "__version__",
]
