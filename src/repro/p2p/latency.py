"""Gossip latency distributions.

Transaction propagation over Ethereum's gossip network has a short
median (a second or two) and a heavy tail (peering topology, rate
limiting) — that tail, plus transactions submitted directly to mining
pools, is why a node hears only 92-98% of transactions before they are
mined (paper Table 1) and why Figure 11's heard-delay curve stretches
to tens of seconds.

We model per-(message, node) delay as a lognormal with a small Pareto
tail mixed in.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass
class LatencyModel:
    """Samples propagation delays (seconds)."""

    median: float = 1.4
    sigma: float = 0.55
    #: Probability a delivery lands in the heavy tail.
    tail_probability: float = 0.05
    tail_scale: float = 8.0
    tail_alpha: float = 1.3

    def sample(self, rng: random.Random) -> float:
        """One propagation delay."""
        if rng.random() < self.tail_probability:
            # Pareto tail: scale / U^(1/alpha).
            return self.tail_scale / (rng.random() ** (1.0 / self.tail_alpha))
        return float(rng.lognormvariate(math.log(self.median), self.sigma))
