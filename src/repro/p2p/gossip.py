"""Gossip network: per-participant message arrival times.

The asynchronous gossip protocol is the root cause of the many-future
problem (paper §4.2): each miner observes a different subset and
ordering of pending transactions, and the evaluation node hears most —
but not all — transactions before they are mined.

The model assigns every broadcast message an independent arrival delay
per participant.  Transactions flagged ``origin_miner`` are *private*:
they reach only their miner (e.g. mining-pool-direct submissions) and
are never heard by observers before inclusion.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chain.transaction import Transaction
from repro.p2p.latency import LatencyModel


@dataclass
class GossipNetwork:
    """Assigns arrival times of transactions to miners and observers."""

    miner_ids: List[int]
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: Per-observer latency models (observers differ in connectivity —
    #: the paper's L1 vs R1 heard-rate difference, §5.1).
    observer_latencies: Dict[str, LatencyModel] = field(default_factory=dict)
    seed: int = 7

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def add_observer(self, name: str,
                     latency: Optional[LatencyModel] = None) -> None:
        self.observer_latencies[name] = latency or self.latency

    def disseminate(self, tx: Transaction, born: float
                    ) -> "Dissemination":
        """Sample when each participant hears ``tx``."""
        miner_arrivals: Dict[int, float] = {}
        observer_arrivals: Dict[str, float] = {}
        if tx.origin_miner is not None:
            # Private transaction: direct to one miner only.
            miner_arrivals[tx.origin_miner] = born
            for name in self.observer_latencies:
                observer_arrivals[name] = float("inf")
            for miner in self.miner_ids:
                if miner != tx.origin_miner:
                    miner_arrivals[miner] = float("inf")
            return Dissemination(tx, born, miner_arrivals, observer_arrivals)
        for miner in self.miner_ids:
            miner_arrivals[miner] = born + self.latency.sample(self._rng)
        for name, model in self.observer_latencies.items():
            observer_arrivals[name] = born + model.sample(self._rng)
        return Dissemination(tx, born, miner_arrivals, observer_arrivals)


@dataclass
class Dissemination:
    """Arrival schedule of one transaction."""

    tx: Transaction
    born: float
    miner_arrivals: Dict[int, float]
    observer_arrivals: Dict[str, float]
