"""Gossip network: per-participant message arrival times.

The asynchronous gossip protocol is the root cause of the many-future
problem (paper §4.2): each miner observes a different subset and
ordering of pending transactions, and the evaluation node hears most —
but not all — transactions before they are mined.

The model assigns every broadcast message an independent arrival delay
per participant.  Transactions flagged ``origin_miner`` are *private*:
they reach only their miner (e.g. mining-pool-direct submissions) and
are never heard by observers before inclusion.

Arrival draws are **order-independent**: each (transaction,
participant) pair seeds its own RNG from
``hash(seed, tx.hash, participant)``, so adding an observer, reordering
registration, or a private transaction (which consumes no draws) never
perturbs any other participant's arrival time.  The seed repo drew all
delays from one shared RNG stream in registration order, which made
every arrival time depend on the whole preceding dissemination history;
that legacy behaviour is preserved behind ``legacy_rng=True`` for
comparing against old recordings.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.chain.transaction import Transaction
from repro.obs.registry import get_registry
from repro.p2p.latency import LatencyModel
from repro.utils.hashing import hash_words, keccak_int


def _participant_id(participant) -> int:
    """Stable integer id of a participant (miner int or observer name)."""
    if isinstance(participant, int):
        return participant
    return keccak_int(str(participant).encode("utf-8"))


@dataclass
class GossipNetwork:
    """Assigns arrival times of transactions to miners and observers."""

    miner_ids: List[int]
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: Per-observer latency models (observers differ in connectivity —
    #: the paper's L1 vs R1 heard-rate difference, §5.1).
    observer_latencies: Dict[str, LatencyModel] = field(default_factory=dict)
    seed: int = 7
    #: Draw delays from one shared RNG stream in registration order
    #: (the seed repo's behaviour): arrival times then depend on
    #: observer registration and on every earlier dissemination.
    legacy_rng: bool = False
    #: Chaos hook (:mod:`repro.faults`): record-time network faults —
    #: ``gossip.deliver`` rules here drop (arrival=inf), duplicate
    #: (no-op on a per-participant schedule) or reorder (delay) each
    #: *observer* arrival.  Miner arrivals are left alone: miners are
    #: the ground truth the recorded blocks came from.
    injector: object = None

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        obs = get_registry().scope("gossip")
        self.c_disseminated = obs.counter("disseminated")
        self.c_private = obs.counter("private")

    def add_observer(self, name: str,
                     latency: Optional[LatencyModel] = None) -> None:
        self.observer_latencies[name] = latency or self.latency

    def _draw_rng(self, tx: Transaction, participant) -> random.Random:
        """Private RNG for one (tx, participant) delay draw."""
        return random.Random(hash_words(
            (self.seed, tx.hash, _participant_id(participant))))

    def disseminate(self, tx: Transaction, born: float
                    ) -> "Dissemination":
        """Sample when each participant hears ``tx``."""
        self.c_disseminated.inc()
        miner_arrivals: Dict[int, float] = {}
        observer_arrivals: Dict[str, float] = {}
        if tx.origin_miner is not None:
            # Private transaction: direct to one miner only.
            self.c_private.inc()
            miner_arrivals[tx.origin_miner] = born
            for name in self.observer_latencies:
                observer_arrivals[name] = float("inf")
            for miner in self.miner_ids:
                if miner != tx.origin_miner:
                    miner_arrivals[miner] = float("inf")
            return Dissemination(tx, born, miner_arrivals, observer_arrivals)
        if self.legacy_rng:
            for miner in self.miner_ids:
                miner_arrivals[miner] = born + self.latency.sample(self._rng)
            for name, model in self.observer_latencies.items():
                observer_arrivals[name] = born + model.sample(self._rng)
            return Dissemination(tx, born, miner_arrivals, observer_arrivals)
        for miner in self.miner_ids:
            miner_arrivals[miner] = born + self.latency.sample(
                self._draw_rng(tx, miner))
        for name, model in self.observer_latencies.items():
            arrival = born + model.sample(self._draw_rng(tx, name))
            observer_arrivals[name] = self._apply_fault(
                tx, name, arrival)
        return Dissemination(tx, born, miner_arrivals, observer_arrivals)

    def _apply_fault(self, tx: Transaction, name: str,
                     arrival: float) -> float:
        """Record-time chaos on one observer arrival (see ``injector``)."""
        if self.injector is None or not self.injector.enabled:
            return arrival
        rule = self.injector.evaluate("gossip.deliver", tx=tx.hash,
                                      observer=name)
        if rule is None or rule.kind == "duplicate":
            return arrival
        if rule.kind == "reorder":
            return arrival + rule.reorder_seconds()
        return float("inf")  # drop (and any raise-kind rule)


@dataclass
class Dissemination:
    """Arrival schedule of one transaction."""

    tx: Transaction
    born: float
    miner_arrivals: Dict[int, float]
    observer_arrivals: Dict[str, float]
