"""P2P dissemination model: gossip latencies and node views."""

from repro.p2p.latency import LatencyModel
from repro.p2p.gossip import GossipNetwork

__all__ = ["LatencyModel", "GossipNetwork"]
