"""Exception hierarchy shared across the reproduction.

All library errors derive from :class:`ReproError` so that callers can
catch everything from this package with a single ``except`` clause while
still being able to distinguish EVM-level faults (which are part of normal
transaction semantics: out-of-gas, explicit REVERT) from genuine misuse of
the library API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class EVMError(ReproError):
    """Base class for faults raised while executing EVM bytecode.

    An :class:`EVMError` aborts the current call frame and, unless caught
    by a calling frame, causes the transaction to fail with all state
    changes reverted.  These are *expected* runtime outcomes, not bugs.
    """


class StackUnderflow(EVMError):
    """An instruction popped more items than the stack holds."""


class StackOverflow(EVMError):
    """The stack exceeded the protocol limit of 1024 items."""


class OutOfGas(EVMError):
    """Execution ran out of gas."""


class InvalidJump(EVMError):
    """JUMP/JUMPI targeted a position that is not a JUMPDEST."""


class InvalidOpcode(EVMError):
    """An undefined or explicitly invalid opcode was executed."""


class Revert(EVMError):
    """The contract executed REVERT; carries the returned payload."""

    def __init__(self, data: bytes = b"") -> None:
        super().__init__("execution reverted")
        self.data = data


class WriteProtection(EVMError):
    """A state modification was attempted inside a static call."""


class InsufficientBalance(EVMError):
    """A value transfer exceeded the sender's balance."""


class CompileError(ReproError):
    """minisol source failed to lex, parse, or compile."""

    def __init__(self, message: str, line: int = 0) -> None:
        location = f" (line {line})" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line


class AssemblerError(ReproError):
    """EVM assembly source was malformed."""


class ConstraintViolation(ReproError):
    """Raised internally by AP execution when no constraint set matches.

    Never escapes :class:`repro.core.accelerator.TransactionAccelerator`;
    it triggers the fallback to full EVM execution.
    """


class SpeculationError(ReproError):
    """AP synthesis failed for a transaction (e.g. unsupported trace)."""


class InjectedFault(ReproError):
    """A fault deliberately raised by :mod:`repro.faults` (chaos testing).

    Never a real error: every injection site sits inside speculative
    machinery whose failures must degrade to baseline execution, so an
    escaped :class:`InjectedFault` is itself a robustness bug.
    """

    def __init__(self, site: str, kind: str = "raise") -> None:
        super().__init__(f"injected fault at {site} ({kind})")
        self.site = site
        self.kind = kind


class TransientStorageError(InjectedFault):
    """A transient (retryable) simulated storage read failure."""

    def __init__(self, site: str = "storage.read") -> None:
        super().__init__(site, kind="storage_error")


class SimulatedCrash(BaseException):
    """A simulated process death injected by :mod:`repro.recovery`.

    Deliberately **not** a :class:`ReproError` (nor even an
    ``Exception``): a crash models the whole process dying, so no
    containment layer — not the speculation guard, not a retry policy,
    not a bare ``except Exception`` — may absorb it.  Only the
    crash-recovery harness (which plays the role of the supervisor
    restarting the node) catches it.
    """

    def __init__(self, site: str, seq: int = -1) -> None:
        super().__init__(f"simulated crash at {site}")
        self.site = site
        #: Journal sequence number active when the crash fired (-1 when
        #: the crash point is not journal-related).
        self.seq = seq


class RecoveryError(ReproError):
    """Restart replay failed to converge with the durable journal.

    Raised when a re-driven block's committed root or receipts differ
    from what the write-ahead journal recorded before the crash — a
    genuine durability bug, never an expected outcome.
    """


class ChainError(ReproError):
    """Invalid block, transaction, or chain operation."""


class SimulationError(ReproError):
    """Discrete-event simulation was driven into an invalid configuration."""
