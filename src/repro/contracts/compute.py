"""Compute-heavy contract: iterated hashing with a single checkpoint.

Mainnet has a class of compute-dominated transactions (on-chain games,
verification, batched math) whose traces are enormous but whose write
sets are tiny.  Under perfect prediction the whole unrolled loop is one
memoized segment, so these transactions show the extreme speedups of
the paper's Figure 12 tail (">=50x ... we even observe some over
1000x").
"""

from __future__ import annotations

from functools import lru_cache

from repro.minisol import CompiledContract, compile_contract

COMPUTE_SOURCE = """
contract Checkpointer {
    uint256 public checkpoint;
    uint256 public rounds;

    event Checkpointed(uint256 value, uint256 iterations);

    // One mixing step (inlined at each unrolled iteration).
    function step(uint256 acc, uint256 i) private returns (uint256) {
        acc = keccak(acc + i);
        acc = acc ^ (acc >> 7);
        return acc * 1099511628211 + i;
    }

    // Fold `n` rounds of mixing into the running checkpoint.
    function mix(uint256 seed, uint256 n) public {
        uint256 acc = checkpoint + seed;
        for (uint256 i = 0; i < n; i += 1) {
            acc = step(acc, i);
        }
        checkpoint = acc;
        rounds += n;
        emit Checkpointed(acc, n);
    }
}
"""


@lru_cache(maxsize=1)
def checkpointer() -> CompiledContract:
    """Compiled Checkpointer (cached)."""
    return compile_contract(COMPUTE_SOURCE)
