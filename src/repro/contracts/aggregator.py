"""Oracle aggregator: median of three PriceFeed sources.

STATICCALLs three independent feeds and stores the median — chained
read-only cross-contract context plus the branchy comparison logic of
a 3-way median (multiple AP paths per calling pattern).
"""

from __future__ import annotations

from functools import lru_cache

from repro.minisol import CompiledContract, compile_contract
from repro.minisol.abi import selector

#: Selector of PriceFeed.prices(uint256).
PRICES_SELECTOR = selector("prices(uint256)")

AGGREGATOR_SOURCE = f"""
contract Aggregator {{
    uint256 public feedA;
    uint256 public feedB;
    uint256 public feedC;
    uint256 public lastMedian;
    uint256 public lastRound;

    event MedianUpdated(uint256 round, uint256 median);

    function update(uint256 round) public {{
        uint256 a = staticread(feedA, {PRICES_SELECTOR}, round);
        uint256 b = staticread(feedB, {PRICES_SELECTOR}, round);
        uint256 c = staticread(feedC, {PRICES_SELECTOR}, round);
        uint256 median = 0;
        if (a <= b && b <= c) {{ median = b; }}
        else if (c <= b && b <= a) {{ median = b; }}
        else if (b <= a && a <= c) {{ median = a; }}
        else if (c <= a && a <= b) {{ median = a; }}
        else {{ median = c; }}
        require(median > 0);
        lastMedian = median;
        lastRound = round;
        emit MedianUpdated(round, median);
    }}
}}
"""


@lru_cache(maxsize=1)
def aggregator() -> CompiledContract:
    """Compiled Aggregator (cached)."""
    return compile_contract(AGGREGATOR_SOURCE)
