"""Constant-product AMM (Uniswap-v2 style) over two token contracts.

Every swap reads and writes the shared reserves, so concurrent swaps are
*densely inter-dependent*: their execution order changes the amounts
each receives.  This is the hard end of the prediction spectrum — the
ordering enumeration in the paper's context constructor (§4.4) exists
for exactly this workload.  Swaps also make external calls into the two
token contracts, exercising CALL inlining in traces.
"""

from __future__ import annotations

from functools import lru_cache

from repro.minisol import CompiledContract, compile_contract
from repro.minisol.abi import selector

#: Selector of Token.transferFrom(address,address,uint256) — the AMM
#: pulls the input token from the trader.
TRANSFER_FROM_SELECTOR = selector("transferFrom(address,address,uint256)")
#: Selector of Token.transfer(address,uint256) — the AMM pays the trader.
TRANSFER_SELECTOR = selector("transfer(address,uint256)")

AMM_SOURCE = f"""
contract AMM {{
    uint256 public reserve0;
    uint256 public reserve1;
    uint256 public token0;
    uint256 public token1;
    uint256 public selfAddr;

    event Swap(address trader, uint256 amountIn, uint256 amountOut,
               uint256 direction);

    // Swap token0 -> token1 with a 0.3% fee, constant-product pricing.
    function swap0to1(uint256 amountIn, uint256 minOut)
        public returns (uint256)
    {{
        require(amountIn > 0);
        uint256 r0 = reserve0;
        uint256 r1 = reserve1;
        uint256 amountInWithFee = amountIn * 997;
        uint256 numerator = amountInWithFee * r1;
        uint256 denominator = r0 * 1000 + amountInWithFee;
        uint256 amountOut = numerator / denominator;
        require(amountOut >= minOut);
        extcall(token0, {TRANSFER_FROM_SELECTOR}, msg.sender, selfAddr,
                amountIn);
        extcall(token1, {TRANSFER_SELECTOR}, msg.sender, amountOut);
        reserve0 = r0 + amountIn;
        reserve1 = r1 - amountOut;
        emit Swap(msg.sender, amountIn, amountOut, 0);
        return amountOut;
    }}

    // Swap token1 -> token0.
    function swap1to0(uint256 amountIn, uint256 minOut)
        public returns (uint256)
    {{
        require(amountIn > 0);
        uint256 r0 = reserve0;
        uint256 r1 = reserve1;
        uint256 amountInWithFee = amountIn * 997;
        uint256 numerator = amountInWithFee * r0;
        uint256 denominator = r1 * 1000 + amountInWithFee;
        uint256 amountOut = numerator / denominator;
        require(amountOut >= minOut);
        extcall(token1, {TRANSFER_FROM_SELECTOR}, msg.sender, selfAddr,
                amountIn);
        extcall(token0, {TRANSFER_SELECTOR}, msg.sender, amountOut);
        reserve1 = r1 + amountIn;
        reserve0 = r0 - amountOut;
        emit Swap(msg.sender, amountIn, amountOut, 1);
        return amountOut;
    }}
}}
"""


@lru_cache(maxsize=1)
def amm() -> CompiledContract:
    """Compiled AMM (cached)."""
    return compile_contract(AMM_SOURCE)
