"""Contract library: the paper's running example plus DeFi-shaped contracts.

Each module exposes ``SOURCE`` (minisol text) and a cached
``compiled()`` accessor.  The contracts reproduce the workload shapes
the paper's evaluation runs against: oracle price feeds (the paper's
§4.2 example, inter-dependent via shared rounds), ERC20 transfers
(sparse inter-dependence via shared accounts), constant-product AMM
swaps (dense inter-dependence via shared reserves), auctions, and a
registry with cross-contract calls.
"""

from repro.contracts.pricefeed import PRICEFEED_SOURCE, pricefeed
from repro.contracts.erc20 import ERC20_SOURCE, erc20
from repro.contracts.amm import AMM_SOURCE, amm
from repro.contracts.auction import AUCTION_SOURCE, auction
from repro.contracts.registry import REGISTRY_SOURCE, registry
from repro.contracts.lending import LENDING_SOURCE, lending
from repro.contracts.aggregator import AGGREGATOR_SOURCE, aggregator

__all__ = [
    "PRICEFEED_SOURCE", "pricefeed",
    "ERC20_SOURCE", "erc20",
    "AMM_SOURCE", "amm",
    "AUCTION_SOURCE", "auction",
    "REGISTRY_SOURCE", "registry",
    "LENDING_SOURCE", "lending",
    "AGGREGATOR_SOURCE", "aggregator",
]
