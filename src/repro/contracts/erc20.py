"""ERC20-style fungible token.

Transfers touch only the two account balances involved, so most token
transactions are mutually independent — the easy, high-coverage end of
the speculation spectrum.  ``transferFrom`` adds an allowance read-
modify-write (a two-level mapping) for deeper storage traffic.
"""

from __future__ import annotations

from functools import lru_cache

from repro.minisol import CompiledContract, compile_contract

ERC20_SOURCE = """
contract Token {
    uint256 public totalSupply;
    mapping(address => uint256) public balanceOf;
    mapping(address => mapping(address => uint256)) public allowance;

    event Transfer(address from, address to, uint256 value);
    event Approval(address owner, address spender, uint256 value);

    function transfer(address to, uint256 value) public returns (bool) {
        uint256 fromBalance = balanceOf[msg.sender];
        require(fromBalance >= value);
        balanceOf[msg.sender] = fromBalance - value;
        balanceOf[to] = balanceOf[to] + value;
        emit Transfer(msg.sender, to, value);
        return true;
    }

    function approve(address spender, uint256 value) public returns (bool) {
        allowance[msg.sender][spender] = value;
        emit Approval(msg.sender, spender, value);
        return true;
    }

    function transferFrom(address from, address to, uint256 value)
        public returns (bool)
    {
        uint256 allowed = allowance[from][msg.sender];
        require(allowed >= value);
        uint256 fromBalance = balanceOf[from];
        require(fromBalance >= value);
        allowance[from][msg.sender] = allowed - value;
        balanceOf[from] = fromBalance - value;
        balanceOf[to] = balanceOf[to] + value;
        emit Transfer(from, to, value);
        return true;
    }

    function mint(address to, uint256 value) public {
        totalSupply = totalSupply + value;
        balanceOf[to] = balanceOf[to] + value;
        emit Transfer(0, to, value);
    }
}
"""


@lru_cache(maxsize=1)
def erc20() -> CompiledContract:
    """Compiled Token (cached)."""
    return compile_contract(ERC20_SOURCE)
