"""Name registry with a per-write fee counter and a batch helper.

``registerMany`` loops (``while``), producing long unrolled traces whose
length depends on calldata, and ``resolveAndPay`` reads another
contract through ``extcall`` — both exercise trace shapes beyond simple
straight-line bodies.
"""

from __future__ import annotations

from functools import lru_cache

from repro.minisol import CompiledContract, compile_contract
from repro.minisol.abi import selector

#: Selector of Token.transfer(address,uint256).
TRANSFER_SELECTOR = selector("transfer(address,uint256)")

REGISTRY_SOURCE = f"""
contract Registry {{
    mapping(uint256 => address) public ownerOf;
    mapping(address => uint256) public holdings;
    uint256 public registrations;
    uint256 public feeToken;
    uint256 public feeSink;

    event Registered(uint256 name, address owner);

    function register(uint256 name) public {{
        require(ownerOf[name] == 0);
        ownerOf[name] = msg.sender;
        holdings[msg.sender] = holdings[msg.sender] + 1;
        registrations = registrations + 1;
        emit Registered(name, msg.sender);
    }}

    // Register `count` sequential names starting at `base`.
    function registerMany(uint256 base, uint256 count) public {{
        uint256 i = 0;
        while (i < count) {{
            uint256 name = base + i;
            require(ownerOf[name] == 0);
            ownerOf[name] = msg.sender;
            i = i + 1;
        }}
        holdings[msg.sender] = holdings[msg.sender] + count;
        registrations = registrations + count;
    }}

    // Pay a 1-token fee through the fee token contract, then register.
    function registerPaid(uint256 name) public {{
        extcall(feeToken, {TRANSFER_SELECTOR}, feeSink, 1);
        require(ownerOf[name] == 0);
        ownerOf[name] = msg.sender;
        registrations = registrations + 1;
    }}

    function transferName(uint256 name, address to) public {{
        require(ownerOf[name] == msg.sender);
        ownerOf[name] = to;
        holdings[msg.sender] = holdings[msg.sender] - 1;
        holdings[to] = holdings[to] + 1;
    }}
}}
"""


@lru_cache(maxsize=1)
def registry() -> CompiledContract:
    """Compiled Registry (cached)."""
    return compile_contract(REGISTRY_SOURCE)
