"""Lending pool: Compound-style supply/borrow with interest accrual.

Interest accrues per second since the last interaction, so *every*
transaction's effects depend on ``block.timestamp`` — the broadest
possible exposure to header-field prediction.  Borrowing checks
collateral value through a STATICCALL into a PriceFeed, chaining
read-only cross-contract context.
"""

from __future__ import annotations

from functools import lru_cache

from repro.minisol import CompiledContract, compile_contract
from repro.minisol.abi import selector

#: Selector of PriceFeed.prices(uint256) — the collateral price getter.
PRICES_SELECTOR = selector("prices(uint256)")

#: Interest: principal * seconds * RATE_PER_SECOND / RATE_SCALE.
RATE_PER_SECOND = 3
RATE_SCALE = 10_000_000

LENDING_SOURCE = f"""
contract LendingPool {{
    uint256 public totalSupplied;
    uint256 public totalBorrowed;
    uint256 public borrowIndex;
    uint256 public lastAccrual;
    uint256 public priceFeed;
    uint256 public activeRound;
    mapping(address => uint256) public supplied;
    mapping(address => uint256) public borrowed;
    mapping(address => uint256) public collateral;

    event Accrued(uint256 newIndex, uint256 elapsed);
    event Borrowed(address who, uint256 amount);

    function accrue() public {{
        uint256 last = lastAccrual;
        uint256 nowTs = block.timestamp;
        if (last == 0) {{ lastAccrual = nowTs; return; }}
        if (nowTs <= last) {{ return; }}
        uint256 elapsed = nowTs - last;
        uint256 index = borrowIndex;
        if (index == 0) {{ index = {RATE_SCALE}; }}
        uint256 newIndex = index
            + index * elapsed * {RATE_PER_SECOND} / {RATE_SCALE};
        borrowIndex = newIndex;
        uint256 debt = totalBorrowed;
        totalBorrowed = debt + debt * elapsed * {RATE_PER_SECOND}
            / {RATE_SCALE};
        lastAccrual = nowTs;
        emit Accrued(newIndex, elapsed);
    }}

    function supply(uint256 amount) public {{
        require(amount > 0);
        supplied[msg.sender] = supplied[msg.sender] + amount;
        totalSupplied = totalSupplied + amount;
    }}

    function depositCollateral(uint256 amount) public {{
        require(amount > 0);
        collateral[msg.sender] = collateral[msg.sender] + amount;
    }}

    // Borrow against collateral valued via the price feed (STATICCALL).
    function borrow(uint256 amount) public {{
        require(amount > 0);
        uint256 price = staticread(priceFeed, {PRICES_SELECTOR},
                                   activeRound);
        uint256 value = collateral[msg.sender] * price;
        uint256 newDebt = borrowed[msg.sender] + amount;
        // 150% collateralization, collateral priced in feed units.
        require(value * 2 >= newDebt * 3);
        require(totalSupplied >= totalBorrowed + amount);
        borrowed[msg.sender] = newDebt;
        totalBorrowed = totalBorrowed + amount;
        emit Borrowed(msg.sender, amount);
    }}

    function repay(uint256 amount) public {{
        uint256 debt = borrowed[msg.sender];
        require(amount <= debt);
        borrowed[msg.sender] = debt - amount;
        totalBorrowed = totalBorrowed - amount;
    }}
}}
"""


@lru_cache(maxsize=1)
def lending() -> CompiledContract:
    """Compiled LendingPool (cached)."""
    return compile_contract(LENDING_SOURCE)
