"""Open ascending auction with a timestamp deadline.

Bids branch on both the deadline (``block.timestamp``) and the current
high bid — context-sensitive control flow in two dimensions, like the
paper's FC1-vs-FC4 divergence.
"""

from __future__ import annotations

from functools import lru_cache

from repro.minisol import CompiledContract, compile_contract

AUCTION_SOURCE = """
contract Auction {
    uint256 public highBid;
    address public highBidder;
    uint256 public deadline;
    mapping(address => uint256) public refunds;
    uint256 public settled;

    event NewHighBid(address bidder, uint256 amount);
    event Outbid(address bidder, uint256 amount);

    function bid(uint256 amount) public {
        require(block.timestamp < deadline);
        uint256 current = highBid;
        require(amount > current);
        address previous = highBidder;
        if (previous != 0) {
            refunds[previous] = refunds[previous] + current;
            emit Outbid(previous, current);
        }
        highBid = amount;
        highBidder = msg.sender;
        emit NewHighBid(msg.sender, amount);
    }

    function settle() public {
        require(block.timestamp >= deadline);
        require(settled == 0);
        settled = 1;
    }

    function withdrawRefund() public returns (uint256) {
        uint256 amount = refunds[msg.sender];
        require(amount > 0);
        refunds[msg.sender] = 0;
        return amount;
    }
}
"""


@lru_cache(maxsize=1)
def auction() -> CompiledContract:
    """Compiled Auction (cached)."""
    return compile_contract(AUCTION_SOURCE)
