"""PriceFeed: the paper's running example (Figure 4), verbatim semantics.

A price oracle aggregating submissions per 300-second round.  The two
IF-conditions (round validity on ``block.timestamp``; first-vs-later
submission on ``activeRoundID``) are exactly the control constraints the
paper's Figures 8-10 build accelerated programs around.
"""

from __future__ import annotations

from functools import lru_cache

from repro.minisol import CompiledContract, compile_contract

PRICEFEED_SOURCE = """
contract PriceFeed {
    // persistent state variables of the contract
    uint256 public activeRoundID;
    mapping(uint256 => uint256) public prices;
    mapping(uint256 => uint256) public submissionCounts;

    // method to submit a price for each 5-minute round
    function submit(uint256 roundID, uint256 price) public {
        uint256 curTime = block.timestamp;
        uint256 curRoundID = curTime - curTime % 300;
        if (roundID != curRoundID) { revert(); }

        if (activeRoundID < roundID) {
            activeRoundID = roundID;
            prices[roundID] = price;
            submissionCounts[roundID] = 1;
        } else {
            uint256 curPrice = prices[roundID];
            uint256 curCount = submissionCounts[roundID];
            uint256 newSum = curPrice * curCount + price;
            uint256 newCount = curCount + 1;
            submissionCounts[roundID] = newCount;
            prices[roundID] = newSum / newCount;
        }
    }
}
"""


@lru_cache(maxsize=1)
def pricefeed() -> CompiledContract:
    """Compiled PriceFeed (cached)."""
    return compile_contract(PRICEFEED_SOURCE)
