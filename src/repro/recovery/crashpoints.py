"""Seeded crash injection at every durability boundary.

Crash sites are **custom** injector rules — deliberately absent from
:data:`repro.faults.injector.SITES` — so generic chaos plans
(``FaultPlan.uniform`` / ``seeded_random``) never raise a
:class:`repro.errors.SimulatedCrash`, which no containment layer may
catch.  They reuse the :class:`~repro.faults.injector.FaultInjector`
machinery unchanged: per-site seeded RNG streams, ``after``/
``max_fires`` firing windows, and the ``faults.site.*`` obs counters
(custom sites are auto-registered).

Site semantics
--------------

=================================== =====================================
``recovery.journal.append``          die *before* the record is written
                                     (nothing durable)
``recovery.journal.torn_write``      die midway through the frame write
                                     (a torn tail the scanner must
                                     detect and truncate)
``recovery.journal.after_write``     die after write+flush, before fsync
                                     (the record is durable in the
                                     simulated store)
``recovery.journal.after_sync``      die right after fsync (fully
                                     durable)
``recovery.snapshot.write``          die before the snapshot file is
                                     written
``recovery.snapshot.torn_write``     die midway through the snapshot,
                                     written to the *final* path (a
                                     corrupt snapshot the loader must
                                     skip)
``recovery.snapshot.after_write``    die after the temp file is synced,
                                     before the atomic rename (a stray
                                     ``.tmp`` the store must ignore)
``recovery.block.pre_commit``        die after the block-import record,
                                     before execution
``recovery.block.post_commit``       die right after the block-commit
                                     record
=================================== =====================================
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SimulatedCrash
from repro.faults.injector import (
    KIND_CRASH,
    KIND_TORN,
    FaultPlan,
    FaultRule,
)

SITE_JOURNAL_APPEND = "recovery.journal.append"
SITE_JOURNAL_TORN = "recovery.journal.torn_write"
SITE_JOURNAL_AFTER_WRITE = "recovery.journal.after_write"
SITE_JOURNAL_AFTER_SYNC = "recovery.journal.after_sync"
SITE_SNAPSHOT_WRITE = "recovery.snapshot.write"
SITE_SNAPSHOT_TORN = "recovery.snapshot.torn_write"
SITE_SNAPSHOT_AFTER_WRITE = "recovery.snapshot.after_write"
SITE_BLOCK_PRE_COMMIT = "recovery.block.pre_commit"
SITE_BLOCK_POST_COMMIT = "recovery.block.post_commit"

#: Sites that kill the process mid-write, leaving partial bytes.
TORN_SITES: Tuple[str, ...] = (SITE_JOURNAL_TORN, SITE_SNAPSHOT_TORN)

#: Every crash site, in the order the sweep walks them.
CRASH_SITES: Tuple[str, ...] = (
    SITE_JOURNAL_APPEND,
    SITE_JOURNAL_TORN,
    SITE_JOURNAL_AFTER_WRITE,
    SITE_JOURNAL_AFTER_SYNC,
    SITE_SNAPSHOT_WRITE,
    SITE_SNAPSHOT_TORN,
    SITE_SNAPSHOT_AFTER_WRITE,
    SITE_BLOCK_PRE_COMMIT,
    SITE_BLOCK_POST_COMMIT,
)


def site_kind(site: str) -> str:
    """The fault kind a crash plan uses at ``site``."""
    return KIND_TORN if site in TORN_SITES else KIND_CRASH


def crash_plan(seed: int, site: str, occurrence: int = 0) -> FaultPlan:
    """A plan that kills the process at the ``occurrence``-th evaluation
    of ``site`` (0-based), exactly once.

    ``max_fires=1`` matters beyond hygiene: a restarted process has
    fresh per-site evaluation counts, so without it the same crash
    would re-fire on every restart and the node could never converge.
    (The recovery harness additionally restarts with no plan at all,
    modelling a crash cause that died with the process.)
    """
    return FaultPlan(seed=seed, rules=(
        FaultRule(site=site, kind=site_kind(site), probability=1.0,
                  after=occurrence, max_fires=1),))


def sweep_plans(seed: int, occurrence: int = 0
                ) -> List[Tuple[str, FaultPlan]]:
    """One single-shot crash plan per site (the crash-matrix sweep)."""
    return [(site, crash_plan(seed, site, occurrence))
            for site in CRASH_SITES]


def maybe_crash(injector, site: str, **ctx) -> None:
    """Die here if a ``crash`` rule fires (``torn`` rules are handled by
    the writers, which must leave partial bytes behind first)."""
    rule = injector.evaluate(site, **ctx)
    if rule is not None and rule.kind == KIND_CRASH:
        raise SimulatedCrash(site, seq=int(ctx.get("seq", -1)))


def torn_fires(injector, site: str, **ctx) -> bool:
    """True when a ``torn`` rule fires at ``site`` — the caller must
    write the partial frame, then raise ``SimulatedCrash`` itself."""
    rule = injector.evaluate(site, **ctx)
    return rule is not None and rule.kind == KIND_TORN
