"""Durable replay with restart-replay convergence.

:class:`DurableReplay` is the emulator's event loop
(:func:`repro.sim.emulator.replay`) re-hosted on a durability boundary:
every block import and commit is journaled (fsync'd), per-transaction
commits and memo-table events stream into the WAL, and a snapshot of
the full node state — both worlds, both node caches, the txpool, the
memo-table summary, the committed reports — is atomically installed
every ``snapshot_interval_blocks`` blocks, after which the journal is
compacted to the snapshot's sequence number.

Because the event timeline is deterministic (a stable sort of tx
arrivals, speculation ticks and block arrivals), resumption is a
cursor: a snapshot pins the index of the next unconsumed event, and
recovery replays the suffix.  Blocks whose ``block_commit`` record
survived the crash are **re-driven and verified**: the recovered node
must reproduce the journaled state root and receipts byte-for-byte or
:class:`repro.errors.RecoveryError` is raised.  Blocks past the
journal's horizon are fresh.

The convergence bar (checked by :func:`recovery_report` and the
``repro crash`` CLI) is the strongest one available: the equivalence
digest (:func:`repro.faults.invariants.run_digest`) of the
crashed-and-recovered run must be byte-identical to an *uninterrupted*
:func:`~repro.sim.emulator.replay` of the same dataset — committed
roots, receipts, and the Table 2/3 baseline columns included.  The
baseline columns are the subtle part: per-transaction baseline cost
depends on cross-block :class:`~repro.state.nodecache.NodeCache`
warmth, which is why snapshots carry both nodes' warm-key lists in LRU
order.

Speculation capital (APs, prefix cache, dedup fingerprints) is
*derived* state: it is never serialized — the recovered node re-runs
speculation for in-flight heads from the restored txpool, exactly as
the paper's node would re-speculate after a restart.  The journal still
records memo inserts/evictions, so the rebuilt table can be audited
against pre-crash history.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.node import (
    BaselineNode,
    BlockReport,
    ForerunnerConfig,
    ForerunnerNode,
    TxRecord,
)
from repro.errors import RecoveryError, SimulatedCrash, SimulationError
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import NullTracer, SpanTracer
from repro.recovery.crashpoints import (
    SITE_BLOCK_POST_COMMIT,
    SITE_BLOCK_PRE_COMMIT,
    crash_plan,
    maybe_crash,
    sweep_plans,
)
from repro.recovery.journal import (
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)
from repro.recovery.snapshot import SnapshotStore
from repro.sim.emulator import EvaluationRun, JoinedRecord
from repro.sim.storage import (
    tx_from_json,
    tx_to_json,
    world_from_json,
    world_to_json,
)


@dataclass
class RecoveryConfig:
    """Durability tunables."""

    #: Snapshot every N committed blocks (0 disables snapshots; the
    #: journal then carries the whole history).
    snapshot_interval_blocks: int = 2
    #: Newest snapshots retained on disk.
    keep_snapshots: int = 2
    #: Journal memo-table events (insert/evict/drop/discard).  Pure
    #: audit trail; recovery never replays them.
    journal_memo_events: bool = True
    #: Give up after this many restart attempts (a crash-loop guard;
    #: single-shot crash plans need exactly one).
    max_restarts: int = 5


@dataclass
class RecoveryInfo:
    """What one restart found and rebuilt."""

    torn_bytes_truncated: int = 0
    snapshot_block: Optional[int] = None
    journal_records: int = 0
    blocks_restored: int = 0
    blocks_verified: int = 0
    blocks_fresh: int = 0
    #: ``tx_commit`` records whose block never reached ``block_commit``
    #: (the crash landed mid-block; those effects were never durable).
    incomplete_tx_commits: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class RecoveryOutcome:
    """One workload survived (or not) a crash plan."""

    run: EvaluationRun
    crashes: List[dict] = field(default_factory=list)
    restarts: int = 0
    recoveries: List[RecoveryInfo] = field(default_factory=list)
    #: ``faults.site.*`` summary of the injector that caused the crash.
    fire_summary: Dict[str, Dict[str, int]] = field(default_factory=dict)


def _build_events(dataset, observer: str, speculation_tick: float
                  ) -> List[Tuple[float, int, int, tuple]]:
    """The emulator's merged timeline as an indexable sorted list.

    A heap pops in exactly sorted order when keys are unique (the
    counter guarantees that), so iterating this list reproduces
    :func:`repro.sim.emulator.replay` event-for-event — and a plain
    integer cursor into it is a complete resumption point.
    """
    if observer not in dataset.tx_arrivals:
        raise SimulationError(
            f"dataset {dataset.name!r} has no observer {observer!r} "
            f"(has {sorted(dataset.tx_arrivals)})")
    events: List[Tuple[float, int, int, tuple]] = []
    counter = 0
    for arrival, tx in dataset.tx_arrivals[observer]:
        events.append((arrival, 0, counter, ("tx", tx)))
        counter += 1
    last_block_time = dataset.blocks[-1][0] if dataset.blocks else 0.0
    tick = speculation_tick
    while tick < last_block_time:
        events.append((tick, 1, counter, ("tick", None)))
        counter += 1
        tick += speculation_tick
    for arrival, block in dataset.blocks:
        events.append((arrival, 2, counter, ("block", block)))
        counter += 1
    events.sort()
    return events


def _cache_to_json(cache) -> dict:
    return {"keys": [list(key) for key in cache.warm_keys()],
            "hits": cache.hits, "misses": cache.misses}


def _cache_from_json(cache, payload: dict) -> None:
    cache.restore([tuple(key) for key in payload["keys"]],
                  hits=int(payload["hits"]),
                  misses=int(payload["misses"]))


def _report_to_json(report: BlockReport) -> dict:
    return {"block_number": report.block_number,
            "state_root": report.state_root,
            "records": [dataclasses.asdict(r) for r in report.records]}


def _report_from_json(payload: dict) -> BlockReport:
    return BlockReport(
        block_number=int(payload["block_number"]),
        state_root=int(payload["state_root"]),
        records=[TxRecord(**r) for r in payload["records"]])


class DurableReplay:
    """One process lifetime of a durable evaluation node.

    ``resume=False`` starts a fresh store (journal truncated to a new
    magic header, snapshots untouched but superseded); ``resume=True``
    models a process restart: truncate the journal's torn tail, load
    the newest intact snapshot, rebuild both nodes, and continue the
    event timeline from the snapshot's cursor, verifying every
    journal-committed block it re-drives.
    """

    def __init__(self, dataset, store_dir: str, observer: str = "live",
                 config: Optional[ForerunnerConfig] = None,
                 recovery: Optional[RecoveryConfig] = None,
                 crash_plan=None, speculation_tick: float = 2.0,
                 resume: bool = False) -> None:
        self.dataset = dataset
        self.observer = observer
        self.config = config or ForerunnerConfig()
        self.recovery = recovery or RecoveryConfig()
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(self.registry) \
            if self.config.enable_obs else NullTracer()
        if crash_plan is not None:
            self.injector = FaultInjector(crash_plan,
                                          registry=self.registry)
        else:
            self.injector = NULL_INJECTOR
        obs = self.registry.scope("recovery")
        self._obs = obs
        self.c_restores = obs.counter("restores")
        self.c_blocks_restored = obs.counter("blocks_restored")
        self.c_blocks_verified = obs.counter("blocks_verified")
        self.c_blocks_fresh = obs.counter("blocks_fresh")
        self.c_torn_truncated = obs.counter("journal.torn_bytes_truncated")
        self._events = _build_events(dataset, observer, speculation_tick)
        self.cursor = 0
        self.info = RecoveryInfo()
        #: block number -> journaled commit payload to verify against.
        self._verify: Dict[int, dict] = {}
        self._baseline_records: Dict[int, TxRecord] = {}
        self._sim_now = 0.0
        journal_path = os.path.join(store_dir, "journal.wal")
        self.snapshots = SnapshotStore(
            os.path.join(store_dir, "snapshots"),
            injector=self.injector, obs=obs,
            keep=self.recovery.keep_snapshots)
        self.run_ = EvaluationRun(
            dataset_name=dataset.name, observer=observer,
            registry=self.registry, tracer=self.tracer)
        next_seq = 0
        if resume:
            next_seq = self._restore(journal_path)
        else:
            if os.path.exists(journal_path):
                os.remove(journal_path)
            self._fresh_nodes()
        self.journal = JournalWriter(journal_path,
                                     injector=self.injector,
                                     obs=obs, next_seq=next_seq)
        if self.recovery.journal_memo_events:
            self.forerunner.speculator.memo_sink = self._memo_sink

    # -- node construction / restore --------------------------------------

    def _fresh_nodes(self) -> None:
        self.baseline = BaselineNode(self.dataset.genesis_world.copy(),
                                     registry=self.registry)
        self.forerunner = ForerunnerNode(
            self.dataset.genesis_world.copy(), self.config,
            registry=self.registry, tracer=self.tracer)
        self.forerunner.predictor.observe_block(
            self.dataset.genesis_block)

    def _restore(self, journal_path: str) -> int:
        """Truncate, scan, load, rebuild.  Returns the next journal
        sequence number for the re-opened writer."""
        self.c_restores.inc()
        if not os.path.exists(journal_path):
            # Crashed before the journal was even created: cold start.
            self._fresh_nodes()
            return 0
        self.info.torn_bytes_truncated = truncate_torn_tail(journal_path)
        self.c_torn_truncated.inc(self.info.torn_bytes_truncated)
        scan = read_journal(journal_path)
        self.info.journal_records = len(scan.records)
        loaded = self.snapshots.load_latest()
        base_seq = -1
        if loaded is not None:
            payload, block_number = loaded
            self._restore_from_snapshot(payload)
            self.info.snapshot_block = block_number
            base_seq = int(payload["journal_seq"])
        else:
            self._fresh_nodes()
        committed: Dict[int, dict] = {}
        tx_commit_blocks: List[int] = []
        for record in scan.records:
            if record.seq <= base_seq:
                continue
            if record.type == "block_commit":
                committed[int(record.data["number"])] = record.data
            elif record.type == "tx_commit":
                tx_commit_blocks.append(int(record.data["block"]))
        self._verify = committed
        self.info.incomplete_tx_commits = sum(
            1 for number in tx_commit_blocks if number not in committed)
        self.info.blocks_restored = len(self.forerunner.reports)
        self.c_blocks_restored.inc(self.info.blocks_restored)
        return scan.next_seq

    def _restore_from_snapshot(self, payload: dict) -> None:
        if payload.get("format") != 1:
            raise RecoveryError(
                f"unknown snapshot format {payload.get('format')!r}")
        if payload["dataset"] != self.dataset.name \
                or payload["observer"] != self.observer:
            raise RecoveryError(
                "snapshot belongs to a different dataset/observer")
        base = payload["baseline"]
        self.baseline = BaselineNode(world_from_json(base["world"]),
                                     registry=self.registry)
        _cache_from_json(self.baseline.node_cache, base["cache"])
        fore = payload["forerunner"]
        self.forerunner = ForerunnerNode(
            world_from_json(fore["world"]), self.config,
            registry=self.registry, tracer=self.tracer)
        _cache_from_json(self.forerunner.node_cache, fore["cache"])
        self.forerunner.predictor.observe_block(
            self.dataset.genesis_block)
        self.forerunner.head_number = int(fore["head_number"])
        for tx_json, heard_time in fore["pool"]:
            tx = tx_from_json(tx_json)
            self.forerunner.pool[tx.hash] = (tx, float(heard_time))
        self.forerunner.heard = {
            int(tx_hash, 16): float(when)
            for tx_hash, when in fore["heard"]}
        self.forerunner.executed = {
            int(tx_hash, 16) for tx_hash in fore["executed"]}
        self.forerunner._pool_version = len(self.forerunner.pool) + 1
        self.forerunner.reports = [
            _report_from_json(entry) for entry in fore["reports"]]
        self.cursor = int(payload["event_cursor"])
        self.run_.records = [
            JoinedRecord(**entry) for entry in payload["records"]]
        self.run_.blocks_executed = int(payload["blocks_executed"])
        self.run_.roots_matched = int(payload["roots_matched"])
        self.run_.speculation_jobs = int(payload["speculation_jobs"])

    # -- capture -----------------------------------------------------------

    def _capture(self, block_number: int) -> dict:
        fore = self.forerunner
        pool = sorted(fore.pool.items())
        return {
            "format": 1,
            "dataset": self.dataset.name,
            "observer": self.observer,
            "block_number": block_number,
            "event_cursor": self.cursor,
            "journal_seq": self.journal.next_seq - 1,
            "blocks_executed": self.run_.blocks_executed,
            "roots_matched": self.run_.roots_matched,
            "speculation_jobs": self.run_.speculation_jobs,
            "baseline": {
                "world": world_to_json(self.baseline.world),
                "cache": _cache_to_json(self.baseline.node_cache),
            },
            "forerunner": {
                "world": world_to_json(fore.world),
                "cache": _cache_to_json(fore.node_cache),
                "head_number": fore.head_number,
                "pool": [[tx_to_json(tx), heard]
                         for _, (tx, heard) in pool],
                "heard": [[f"{tx_hash:#x}", when] for tx_hash, when
                          in sorted(fore.heard.items())],
                "executed": [f"{tx_hash:#x}"
                             for tx_hash in sorted(fore.executed)],
                "memo": [f"{tx_hash:#x}" for tx_hash in fore.speculator.aps],
                "reports": [_report_to_json(r) for r in fore.reports],
            },
            "records": [dataclasses.asdict(r)
                        for r in self.run_.records],
        }

    # -- journal hooks -----------------------------------------------------

    def _clock(self) -> dict:
        return {
            "exec_cost": int(self.forerunner.c_cost.value),
            "spec_cost": int(
                self.forerunner.speculator.total_logical_cost),
            "sim_time": round(self._sim_now, 6),
        }

    def _memo_sink(self, event: str, tx_hash: int) -> None:
        self.journal.append("memo_" + event, {"tx": f"{tx_hash:#x}"},
                            clock=self._clock())

    # -- the event loop ----------------------------------------------------

    def run(self) -> EvaluationRun:
        """Consume the timeline from the cursor; returns the run.

        Raises :class:`SimulatedCrash` when the crash plan fires (the
        journal/snapshot store is left exactly as the dying process
        would leave it) and :class:`RecoveryError` when a re-driven
        block fails to reproduce its journaled commit."""
        events = self._events
        try:
            while self.cursor < len(events):
                now, _, _, (kind, payload) = events[self.cursor]
                self.cursor += 1
                self._sim_now = now
                if kind == "tx":
                    self.forerunner.on_transaction(payload, now)
                elif kind == "tick":
                    self.run_.speculation_jobs += \
                        self.forerunner.run_speculation(now)
                else:
                    self._process_block(payload, now)
        finally:
            self.journal.close()
        fore = self.forerunner
        self.run_.total_speculation_cost = \
            fore.speculator.total_speculation_cost
        self.run_.prefetch_offpath_cost = fore.prefetcher.offpath_cost
        self.run_.sched = fore.sched_report()
        self.run_.forerunner_node = fore
        self.run_.fault_injector = \
            self.injector if self.injector.enabled else None
        return self.run_

    def _process_block(self, block, now: float) -> None:
        self.run_.speculation_jobs += \
            self.forerunner.run_speculation(now)
        self.journal.append("block_import", {
            "number": block.number,
            "txs": len(block.transactions),
            "arrival": round(now, 6),
        }, sync=True, clock=self._clock())
        maybe_crash(self.injector, SITE_BLOCK_PRE_COMMIT,
                    block=block.number)
        base_report = self.baseline.process_block(block)
        with self.tracer.span("block", number=block.number) as span:
            fore_report = self.forerunner.process_block(block, now)
            span.add_cost(sum(r.cost for r in fore_report.records))
        self.run_.blocks_executed += 1
        if base_report.state_root == fore_report.state_root:
            self.run_.roots_matched += 1
        else:  # pragma: no cover - correctness violation
            raise SimulationError(
                f"root divergence at block {block.number}")
        for record in base_report.records:
            self._baseline_records[record.tx_hash] = record
        kinds = self.dataset.kinds
        joined_pairs = []
        for record in fore_report.records:
            base = self._baseline_records.get(record.tx_hash)
            if base is None:
                continue
            self.run_.records.append(JoinedRecord(
                tx_hash=record.tx_hash,
                block_number=record.block_number,
                kind=kinds.get(record.tx_hash, "?"),
                baseline_cost=base.cost,
                forerunner_cost=record.cost,
                baseline_cpu=base.cpu_units,
                baseline_io_units=base.io_units,
                baseline_io_reads=base.io_reads,
                gas_used=record.gas_used,
                heard=record.heard,
                heard_delay=record.heard_delay,
                outcome=record.outcome,
                ap_ready=record.ap_ready,
                perfect=record.perfect,
                first_context_perfect=record.first_context_perfect,
                speculated_contexts=record.speculated_contexts,
                shortcut_hits=record.shortcut_hits,
                executed_nodes=record.executed_nodes,
                skipped_nodes=record.skipped_nodes,
            ))
            joined_pairs.append((record, base))
        clock = self._clock()
        for record, base in joined_pairs:
            self.journal.append("tx_commit", {
                "tx": f"{record.tx_hash:#x}",
                "block": block.number,
                "gas_used": record.gas_used,
                "success": record.success,
                "baseline_cost": base.cost,
                "baseline_cpu": base.cpu_units,
                "baseline_io_units": base.io_units,
                "baseline_io_reads": base.io_reads,
            }, clock=clock)
        commit = {
            "number": block.number,
            "state_root": f"{fore_report.state_root:#x}",
            "receipts": [
                {"tx": f"{r.tx_hash:#x}", "gas_used": r.gas_used,
                 "success": r.success}
                for r in fore_report.records],
            "cursor": self.cursor,
        }
        self._check_against_journal(block.number, commit)
        self.journal.append("block_commit", commit, sync=True,
                            clock=self._clock())
        maybe_crash(self.injector, SITE_BLOCK_POST_COMMIT,
                    block=block.number)
        self.journal.append("prefix_head", {
            "head": block.number,
            "world_version": self.forerunner.world.version,
        }, clock=self._clock())
        interval = self.recovery.snapshot_interval_blocks
        if interval and block.number % interval == 0:
            payload = self._capture(block.number)
            self.snapshots.save(payload, block.number)
            self.journal.compact(
                keep_from_seq=int(payload["journal_seq"]) + 1)

    def _check_against_journal(self, number: int, commit: dict) -> None:
        """A re-driven block must reproduce its pre-crash commit."""
        expected = self._verify.get(number)
        if expected is None:
            self.info.blocks_fresh += 1
            self.c_blocks_fresh.inc()
            return
        for key in ("state_root", "receipts"):
            if expected[key] != commit[key]:
                raise RecoveryError(
                    f"restart replay diverged at block {number}: "
                    f"journaled {key} != recomputed {key}")
        self.info.blocks_verified += 1
        self.c_blocks_verified.inc()


def run_with_recovery(dataset, store_dir: str, crash_plan=None,
                      observer: str = "live",
                      config: Optional[ForerunnerConfig] = None,
                      recovery: Optional[RecoveryConfig] = None,
                      speculation_tick: float = 2.0) -> RecoveryOutcome:
    """Run durably under ``crash_plan``; on simulated death, restart
    and recover until the workload completes.

    Restarts run with **no plan**: the crash cause died with the
    process (and a restarted injector's per-site counts would re-fire a
    probability-1.0 rule forever otherwise).  ``max_restarts`` guards
    against a genuine crash loop."""
    recovery = recovery or RecoveryConfig()
    outcome = RecoveryOutcome(run=None)
    node = DurableReplay(dataset, store_dir, observer=observer,
                         config=config, recovery=recovery,
                         crash_plan=crash_plan,
                         speculation_tick=speculation_tick)
    try:
        outcome.run = node.run()
        outcome.fire_summary = node.injector.fire_summary() \
            if node.injector.enabled else {}
        return outcome
    except SimulatedCrash as crash:
        outcome.crashes.append({"site": crash.site, "seq": crash.seq})
        outcome.fire_summary = node.injector.fire_summary()
    while True:
        outcome.restarts += 1
        if outcome.restarts > recovery.max_restarts:
            raise RecoveryError(
                f"crash loop: {outcome.restarts - 1} restarts "
                f"exhausted (crashes: {outcome.crashes})")
        node = DurableReplay(dataset, store_dir, observer=observer,
                             config=config, recovery=recovery,
                             crash_plan=None,
                             speculation_tick=speculation_tick,
                             resume=True)
        outcome.recoveries.append(node.info)
        try:
            outcome.run = node.run()
            return outcome
        except SimulatedCrash as crash:  # pragma: no cover - no plan
            outcome.crashes.append({"site": crash.site,
                                    "seq": crash.seq})


def recovery_report(dataset, store_root: str, seed: int = 0,
                    sites=None, observer: str = "live",
                    config: Optional[ForerunnerConfig] = None,
                    recovery: Optional[RecoveryConfig] = None,
                    clean_run=None) -> dict:
    """Crash-matrix sweep: one single-shot crash per site, each run
    recovered and its equivalence digest compared byte-for-byte to an
    uninterrupted emulator replay.

    ``seed`` doubles as the crash *occurrence*: seed 0 dies at each
    site's first evaluation, seed 1 at its second, and so on — so a
    three-seed CI sweep covers early, mid and late crashes at every
    durability boundary.  The returned payload is canonical-JSON-ready
    and contains no paths or timestamps: two runs of the same seed are
    byte-identical (CI diffs them).
    """
    from repro.faults.invariants import run_digest  # avoid cycle
    from repro.obs.export import canonical_json
    from repro.sim.emulator import replay

    if clean_run is None:
        clean_run = replay(dataset, observer, config=config)
    clean = canonical_json(run_digest(clean_run))
    entries = []
    chosen = sweep_plans(seed, occurrence=seed) if sites is None else [
        (site, crash_plan(seed, site, occurrence=seed))
        for site in sites]
    all_ok = True
    for index, (site, plan) in enumerate(chosen):
        store_dir = os.path.join(store_root, f"crash-{index:02d}")
        outcome = run_with_recovery(
            dataset, store_dir, crash_plan=plan, observer=observer,
            config=config, recovery=recovery)
        digest = canonical_json(run_digest(outcome.run))
        converged = digest == clean
        fired = sum(entry["fired"]
                    for entry in outcome.fire_summary.values())
        all_ok &= converged
        entries.append({
            "site": site,
            "fired": fired,
            "crashes": outcome.crashes,
            "restarts": outcome.restarts,
            "converged": converged,
            "recoveries": [info.as_dict()
                           for info in outcome.recoveries],
        })
    return {
        "dataset": dataset.name,
        "observer": observer,
        "seed": seed,
        "converged": all_ok,
        "clean_digest_sha": _sha256_hex(clean),
        "sites": entries,
    }


def _sha256_hex(text: str) -> str:
    return hashlib.sha256(text.encode("ascii")).hexdigest()
