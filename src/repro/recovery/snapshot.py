"""Atomic, CRC-framed snapshots with corrupt-skip loading.

A snapshot is one canonical-JSON payload framed exactly like a journal
record (magic + ``<II`` length/CRC header), written to a temp file,
fsync'd, and atomically installed with ``os.replace`` — so a reader
can never observe a half-written snapshot *unless* the torn-write
crashpoint deliberately writes partial bytes to the final path, which
is precisely the corruption :meth:`SnapshotStore.load_latest` must
survive by falling back to the next-newest intact snapshot (or to a
cold start).

The store keeps the newest ``keep`` snapshots and prunes the rest,
which — together with journal compaction up to the snapshot's sequence
number — bounds durable storage for arbitrarily long runs.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import List, Optional, Tuple

from repro.errors import SimulatedCrash
from repro.faults.injector import NULL_INJECTOR
from repro.obs.export import canonical_json
from repro.recovery.crashpoints import (
    SITE_SNAPSHOT_AFTER_WRITE,
    SITE_SNAPSHOT_TORN,
    SITE_SNAPSHOT_WRITE,
    maybe_crash,
    torn_fires,
)

MAGIC = b"REPROSNP1"
_HEADER = struct.Struct("<II")


def _encode(payload: dict) -> bytes:
    data = canonical_json(payload).encode("ascii")
    return MAGIC + _HEADER.pack(len(data), zlib.crc32(data)) + data


def _decode(blob: bytes) -> dict:
    """Parse a snapshot file; raises ``ValueError`` on any corruption."""
    if not blob.startswith(MAGIC):
        raise ValueError("bad magic")
    header = blob[len(MAGIC):len(MAGIC) + _HEADER.size]
    if len(header) < _HEADER.size:
        raise ValueError("torn header")
    length, crc = _HEADER.unpack(header)
    start = len(MAGIC) + _HEADER.size
    data = blob[start:start + length]
    if len(data) < length or zlib.crc32(data) != crc:
        raise ValueError("torn or corrupt payload")
    return json.loads(data.decode("ascii"))


class SnapshotStore:
    """Directory of ``snap-<block>.bin`` files, newest-``keep`` kept."""

    def __init__(self, directory: str, injector=NULL_INJECTOR,
                 obs=None, keep: int = 2) -> None:
        self.directory = directory
        self.injector = injector
        self.keep = keep
        os.makedirs(directory, exist_ok=True)
        if obs is not None:
            self._c_saves = obs.counter("snapshot.saves")
            self._c_loads = obs.counter("snapshot.loads")
            self._c_corrupt = obs.counter("snapshot.corrupt_skipped")
            self._c_pruned = obs.counter("snapshot.pruned")
        else:
            self._c_saves = self._c_loads = None
            self._c_corrupt = self._c_pruned = None

    def path_for(self, block_number: int) -> str:
        return os.path.join(self.directory,
                            f"snap-{block_number:08d}.bin")

    def save(self, payload: dict, block_number: int) -> str:
        """Atomically install a snapshot for ``block_number``.

        Crashpoints: before the write (nothing durable), mid-write to
        the *final* path (a corrupt snapshot), and after the temp file
        is synced but before the rename (a stray ``.tmp``)."""
        maybe_crash(self.injector, SITE_SNAPSHOT_WRITE,
                    block=block_number)
        frame = _encode(payload)
        final = self.path_for(block_number)
        if torn_fires(self.injector, SITE_SNAPSHOT_TORN,
                      block=block_number):
            with open(final, "wb") as handle:
                handle.write(frame[:max(1, len(frame) // 2)])
                handle.flush()
            raise SimulatedCrash(SITE_SNAPSHOT_TORN)
        tmp = final + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(frame)
            handle.flush()
            os.fsync(handle.fileno())
        maybe_crash(self.injector, SITE_SNAPSHOT_AFTER_WRITE,
                    block=block_number)
        os.replace(tmp, final)
        if self._c_saves is not None:
            self._c_saves.inc()
        self._prune()
        return final

    def _snapshot_files(self) -> List[str]:
        """Snapshot basenames, newest (highest block) first."""
        names = [name for name in os.listdir(self.directory)
                 if name.startswith("snap-") and name.endswith(".bin")]
        return sorted(names, reverse=True)

    def _prune(self) -> None:
        names = self._snapshot_files()
        for name in names[self.keep:]:
            os.remove(os.path.join(self.directory, name))
            if self._c_pruned is not None:
                self._c_pruned.inc()
        for name in os.listdir(self.directory):
            # Stray temp files are leftovers of a crash between the
            # temp-file sync and the rename; they hold no live data.
            if name.endswith(".tmp"):
                os.remove(os.path.join(self.directory, name))

    def load_latest(self) -> Optional[Tuple[dict, int]]:
        """Newest *intact* snapshot as ``(payload, block_number)``.

        Corrupt snapshots (torn-write crash victims) are skipped with a
        counter bump; returns ``None`` when nothing usable exists —
        recovery then cold-starts and replays the journal from the
        beginning."""
        for name in self._snapshot_files():
            path = os.path.join(self.directory, name)
            with open(path, "rb") as handle:
                blob = handle.read()
            try:
                payload = _decode(blob)
            except ValueError:
                if self._c_corrupt is not None:
                    self._c_corrupt.inc()
                continue
            if self._c_loads is not None:
                self._c_loads.inc()
            return payload, int(payload["block_number"])
        return None
