"""Cost-unit-ordered write-ahead journal with torn-tail tolerance.

The journal is the node's durability spine: every event that must
survive a crash — block imports, transaction commits, memo-table
inserts/evictions, prefix-cache head changes, reorgs — is appended
*before* (or atomically with) the in-memory effect it describes, so a
restart can always reconstruct the durable prefix of history.

Record framing (all little-endian)::

    file   := magic  record*  [torn tail]
    magic  := b"REPROWAL1"
    record := header payload
    header := <II>  (payload length, CRC32 of payload)
    payload:= canonical JSON {"seq", "type", "clock", "data"}

Canonical JSON (sorted keys, compact separators, ASCII) makes frames
byte-stable across runs; the CRC makes *any* torn or bit-flipped tail
detectable: the scanner stops at the first short header, short payload,
CRC mismatch, or unparsable payload and reports the last good offset so
:func:`truncate_torn_tail` can chop the garbage off.  Records after a
torn record are unreachable by construction — a real WAL behaves the
same way — which is exactly the semantics the crash-matrix sweep
verifies.

``clock`` stamps each record with the deterministic cost-unit clocks
(critical-path execution cost, speculation cost, simulated seconds), so
the journal is ordered by the reproduction's own currencies rather than
wall time and two runs of the same seed produce byte-identical logs.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import RecoveryError, SimulatedCrash
from repro.faults.injector import NULL_INJECTOR
from repro.obs.export import canonical_json
from repro.recovery.crashpoints import (
    SITE_JOURNAL_AFTER_SYNC,
    SITE_JOURNAL_AFTER_WRITE,
    SITE_JOURNAL_APPEND,
    SITE_JOURNAL_TORN,
    maybe_crash,
    torn_fires,
)

MAGIC = b"REPROWAL1"
_HEADER = struct.Struct("<II")


@dataclass(frozen=True)
class JournalRecord:
    """One durable event: a monotone sequence number, a type tag, the
    deterministic clock stamp, and the event payload."""

    seq: int
    type: str
    data: dict
    clock: dict = field(default_factory=dict)

    def encode(self) -> bytes:
        payload = canonical_json({
            "seq": self.seq, "type": self.type,
            "clock": self.clock, "data": self.data,
        }).encode("ascii")
        return _HEADER.pack(len(payload),
                            zlib.crc32(payload)) + payload


@dataclass
class JournalScan:
    """Result of scanning a journal file from disk."""

    records: List[JournalRecord]
    #: Byte offset just past the last intact record (truncation point).
    good_offset: int
    #: Bytes of torn/corrupt tail found past ``good_offset``.
    torn_bytes: int
    #: Sequence number the next appended record should carry.
    next_seq: int


def read_journal(path: str) -> JournalScan:
    """Scan ``path``, returning every intact record plus tail status.

    Never raises on a torn tail — that is the expected post-crash shape
    — but a missing/garbled *magic header* is a real corruption and
    raises :class:`RecoveryError` (the file was never a journal).
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    if not blob.startswith(MAGIC):
        raise RecoveryError(f"{path}: not a journal (bad magic)")
    records: List[JournalRecord] = []
    offset = len(MAGIC)
    good = offset
    while offset < len(blob):
        header = blob[offset:offset + _HEADER.size]
        if len(header) < _HEADER.size:
            break  # torn header
        length, crc = _HEADER.unpack(header)
        start = offset + _HEADER.size
        payload = blob[start:start + length]
        if len(payload) < length or zlib.crc32(payload) != crc:
            break  # torn or corrupt payload
        try:
            decoded = json.loads(payload.decode("ascii"))
            record = JournalRecord(
                seq=int(decoded["seq"]), type=str(decoded["type"]),
                data=decoded["data"],
                clock=decoded.get("clock", {}))
        except (ValueError, KeyError, UnicodeDecodeError):
            break  # CRC collided with garbage; treat as torn
        records.append(record)
        offset = start + length
        good = offset
    next_seq = records[-1].seq + 1 if records else 0
    return JournalScan(records=records, good_offset=good,
                       torn_bytes=len(blob) - good, next_seq=next_seq)


def truncate_torn_tail(path: str) -> int:
    """Chop any torn tail off ``path``; returns the bytes removed."""
    scan = read_journal(path)
    if scan.torn_bytes:
        with open(path, "r+b") as handle:
            handle.truncate(scan.good_offset)
    return scan.torn_bytes


class JournalWriter:
    """Appends framed records, with crashpoints at every boundary.

    ``sync=True`` appends model an fsync'd commit record (block
    imports, block commits, reorgs); unsync'd appends model the page
    cache — in this simulation both are durable once written, but the
    crashpoint *sites* differ, so the sweep exercises each boundary.

    ``obs`` is the ``recovery`` metrics scope (or ``None``): appends,
    syncs, bytes and compactions are counted there.
    """

    def __init__(self, path: str, injector=NULL_INJECTOR,
                 obs=None, next_seq: int = 0) -> None:
        self.path = path
        self.injector = injector
        self.next_seq = next_seq
        if obs is not None:
            self._c_appends = obs.counter("journal.appends")
            self._c_synced = obs.counter("journal.synced")
            self._c_bytes = obs.counter("journal.bytes")
            self._c_compactions = obs.counter("journal.compactions")
            self._c_compacted = obs.counter("journal.compacted_records")
        else:
            self._c_appends = self._c_synced = self._c_bytes = None
            self._c_compactions = self._c_compacted = None
        fresh = (not os.path.exists(path)
                 or os.path.getsize(path) < len(MAGIC))
        if fresh:
            with open(path, "wb") as handle:
                handle.write(MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
        self._handle = open(path, "ab")

    def append(self, type: str, data: dict, sync: bool = False,
               clock: Optional[dict] = None) -> JournalRecord:
        """Append one record; returns it.  May raise
        :class:`SimulatedCrash` at any of the four journal sites."""
        seq = self.next_seq
        maybe_crash(self.injector, SITE_JOURNAL_APPEND,
                    seq=seq, type=type)
        record = JournalRecord(seq=seq, type=type, data=data,
                               clock=clock or {})
        frame = record.encode()
        if torn_fires(self.injector, SITE_JOURNAL_TORN,
                      seq=seq, type=type):
            # Die mid-write: half the frame reaches the file.  The
            # scanner must detect this tail and truncate it.
            self._handle.write(frame[:max(1, len(frame) // 2)])
            self._handle.flush()
            raise SimulatedCrash(SITE_JOURNAL_TORN, seq=seq)
        self._handle.write(frame)
        self._handle.flush()
        self.next_seq = seq + 1
        if self._c_appends is not None:
            self._c_appends.inc()
            self._c_bytes.inc(len(frame))
        maybe_crash(self.injector, SITE_JOURNAL_AFTER_WRITE,
                    seq=seq, type=type)
        if sync:
            os.fsync(self._handle.fileno())
            if self._c_synced is not None:
                self._c_synced.inc()
            maybe_crash(self.injector, SITE_JOURNAL_AFTER_SYNC,
                        seq=seq, type=type)
        return record

    def compact(self, keep_from_seq: int) -> int:
        """Drop every record with ``seq < keep_from_seq`` (they are
        superseded by a snapshot).  Atomic: the new file is written to
        a temp path and renamed over the old one, so a crash mid-compact
        leaves the previous journal intact.  Returns records dropped."""
        self._handle.flush()
        self._handle.close()
        scan = read_journal(self.path)
        kept = [r for r in scan.records if r.seq >= keep_from_seq]
        dropped = len(scan.records) - len(kept)
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(MAGIC)
            for record in kept:
                handle.write(record.encode())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        # os.replace left the old handle on a dead inode — reopen.
        self._handle = open(self.path, "ab")
        if self._c_compactions is not None:
            self._c_compactions.inc()
            self._c_compacted.inc(dropped)
        return dropped

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()
