"""Deterministic crash-recovery: WAL, snapshots, crashpoints, replay.

Forerunner runs as a long-lived live node (the paper's 10-day L1/R1-R5
experiments): it must be able to die mid-block and come back without
corrupting chain state or losing its memoized speculation capital.
This package adds the durability boundary the emulator lacked:

* :mod:`repro.recovery.journal` — a cost-unit-ordered write-ahead log
  of durable events with CRC-framed, canonical-JSON records that
  tolerate torn tails;
* :mod:`repro.recovery.snapshot` — periodic copy-on-write snapshots of
  chain / state / memo-table / txpool with atomic install and bounded
  journal truncation;
* :mod:`repro.recovery.crashpoints` — seeded crash injection at every
  journal append and fsync boundary, driven through the
  :mod:`repro.faults` plan machinery as ``recovery.*`` sites;
* :mod:`repro.recovery.replay` — the durable replay harness plus
  restart replay that rebuilds the node, re-runs speculation for
  in-flight heads, and verifies convergence against the journal and
  the uncrashed equivalence digest.

The acceptance bar is the Dafny-style one: recovery is correct only if
the replayed post-state is *byte-identical* to an uninterrupted run —
checked with the same digests :mod:`repro.faults.invariants` uses.
"""

from repro.recovery.crashpoints import (  # noqa: F401
    CRASH_SITES,
    TORN_SITES,
    crash_plan,
    maybe_crash,
    sweep_plans,
)
from repro.recovery.journal import (  # noqa: F401
    JournalRecord,
    JournalScan,
    JournalWriter,
    read_journal,
    truncate_torn_tail,
)
from repro.recovery.replay import (  # noqa: F401
    DurableReplay,
    RecoveryConfig,
    RecoveryOutcome,
    recovery_report,
    run_with_recovery,
)
from repro.recovery.snapshot import SnapshotStore  # noqa: F401
