"""Canonical JSONL trace exporter.

One trace file = one line of canonical JSON per record:

* a ``meta`` header line (schema version, free-form labels);
* one ``span`` line per finished span, in completion order;
* one ``metrics`` footer line holding the registry snapshot.

Canonical means: sorted keys, compact separators, ``ensure_ascii`` (so
every non-ASCII code point is escaped and the file is bytewise stable
across locales), and no floats introduced by the encoder.  Combined
with cost-unit-only span timing, two runs of the same workload produce
byte-identical trace files — the trace itself is a diffable regression
artifact (compare with ``diff run1.jsonl run2.jsonl``).
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Union

from repro.obs.registry import MetricsRegistry

SCHEMA_VERSION = 1


def _coerce(value):
    """Fallback encoder for non-JSON-native attribute values."""
    if isinstance(value, bytes):
        return value.hex()
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    if isinstance(value, tuple):
        return list(value)
    return repr(value)


def canonical_json(obj) -> str:
    """Encode ``obj`` as one line of canonical JSON.

    Sorted keys + compact separators + ASCII-only output: the same
    logical record always encodes to the same bytes, and embedded
    newlines / quotes / control characters are escaped so every record
    stays on a single line.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True, default=_coerce)


def trace_lines(tracer=None,
                registry: Optional[MetricsRegistry] = None,
                meta: Optional[dict] = None) -> List[str]:
    """Render a full trace as a list of canonical JSONL lines."""
    lines: List[str] = []
    header = {"type": "meta", "schema": SCHEMA_VERSION}
    if meta:
        header.update(meta)
    lines.append(canonical_json(header))
    if tracer is not None:
        for event in tracer.events:
            record = {"type": "span"}
            record.update(event)
            lines.append(canonical_json(record))
    if registry is not None:
        lines.append(canonical_json(
            {"type": "metrics", "metrics": registry.snapshot()}))
    return lines


def export_jsonl(target: Union[str, IO[str]],
                 tracer=None,
                 registry: Optional[MetricsRegistry] = None,
                 meta: Optional[dict] = None) -> int:
    """Write a trace to ``target`` (path or text file object).

    Returns the number of lines written.  Nondeterministic instruments
    (wall-clock gauges) are never exported — see
    :meth:`MetricsRegistry.snapshot`.
    """
    lines = trace_lines(tracer, registry, meta)
    if isinstance(target, str):
        with open(target, "w", encoding="ascii", newline="\n") as handle:
            _write(handle, lines)
    else:
        _write(target, lines)
    return len(lines)


def witness_lines(witnesses, meta: Optional[dict] = None) -> List[str]:
    """Render execution witnesses as canonical JSONL lines.

    Same canonical-encoding guarantees as :func:`trace_lines`: a
    ``meta`` header line followed by one witness record per line, in
    input order.  Two runs of the same workload produce byte-identical
    witness files.
    """
    # Imported lazily: repro.witness.format imports canonical_json
    # from this module.
    from repro.witness.format import witness_to_dict
    lines: List[str] = []
    header = {"type": "meta", "schema": SCHEMA_VERSION, "kind": "witness"}
    if meta:
        header.update(meta)
    lines.append(canonical_json(header))
    for witness in witnesses:
        record = {"type": "witness"}
        record.update(witness_to_dict(witness))
        lines.append(canonical_json(record))
    return lines


def export_witness_jsonl(target: Union[str, IO[str]],
                         witnesses,
                         meta: Optional[dict] = None) -> int:
    """Write a witness artifact to ``target`` (path or file object).

    Returns the number of lines written.
    """
    lines = witness_lines(witnesses, meta)
    if isinstance(target, str):
        with open(target, "w", encoding="ascii", newline="\n") as handle:
            _write(handle, lines)
    else:
        _write(target, lines)
    return len(lines)


def _write(handle: IO[str], lines: Iterable[str]) -> None:
    for line in lines:
        handle.write(line)
        handle.write("\n")
