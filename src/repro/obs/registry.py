"""Metrics instruments and the registry that names them.

Three instrument kinds, mirroring the usual time-series vocabulary but
denominated in the reproduction's deterministic currencies (cost units,
instruction counts, plain event counts):

* :class:`Counter` — monotonically increasing integer;
* :class:`Gauge` — last-written value (the only instrument allowed to
  carry wall-clock readings, and then only when flagged
  ``nondeterministic``);
* :class:`Histogram` — fixed-bound bucket counts plus sum/count.

A :class:`MetricsRegistry` owns instruments by name.  Components that
may be instantiated several times in one process allocate their
instruments through :meth:`MetricsRegistry.scope`, which uniquifies the
prefix (``speculator``, ``speculator#2``, ...) — instance creation
order is deterministic in a replay, so snapshots are reproducible.

:func:`get_registry` returns the process-wide default registry used by
components not explicitly wired to a per-run one.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: Default histogram bucket upper bounds (cost units / counts).  Wide
#: log-ish spacing: the pipeline's quantities span transfer-sized
#: executions (~10^3) to whole-block costs (~10^8).
DEFAULT_BUCKETS: Tuple[int, ...] = (
    0, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000,
    100_000_000)


class Counter:
    """Monotonic integer counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """Last-written value.

    ``nondeterministic`` marks instruments carrying wall-clock (or other
    run-varying) readings; they are excluded from deterministic
    snapshots and trace exports.
    """

    __slots__ = ("name", "value", "nondeterministic")

    def __init__(self, name: str, nondeterministic: bool = False) -> None:
        self.name = name
        self.value: Number = 0
        self.nondeterministic = nondeterministic

    def set(self, value: Number) -> None:
        self.value = value

    def add(self, amount: Number) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Fixed-bound histogram (cumulative-free, per-bucket counts)."""

    __slots__ = ("name", "bounds", "counts", "sum", "count")

    def __init__(self, name: str,
                 bounds: Sequence[Number] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram {name}: bounds must be sorted")
        #: counts[i] = observations <= bounds[i]; last slot = overflow.
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum: Number = 0
        self.count = 0

    def observe(self, value: Number) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class Scope:
    """Instrument factory under a (uniquified) name prefix."""

    __slots__ = ("registry", "prefix")

    def __init__(self, registry: "MetricsRegistry", prefix: str) -> None:
        self.registry = registry
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self.registry.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str, nondeterministic: bool = False) -> Gauge:
        return self.registry.gauge(f"{self.prefix}.{name}",
                                   nondeterministic=nondeterministic)

    def histogram(self, name: str,
                  bounds: Sequence[Number] = DEFAULT_BUCKETS) -> Histogram:
        return self.registry.histogram(f"{self.prefix}.{name}", bounds)


class MetricsRegistry:
    """Names and owns every instrument of one run (or of the process)."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self._scope_counts: Dict[str, int] = {}

    # -- instrument allocation (get-or-create) ---------------------------

    def _get_or_create(self, name: str, kind, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"instrument {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, lambda: Counter(name))

    def gauge(self, name: str, nondeterministic: bool = False) -> Gauge:
        return self._get_or_create(
            name, Gauge, lambda: Gauge(name, nondeterministic))

    def histogram(self, name: str,
                  bounds: Sequence[Number] = DEFAULT_BUCKETS) -> Histogram:
        return self._get_or_create(
            name, Histogram, lambda: Histogram(name, bounds))

    def scope(self, prefix: str) -> Scope:
        """A uniquified instrument prefix for one component instance.

        The first instance of a prefix gets the bare name; later ones
        get ``prefix#2``, ``prefix#3``, ...  Creation order is
        deterministic within a replay, so names are stable.
        """
        index = self._scope_counts.get(prefix, 0) + 1
        self._scope_counts[prefix] = index
        unique = prefix if index == 1 else f"{prefix}#{index}"
        return Scope(self, unique)

    # -- read side -------------------------------------------------------

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def get(self, name: str) -> Optional[object]:
        return self._instruments.get(name)

    def value(self, name: str, default: Number = 0) -> Number:
        instrument = self._instruments.get(name)
        if instrument is None:
            return default
        return getattr(instrument, "value", default)

    def snapshot(self, include_nondeterministic: bool = False) -> dict:
        """All instrument states, sorted by name (deterministic).

        Gauges flagged ``nondeterministic`` (wall-clock quarantine) are
        excluded unless explicitly requested.
        """
        out: Dict[str, dict] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if (not include_nondeterministic
                    and getattr(instrument, "nondeterministic", False)):
                continue
            out[name] = instrument.snapshot()
        return out

    def render(self, include_nondeterministic: bool = False) -> str:
        """Human-readable one-instrument-per-line dump."""
        lines = []
        snap = self.snapshot(include_nondeterministic)
        for name, state in snap.items():
            if state["type"] == "histogram":
                lines.append(
                    f"{name}: count={state['count']} sum={state['sum']}")
            else:
                lines.append(f"{name}: {state['value']}")
        return "\n".join(lines)


#: Process-wide default registry (components not wired to a per-run
#: registry fall back to this one).
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide default registry; returns the old one."""
    global _default_registry
    old = _default_registry
    _default_registry = registry
    return old


def reset_registry() -> MetricsRegistry:
    """Replace the process-wide default with a fresh registry."""
    return set_registry(MetricsRegistry())
