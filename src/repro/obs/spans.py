"""Cost-unit-denominated spans nesting into per-transaction stage trees.

A span covers one pipeline stage of one unit of work::

    with tracer.span("speculate", tx=tx.hash) as sp:
        with tracer.span("pre_execute", cost=target_cost):
            ...
        sp.add_cost(synthesis_cost)

Spans carry *logical cost units* (:mod:`repro.core.costmodel`), never
wall-clock — that is what makes two runs of the same workload produce
identical traces.  Finished spans are appended to ``tracer.events`` in
completion order (deterministic) with start-ordered ids, so the nesting
can be reconstructed (``parent`` references) and exported as JSONL.

:class:`NullTracer` is a drop-in no-op used when the observability
layer is disabled; pipeline results are identical either way.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, List, Optional

from repro.obs.registry import MetricsRegistry

Number = float  # int | float


class Span:
    """One in-flight (or finished) stage span."""

    __slots__ = ("span_id", "parent_id", "name", "depth", "cost", "attrs")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 depth: int, cost: Number, attrs: dict) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.depth = depth
        self.cost = cost
        self.attrs = attrs

    def add_cost(self, amount: Number) -> None:
        """Charge ``amount`` cost units to this span."""
        self.cost += amount

    def set(self, **attrs) -> None:
        """Attach (deterministic) attributes to this span."""
        self.attrs.update(attrs)

    def to_event(self) -> dict:
        event = {
            "span": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "depth": self.depth,
            "cost": self.cost,
        }
        if self.attrs:
            event["attrs"] = dict(self.attrs)
        return event


class SpanTracer:
    """Collects spans; optionally aggregates them into a registry.

    When a registry is given, every finished span feeds
    ``span.<name>.count`` and ``span.<name>.cost`` counters, so the
    metrics snapshot carries the stage breakdown even without the full
    trace.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry
        #: Finished spans, in completion order.
        self.events: List[dict] = []
        self._stack: List[Span] = []
        self._next_id = 1

    @property
    def enabled(self) -> bool:
        return True

    @contextmanager
    def span(self, name: str, cost: Number = 0, **attrs):
        parent = self._stack[-1] if self._stack else None
        record = Span(
            span_id=self._next_id,
            parent_id=parent.span_id if parent else None,
            name=name,
            depth=len(self._stack),
            cost=cost,
            attrs=attrs,
        )
        self._next_id += 1
        self._stack.append(record)
        try:
            yield record
        finally:
            self._stack.pop()
            self.events.append(record.to_event())
            if self.registry is not None:
                self.registry.counter(f"span.{name}.count").inc()
                self.registry.counter(f"span.{name}.cost").inc(record.cost)

    # -- read side -------------------------------------------------------

    def stage_totals(self) -> Dict[str, dict]:
        """name -> {count, cost} aggregated over all finished spans."""
        totals: Dict[str, dict] = {}
        for event in self.events:
            entry = totals.setdefault(
                event["name"], {"count": 0, "cost": 0})
            entry["count"] += 1
            entry["cost"] += event["cost"]
        return {name: totals[name] for name in sorted(totals)}

    def stage_tree(self, root_name: Optional[str] = None) -> List[dict]:
        """Nest finished spans into trees (children under parents).

        Returns the list of root spans (optionally filtered by name),
        each a dict with a ``children`` list, ordered by span id.
        """
        by_id: Dict[int, dict] = {}
        for event in self.events:
            node = dict(event)
            node["children"] = []
            by_id[node["span"]] = node
        roots: List[dict] = []
        for span_id in sorted(by_id):
            node = by_id[span_id]
            parent = by_id.get(node["parent"])
            if parent is not None:
                parent["children"].append(node)
            elif root_name is None or node["name"] == root_name:
                roots.append(node)
        return roots


class _NullSpan:
    """Inert span: absorbs add_cost/set calls."""

    __slots__ = ()

    def add_cost(self, amount: Number) -> None:
        pass

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """No-op tracer: same interface, records nothing."""

    registry = None
    events: List[dict] = []

    @property
    def enabled(self) -> bool:
        return False

    @contextmanager
    def span(self, name: str, cost: Number = 0, **attrs):
        yield _NULL_SPAN

    def stage_totals(self) -> Dict[str, dict]:
        return {}

    def stage_tree(self, root_name: Optional[str] = None) -> List[dict]:
        return []
