"""Deterministic observability layer (counters, spans, JSONL traces).

The evaluation of the paper (§5) is an accounting exercise over
pipeline stages — predict, pre-execute, synthesize, merge, accelerate.
This package gives every stage a first-class, *deterministic* metrics
and tracing surface:

* :mod:`repro.obs.registry` — counters, gauges, and histograms
  registered in a :class:`MetricsRegistry`; a process-wide default
  registry backs components that are not wired to a per-run one;
* :mod:`repro.obs.spans` — cost-unit-denominated spans that nest into
  a per-transaction stage tree (``span("synthesize", cost=...)``);
* :mod:`repro.obs.export` — a canonical JSONL exporter, so benchmark
  runs emit machine-readable traces that are byte-identical across
  reruns of the same workload.

All timing is in logical cost units.  Wall-clock measurements are
quarantined into instruments flagged ``nondeterministic`` which are
excluded from snapshots and trace files by default — two runs of the
same workload therefore produce identical trace files, making the
traces themselves diffable regression artifacts.
"""

from repro.obs.export import (
    canonical_json,
    export_jsonl,
    trace_lines,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Scope,
    get_registry,
    reset_registry,
    set_registry,
)
from repro.obs.spans import NullTracer, Span, SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTracer",
    "Scope",
    "Span",
    "SpanTracer",
    "canonical_json",
    "export_jsonl",
    "get_registry",
    "reset_registry",
    "set_registry",
    "trace_lines",
]
