"""Transactions: the unit of work disseminated, packed, and executed."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.constants import (
    DEFAULT_TX_GAS_LIMIT,
    INTRINSIC_GAS,
    TX_DATA_NONZERO_GAS,
    TX_DATA_ZERO_GAS,
)
from repro.utils.hashing import keccak_int
from repro.utils.words import int_to_bytes32


@dataclass(frozen=True)
class Transaction:
    """An Ethereum transaction.

    ``sender`` is carried directly rather than recovered from a
    signature; signature verification is modelled as a constant-cost
    validity check (the paper excludes it from speculation, §2 fn. 5).
    """

    sender: int
    to: int
    data: bytes = b""
    value: int = 0
    gas_price: int = 1_000_000_000
    gas_limit: int = DEFAULT_TX_GAS_LIMIT
    nonce: int = 0
    #: Miner id when the transaction originates from a miner itself
    #: (miners prioritize their own transactions — predictor heuristic 2).
    origin_miner: Optional[int] = None

    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        digest = keccak_int(
            int_to_bytes32(self.sender)
            + int_to_bytes32(self.to)
            + int_to_bytes32(self.value)
            + int_to_bytes32(self.gas_price)
            + int_to_bytes32(self.gas_limit)
            + int_to_bytes32(self.nonce)
            + self.data
        )
        object.__setattr__(self, "_hash", digest)

    @property
    def hash(self) -> int:
        """Content hash identifying this transaction."""
        return self._hash

    def intrinsic_gas(self) -> int:
        """Flat cost charged before any bytecode runs (yellow paper)."""
        zeros = self.data.count(0)
        nonzeros = len(self.data) - zeros
        return (INTRINSIC_GAS
                + zeros * TX_DATA_ZERO_GAS
                + nonzeros * TX_DATA_NONZERO_GAS)

    def max_fee(self) -> int:
        """Upper bound on the fee the sender must be able to pay."""
        return self.gas_limit * self.gas_price + self.value

    def short_id(self) -> str:
        """Abbreviated hash for logs and reports."""
        return f"{self.hash:#x}"[:12]
