"""Chain structure: canonical chain plus temporary forks.

The paper motivates the many-future problem partly with observable
temporary forks (§1 fn. 1: 8.4% of mined blocks end up on temporary
forks).  The simulation therefore keeps all received blocks in a block
tree and tracks the canonical head by height (first-seen wins ties,
like PoW clients).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.chain.block import Block
from repro.errors import ChainError


class Blockchain:
    """A block tree with a canonical head."""

    def __init__(self, genesis: Block) -> None:
        if genesis.header.number != 0:
            raise ChainError("genesis block must have number 0")
        self._blocks: Dict[int, Block] = {genesis.hash: genesis}
        self._children: Dict[int, List[int]] = {}
        self.head: Block = genesis
        self.genesis = genesis

    def __contains__(self, block_hash: int) -> bool:
        return block_hash in self._blocks

    def get(self, block_hash: int) -> Optional[Block]:
        return self._blocks.get(block_hash)

    def add(self, block: Block) -> bool:
        """Insert ``block``; returns True if it became the new head."""
        if block.hash in self._blocks:
            return False
        parent = self._blocks.get(block.header.parent_hash)
        if parent is None:
            raise ChainError(
                f"unknown parent {block.header.parent_hash:#x} "
                f"for block {block.number}")
        if block.number != parent.number + 1:
            raise ChainError(
                f"block number {block.number} does not follow parent "
                f"{parent.number}")
        self._blocks[block.hash] = block
        self._children.setdefault(parent.hash, []).append(block.hash)
        if block.number > self.head.number:
            self.head = block
            return True
        return False

    def canonical_chain(self) -> List[Block]:
        """Blocks from genesis to the current head."""
        chain: List[Block] = []
        cursor: Optional[Block] = self.head
        while cursor is not None:
            chain.append(cursor)
            cursor = self._blocks.get(cursor.header.parent_hash)
        chain.reverse()
        return chain

    def fork_blocks(self) -> List[Block]:
        """Blocks stored but not on the canonical chain (temporary forks)."""
        canonical = {b.hash for b in self.canonical_chain()}
        return [b for b in self._blocks.values() if b.hash not in canonical]

    def block_count(self) -> int:
        """All blocks including forks (Table 1 counts forks too)."""
        return len(self._blocks)
