"""Blocks and block headers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.constants import DEFAULT_BLOCK_GAS_LIMIT
from repro.chain.transaction import Transaction
from repro.utils.hashing import hash_words


@dataclass(frozen=True)
class BlockHeader:
    """Block metadata visible to executing transactions.

    These are exactly the context fields the paper's example reads
    (``block.timestamp``) and the predictor must guess (timestamp,
    coinbase; §4.4).
    """

    number: int
    timestamp: int
    coinbase: int
    parent_hash: int = 0
    gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT
    difficulty: int = 1
    chain_id: int = 1

    @property
    def hash(self) -> int:
        """Header hash (also used as the block hash)."""
        return hash_words((
            self.number, self.timestamp, self.coinbase,
            self.parent_hash, self.gas_limit, self.difficulty,
        ))


@dataclass
class Block:
    """A block: header + ordered transactions (+ post-state root)."""

    header: BlockHeader
    transactions: List[Transaction] = field(default_factory=list)
    #: Merkle root of the world state after executing this block;
    #: filled in by the miner, re-derived and checked by every node (§5.2).
    state_root: Optional[int] = None
    #: Miner id that produced the block (simulation bookkeeping).
    miner_id: Optional[int] = None

    @property
    def hash(self) -> int:
        return self.header.hash

    @property
    def number(self) -> int:
        return self.header.number

    def gas_used(self, gas_by_tx: Optional[dict] = None) -> int:
        """Total gas limit committed by the packed transactions."""
        if gas_by_tx:
            return sum(gas_by_tx.get(tx.hash, tx.gas_limit)
                       for tx in self.transactions)
        return sum(tx.gas_limit for tx in self.transactions)

    def tx_hashes(self) -> Tuple[int, ...]:
        return tuple(tx.hash for tx in self.transactions)
