"""Execution receipts: the per-transaction outcome record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass
class Receipt:
    """Outcome of executing one transaction.

    ``success`` is False when the top-level call reverted or ran out of
    gas (the transaction is still included and the fee still paid).
    """

    tx_hash: int
    success: bool
    gas_used: int
    return_data: bytes = b""
    logs: List[Tuple[int, Tuple[int, ...], bytes]] = field(default_factory=list)

    def summary(self) -> str:
        status = "ok" if self.success else "reverted"
        return f"tx {self.tx_hash:#x} {status} gas={self.gas_used}"
