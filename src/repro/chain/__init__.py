"""Blocks, transactions, and the chain structure (with temporary forks)."""

from repro.chain.transaction import Transaction
from repro.chain.block import Block, BlockHeader
from repro.chain.receipts import Receipt
from repro.chain.blockchain import Blockchain

__all__ = ["Transaction", "Block", "BlockHeader", "Receipt", "Blockchain"]
