"""Block packing: how a miner orders pending transactions into a block.

Implements the behaviours the predictor exploits (paper §4.4): gas-price
priority with random tie-breaking, miner self-priority, nonce-readiness,
and the block gas limit.  Packing against each miner's *own view* of the
pool is what produces the ordering variation between futures.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set

from repro.chain.transaction import Transaction
from repro.constants import DEFAULT_BLOCK_GAS_LIMIT


def priority_key(tx: Transaction, miner_id: Optional[int] = None
                 ) -> tuple:
    """The deterministic fee-priority currency shared by block packing
    and speculation admission (:mod:`repro.sched.admission`): miner
    self-priority first, then descending gas price.  Sorting by this
    key (plus a tiebreak of the caller's choice) ranks transactions
    exactly as a miner would pack them."""
    own = 1 if (miner_id is not None
                and tx.origin_miner == miner_id) else 0
    return (-own, -tx.gas_price)


def pack_block(
    candidates: Iterable[Transaction],
    next_nonces: Dict[int, int],
    gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT,
    miner_id: Optional[int] = None,
    rng: Optional[random.Random] = None,
    exclude: Optional[Set[int]] = None,
) -> List[Transaction]:
    """Select and order transactions for one block.

    ``next_nonces`` maps sender -> expected next nonce (from the chain
    state); a transaction is packable only when its nonce is next in
    line given the block built so far.
    """
    rng = rng or random.Random(0)
    exclude = exclude or set()

    def sort_key(tx: Transaction):
        return priority_key(tx, miner_id) + (rng.random(),)

    ranked = sorted(
        (tx for tx in candidates if tx.hash not in exclude),
        key=sort_key)

    packed: List[Transaction] = []
    gas_budget = gas_limit
    working_nonces = dict(next_nonces)
    deferred: Dict[int, List[Transaction]] = {}

    def try_pack(tx: Transaction) -> bool:
        nonlocal gas_budget
        expected = working_nonces.get(tx.sender, 0)
        if tx.nonce != expected or tx.gas_limit > gas_budget:
            return False
        packed.append(tx)
        gas_budget -= tx.gas_limit
        working_nonces[tx.sender] = expected + 1
        return True

    for tx in ranked:
        if try_pack(tx):
            # A packed tx may unblock deferred same-sender successors.
            queue = deferred.get(tx.sender, [])
            progress = True
            while progress and queue:
                progress = False
                for waiting in list(queue):
                    if try_pack(waiting):
                        queue.remove(waiting)
                        progress = True
        else:
            expected = working_nonces.get(tx.sender, 0)
            if tx.nonce > expected:
                deferred.setdefault(tx.sender, []).append(tx)
    return packed
