"""Proof-of-Work block-arrival process.

The consensus algorithm itself is out of scope (paper §2: whatever
happens in the consensus phase, real work happens in the execution
windows).  What matters for speculation is its *statistics*:

* inter-block times are approximately exponential (memoryless mining),
* the winning miner is selected with probability proportional to hash
  power, with no miner dominating — the core of the many-future curse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.constants import DEFAULT_BLOCK_INTERVAL


@dataclass
class PowSchedule:
    """Samples (block time, winning miner) pairs."""

    hash_power: Dict[int, float]
    mean_interval: float = DEFAULT_BLOCK_INTERVAL
    seed: int = 13

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)
        total = sum(self.hash_power.values())
        self._miners: List[int] = list(self.hash_power)
        self._weights = [self.hash_power[m] / total for m in self._miners]

    def next_block(self, now: float) -> Tuple[float, int]:
        """Time of the next block and its winning miner."""
        interval = self._rng.expovariate(1.0 / self.mean_interval)
        winner = self._rng.choices(self._miners, weights=self._weights)[0]
        return now + interval, winner

    def competing_miner(self, winner: int) -> int:
        """A different miner (for temporary-fork generation)."""
        others = [m for m in self._miners if m != winner]
        if not others:
            return winner
        weights = [self.hash_power[m] for m in others]
        return self._rng.choices(others, weights=weights)[0]

    def uniform(self) -> float:
        """One uniform sample from the schedule's RNG (fork rolls)."""
        return self._rng.random()
