"""A mining participant: its view of the pool and its block template.

Each miner sees transactions at its own gossip arrival times, keeps its
own clock skew (timestamps come from local clocks — paper §4.2 cause
(ii)), and packs blocks with :func:`repro.consensus.packing.pack_block`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.chain.block import Block, BlockHeader
from repro.chain.transaction import Transaction
from repro.consensus.packing import pack_block
from repro.constants import DEFAULT_BLOCK_GAS_LIMIT


@dataclass
class Miner:
    """One miner's local view."""

    miner_id: int
    clock_skew: float = 0.0
    gas_limit: int = DEFAULT_BLOCK_GAS_LIMIT
    seed: int = 0
    #: tx hash -> arrival time at this miner.
    arrivals: Dict[int, float] = field(default_factory=dict)
    known: Dict[int, Transaction] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._rng = random.Random((self.seed << 16) ^ self.miner_id)

    def hear(self, tx: Transaction, arrival: float) -> None:
        """Record a gossip delivery at this miner (inf = never heard)."""
        if arrival == float("inf"):
            return
        self.known[tx.hash] = tx
        self.arrivals[tx.hash] = arrival

    def visible_at(self, when: float,
                   already_packed: Set[int]) -> List[Transaction]:
        """Transactions this miner could pack at time ``when``."""
        return [
            tx for tx_hash, tx in self.known.items()
            if self.arrivals[tx_hash] <= when
            and tx_hash not in already_packed
        ]

    def build_block(self, when: float, parent: Block,
                    next_nonces: Dict[int, int],
                    already_packed: Set[int]) -> Block:
        """Pack and stamp a new block at mining time ``when``."""
        candidates = self.visible_at(when, already_packed)
        transactions = pack_block(
            candidates, next_nonces, gas_limit=self.gas_limit,
            miner_id=self.miner_id, rng=self._rng)
        timestamp = max(int(when + self.clock_skew),
                        parent.header.timestamp + 1)
        header = BlockHeader(
            number=parent.number + 1,
            timestamp=timestamp,
            coinbase=self.miner_id,
            parent_hash=parent.hash,
            gas_limit=self.gas_limit,
        )
        return Block(header=header, transactions=transactions,
                     miner_id=self.miner_id)
