"""Consensus model: PoW-style miner selection and block packing."""

from repro.consensus.pow import PowSchedule
from repro.consensus.miner import Miner
from repro.consensus.packing import pack_block

__all__ = ["PowSchedule", "Miner", "pack_block"]
