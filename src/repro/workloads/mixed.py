"""Traffic composer: mixes workloads into one nonce-consistent stream."""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.chain.transaction import Transaction
from repro.state.world import WorldState
from repro.workloads.auctions import AuctionWorkload
from repro.workloads.base import SENDER_BASE, TxIntent, fund_senders, \
    poisson_times
from repro.workloads.compute import ComputeWorkload
from repro.workloads.deployments import DeploymentWorkload
from repro.workloads.dex import DexWorkload
from repro.workloads.gasprice import GasPriceModel
from repro.workloads.lending import LendingWorkload
from repro.workloads.names import RegistryWorkload
from repro.workloads.oracle import OracleWorkload
from repro.workloads.tokens import TokenWorkload


@dataclass
class TrafficConfig:
    """Shape of one generated traffic period."""

    duration: float = 600.0
    seed: int = 42
    oracle_feeds: int = 2
    oracle_reporters: int = 5
    token_holders: int = 60
    token_rate: float = 1.2
    dex_traders: int = 25
    dex_rate: float = 0.5
    auction_rate: float = 0.15
    registry_rate: float = 0.25
    registry_users: int = 20
    lending_rate: float = 0.2
    lending_users: int = 15
    compute_rate: float = 0.04
    deploy_rate: float = 0.01
    #: Plain ETH transfer rate (transactions/second).
    eth_transfer_rate: float = 0.6
    eth_senders: int = 30
    #: Fraction of transactions submitted privately to a miner.
    private_fraction: float = 0.02
    miner_ids: Tuple[int, ...] = ()


@dataclass
class TimedTx:
    """A fully-formed transaction with its creation time."""

    time: float
    tx: Transaction
    kind: str


class MixedWorkload:
    """Builds (genesis world, timed transaction stream) pairs."""

    def __init__(self, config: Optional[TrafficConfig] = None) -> None:
        self.config = config or TrafficConfig()
        self.prices = GasPriceModel()
        self.oracle = OracleWorkload(
            feeds=self.config.oracle_feeds,
            reporters_per_feed=self.config.oracle_reporters)
        self.tokens = TokenWorkload(
            holders=self.config.token_holders, rate=self.config.token_rate)
        self.dex = DexWorkload(
            traders=self.config.dex_traders, rate=self.config.dex_rate)
        self.auctions = AuctionWorkload(
            rate=self.config.auction_rate,
            horizon=self.config.duration * 2)
        self.registry = RegistryWorkload(
            users=self.config.registry_users,
            rate=self.config.registry_rate)
        self.lending = LendingWorkload(
            users=self.config.lending_users,
            rate=self.config.lending_rate)
        self.compute = ComputeWorkload(rate=self.config.compute_rate)
        self.deployments = DeploymentWorkload(rate=self.config.deploy_rate)
        self.eth_senders: List[int] = []

    def build_world(self) -> WorldState:
        """Genesis world with every contract deployed and account funded."""
        world = WorldState()
        self.oracle.prepare(world)
        self.tokens.prepare(world)
        self.dex.prepare(world)
        self.auctions.prepare(world)
        self.registry.prepare(world)
        self.lending.prepare(world)
        self.compute.prepare(world)
        self.deployments.prepare(world)
        self.eth_senders = fund_senders(
            world, SENDER_BASE + 0x5000, self.config.eth_senders)
        return world

    def _eth_transfers(self, rng: random.Random, start: float,
                       duration: float) -> List[TxIntent]:
        intents = []
        for when in poisson_times(rng, self.config.eth_transfer_rate,
                                  duration, start):
            sender = rng.choice(self.eth_senders)
            receiver = rng.choice(self.eth_senders)
            intents.append(TxIntent(
                time=when, sender=sender, to=receiver,
                value=rng.randint(1, 10**18),
                gas_price=self.prices.sample(rng),
                gas_limit=21_000, kind="eth",
            ))
        return intents

    def generate(self, start_time: float = 0.0
                 ) -> Tuple[WorldState, List[TimedTx]]:
        """Produce the genesis world and the full transaction stream."""
        config = self.config
        rng = random.Random(config.seed)
        world = self.build_world()

        intents: List[TxIntent] = []
        intents += self.oracle.events(rng, start_time, config.duration,
                                      self.prices)
        intents += self.tokens.events(rng, start_time, config.duration,
                                      self.prices)
        intents += self.dex.events(rng, start_time, config.duration,
                                   self.prices)
        intents += self.auctions.events(rng, start_time, config.duration,
                                        self.prices)
        intents += self.registry.events(rng, start_time, config.duration,
                                        self.prices)
        intents += self.lending.events(rng, start_time, config.duration,
                                       self.prices)
        intents += self.compute.events(rng, start_time, config.duration,
                                       self.prices)
        intents += self.deployments.events(rng, start_time,
                                           config.duration, self.prices)
        intents += self._eth_transfers(rng, start_time, config.duration)
        intents.sort(key=lambda intent: intent.time)

        # Nonces follow creation order per sender.
        next_nonce: Dict[int, int] = {}
        stream: List[TimedTx] = []
        for intent in intents:
            nonce = next_nonce.get(intent.sender, 0)
            next_nonce[intent.sender] = nonce + 1
            origin_miner = intent.origin_miner
            if (origin_miner is None and config.miner_ids
                    and rng.random() < config.private_fraction):
                origin_miner = rng.choice(config.miner_ids)
            tx = Transaction(
                sender=intent.sender,
                to=intent.to,
                data=intent.data,
                value=intent.value,
                gas_price=intent.gas_price,
                gas_limit=intent.gas_limit,
                nonce=nonce,
                origin_miner=origin_miner,
            )
            stream.append(TimedTx(time=intent.time, tx=tx,
                                  kind=intent.kind))
        return world, stream
