"""Auction workload: deadline-driven bidding.

Bids near an auction deadline flip between the accept and reject paths
depending on the block timestamp — context-dependent control flow in
the same way PriceFeed's round check is.
"""

from __future__ import annotations

import random
from typing import List

from repro.contracts.auction import auction
from repro.state.world import WorldState
from repro.workloads.base import (
    CONTRACT_BASE,
    SENDER_BASE,
    TxIntent,
    fund_senders,
    poisson_times,
)
from repro.workloads.gasprice import GasPriceModel


class AuctionWorkload:
    """Escalating bids against auctions with staggered deadlines."""

    def __init__(self, auctions: int = 2, bidders: int = 10,
                 rate: float = 0.15, horizon: float = 3600.0) -> None:
        self.auction_count = auctions
        self.bidder_count = bidders
        self.rate = rate
        self.horizon = horizon
        self.addresses: List[int] = []
        self.bidders: List[int] = []
        self._bid_state: dict = {}

    def prepare(self, world: WorldState) -> None:
        """Deploy this workload's contracts and fund its senders."""
        compiled = auction()
        for index in range(self.auction_count):
            address = CONTRACT_BASE + 0x400 + index
            world.create_account(address, code=compiled.code)
            account = world.get_account(address)
            deadline = int(self.horizon * (index + 1) / self.auction_count)
            account.set_storage(compiled.slot_of("deadline"), deadline)
            self.addresses.append(address)
            self._bid_state[address] = 100
        self.bidders = fund_senders(world, SENDER_BASE + 0x4000,
                                    self.bidder_count)

    def events(self, rng: random.Random, start_time: float,
               duration: float, prices: GasPriceModel) -> List[TxIntent]:
        """Generate this workload's timed transaction intents."""
        compiled = auction()
        intents: List[TxIntent] = []
        for when in poisson_times(rng, self.rate, duration, start_time):
            address = rng.choice(self.addresses)
            self._bid_state[address] += rng.randint(5, 50)
            intents.append(TxIntent(
                time=when,
                sender=rng.choice(self.bidders),
                to=address,
                data=compiled.calldata("bid", self._bid_state[address]),
                gas_price=prices.sample(rng),
                gas_limit=150_000,
                kind="auction",
            ))
        return intents
