"""Workload generators: DeFi-shaped synthetic Ethereum traffic.

The paper evaluates on live mainnet traffic; we synthesize traffic with
the same structural properties (DESIGN.md):

* **oracle feeds** — many reporters submitting prices into shared
  rounds: densely inter-dependent, timestamp-sensitive (the paper's
  §4.2 running example);
* **token transfers** — sparse inter-dependence through shared
  balances;
* **DEX swaps** — dense inter-dependence through shared AMM reserves,
  with cross-contract calls;
* **auctions** — deadline-driven control-flow divergence;
* **plain ETH transfers** — the no-code fast case;

mixed by :mod:`repro.workloads.mixed` with Poisson arrivals and a
discrete gas-price distribution (price ties are what make packing order
nondeterministic — paper §4.2 fn. 8).
"""

from repro.workloads.gasprice import GasPriceModel
from repro.workloads.mixed import MixedWorkload, TrafficConfig, TimedTx

__all__ = ["GasPriceModel", "MixedWorkload", "TrafficConfig", "TimedTx"]
