"""Compute-heavy workload: occasional long mixing transactions."""

from __future__ import annotations

import random
from typing import List

from repro.contracts.compute import checkpointer
from repro.state.world import WorldState
from repro.workloads.base import (
    CONTRACT_BASE,
    SENDER_BASE,
    TxIntent,
    fund_senders,
    poisson_times,
)
from repro.workloads.gasprice import GasPriceModel


class ComputeWorkload:
    """Rare but heavy hash-mixing transactions (Figure 12's tail)."""

    def __init__(self, users: int = 5, rate: float = 0.05,
                 min_rounds: int = 50, max_rounds: int = 150) -> None:
        self.users_count = users
        self.rate = rate
        self.min_rounds = min_rounds
        self.max_rounds = max_rounds
        self.contract_address = CONTRACT_BASE + 0x700
        self.users: List[int] = []

    def prepare(self, world: WorldState) -> None:
        """Deploy this workload's contracts and fund its senders."""
        compiled = checkpointer()
        world.create_account(self.contract_address, code=compiled.code)
        self.users = fund_senders(world, SENDER_BASE + 0x8000,
                                  self.users_count)

    def events(self, rng: random.Random, start_time: float,
               duration: float, prices: GasPriceModel) -> List[TxIntent]:
        """Generate this workload's timed transaction intents."""
        compiled = checkpointer()
        intents: List[TxIntent] = []
        for when in poisson_times(rng, self.rate, duration, start_time):
            rounds = rng.randint(self.min_rounds, self.max_rounds)
            intents.append(TxIntent(
                time=when,
                sender=rng.choice(self.users),
                to=self.contract_address,
                data=compiled.calldata("mix", rng.randint(0, 2**64),
                                       rounds),
                gas_price=prices.sample(rng),
                gas_limit=200_000 + 40_000 * rounds,
                kind="compute",
            ))
        return intents
