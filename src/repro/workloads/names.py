"""Registry workload: name registrations, including batch loops.

``registerMany`` unrolls a storage-write loop per iteration, producing
the long traces that dominate the right side of Figure 13 (speedup
grows with gas used).
"""

from __future__ import annotations

import random
from typing import List

from repro.contracts.registry import registry
from repro.state.world import WorldState
from repro.workloads.base import (
    CONTRACT_BASE,
    SENDER_BASE,
    TxIntent,
    fund_senders,
    poisson_times,
)
from repro.workloads.gasprice import GasPriceModel


class RegistryWorkload:
    """Single and batch registrations against one registry contract."""

    def __init__(self, users: int = 20, rate: float = 0.25,
                 batch_probability: float = 0.4,
                 max_batch: int = 64) -> None:
        self.users_count = users
        self.rate = rate
        self.batch_probability = batch_probability
        self.max_batch = max_batch
        self.registry_address = CONTRACT_BASE + 0x500
        self.users: List[int] = []
        self._next_name = 1

    def prepare(self, world: WorldState) -> None:
        """Deploy this workload's contracts and fund its senders."""
        compiled = registry()
        world.create_account(self.registry_address, code=compiled.code)
        self.users = fund_senders(world, SENDER_BASE + 0x6000,
                                  self.users_count)

    def events(self, rng: random.Random, start_time: float,
               duration: float, prices: GasPriceModel) -> List[TxIntent]:
        """Generate this workload's timed transaction intents."""
        compiled = registry()
        intents: List[TxIntent] = []
        for when in poisson_times(rng, self.rate, duration, start_time):
            sender = rng.choice(self.users)
            if rng.random() < self.batch_probability:
                # Exponential batch sizes: mostly small, occasionally
                # huge (mainnet's heavy-tailed airdrop/batch traffic —
                # the source of Figure 12's >=50x speedup tail).
                count = min(self.max_batch,
                            4 + int(rng.expovariate(1 / 12.0)))
                base_name = self._next_name
                self._next_name += count
                data = compiled.calldata("registerMany", base_name, count)
                gas_limit = 100_000 + 60_000 * count
            else:
                name = self._next_name
                self._next_name += 1
                data = compiled.calldata("register", name)
                gas_limit = 180_000
            intents.append(TxIntent(
                time=when, sender=sender, to=self.registry_address,
                data=data, gas_price=prices.sample(rng),
                gas_limit=gas_limit, kind="registry",
            ))
        return intents
