"""Shared workload plumbing: address allocation and event records."""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.state.world import WorldState

#: Address ranges (opaque integers; see DESIGN.md).
SENDER_BASE = 0x10_000
CONTRACT_BASE = 0xC0_000
MINER_BASE = 0xE0_000

#: Generous initial ETH balance for traffic senders.
FUNDING = 10**24


@dataclass
class TxIntent:
    """A transaction-to-be, before nonce assignment."""

    time: float
    sender: int
    to: int
    data: bytes = b""
    value: int = 0
    gas_price: int = 0
    gas_limit: int = 300_000
    origin_miner: Optional[int] = None
    #: Label for per-workload statistics ("oracle", "token", ...).
    kind: str = ""


def fund_senders(world: WorldState, base: int, count: int) -> list:
    """Create ``count`` funded sender accounts; returns their addresses."""
    addresses = []
    for index in range(count):
        address = base + index
        if world.get_account(address) is None:
            world.create_account(address, balance=FUNDING)
        addresses.append(address)
    return addresses


def poisson_times(rng: random.Random, rate: float, duration: float,
                  start: float = 0.0) -> list:
    """Arrival times of a Poisson process with ``rate`` events/second.

    A zero (or negative) rate yields no events.
    """
    if rate <= 0:
        return []
    times = []
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= start + duration:
            return times
        times.append(t)
