"""Lending-market workload: supplies, borrows, repayments, accruals.

Every interaction depends on ``block.timestamp`` (interest accrual) and
borrows STATICCALL a price feed — the most context-entangled workload
in the mix.
"""

from __future__ import annotations

import random
from typing import List

from repro.contracts.lending import lending
from repro.contracts.pricefeed import pricefeed
from repro.state.world import WorldState
from repro.workloads.base import (
    CONTRACT_BASE,
    SENDER_BASE,
    TxIntent,
    fund_senders,
    poisson_times,
)
from repro.workloads.gasprice import GasPriceModel


class LendingWorkload:
    """Random lending-market interactions at a Poisson rate."""

    def __init__(self, users: int = 15, rate: float = 0.2,
                 round_id: int = 0) -> None:
        self.users_count = users
        self.rate = rate
        self.round_id = round_id
        self.pool_address = CONTRACT_BASE + 0x600
        self.feed_address = CONTRACT_BASE + 0x601
        self.users: List[int] = []

    def prepare(self, world: WorldState) -> None:
        """Deploy this workload's contracts and fund its senders."""
        pool_compiled = lending()
        feed_compiled = pricefeed()
        world.create_account(self.pool_address, code=pool_compiled.code)
        world.create_account(self.feed_address, code=feed_compiled.code)
        # Seed the price feed so collateral valuations resolve.
        world.get_account(self.feed_address).set_storage(
            feed_compiled.slot_of("prices", self.round_id), 2000)
        pool = world.get_account(self.pool_address)
        pool.set_storage(pool_compiled.slot_of("priceFeed"),
                         self.feed_address)
        pool.set_storage(pool_compiled.slot_of("activeRound"),
                         self.round_id)
        pool.set_storage(pool_compiled.slot_of("totalSupplied"), 10**15)
        pool.set_storage(pool_compiled.slot_of("borrowIndex"), 10_000_000)
        self.users = fund_senders(world, SENDER_BASE + 0x7000,
                                  self.users_count)
        for user in self.users:
            pool.set_storage(
                pool_compiled.slot_of("collateral", user), 10**9)

    def events(self, rng: random.Random, start_time: float,
               duration: float, prices: GasPriceModel) -> List[TxIntent]:
        """Generate this workload's timed transaction intents."""
        compiled = lending()
        intents: List[TxIntent] = []
        debt: dict = {}
        for when in poisson_times(rng, self.rate, duration, start_time):
            user = rng.choice(self.users)
            roll = rng.random()
            if roll < 0.25:
                data = compiled.calldata("accrue")
            elif roll < 0.50:
                data = compiled.calldata("supply", rng.randint(100, 10**6))
            elif roll < 0.85:
                amount = rng.randint(100, 10**6)
                data = compiled.calldata("borrow", amount)
                debt[user] = debt.get(user, 0) + amount
            else:
                owed = debt.get(user, 0)
                if owed == 0:
                    data = compiled.calldata("accrue")
                else:
                    amount = rng.randint(1, owed)
                    data = compiled.calldata("repay", amount)
                    debt[user] = owed - amount
            intents.append(TxIntent(
                time=when, sender=user, to=self.pool_address,
                data=data, gas_price=prices.sample(rng),
                gas_limit=300_000, kind="lending",
            ))
        return intents
