"""Gas price distribution.

Senders take pricing advice from the same helper tools, so a handful of
discrete price levels dominate and ties are common (paper §4.2 fn. 8 —
ties are broken randomly by miners, a key source of ordering
nondeterminism).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Tuple

#: (gwei price level, relative weight) — a stylized 2021 fee market.
DEFAULT_LEVELS: Tuple[Tuple[int, float], ...] = (
    (80, 0.30),   # "standard" helper-tool advice
    (100, 0.25),  # "fast"
    (120, 0.18),
    (90, 0.12),
    (150, 0.08),  # impatient
    (200, 0.04),
    (60, 0.03),   # patient
)

GWEI = 1_000_000_000


@dataclass
class GasPriceModel:
    """Samples discrete gas prices (in wei)."""

    levels: Tuple[Tuple[int, float], ...] = DEFAULT_LEVELS
    _prices: List[int] = field(init=False, default_factory=list)
    _weights: List[float] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self._prices = [level * GWEI for level, _ in self.levels]
        self._weights = [weight for _, weight in self.levels]

    def sample(self, rng: random.Random) -> int:
        return rng.choices(self._prices, weights=self._weights)[0]
