"""ERC20 token-transfer workload.

A token contract with a population of holders transferring to random
counterparties.  Most transfers touch disjoint balance slots, so they
are mutually independent — the high-coverage end of the spectrum.  A
configurable "hot receiver" fraction (exchange deposit addresses)
introduces mild inter-dependence.
"""

from __future__ import annotations

import random
from typing import List

from repro.contracts.erc20 import erc20
from repro.state.world import WorldState
from repro.workloads.base import (
    CONTRACT_BASE,
    SENDER_BASE,
    TxIntent,
    fund_senders,
    poisson_times,
)
from repro.workloads.gasprice import GasPriceModel


class TokenWorkload:
    """Random ERC20 transfers at a Poisson rate."""

    def __init__(self, holders: int = 60, rate: float = 1.2,
                 hot_receiver_probability: float = 0.25) -> None:
        self.holders = holders
        self.rate = rate
        self.hot_receiver_probability = hot_receiver_probability
        self.token_address = CONTRACT_BASE + 0x200
        self.hot_receivers: List[int] = []
        self.accounts: List[int] = []

    def prepare(self, world: WorldState) -> None:
        """Deploy this workload's contracts and fund its senders."""
        compiled = erc20()
        world.create_account(self.token_address, code=compiled.code)
        self.accounts = fund_senders(
            world, SENDER_BASE + 0x2000, self.holders)
        token = world.get_account(self.token_address)
        for holder in self.accounts:
            token.set_storage(
                compiled.slot_of("balanceOf", holder), 10**12)
        token.set_storage(compiled.slot_of("totalSupply"),
                          10**12 * self.holders)
        self.hot_receivers = self.accounts[:max(1, self.holders // 20)]

    def events(self, rng: random.Random, start_time: float,
               duration: float, prices: GasPriceModel) -> List[TxIntent]:
        """Generate this workload's timed transaction intents."""
        compiled = erc20()
        intents: List[TxIntent] = []
        for when in poisson_times(rng, self.rate, duration, start_time):
            sender = rng.choice(self.accounts)
            if rng.random() < self.hot_receiver_probability:
                receiver = rng.choice(self.hot_receivers)
            else:
                receiver = rng.choice(self.accounts)
            if receiver == sender:
                receiver = self.accounts[
                    (self.accounts.index(sender) + 1) % len(self.accounts)]
            amount = rng.randint(1, 10**6)
            intents.append(TxIntent(
                time=when,
                sender=sender,
                to=self.token_address,
                data=compiled.calldata("transfer", receiver, amount),
                gas_price=prices.sample(rng),
                gas_limit=120_000,
                kind="token",
            ))
        return intents
