"""Deployment workload: occasional contract creations.

Real traffic includes contract deployments; they cannot be specialized
(no AP — the speculator skips them) and so exercise the graceful
degradation path: Forerunner must execute them plainly while keeping
Merkle roots identical, and they dilute the end-to-end speedup exactly
like other unaccelerated traffic.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import List

from repro.minisol import compile_contract
from repro.state.world import WorldState
from repro.workloads.base import (
    SENDER_BASE,
    TxIntent,
    fund_senders,
    poisson_times,
)
from repro.workloads.gasprice import GasPriceModel

_COUNTER_SOURCE = """
contract Counter {
    uint256 public count;
    function bump(uint256 by) public { count += by; }
}
"""


@lru_cache(maxsize=1)
def _counter():
    return compile_contract(_COUNTER_SOURCE)


class DeploymentWorkload:
    """Rare contract-creation transactions (tx.to == 0)."""

    def __init__(self, deployers: int = 4, rate: float = 0.01) -> None:
        self.deployers_count = deployers
        self.rate = rate
        self.deployers: List[int] = []

    def prepare(self, world: WorldState) -> None:
        """Fund this workload's sender accounts."""
        self.deployers = fund_senders(world, SENDER_BASE + 0x9000,
                                      self.deployers_count)

    def events(self, rng: random.Random, start_time: float,
               duration: float, prices: GasPriceModel) -> List[TxIntent]:
        """Generate this workload's timed transaction intents."""
        intents: List[TxIntent] = []
        for when in poisson_times(rng, self.rate, duration, start_time):
            intents.append(TxIntent(
                time=when,
                sender=rng.choice(self.deployers),
                to=0,
                data=_counter().deploy_code(),
                gas_price=prices.sample(rng),
                gas_limit=1_000_000,
                kind="deploy",
            ))
        return intents
