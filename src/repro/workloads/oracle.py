"""Oracle price-feed workload (the paper's §4.2 scenario).

Several PriceFeed contracts, each with a set of independent reporters.
Every 300-second round, each reporter submits an observed price within
the first part of the round.  Submissions to the same feed and round
are *inter-dependent* (they read and write the same prices/counts
slots), and their block timestamp decides round validity — exactly the
two context-variation axes of Figure 5.
"""

from __future__ import annotations

import random
from typing import List

from repro.constants import ORACLE_ROUND_SECONDS
from repro.contracts.pricefeed import pricefeed
from repro.state.world import WorldState
from repro.workloads.base import (
    CONTRACT_BASE,
    SENDER_BASE,
    TxIntent,
    fund_senders,
)
from repro.workloads.gasprice import GasPriceModel


class OracleWorkload:
    """Price submissions into round-based feeds."""

    def __init__(self, feeds: int = 2, reporters_per_feed: int = 5,
                 base_price: int = 2000,
                 submit_window: float = 120.0) -> None:
        self.feeds = feeds
        self.reporters_per_feed = reporters_per_feed
        self.base_price = base_price
        self.submit_window = submit_window
        self.feed_addresses: List[int] = []
        self.reporters: List[List[int]] = []

    def prepare(self, world: WorldState) -> None:
        """Deploy this workload's contracts and fund its senders."""
        compiled = pricefeed()
        for feed_index in range(self.feeds):
            address = CONTRACT_BASE + 0x100 + feed_index
            world.create_account(address, code=compiled.code)
            self.feed_addresses.append(address)
            senders = fund_senders(
                world,
                SENDER_BASE + 0x1000 + feed_index * 0x100,
                self.reporters_per_feed)
            self.reporters.append(senders)

    def events(self, rng: random.Random, start_time: float,
               duration: float, prices: GasPriceModel) -> List[TxIntent]:
        """Generate this workload's timed transaction intents."""
        compiled = pricefeed()
        intents: List[TxIntent] = []
        first_round = (int(start_time) // ORACLE_ROUND_SECONDS
                       ) * ORACLE_ROUND_SECONDS
        round_start = first_round
        while round_start < start_time + duration:
            round_id = round_start
            for feed_index, feed in enumerate(self.feed_addresses):
                price = self.base_price + rng.randint(-25, 25)
                for reporter in self.reporters[feed_index]:
                    offset = rng.uniform(2.0, self.submit_window)
                    when = round_start + offset
                    if when < start_time or when >= start_time + duration:
                        continue
                    observed = price + rng.randint(-8, 8)
                    intents.append(TxIntent(
                        time=when,
                        sender=reporter,
                        to=feed,
                        data=compiled.calldata("submit", round_id, observed),
                        gas_price=prices.sample(rng),
                        gas_limit=200_000,
                        kind="oracle",
                    ))
            round_start += ORACLE_ROUND_SECONDS
        return intents
