"""DEX swap workload: a constant-product AMM pool.

Every swap reads and writes the shared reserves, so concurrent swaps in
the pending pool are densely inter-dependent and their execution order
changes every participant's output — the hardest case for traditional
single-future speculation, and the one Forerunner's imperfect-match
acceleration shines on (Table 3).
"""

from __future__ import annotations

import random
from typing import List

from repro.contracts.amm import amm
from repro.contracts.erc20 import erc20
from repro.state.world import WorldState
from repro.workloads.base import (
    CONTRACT_BASE,
    SENDER_BASE,
    TxIntent,
    fund_senders,
    poisson_times,
)
from repro.workloads.gasprice import GasPriceModel

INITIAL_RESERVE = 10**12


class DexWorkload:
    """Random swaps against one AMM pool backed by two tokens."""

    def __init__(self, traders: int = 25, rate: float = 0.5) -> None:
        self.traders_count = traders
        self.rate = rate
        self.pool_address = CONTRACT_BASE + 0x300
        self.token0 = CONTRACT_BASE + 0x301
        self.token1 = CONTRACT_BASE + 0x302
        self.traders: List[int] = []

    def prepare(self, world: WorldState) -> None:
        """Deploy this workload's contracts and fund its senders."""
        pool = amm()
        token = erc20()
        world.create_account(self.token0, code=token.code)
        world.create_account(self.token1, code=token.code)
        world.create_account(self.pool_address, code=pool.code)
        pool_account = world.get_account(self.pool_address)
        pool_account.set_storage(pool.slot_of("reserve0"), INITIAL_RESERVE)
        pool_account.set_storage(pool.slot_of("reserve1"), INITIAL_RESERVE)
        pool_account.set_storage(pool.slot_of("token0"), self.token0)
        pool_account.set_storage(pool.slot_of("token1"), self.token1)
        pool_account.set_storage(pool.slot_of("selfAddr"), self.pool_address)

        self.traders = fund_senders(world, SENDER_BASE + 0x3000,
                                    self.traders_count)
        for token_address in (self.token0, self.token1):
            token_account = world.get_account(token_address)
            # Pool inventory backing the reserves.
            token_account.set_storage(
                token.slot_of("balanceOf", self.pool_address),
                INITIAL_RESERVE * 10)
            for trader in self.traders:
                token_account.set_storage(
                    token.slot_of("balanceOf", trader), 10**10)
                token_account.set_storage(
                    token.slot_of("allowance", trader, self.pool_address),
                    10**18)

    def events(self, rng: random.Random, start_time: float,
               duration: float, prices: GasPriceModel) -> List[TxIntent]:
        """Generate this workload's timed transaction intents."""
        pool = amm()
        intents: List[TxIntent] = []
        for when in poisson_times(rng, self.rate, duration, start_time):
            trader = rng.choice(self.traders)
            amount = rng.randint(10**3, 10**5)
            method = "swap0to1" if rng.random() < 0.5 else "swap1to0"
            intents.append(TxIntent(
                time=when,
                sender=trader,
                to=self.pool_address,
                data=pool.calldata(method, amount, 0),
                gas_price=prices.sample(rng),
                gas_limit=250_000,
                kind="dex",
            ))
        return intents
