"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``simulate``  — run the full DiCE evaluation and print the paper's
  headline tables (a compact version of §5).
* ``record``    — record a traffic period to a JSON dataset (the
  paper publishes its datasets; so do we).
* ``replay``    — replay a recorded dataset through the nodes.
* ``compile``   — compile a minisol source file; print ABI, storage
  layout, and disassembly.
* ``synthesize``— trace the paper's Tx_e and print the synthesized
  accelerated program (Figure 8), or ``--merged`` for the FC1+FC4
  case-branching tree (Figure 10).
* ``crash``     — kill the node at every durability boundary
  (journal appends, fsyncs, snapshot writes, block commits), recover,
  and verify restart replay converges byte-identically.
* ``verify``    — replay a workload with witnesses on, re-derive every
  committed result via the witness checker (constraint replay + delta
  application, no re-execution), and run the differential conformance
  oracle; ``--json`` emits the canonical report, ``--witness-out``
  writes the byte-stable witness JSONL artifact.
* ``serve``     — run a seeded client load scenario against the
  JSON-RPC serving edge (repro.edge) and print the canonical serving
  report: per-method counts, shed rate, brownout transitions,
  p50/p99 cost-unit latency; ``--json-out`` / ``--trace-out`` emit
  the byte-stable report and serving trace.
* ``history``   — print the Figure 2 block-saturation series.
* ``report``    — record + replay a workload and print the stage
  breakdown; ``--metrics`` dumps the deterministic metrics snapshot,
  ``--sched`` adds the scheduler section (lane utilization, conflict
  and abort rates, admission counters), ``--lanes N`` runs block
  execution on N parallel lanes (commits stay byte-identical),
  ``--json`` emits the whole report as canonical JSON, and
  ``--trace-out PATH`` writes the canonical JSONL trace (two runs of
  the same workload produce byte-identical files).
"""

from __future__ import annotations

import argparse
import sys

from repro.core import stats as S


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.p2p.latency import LatencyModel
    from repro.sim.emulator import replay
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name="cli",
        traffic=TrafficConfig(duration=args.duration, seed=args.seed),
        observers={"live": LatencyModel()},
        seed=args.seed)
    print(f"Recording {args.duration:.0f}s of traffic "
          f"(seed {args.seed})...")
    dataset = record_dataset(config)
    print(f"  {dataset.tx_count} txs / {len(dataset.blocks)} blocks "
          f"(+{len(dataset.fork_blocks)} forks)")
    run = replay(dataset, "live")
    summary = S.summarize(run.records)
    print(f"\nMerkle roots matched: {run.roots_matched}/"
          f"{run.blocks_executed}")
    print(f"Heard: {summary.heard_fraction:.2%} "
          f"({summary.heard_weighted:.2%} weighted)")
    for row in S.table2(run.records):
        print(f"  {row.name:<44} {row.speedup:>6.2f}x  "
              f"sat {row.satisfied_fraction:.2%}")
    print(f"  {'End-to-end':<44} {summary.end_to_end_speedup:>6.2f}x")
    for row in S.table3(run.records):
        print(f"  {row.name:<22} {row.tx_fraction:>7.2%}  "
              f"{row.speedup:>6.2f}x")
    _print_cache_report(run)
    return 0


def _print_cache_report(run) -> None:
    """Print the speculation caching-layer counters (§5.6 savings)."""
    cache = S.speculation_cache_report(run)
    print("\nSpeculation caching layers:")
    print(f"  prefix cache: {cache.prefix_hits} hits / "
          f"{cache.prefix_misses} misses "
          f"({cache.prefix_hit_rate:.2%} hit rate), "
          f"{cache.prefix_invalidations} invalidations")
    print(f"  predecessor executions: {cache.pred_execs} run, "
          f"{cache.pred_execs_avoided} served from cache "
          f"({cache.pred_reduction_factor:.2f}x instruction reduction, "
          f"{cache.pred_execs_redundant} redundant re-executions left)")
    print(f"  synthesis dedup: {cache.dedup_hits} hits / "
          f"{cache.dedup_misses} misses "
          f"({cache.dedup_hit_rate:.2%} hit rate)")
    print(f"  off-path cost: {cache.actual_cost:,} paid vs "
          f"{cache.logical_cost:,} uncached "
          f"({cache.cost_saved:,} units saved)")


def _cmd_record(args: argparse.Namespace) -> int:
    from repro.p2p.latency import LatencyModel
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.sim.storage import save_dataset
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name=args.name,
        traffic=TrafficConfig(duration=args.duration, seed=args.seed),
        observers={"live": LatencyModel()},
        seed=args.seed)
    dataset = record_dataset(config)
    save_dataset(dataset, args.out)
    print(f"recorded {dataset.tx_count} txs / {len(dataset.blocks)} "
          f"blocks (+{len(dataset.fork_blocks)} forks) -> {args.out}")
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.sim.emulator import replay
    from repro.sim.storage import load_dataset

    dataset = load_dataset(args.dataset)
    run = replay(dataset, args.observer)
    summary = S.summarize(run.records)
    print(f"dataset {dataset.name}: {len(run.records)} txs, "
          f"roots matched {run.roots_matched}/{run.blocks_executed}")
    print(f"effective speedup {summary.effective_speedup:.2f}x, "
          f"end-to-end {summary.end_to_end_speedup:.2f}x, "
          f"satisfied {summary.satisfied_fraction:.2%}")
    _print_cache_report(run)
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.evm.assembler import format_disassembly
    from repro.minisol import compile_contract

    with open(args.source, encoding="utf-8") as handle:
        source = handle.read()
    compiled = compile_contract(source)
    print(f"contract {compiled.name}: {len(compiled.code)} bytes\n")
    print("Functions:")
    for fn in compiled.functions.values():
        ret = " -> uint256" if fn.returns_value else ""
        print(f"  {fn.selector:#010x}  {fn.signature}{ret}")
    print("\nStorage layout:")
    for name, slot in compiled.storage_layout.items():
        print(f"  slot {slot}: {name}")
    if args.disassemble:
        print("\nDisassembly:")
        print(format_disassembly(compiled.code))
    return 0


def _cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.chain.block import BlockHeader
    from repro.chain.transaction import Transaction
    from repro.contracts import pricefeed
    from repro.core.ap import describe_ap
    from repro.core.speculator import FutureContext, Speculator, \
        synthesize_path
    from repro.core.trace import trace_transaction
    from repro.state.statedb import StateDB
    from repro.state.world import WorldState

    pf = pricefeed()
    round_id = 3990300

    def make_world(active_round=round_id):
        world = WorldState()
        world.create_account(0xA11CE, balance=10**24)
        world.create_account(0xFEED, code=pf.code)
        feed = world.get_account(0xFEED)
        feed.set_storage(pf.slot_of("activeRoundID"), active_round)
        if active_round == round_id:
            feed.set_storage(pf.slot_of("prices", round_id), 2000)
            feed.set_storage(pf.slot_of("submissionCounts", round_id), 4)
        return world

    tx = Transaction(sender=0xA11CE, to=0xFEED,
                     data=pf.calldata("submit", round_id, 1980), nonce=0)
    if args.merged:
        # Figure 10: FC1 (later submission) merged with FC4 (fresh
        # round) into one case-branching AP.
        speculator = Speculator(make_world())
        speculator.speculate(
            tx, FutureContext(1, BlockHeader(1, 3990462, 0xBEEF)))
        speculator.world = make_world(active_round=3990000)
        speculator.speculate(
            tx, FutureContext(4, BlockHeader(1, 3990478, 0xBEEF)))
        ap = speculator.get_ap(tx.hash)
        print("Merged AP of Tx_e over FC1 (else-branch) and FC4 "
              "(if-branch) — a textual Figure 10:\n")
        print(describe_ap(ap))
        return 0
    header = BlockHeader(1, args.timestamp, 0xBEEF)
    trace = trace_transaction(StateDB(make_world()), header, tx)
    path = synthesize_path(trace)
    stats = path.stats
    print(f"Tx_e traced in FC(timestamp={args.timestamp}): "
          f"{stats.trace_len} EVM instructions")
    print(f"Synthesized AP path ({stats.final_len} instructions, "
          f"{stats.final_len / stats.trace_len:.1%} of trace):\n")
    for instr in path.instrs:
        print(f"  {instr!r}")
    print(f"\nread set: {len(path.read_set)} entries, "
          f"gas (constant): {path.gas_used}")
    return 0


def _print_sched_report(sched: dict) -> None:
    """Print the scheduler section (``report --sched``)."""
    ex = sched.get("executor", {})
    adm = sched.get("admission", {})
    workers = sched.get("workers", {})
    aborted = ex.get("aborted", {})
    print(f"\nScheduler ({ex.get('lanes', 1)} lanes):")
    print(f"  blocks: {ex.get('blocks', 0)} "
          f"({ex.get('blocks_parallel', 0)} parallel), "
          f"txs: {ex.get('transactions', 0)}")
    print(f"  clean commits: {ex.get('clean_commits', 0)}, aborted: "
          f"{aborted.get('conflict', 0)} conflict / "
          f"{aborted.get('entangled', 0)} entangled / "
          f"{aborted.get('faulted', 0)} faulted")
    print(f"  conflict rate: {ex.get('conflict_rate', 0.0):.4%} "
          f"({ex.get('conflict_pairs', 0)} of "
          f"{ex.get('possible_pairs', 0)} pairs)")
    print(f"  critical path: {ex.get('critical_path_units', 0):,} of "
          f"{ex.get('serial_cost_units', 0):,} serial units "
          f"({ex.get('speedup', 1.0):.2f}x)")
    utils = [b["lane_utilization_permille"]
             for b in sched.get("blocks", []) if b.get("lanes", 1) > 1]
    if utils:
        flat = [u for block in utils for u in block]
        print(f"  lane utilization: {sum(flat) // len(flat)} permille "
              f"mean over {len(utils)} parallel blocks")
    jobs = workers.get("jobs", [])
    print(f"  speculation lanes: {workers.get('lanes', 0)}, "
          f"jobs: {sum(jobs)}")
    prefetch = adm.get("prefetch", {})
    print(f"  admission: {adm.get('admitted', 0)} admitted / "
          f"{adm.get('dispatched', 0)} dispatched / "
          f"{adm.get('deferred', 0)} deferred / "
          f"{adm.get('dropped', 0)} dropped / "
          f"{adm.get('capped', 0)} capped")
    print(f"  prefetch queue: {prefetch.get('queued', 0)} queued / "
          f"{prefetch.get('drained', 0)} drained / "
          f"{prefetch.get('dropped', 0)} dropped")


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.core.node import ForerunnerConfig
    from repro.obs.export import canonical_json, export_jsonl
    from repro.p2p.latency import LatencyModel
    from repro.sim.emulator import replay
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name="report",
        traffic=TrafficConfig(duration=args.duration, seed=args.seed),
        observers={"live": LatencyModel()},
        seed=args.seed)
    dataset = record_dataset(config)
    node_config = ForerunnerConfig(enable_jit=not args.no_jit)
    run = replay(dataset, args.observer, config=node_config,
                 lanes=args.lanes)
    if args.as_json:
        payload = {
            "dataset": dataset.name,
            "observer": run.observer,
            "seed": args.seed,
            "duration": args.duration,
            "txs": len(run.records),
            "roots_matched": run.roots_matched,
            "blocks_executed": run.blocks_executed,
            "state_root": hex(run.forerunner_node.world.root()),
            "stages": run.tracer.stage_totals(),
        }
        if args.sched:
            payload["sched"] = run.sched
        print(canonical_json(payload))
        return 0
    print(f"dataset {dataset.name}: {len(run.records)} txs, "
          f"roots matched {run.roots_matched}/{run.blocks_executed}")
    print("\nStage breakdown (logical cost units):")
    for name, entry in run.tracer.stage_totals().items():
        print(f"  {name:<20} {entry['count']:>7} spans  "
              f"{entry['cost']:>14,} units")
    if args.sched:
        _print_sched_report(run.sched)
    if args.metrics:
        print("\nMetrics snapshot (deterministic instruments):")
        for line in run.registry.render().splitlines():
            print(f"  {line}")
    if args.trace_out:
        written = export_jsonl(
            args.trace_out, run.tracer, run.registry,
            meta={"dataset": dataset.name, "observer": run.observer,
                  "seed": args.seed, "duration": args.duration})
        print(f"\nwrote {written} trace lines -> {args.trace_out}")
    return 0


def _cmd_chaos_edge(args: argparse.Namespace) -> int:
    """Edge chaos: every ``edge.*`` fault site at its own rate, with
    the containment assertion (node commitments never change)."""
    from repro.edge import ScenarioConfig, build_scenario, run_serving
    from repro.edge.faults import EDGE_SITES, edge_fault_plan
    from repro.obs.export import canonical_json
    from repro.p2p.latency import LatencyModel
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name="edge-chaos",
        traffic=TrafficConfig(duration=args.duration,
                              seed=args.workload_seed),
        observers={"live": LatencyModel()},
        seed=args.workload_seed)
    dataset = record_dataset(config)
    scenario = build_scenario(dataset,
                              ScenarioConfig(seed=args.seed, load=2.0))
    clean = run_serving(dataset, scenario, observer=args.observer)
    rate = args.rate if args.rate is not None else 1.0
    print(f"edge chaos: dataset={dataset.name} seed={args.seed} "
          f"rate={rate} ({len(scenario)} requests, "
          f"{len(dataset.blocks)} blocks)")
    print(f"clean run: goodput {clean.goodput:.3f}")
    print()
    rows = []
    ok = True
    for site in EDGE_SITES:
        plan = edge_fault_plan(seed=args.seed, probability=rate,
                               sites=(site,))
        faulted = run_serving(dataset, scenario, fault_plan=plan,
                              observer=args.observer)
        fired = faulted.injector.fired(site)
        contained = faulted.commitments() == clean.commitments()
        uncaught = faulted.server.c_internal_errors.value
        site_ok = contained and fired > 0 and uncaught == 0
        ok = ok and site_ok
        status = "CONTAINED" if site_ok else "FAILED"
        print(f"  {site:26s} fired={fired:5d} "
              f"goodput={faulted.goodput:.3f} "
              f"uncaught={uncaught} {status}")
        rows.append({"site": site, "fired": fired,
                     "goodput": round(faulted.goodput, 6),
                     "contained": contained,
                     "uncaught_errors": uncaught, "ok": site_ok})
    print()
    print("edge containment: " + ("OK" if ok else "FAILED"))
    if args.json_out:
        payload = {"schema": 1, "dataset": dataset.name,
                   "seed": args.seed, "rate": rate,
                   "requests": len(scenario),
                   "clean_goodput": round(clean.goodput, 6),
                   "sites": rows, "ok": ok}
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(payload))
            handle.write("\n")
        print(f"wrote edge chaos report -> {args.json_out}")
    return 0 if ok else 1


def _cmd_chaos_fleet(args: argparse.Namespace) -> int:
    """Fleet chaos: every ``fleet.*`` lifecycle/routing fault site at
    its own rate, with the containment assertion — fleet commitments
    (merged roots + receipt cores) byte-identical to the fault-free
    fleet run, which is itself byte-identical to the single node."""
    from repro.edge import ScenarioConfig, build_scenario
    from repro.fleet import (
        FLEET_SITES,
        SITE_HANDOFF_TORN,
        SITE_REPLICA_CRASH,
        SITE_STALE_SHARDMAP,
        FleetConfig,
        fleet_fault_plan,
        run_fleet_serving,
    )
    from repro.obs.export import canonical_json
    from repro.p2p.latency import LatencyModel
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name="fleet-chaos",
        traffic=TrafficConfig(duration=args.duration,
                              seed=args.workload_seed),
        observers={"live": LatencyModel()},
        seed=args.workload_seed)
    dataset = record_dataset(config)
    scenario = build_scenario(dataset,
                              ScenarioConfig(seed=args.seed, load=2.0))
    shards = args.shards
    clean = run_fleet_serving(dataset, scenario,
                              fleet_config=FleetConfig(shards=shards),
                              observer=args.observer)
    rate = args.rate if args.rate is not None else 0.2
    print(f"fleet chaos: dataset={dataset.name} seed={args.seed} "
          f"rate={rate} shards={shards} ({len(scenario)} requests, "
          f"{len(dataset.blocks)} blocks)")
    print(f"clean run: goodput {clean.goodput:.3f}")
    print()
    rows = []
    ok = True
    # Torn handoffs and stale-map decisions only have a window when
    # the membership actually changes, so those sites are swept with
    # the crash site as their driver.
    driven = {SITE_HANDOFF_TORN, SITE_STALE_SHARDMAP}
    for site in FLEET_SITES:
        sites = (SITE_REPLICA_CRASH, site) if site in driven else (site,)
        plan = fleet_fault_plan(seed=args.seed, probability=rate,
                                sites=sites)
        faulted = run_fleet_serving(
            dataset, scenario,
            fleet_config=FleetConfig(shards=shards, fault_plan=plan),
            observer=args.observer)
        fired = faulted.supervisor.injector.fired(site)
        contained = faulted.commitments() == clean.commitments()
        lifecycle = faulted.supervisor.lifecycle_report()
        site_ok = contained and fired > 0
        ok = ok and site_ok
        status = "CONTAINED" if site_ok else "FAILED"
        print(f"  {site:26s} fired={fired:5d} "
              f"goodput={faulted.goodput:.3f} "
              f"gen={lifecycle['generation']:3d} {status}")
        rows.append({"site": site, "fired": fired,
                     "goodput": round(faulted.goodput, 6),
                     "contained": contained,
                     "generation": lifecycle["generation"],
                     "ok": site_ok})
    print()
    print("fleet containment: " + ("OK" if ok else "FAILED"))
    if args.json_out:
        payload = {"schema": 1, "dataset": dataset.name,
                   "seed": args.seed, "rate": rate, "shards": shards,
                   "requests": len(scenario),
                   "clean_goodput": round(clean.goodput, 6),
                   "sites": rows, "ok": ok}
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(payload))
            handle.write("\n")
        print(f"wrote fleet chaos report -> {args.json_out}")
    return 0 if ok else 1


def _cmd_chaos_net(args: argparse.Namespace) -> int:
    """Wire-plane chaos: every ``net.*`` site at its own rate against
    the wire-enabled fleet, with three assertions per site — the fault
    actually fired, commitments are byte-identical to the clean wire
    run, and two same-seed faulted runs are byte-identical to each
    other.  The lease oracle re-verifies single-holder-per-term on
    every run."""
    from repro.edge import ScenarioConfig, build_scenario
    from repro.fleet import (
        NET_SITES,
        FleetConfig,
        net_fault_plan,
        run_fleet_serving,
    )
    from repro.fleet.wire import WireConfig
    from repro.obs.export import canonical_json
    from repro.p2p.latency import LatencyModel
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name="net-chaos",
        traffic=TrafficConfig(duration=args.duration,
                              seed=args.workload_seed),
        observers={"live": LatencyModel()},
        seed=args.workload_seed)
    dataset = record_dataset(config)
    scenario = build_scenario(dataset,
                              ScenarioConfig(seed=args.seed, load=2.0))
    shards = args.shards
    clean = run_fleet_serving(
        dataset, scenario,
        fleet_config=FleetConfig(shards=shards, wire=WireConfig()),
        observer=args.observer)
    rate = args.rate if args.rate is not None else 1.0
    print(f"net chaos: dataset={dataset.name} seed={args.seed} "
          f"rate={rate} shards={shards} ({len(scenario)} requests, "
          f"{len(dataset.blocks)} blocks)")
    print(f"clean wire run: goodput {clean.goodput:.3f}")
    print()
    rows = []
    ok = True
    for site in NET_SITES:
        plan = net_fault_plan(seed=args.seed, probability=rate,
                              sites=(site,))

        def run_once():
            return run_fleet_serving(
                dataset, scenario,
                fleet_config=FleetConfig(shards=shards,
                                         wire=WireConfig(),
                                         fault_plan=plan),
                observer=args.observer)

        faulted = run_once()
        again = run_once()
        fired = faulted.supervisor.injector.fired(site)
        contained = faulted.commitments() == clean.commitments()
        deterministic = faulted.commitments() == again.commitments()
        faulted.supervisor.lease.assert_single_holder_per_term()
        again.supervisor.lease.assert_single_holder_per_term()
        wire = faulted.supervisor.wire.summary()
        site_ok = contained and deterministic and fired > 0
        ok = ok and site_ok
        status = "CONTAINED" if site_ok else "FAILED"
        print(f"  {site:18s} fired={fired:5d} "
              f"goodput={faulted.goodput:.3f} "
              f"retries={wire['retries']:4d} "
              f"dedup={wire['dedup_dropped']:4d} {status}")
        rows.append({"site": site, "fired": fired,
                     "goodput": round(faulted.goodput, 6),
                     "contained": contained,
                     "deterministic": deterministic,
                     "retries": wire["retries"],
                     "dedup_dropped": wire["dedup_dropped"],
                     "escalations": wire["escalations"],
                     "ok": site_ok})
    print()
    print("net containment: " + ("OK" if ok else "FAILED"))
    if args.json_out:
        payload = {"schema": 1, "dataset": dataset.name,
                   "seed": args.seed, "rate": rate, "shards": shards,
                   "requests": len(scenario),
                   "clean_goodput": round(clean.goodput, 6),
                   "clean_wire": clean.supervisor.wire.summary(),
                   "sites": rows, "ok": ok}
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(payload))
            handle.write("\n")
        print(f"wrote net chaos report -> {args.json_out}")
    return 0 if ok else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.net:
        return _cmd_chaos_net(args)
    if args.fleet:
        return _cmd_chaos_fleet(args)
    if args.edge:
        return _cmd_chaos_edge(args)
    from repro.faults import (
        FaultPlan,
        check_equivalence,
        format_report,
    )
    from repro.obs.export import canonical_json, export_jsonl
    from repro.p2p.latency import LatencyModel
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name="chaos",
        traffic=TrafficConfig(duration=args.duration,
                              seed=args.workload_seed),
        observers={"live": LatencyModel()},
        seed=args.workload_seed)
    dataset = record_dataset(config)
    if args.rate is not None:
        plan = FaultPlan.uniform(seed=args.seed, probability=args.rate)
    else:
        plan = FaultPlan.seeded_random(seed=args.seed,
                                       max_rate=args.max_rate)
    from repro.core.node import ForerunnerConfig
    node_config = ForerunnerConfig(enable_jit=not args.no_jit)
    report = check_equivalence(dataset, plan, observer=args.observer,
                               config=node_config)
    print(format_report(report))
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(report.as_dict()))
            handle.write("\n")
        print(f"\nwrote degradation report -> {args.json_out}")
    if args.trace_out:
        from repro.sim.emulator import replay
        faulted = replay(dataset, args.observer, config=node_config,
                         fault_plan=plan)
        written = export_jsonl(
            args.trace_out, faulted.tracer, faulted.registry,
            meta={"dataset": dataset.name, "observer": args.observer,
                  "chaos_seed": args.seed,
                  "workload_seed": args.workload_seed,
                  "duration": args.duration})
        print(f"wrote {written} trace lines -> {args.trace_out}")
    return 0 if report.ok else 1


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    """``repro serve --shards N``: the same scenario through the
    fleet router and N per-replica edge servers (docs/FLEET.md).
    ``--net-profile`` additionally runs every inter-replica
    interaction over the deterministic wire plane."""
    from repro.edge import ScenarioConfig, build_scenario
    from repro.fleet import (
        FleetConfig,
        net_profile_config,
        run_fleet_serving,
    )
    from repro.obs.export import canonical_json
    from repro.p2p.latency import LatencyModel
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name="serve",
        traffic=TrafficConfig(duration=args.duration,
                              seed=args.workload_seed),
        observers={"live": LatencyModel()},
        seed=args.workload_seed)
    dataset = record_dataset(config)
    scenario = build_scenario(
        dataset,
        ScenarioConfig(seed=args.seed, load=args.load,
                       clients=args.clients,
                       deadline_units=args.deadline_units))
    profile = getattr(args, "net_profile", None)
    if profile is not None:
        fleet_config = net_profile_config(profile, shards=args.shards,
                                          seed=args.seed)
    else:
        fleet_config = FleetConfig(shards=args.shards)
    result = run_fleet_serving(
        dataset, scenario, fleet_config=fleet_config,
        observer=args.observer)
    summary = result.router.summary()
    print(f"fleet serve: dataset={dataset.name} seed={args.seed} "
          f"shards={args.shards} load={args.load}"
          + (f" net-profile={profile}" if profile else ""))
    print(f"  offered {result.offered} requests, goodput "
          f"{result.goodput:.3f}, {result.retries_scheduled} retries")
    print(f"  dispatched {summary['dispatched']} "
          f"(failovers {summary['failovers']}, accepted txs "
          f"{result.accepted_txs})")
    for replica_id in sorted(result.router.servers):
        server = result.router.servers[replica_id]
        print(f"  replica {replica_id}: accepted "
              f"{server.c_accepted.value}, served "
              f"{server.c_served.value}")
    lifecycle = result.supervisor.lifecycle_report()
    print(f"  shard sizes: {lifecycle['shard_sizes']} "
          f"(coordinator {lifecycle['coordinator']})")
    supervisor = result.supervisor
    if supervisor.wire is not None:
        wire = supervisor.wire.summary()
        print(f"  wire: sent {wire['sent']}, delivered "
              f"{wire['delivered']}, retries {wire['retries']}, "
              f"dedup {wire['dedup_dropped']}, partitions "
              f"{wire['partitions']}")
        supervisor.lease.assert_single_holder_per_term()
    if args.json_out:
        payload = {"schema": 1, "dataset": dataset.name,
                   "seed": args.seed, "shards": args.shards,
                   "load": args.load, "offered": result.offered,
                   "good": result.good,
                   "goodput": round(result.goodput, 6),
                   "accepted_txs": result.accepted_txs,
                   "router": summary, "lifecycle": lifecycle}
        if profile is not None:
            payload["net_profile"] = profile
        if supervisor.wire is not None:
            payload["wire"] = supervisor.wire.summary()
            payload["links"] = supervisor.wire.link_report()
            payload["lease"] = supervisor.lease.summary()
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(payload))
            handle.write("\n")
        print(f"\nwrote fleet serving report -> {args.json_out}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            for line in result.trace_lines:
                handle.write(line)
                handle.write("\n")
        print(f"wrote {len(result.trace_lines)} serving trace lines "
              f"-> {args.trace_out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.shards is not None:
        return _cmd_serve_fleet(args)
    from repro.core.node import ForerunnerConfig
    from repro.edge import (
        EdgeConfig,
        ScenarioConfig,
        build_report,
        build_scenario,
        format_report,
        run_serving,
    )
    from repro.obs.export import canonical_json
    from repro.p2p.latency import LatencyModel
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name="serve",
        traffic=TrafficConfig(duration=args.duration,
                              seed=args.workload_seed),
        observers={"live": LatencyModel()},
        seed=args.workload_seed)
    dataset = record_dataset(config)
    scenario = build_scenario(
        dataset,
        ScenarioConfig(seed=args.seed, load=args.load,
                       clients=args.clients,
                       deadline_units=args.deadline_units))
    edge_config = EdgeConfig(attach_witnesses=args.witness,
                             verify_responses=args.verify)
    node_config = ForerunnerConfig(enable_witness=args.witness)
    result = run_serving(dataset, scenario, edge_config=edge_config,
                         node_config=node_config,
                         observer=args.observer)
    report = build_report(result, meta={
        "seed": args.seed, "load": args.load,
        "workload_seed": args.workload_seed,
        "duration": args.duration, "clients": args.clients,
        "deadline_units": args.deadline_units,
        "witness": args.witness, "verify": args.verify})
    print(format_report(report))
    if args.verify and result.server.verify_mismatches:
        print(f"\nSERVING-EQUIVALENCE FAILED: "
              f"{result.server.verify_mismatches} mismatched responses")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(report))
            handle.write("\n")
        print(f"\nwrote serving report -> {args.json_out}")
    if args.trace_out:
        with open(args.trace_out, "w", encoding="utf-8") as handle:
            for line in result.trace_lines:
                handle.write(line)
                handle.write("\n")
        print(f"wrote {len(result.trace_lines)} serving trace lines "
              f"-> {args.trace_out}")
    return 1 if (args.verify and result.server.verify_mismatches) else 0


def _cmd_crash(args: argparse.Namespace) -> int:
    import shutil
    import tempfile

    from repro.obs.export import canonical_json
    from repro.p2p.latency import LatencyModel
    from repro.recovery import CRASH_SITES
    from repro.recovery.replay import RecoveryConfig, recovery_report
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.workloads.mixed import TrafficConfig

    if args.points == "all":
        sites = None
    else:
        sites = tuple(args.points.split(","))
        unknown = [site for site in sites if site not in CRASH_SITES]
        if unknown:
            print(f"unknown crash site(s): {', '.join(unknown)}")
            print("known sites:")
            for site in CRASH_SITES:
                print(f"  {site}")
            return 2
    config = DatasetConfig(
        name="crash",
        traffic=TrafficConfig(duration=args.duration,
                              seed=args.workload_seed),
        mean_block_interval=args.block_interval,
        observers={"live": LatencyModel()},
        seed=args.workload_seed)
    dataset = record_dataset(config)
    recovery = RecoveryConfig(
        snapshot_interval_blocks=args.snapshot_interval)
    store_root = tempfile.mkdtemp(prefix="repro-crash-")
    try:
        report = recovery_report(dataset, store_root, seed=args.seed,
                                 sites=sites, observer=args.observer,
                                 recovery=recovery)
    finally:
        shutil.rmtree(store_root, ignore_errors=True)
    print(f"crash: dataset={report['dataset']} seed={report['seed']} "
          f"({len(dataset.blocks)} blocks, {dataset.tx_count} txs)")
    print(f"clean digest sha256: {report['clean_digest_sha']}")
    print()
    for entry in report["sites"]:
        status = "CONVERGED" if entry["converged"] else "DIVERGED"
        detail = ""
        if entry["recoveries"]:
            info = entry["recoveries"][0]
            detail = (f" restored={info['blocks_restored']} "
                      f"verified={info['blocks_verified']} "
                      f"fresh={info['blocks_fresh']}")
            if info["torn_bytes_truncated"]:
                detail += f" torn={info['torn_bytes_truncated']}B"
        fired = "fired" if entry["fired"] else "NOT FIRED"
        print(f"  {entry['site']:<34} {fired:<9} "
              f"restarts={entry['restarts']} {status}{detail}")
    print()
    print("result: all crash points converged — recovered state, "
          "receipts and Table 2/3 columns byte-identical to the "
          "uninterrupted run" if report["converged"] else
          "result: DIVERGENCE — recovery is broken at one or more "
          "crash points")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            handle.write(canonical_json(report))
            handle.write("\n")
        print(f"\nwrote crash-recovery report -> {args.json_out}")
    return 0 if report["converged"] else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.node import ForerunnerConfig
    from repro.obs.export import canonical_json, export_witness_jsonl
    from repro.p2p.latency import LatencyModel
    from repro.sim.emulator import replay
    from repro.sim.recorder import DatasetConfig, record_dataset
    from repro.witness import (
        WitnessChecker,
        archive_witnesses,
        run_oracle,
    )
    from repro.workloads.mixed import TrafficConfig

    config = DatasetConfig(
        name="verify",
        traffic=TrafficConfig(duration=args.duration, seed=args.seed),
        observers={"live": LatencyModel()},
        seed=args.seed)
    dataset = record_dataset(config)
    node_config = ForerunnerConfig(enable_jit=not args.no_jit,
                                   enable_witness=True)
    run = replay(dataset, args.observer, config=node_config)
    node = run.forerunner_node

    # Every committed transaction must carry a witness.
    executed = sum(len(report.records) for report in node.reports)
    covered = len(node.witnesses) == executed

    # Reconstruct the chain from witnesses alone on a shadow copy of
    # genesis: constraint replay + delta application, no re-execution.
    by_block: dict = {}
    for witness in node.witnesses:
        by_block.setdefault(witness.block_number, []).append(witness)
    headers = {block.number: block.header
               for _, block in dataset.blocks}
    blocks = [(headers[report.block_number],
               by_block.get(report.block_number, []),
               report.state_root)
              for report in node.reports]
    checker = WitnessChecker(dataset.genesis_world.copy())
    validation = checker.validate_run(blocks)
    spec_ratio = validation.speculative_cost_ratio()
    cost_ok = spec_ratio <= args.max_cost_ratio

    oracle_seeds = [int(s) for s in args.oracle_seeds.split(",") if s]
    oracle_reports = [run_oracle(seed, cases=args.oracle_cases)
                      for seed in oracle_seeds]
    oracle_ok = all(report.ok for report in oracle_reports)
    archive = archive_witnesses(node.witnesses)
    ok = validation.ok and covered and cost_ok and oracle_ok

    if args.as_json:
        payload = {
            "dataset": dataset.name,
            "seed": args.seed,
            "duration": args.duration,
            "transactions": executed,
            "witness_coverage": covered,
            "validation": validation.as_dict(),
            "oracle": [report.as_dict() for report in oracle_reports],
            "archive": archive.as_dict(),
            "ok": ok,
        }
        print(canonical_json(payload))
    else:
        print(f"verify: {executed} txs / {len(node.reports)} blocks "
              f"(seed {args.seed})")
        print(f"  witness coverage: {len(node.witnesses)}/{executed} "
              f"{'OK' if covered else 'MISSING WITNESSES'}")
        print(f"  checker: {validation.constraints_checked} constraints "
              f"replayed, {validation.deltas_applied} deltas applied, "
              f"roots matched {validation.roots_matched}/"
              f"{validation.blocks_checked}")
        print(f"  checker cost: {validation.checker_cost_units:,} of "
              f"{validation.original_cost_units:,} execution units "
              f"({validation.cost_ratio():.2%} overall, "
              f"{spec_ratio:.2%} on the "
              f"{validation.speculative_witnesses} speculative txs; "
              f"bound {args.max_cost_ratio:.0%} "
              f"{'OK' if cost_ok else 'EXCEEDED'})")
        print(f"  archive: {archive.witnesses} witnesses / "
              f"{archive.blocks} block batches, "
              f"{archive.raw_bytes:,} -> {archive.compressed_bytes:,} "
              f"bytes ({archive.ratio():.1%} of raw)")
        for failure in validation.failures[:10]:
            print(f"  FAILURE {failure.as_dict()}")
        for report in oracle_reports:
            cats = "/".join(f"{k}:{v}" for k, v in
                            sorted(report.by_category.items()))
            print(f"  oracle seed {report.seed}: {report.cases} cases "
                  f"({cats}), jit {report.jit_compiled} compiled / "
                  f"{report.jit_aborts} aborted, "
                  f"{report.evm_cross_checks} interpreter cross-checks, "
                  f"{len(report.divergences)} divergences")
            for divergence in report.divergences[:5]:
                print(f"    DIVERGENCE {canonical_json(divergence)}")
        print(f"  result: {'OK' if ok else 'FAILED'}")
    if args.witness_out:
        written = export_witness_jsonl(
            args.witness_out, node.witnesses,
            meta={"dataset": dataset.name, "seed": args.seed,
                  "duration": args.duration})
        if not args.as_json:
            print(f"  wrote {written} witness lines -> "
                  f"{args.witness_out}")
    return 0 if ok else 1


def _cmd_history(args: argparse.Namespace) -> int:
    from repro.bench.history import simulate_block_history

    points = simulate_block_history(args.months)
    print(f"{'month':>5}  {'gas limit':>12}  {'gas used':>12}  util")
    for point in points[::args.step]:
        print(f"{point.month:>5}  {point.gas_limit:>11,.0f}k "
              f"{point.gas_used:>12,.0f}k  "
              f"{point.gas_used / point.gas_limit:>4.0%}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse CLI (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Forerunner (SOSP 2021) reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser(
        "simulate", help="run the DiCE evaluation end to end")
    simulate.add_argument("--duration", type=float, default=150.0,
                          help="seconds of simulated traffic")
    simulate.add_argument("--seed", type=int, default=2021)
    simulate.set_defaults(func=_cmd_simulate)

    record = sub.add_parser(
        "record", help="record a traffic period to a JSON dataset")
    record.add_argument("--out", required=True)
    record.add_argument("--name", default="dataset")
    record.add_argument("--duration", type=float, default=120.0)
    record.add_argument("--seed", type=int, default=2021)
    record.set_defaults(func=_cmd_record)

    replay_cmd = sub.add_parser(
        "replay", help="replay a recorded dataset through the nodes")
    replay_cmd.add_argument("dataset", help="path to a recorded .json")
    replay_cmd.add_argument("--observer", default="live")
    replay_cmd.set_defaults(func=_cmd_replay)

    compile_cmd = sub.add_parser(
        "compile", help="compile a minisol source file")
    compile_cmd.add_argument("source", help="path to .sol-like source")
    compile_cmd.add_argument("--disassemble", action="store_true")
    compile_cmd.set_defaults(func=_cmd_compile)

    synthesize = sub.add_parser(
        "synthesize",
        help="print the AP synthesized for the paper's Tx_e")
    synthesize.add_argument("--timestamp", type=int, default=3990462)
    synthesize.add_argument(
        "--merged", action="store_true",
        help="print the FC1+FC4 merged AP tree (Figure 10)")
    synthesize.set_defaults(func=_cmd_synthesize)

    report = sub.add_parser(
        "report",
        help="replay a workload and print the obs stage breakdown")
    report.add_argument("--duration", type=float, default=60.0,
                        help="seconds of simulated traffic")
    report.add_argument("--seed", type=int, default=2021)
    report.add_argument("--observer", default="live")
    report.add_argument("--metrics", action="store_true",
                        help="print the deterministic metrics snapshot")
    report.add_argument("--sched", action="store_true",
                        help="print the scheduler section: lane "
                             "utilization, conflict/abort rates, "
                             "admission drop/defer counters")
    report.add_argument("--lanes", type=int, default=None,
                        help="parallel execution lanes for block "
                             "processing (commits stay byte-identical)")
    report.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as canonical JSON "
                             "(byte-identical for a given seed)")
    report.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the canonical JSONL trace here")
    report.add_argument("--no-jit", action="store_true",
                        help="disable the specialization compile tier "
                             "(docs/COMPILER.md); commitments must stay "
                             "byte-identical either way")
    report.set_defaults(func=_cmd_report)

    chaos = sub.add_parser(
        "chaos",
        help="replay a workload under a seeded fault plan and verify "
             "graceful degradation (state roots stay byte-identical)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="fault-plan seed (the chaos draw)")
    chaos.add_argument("--duration", type=float, default=30.0,
                       help="seconds of simulated traffic")
    chaos.add_argument("--workload-seed", type=int, default=2021,
                       help="traffic generator seed")
    chaos.add_argument("--observer", default="live")
    chaos.add_argument("--rate", type=float, default=None,
                       help="flat fault probability at every site "
                            "(default: a seeded random plan)")
    chaos.add_argument("--max-rate", type=float, default=0.3,
                       help="per-site probability cap of the random plan")
    chaos.add_argument("--json-out", default=None, metavar="PATH",
                       help="write the degradation report as canonical "
                            "JSON (byte-identical for a given seed)")
    chaos.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the faulted run's canonical JSONL "
                            "obs trace here")
    chaos.add_argument("--no-jit", action="store_true",
                       help="disable the specialization compile tier "
                            "(docs/COMPILER.md); the degradation report "
                            "must stay byte-identical either way")
    chaos.add_argument("--edge", action="store_true",
                       help="sweep the edge.* serving fault sites "
                            "instead (docs/EDGE.md): each site at "
                            "--rate (default 1.0) through a serving "
                            "scenario, asserting node commitments are "
                            "byte-identical to the fault-free run")
    chaos.add_argument("--fleet", action="store_true",
                       help="sweep the fleet.* lifecycle/routing fault "
                            "sites instead (docs/FLEET.md): replica "
                            "crashes, torn handoffs, route flaps and "
                            "stale shard maps at --rate (default 0.2), "
                            "asserting fleet commitments stay "
                            "byte-identical to the fault-free run")
    chaos.add_argument("--shards", type=int, default=4,
                       help="fleet replica count for --fleet / --net")
    chaos.add_argument("--net", action="store_true",
                       help="sweep the net.* wire-plane fault sites "
                            "instead (docs/FLEET.md): drops, "
                            "duplicates, reorders, delays and "
                            "partitions at --rate (default 1.0) on "
                            "every inter-replica link, asserting "
                            "commitments stay byte-identical to the "
                            "clean wire run and two same-seed runs "
                            "byte-identical to each other")
    chaos.set_defaults(func=_cmd_chaos)

    serve = sub.add_parser(
        "serve",
        help="run a seeded client load scenario against the JSON-RPC "
             "serving edge and print the canonical serving report "
             "(docs/EDGE.md)")
    serve.add_argument("--seed", type=int, default=0,
                       help="scenario seed (client arrival + jitter "
                            "streams)")
    serve.add_argument("--load", type=float, default=1.0,
                       help="offered-load multiplier (1.0 = calibrated "
                            "base rate; 5.0 = heavy overload)")
    serve.add_argument("--duration", type=float, default=30.0,
                       help="seconds of simulated traffic")
    serve.add_argument("--workload-seed", type=int, default=2021,
                       help="traffic generator seed")
    serve.add_argument("--observer", default="live")
    serve.add_argument("--clients", type=int, default=6,
                       help="simulated client count")
    serve.add_argument("--deadline-units", type=int, default=120_000,
                       help="per-request cost-unit deadline budget")
    serve.add_argument("--witness", action="store_true",
                       help="record execution witnesses and attach "
                            "digest/body to receipt and trace responses")
    serve.add_argument("--verify", action="store_true",
                       help="cross-check every fast-path eth_call "
                            "response against fresh plain execution "
                            "(the serving-equivalence oracle)")
    serve.add_argument("--json-out", default=None, metavar="PATH",
                       help="write the canonical serving report JSON")
    serve.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the byte-stable serving trace "
                            "(one canonical JSON line per frame)")
    serve.add_argument("--shards", type=int, default=None,
                       help="serve through an N-replica fleet (shard "
                            "map routing + per-replica edge servers; "
                            "docs/FLEET.md) instead of a single node")
    serve.add_argument("--net-profile", default=None,
                       choices=["clean", "lossy", "partition"],
                       help="run the fleet over the deterministic wire "
                            "plane under the named network profile "
                            "(requires --shards): clean framing, 1%% "
                            "loss/duplication/reorder, or periodic "
                            "coordinator partitions with lease "
                            "re-election")
    serve.set_defaults(func=_cmd_serve)

    crash = sub.add_parser(
        "crash",
        help="kill the node at every durability boundary and verify "
             "restart replay converges byte-identically")
    crash.add_argument("--seed", type=int, default=0,
                       help="crash seed; doubles as the occurrence "
                            "index (seed N dies at each site's N-th "
                            "evaluation)")
    crash.add_argument("--points", default="all", metavar="SITES",
                       help="comma-separated recovery.* sites, or "
                            "'all' (the default) for the full matrix")
    crash.add_argument("--duration", type=float, default=6.0,
                       help="seconds of simulated traffic")
    crash.add_argument("--workload-seed", type=int, default=2021,
                       help="traffic generator seed")
    crash.add_argument("--block-interval", type=float, default=6.0,
                       help="mean simulated block interval (smaller = "
                            "more blocks = later crash points)")
    crash.add_argument("--observer", default="live")
    crash.add_argument("--snapshot-interval", type=int, default=1,
                       help="snapshot every N committed blocks "
                            "(0 disables snapshots)")
    crash.add_argument("--json-out", default=None, metavar="PATH",
                       help="write the crash-recovery report as "
                            "canonical JSON (byte-identical for a "
                            "given seed; contains no paths)")
    crash.set_defaults(func=_cmd_crash)

    verify = sub.add_parser(
        "verify",
        help="replay a workload with witnesses on, re-derive every "
             "result by constraint replay + delta application (no "
             "re-execution), and run the differential conformance "
             "oracle")
    verify.add_argument("--duration", type=float, default=45.0,
                        help="seconds of simulated traffic")
    verify.add_argument("--seed", type=int, default=2021)
    verify.add_argument("--observer", default="live")
    verify.add_argument("--oracle-seeds", default="0,1,2",
                        metavar="S,S,...",
                        help="comma-separated conformance oracle seeds")
    verify.add_argument("--oracle-cases", type=int, default=200,
                        help="generated cases per oracle seed (the "
                             "directed edge cases always run first)")
    verify.add_argument("--max-cost-ratio", type=float, default=0.2,
                        help="maximum checker/execution cost-unit "
                             "ratio on the speculative (satisfied) "
                             "slice")
    verify.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the verification report as "
                             "canonical JSON (byte-identical for a "
                             "given seed)")
    verify.add_argument("--witness-out", default=None, metavar="PATH",
                        help="write the canonical witness JSONL "
                             "artifact here (two runs produce "
                             "byte-identical files)")
    verify.add_argument("--no-jit", action="store_true",
                        help="disable the specialization compile tier; "
                             "witnesses and roots must stay "
                             "byte-identical either way")
    verify.set_defaults(func=_cmd_verify)

    history = sub.add_parser(
        "history", help="print the Figure-2 saturation series")
    history.add_argument("--months", type=int, default=66)
    history.add_argument("--step", type=int, default=3)
    history.set_defaults(func=_cmd_history)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
