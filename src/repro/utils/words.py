"""256-bit word arithmetic helpers.

EVM machine words are 256-bit unsigned integers.  Python integers are
arbitrary precision, so every arithmetic result must be reduced modulo
2**256; signed operations reinterpret the word in two's complement.
"""

from __future__ import annotations

from repro.constants import SIGN_BIT, UINT256_MOD


def u256(value: int) -> int:
    """Reduce ``value`` into the unsigned 256-bit range."""
    return value % UINT256_MOD


def to_signed(value: int) -> int:
    """Reinterpret an unsigned word as a two's-complement signed integer."""
    if value >= SIGN_BIT:
        return value - UINT256_MOD
    return value


def to_unsigned(value: int) -> int:
    """Map a signed integer back onto the unsigned 256-bit range."""
    return value % UINT256_MOD


def bytes_to_int(data: bytes) -> int:
    """Interpret ``data`` as a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def int_to_bytes32(value: int) -> bytes:
    """Encode an unsigned word as exactly 32 big-endian bytes."""
    return u256(value).to_bytes(32, "big")


def int_to_bytes(value: int, size: int) -> bytes:
    """Encode ``value`` as ``size`` big-endian bytes (truncating high bits)."""
    return (value % (1 << (8 * size))).to_bytes(size, "big")
