"""Small shared helpers: hashing, word arithmetic, deterministic RNG."""

from repro.utils.words import (
    to_unsigned,
    to_signed,
    u256,
    bytes_to_int,
    int_to_bytes32,
    int_to_bytes,
)
from repro.utils.hashing import keccak, keccak_int, hash_words

__all__ = [
    "to_unsigned",
    "to_signed",
    "u256",
    "bytes_to_int",
    "int_to_bytes32",
    "int_to_bytes",
    "keccak",
    "keccak_int",
    "hash_words",
]
