"""Hashing primitives.

The reproduction does not need byte-for-byte Ethereum hash compatibility
(no external clients verify our roots); it needs a *deterministic,
collision-resistant* commitment.  We therefore use SHA3-256 from the
standard library and call the helper ``keccak`` to keep the code aligned
with the paper's terminology (SHA3/keccak-derived storage slots, Merkle
roots).  This substitution is recorded in DESIGN.md.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.utils.words import bytes_to_int, int_to_bytes32


def keccak(data: bytes) -> bytes:
    """Hash ``data`` to 32 bytes."""
    return hashlib.sha3_256(data).digest()


def keccak_int(data: bytes) -> int:
    """Hash ``data`` and return the digest as an unsigned word."""
    return bytes_to_int(keccak(data))


def hash_words(words: Iterable[int]) -> int:
    """Hash a sequence of 256-bit words (used for trie/commitment nodes)."""
    buf = b"".join(int_to_bytes32(w) for w in words)
    return keccak_int(buf)
