"""Protocol-level constants used throughout the reproduction."""

from __future__ import annotations

#: Width of an EVM machine word in bits.
WORD_BITS = 256

#: Modulus for 256-bit unsigned arithmetic.
UINT256_MAX = 2**256 - 1
UINT256_MOD = 2**256

#: Sign bit for two's-complement interpretation of a word.
SIGN_BIT = 2**255

#: Maximum EVM stack depth (yellow paper).
STACK_LIMIT = 1024

#: Maximum call depth for internal message calls.
CALL_DEPTH_LIMIT = 1024

#: Number of bytes in an address.  We use full 32-byte identifiers
#: internally (addresses are opaque integers) but keep the constant for
#: ABI encoding decisions.
ADDRESS_BYTES = 20

#: Default block gas limit, roughly the 2021 Ethereum mainnet value
#: (Figure 2 of the paper shows the limit near 15M gas in 2021).
DEFAULT_BLOCK_GAS_LIMIT = 15_000_000

#: Default per-transaction gas limit used by workload generators.
DEFAULT_TX_GAS_LIMIT = 500_000

#: Flat intrinsic gas charged for any transaction (yellow paper G_transaction).
INTRINSIC_GAS = 21_000

#: Gas charged per non-zero byte of transaction data.
TX_DATA_NONZERO_GAS = 16
#: Gas charged per zero byte of transaction data.
TX_DATA_ZERO_GAS = 4

#: Target mean seconds between blocks (Ethereum PoW ~13s).
DEFAULT_BLOCK_INTERVAL = 13.0

#: PriceFeed round length in seconds (paper §4.2: 5-minute rounds).
ORACLE_ROUND_SECONDS = 300
