"""Containment, retry, and circuit breaking for speculative stages.

The guard layer is what turns "an exception somewhere in the
speculation machinery" into "this transaction runs at baseline speed".
Three cooperating pieces:

* :class:`SpeculationGuard.run` — wraps any speculative stage; every
  exception (including injected ones) is contained, counted under the
  ``guard.*`` obs scope, and converted into the stage's fallback value.
* :class:`RetryPolicy` — transient storage faults
  (:class:`repro.errors.TransientStorageError`) are retried with
  exponential *cost-unit* backoff before the guard gives up; the backoff
  is charged to the stage's logical cost so stalls stay deterministic.
* :class:`CircuitBreaker` — per-contract: after N consecutive faulted
  speculations for a contract the breaker opens and speculation for that
  contract is skipped for a cool-down measured in cost units; a
  half-open probe admits one speculation, closing on success or
  re-opening with doubled cool-down on failure.

All "time" is the deterministic cost-unit clock supplied by the node
(total logical speculation cost), never the wall clock, so breaker
transitions are bitwise reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import TransientStorageError
from repro.obs.registry import MetricsRegistry, get_registry

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """Retry transient storage faults with exponential cost backoff."""

    max_attempts: int = 3
    #: Cost units charged for the first retry's backoff.
    base_backoff_units: int = 5_000
    backoff_factor: float = 2.0

    def backoff_units(self, attempt: int) -> int:
        """Backoff charged before retry ``attempt`` (1-based)."""
        return int(self.base_backoff_units
                   * (self.backoff_factor ** (attempt - 1)))


@dataclass
class BreakerTransition:
    """One recorded breaker state change (cost-unit timestamped)."""

    contract: int
    old_state: str
    new_state: str
    at_cost: int

    def as_dict(self) -> Dict[str, Any]:
        return {"contract": f"{self.contract:#x}",
                "from": self.old_state, "to": self.new_state,
                "at_cost": self.at_cost}


class CircuitBreaker:
    """Per-contract breaker over consecutive speculation faults.

    The clock is any monotone cost-unit counter (the node wires it to
    the speculator's total logical cost).  Cool-downs double on every
    consecutive re-open and reset once the breaker closes again.
    """

    def __init__(self, clock: Callable[[], int],
                 threshold: int = 3,
                 cooldown_units: int = 10_000_000,
                 max_backoff_doublings: int = 6,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.clock = clock
        self.threshold = threshold
        self.cooldown_units = cooldown_units
        self.max_backoff_doublings = max_backoff_doublings
        obs = (registry or get_registry()).scope("breaker")
        self.c_opened = obs.counter("opened")
        self.c_closed = obs.counter("closed")
        self.c_half_open = obs.counter("half_open")
        self.c_skipped = obs.counter("skipped")
        self.g_open = obs.gauge("open_contracts")
        self._consecutive: Dict[int, int] = {}
        self._state: Dict[int, str] = {}
        self._open_until: Dict[int, int] = {}
        self._doublings: Dict[int, int] = {}
        #: Contract -> cost-unit time its half-open probe was admitted.
        #: The half-open window admits exactly *one* probe speculation;
        #: the rest of the batch keeps being skipped until the probe's
        #: outcome is recorded, so one half-open window can never burn a
        #: whole admission cycle on a still-broken contract.  A probe
        #: whose outcome never arrives (its request was deferred and
        #: later dropped) expires after another cool-down and a fresh
        #: probe is admitted — no contract can get stuck half-open.
        self._probe_inflight: Dict[int, int] = {}
        self.transitions: List[BreakerTransition] = []

    # -- queries ---------------------------------------------------------

    def state(self, contract: int) -> str:
        return self._state.get(contract, STATE_CLOSED)

    def allows(self, contract: int) -> bool:
        """May we speculate for ``contract`` now?

        While open, returns False (and counts the skip) until the
        cool-down expires; the first query after expiry transitions to
        half-open and admits a single probe speculation.  Further
        queries while that probe is in flight are skipped — the probe's
        outcome alone decides whether the breaker closes or re-opens.
        """
        state = self.state(contract)
        if state == STATE_CLOSED:
            return True
        if state == STATE_HALF_OPEN:
            admitted_at = self._probe_inflight.get(contract)
            if admitted_at is not None and \
                    self.clock() < admitted_at + self.cooldown_units:
                self.c_skipped.inc()
                return False
            self._probe_inflight[contract] = self.clock()
            return True
        if self.clock() >= self._open_until[contract]:
            self._transition(contract, STATE_HALF_OPEN)
            self.c_half_open.inc()
            self._probe_inflight[contract] = self.clock()
            return True
        self.c_skipped.inc()
        return False

    # -- outcomes --------------------------------------------------------

    def record_success(self, contract: int) -> None:
        """A speculation for ``contract`` completed cleanly.

        A successful half-open probe closes the breaker and resets the
        strike counter *and* the cool-down doubling in the same step —
        a recovered contract starts from a clean slate and needs a full
        fresh streak of ``threshold`` faults to re-open, not one.
        """
        self._consecutive[contract] = 0
        self._probe_inflight.pop(contract, None)
        if self.state(contract) == STATE_HALF_OPEN:
            self._doublings[contract] = 0
            self._transition(contract, STATE_CLOSED)
            self.g_open.add(-1)
            self.c_closed.inc()

    def record_fault(self, contract: int) -> None:
        state = self.state(contract)
        if state == STATE_HALF_OPEN:
            # Probe failed: re-open with doubled cool-down.
            self._probe_inflight.pop(contract, None)
            self._open(contract, reopen=True)
            return
        if state == STATE_OPEN:
            return
        count = self._consecutive.get(contract, 0) + 1
        self._consecutive[contract] = count
        if count >= self.threshold:
            self._open(contract, reopen=False)

    # -- internals -------------------------------------------------------

    def _open(self, contract: int, reopen: bool) -> None:
        doublings = self._doublings.get(contract, 0)
        if reopen:
            doublings = min(doublings + 1, self.max_backoff_doublings)
        else:
            self.g_open.add(1)
        self._doublings[contract] = doublings
        cooldown = self.cooldown_units * (2 ** doublings)
        self._open_until[contract] = self.clock() + cooldown
        self._consecutive[contract] = 0
        self._transition(contract, STATE_OPEN)
        self.c_opened.inc()

    def _transition(self, contract: int, new_state: str) -> None:
        old = self.state(contract)
        self._state[contract] = new_state
        self.transitions.append(BreakerTransition(
            contract=contract, old_state=old, new_state=new_state,
            at_cost=self.clock()))

    def summary(self) -> Dict[str, Any]:
        return {
            "opened": self.c_opened.value,
            "closed": self.c_closed.value,
            "half_open_probes": self.c_half_open.value,
            "skipped_speculations": self.c_skipped.value,
            "transitions": [t.as_dict() for t in self.transitions],
        }


class SpeculationGuard:
    """Contains every speculative-stage exception behind one interface.

    ``run(stage, fn, fallback=..., contract=...)`` executes ``fn``; on
    any exception the guard counts the containment (total, per stage,
    and injected-vs-unexpected), informs the per-contract breaker, and
    returns the fallback value.  Transient storage faults are retried
    per the :class:`RetryPolicy` first, with backoff charged through
    ``charge_cost`` so retry stalls appear in the deterministic cost
    ledger.

    The clock starts as a zero lambda and is re-pointed by the node at
    the speculator's logical-cost counter once both exist.
    """

    def __init__(self,
                 retry: Optional[RetryPolicy] = None,
                 breaker: Optional[CircuitBreaker] = None,
                 clock: Optional[Callable[[], int]] = None,
                 registry: Optional[MetricsRegistry] = None,
                 charge_cost: Optional[Callable[[int], None]] = None
                 ) -> None:
        self.clock = clock or (lambda: 0)
        self.retry = retry or RetryPolicy()
        registry = registry or get_registry()
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            clock=lambda: self.clock(), registry=registry)
        self.charge_cost = charge_cost or (lambda units: None)
        obs = registry.scope("guard")
        self._obs = obs
        self.c_contained = obs.counter("contained")
        self.c_injected = obs.counter("contained_injected")
        self.c_unexpected = obs.counter("contained_unexpected")
        self.c_retries = obs.counter("storage_retries")
        self.c_retry_exhausted = obs.counter("storage_retries_exhausted")
        self.c_fallbacks = obs.counter("fallbacks")
        self._stage_contained: Dict[str, Any] = {}
        #: Description of the most recently contained exception (for
        #: failure records) and whether it was an injected fault.
        self.last_error: Optional[str] = None
        self.last_injected: bool = False

    def _stage_counter(self, stage: str):
        counter = self._stage_contained.get(stage)
        if counter is None:
            counter = self._obs.counter(f"stage.{stage}.contained")
            self._stage_contained[stage] = counter
        return counter

    def run(self, stage: str, fn: Callable[[], Any], *,
            fallback: Any = None,
            contract: Optional[int] = None,
            count_fallback: bool = True) -> Tuple[Any, bool]:
        """Execute ``fn``; return ``(result, faulted)``.

        ``faulted`` is True when the fallback value was substituted.
        """
        attempt = 1
        while True:
            try:
                result = fn()
            except TransientStorageError as exc:
                if attempt < self.retry.max_attempts:
                    self.c_retries.inc()
                    self.charge_cost(self.retry.backoff_units(attempt))
                    attempt += 1
                    continue
                self.c_retry_exhausted.inc()
                self._contain(stage, exc, injected=True,
                              contract=contract,
                              count_fallback=count_fallback)
                return fallback, True
            except Exception as exc:  # noqa: BLE001 - containment is the point
                injected = getattr(exc, "site", None) is not None
                self._contain(stage, exc, injected=injected,
                              contract=contract,
                              count_fallback=count_fallback)
                return fallback, True
            if contract is not None:
                self.breaker.record_success(contract)
            return result, False

    def _contain(self, stage: str, exc: BaseException, *,
                 injected: bool, contract: Optional[int],
                 count_fallback: bool) -> None:
        # Injected faults carry their site: count containment under it,
        # so the per-stage breakdown mirrors the fault plan's sites.
        label = getattr(exc, "site", None) or stage
        self.last_error = f"{type(exc).__name__}: {exc}"
        self.last_injected = injected
        self.c_contained.inc()
        self._stage_counter(label).inc()
        if injected:
            self.c_injected.inc()
        else:
            self.c_unexpected.inc()
        if count_fallback:
            self.c_fallbacks.inc()
        if contract is not None:
            self.breaker.record_fault(contract)

    def summary(self) -> Dict[str, Any]:
        stages = {stage: counter.value
                  for stage, counter in sorted(self._stage_contained.items())}
        return {
            "contained": self.c_contained.value,
            "contained_injected": self.c_injected.value,
            "contained_unexpected": self.c_unexpected.value,
            "storage_retries": self.c_retries.value,
            "storage_retries_exhausted": self.c_retry_exhausted.value,
            "fallbacks": self.c_fallbacks.value,
            "by_stage": stages,
            "breaker": self.breaker.summary(),
        }
