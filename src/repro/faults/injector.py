"""Deterministic, seed-driven fault injection for the speculation pipeline.

Forerunner's safety property (paper §2, §7) is that speculation is pure
acceleration: a failed, corrupted, or missing speculative artifact must
never change committed state — the node simply falls back to baseline
execution.  This module provides the machinery to *exercise* that
property on demand:

* a :class:`FaultPlan` — a declarative schedule of :class:`FaultRule`\\ s
  (injection site, fault kind, seeded probability, optional trigger
  predicate / contract filter / firing window);
* a :class:`FaultInjector` that components consult at named injection
  sites and that draws **per-site RNG streams**, so the decision made at
  one site can never perturb the draws of another — two runs with the
  same plan make bitwise-identical decisions regardless of how sites
  interleave.

Everything is denominated in the reproduction's deterministic
currencies: probabilities are drawn from seeded streams, stalls are
cost units, reorder delays are simulated seconds.  No wall clock.

Fault kinds
-----------

========== ==================================================================
``raise``   raise :class:`repro.errors.InjectedFault` at the site
``corrupt`` corrupt a memo/AP payload (shortcut key or guard branch key);
            corruption is *detectable by construction* — every memoized
            payload is only ever applied under an exact-match key, so a
            corrupted key degrades to a miss or a constraint violation,
            never to wrong committed state
``drop``    drop a gossip message (the observer never hears the tx)
``duplicate`` deliver a gossip message twice (dedup at the pool absorbs it)
``reorder`` delay a gossip message by ``magnitude`` simulated seconds
``storage_error`` raise :class:`repro.errors.TransientStorageError` on a
            cold simulated-disk read (retryable; see the guard's policy)
``stall``   stall a speculation worker for ``magnitude`` cost units
========== ==================================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import InjectedFault, TransientStorageError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.utils.hashing import hash_words, keccak_int

# -- fault kinds -----------------------------------------------------------

KIND_RAISE = "raise"
KIND_CORRUPT = "corrupt"
KIND_DROP = "drop"
KIND_DUPLICATE = "duplicate"
KIND_REORDER = "reorder"
KIND_STORAGE = "storage_error"
KIND_STALL = "stall"
#: Crash-recovery kinds (:mod:`repro.recovery.crashpoints`): ``crash``
#: kills the simulated process at the site; ``torn`` kills it midway
#: through a durable write, leaving a partial record on disk.  Their
#: sites are custom ``recovery.*`` rules and deliberately *not* part of
#: :data:`SITES`, so generic chaos plans (``FaultPlan.uniform``) never
#: raise an uncontainable :class:`repro.errors.SimulatedCrash`.
KIND_CRASH = "crash"
KIND_TORN = "torn"

KINDS = (KIND_RAISE, KIND_CORRUPT, KIND_DROP, KIND_DUPLICATE,
         KIND_REORDER, KIND_STORAGE, KIND_STALL, KIND_CRASH, KIND_TORN)

#: Default worker stall, in cost units (~0.1 s of simulated worker time).
DEFAULT_STALL_UNITS = 2_000_000
#: Default gossip reorder delay, in simulated seconds.
DEFAULT_REORDER_SECONDS = 6.0

#: Injection sites and the fault kind a generic plan uses there.  Sites
#: cover every speculative component: the predictor, all speculator
#: stages, the memo table, the prefix cache, the prefetcher, the gossip
#: delivery path, the simulated worker pool, simulated storage reads,
#: and the critical-path AP dispatch (whose containment is the node's
#: last line of defence).
SITE_KINDS: Dict[str, str] = {
    "predictor.predict": KIND_RAISE,
    "speculator.materialize_prefix": KIND_RAISE,
    "speculator.pre_execute": KIND_RAISE,
    "speculator.synthesize": KIND_RAISE,
    "speculator.merge": KIND_RAISE,
    "memoize.build": KIND_RAISE,
    "memoize.corrupt": KIND_CORRUPT,
    "ap.corrupt": KIND_CORRUPT,
    "prefix_cache.lookup": KIND_RAISE,
    "prefix_cache.store": KIND_RAISE,
    "prefetcher.prefetch": KIND_RAISE,
    "gossip.deliver": KIND_DROP,
    "worker.stall": KIND_STALL,
    "storage.read": KIND_STORAGE,
    "accelerator.execute": KIND_RAISE,
    # Concurrency scheduler (repro.sched).  Containments: an admission
    # fault skips the speculation cycle; a fork fault aborts that
    # transaction to the serial path; a conflict-scan fault aborts the
    # whole block to serial; a commit fault reverts the partial apply
    # and re-executes serially; a prefetch-queue fault drops the
    # request (colder reads, same values).  None of them can change
    # committed state.
    "sched.admit": KIND_RAISE,
    "sched.fork": KIND_RAISE,
    "sched.conflict_scan": KIND_RAISE,
    "sched.commit": KIND_RAISE,
    "sched.prefetch_queue": KIND_DROP,
}

#: Like the ``recovery.*`` crash sites, the serving edge's ``edge.*``
#: sites (:data:`repro.edge.faults.EDGE_SITES`) are deliberately not
#: listed here: they only fire inside a serving scenario, which generic
#: pipeline chaos plans never run (a plain replay would leave them
#: unevaluated and the per-site degradation sweep would see zero
#: fires).  Build edge plans with
#: :func:`repro.edge.faults.edge_fault_plan` instead.
SITES: Tuple[str, ...] = tuple(SITE_KINDS)

#: Sites that, at 100% probability, disable speculation entirely (the
#: degradation sweep asserts speedup collapses to ~1.0 there; the other
#: sites only shave the acceleration).
LETHAL_SITES: Tuple[str, ...] = (
    "predictor.predict",
    "speculator.materialize_prefix",
    "speculator.pre_execute",
    "speculator.synthesize",
    "speculator.merge",
    "gossip.deliver",
    "storage.read",
    "sched.admit",
)


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault schedule.

    ``predicate`` (if given) receives the site's keyword context (tx
    hash, contract, ...) and must return True for the rule to be
    eligible; ``contract`` is a shorthand predicate on the context's
    ``contract`` key.  ``after``/``max_fires`` bound the firing window
    in per-site evaluation counts.
    """

    site: str
    kind: str
    probability: float = 1.0
    contract: Optional[int] = None
    predicate: Optional[Callable[[dict], bool]] = None
    #: Skip the first ``after`` evaluations of this site.
    after: int = 0
    #: Fire at most this many times (None = unlimited).
    max_fires: Optional[int] = None
    #: Kind-specific magnitude: cost units for ``stall``, simulated
    #: seconds for ``reorder``.  0 selects the kind's default.
    magnitude: float = 0.0

    def stall_units(self) -> int:
        return int(self.magnitude) if self.magnitude else DEFAULT_STALL_UNITS

    def reorder_seconds(self) -> float:
        return self.magnitude if self.magnitude else DEFAULT_REORDER_SECONDS


@dataclass
class FaultPlan:
    """A declarative, seeded fault schedule."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    @classmethod
    def uniform(cls, seed: int, probability: float,
                sites: Optional[Tuple[str, ...]] = None,
                magnitude: float = 0.0) -> "FaultPlan":
        """One rule per site at a flat probability (default kind)."""
        chosen = sites if sites is not None else SITES
        rules = tuple(
            FaultRule(site=site, kind=SITE_KINDS[site],
                      probability=probability, magnitude=magnitude)
            for site in chosen)
        return cls(seed=seed, rules=rules)

    @classmethod
    def seeded_random(cls, seed: int, max_rate: float = 0.3,
                      sites: Optional[Tuple[str, ...]] = None
                      ) -> "FaultPlan":
        """A random plan drawn from ``seed``: a seeded subset of sites,
        each with a probability in (0, max_rate].  The same seed always
        produces the same plan."""
        rng = random.Random(hash_words((seed, 0xFA017)))
        chosen = sites if sites is not None else SITES
        rules: List[FaultRule] = []
        for site in chosen:
            if rng.random() >= 0.7:
                continue
            probability = round(rng.uniform(0.01, max_rate), 4)
            kind = SITE_KINDS[site]
            if site == "gossip.deliver":
                kind = rng.choice((KIND_DROP, KIND_DUPLICATE, KIND_REORDER))
            rules.append(FaultRule(site=site, kind=kind,
                                   probability=probability))
        if not rules:  # degenerate draw: fall back to one mild rule
            rules.append(FaultRule(site="speculator.pre_execute",
                                   kind=KIND_RAISE,
                                   probability=round(max_rate / 2, 4)))
        return cls(seed=seed, rules=tuple(rules))

    def sites(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(rule.site for rule in self.rules))

    def describe(self) -> List[str]:
        """Deterministic one-line-per-rule description."""
        lines = []
        for rule in self.rules:
            extra = ""
            if rule.magnitude:
                extra += f" magnitude={rule.magnitude:g}"
            if rule.contract is not None:
                extra += f" contract={rule.contract:#x}"
            if rule.after:
                extra += f" after={rule.after}"
            if rule.max_fires is not None:
                extra += f" max_fires={rule.max_fires}"
            lines.append(f"{rule.site}: {rule.kind} "
                         f"p={rule.probability:g}{extra}")
        return lines


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at named injection sites.

    Each site owns an independent RNG stream seeded from
    ``(plan.seed, site)``, so draws depend only on the per-site
    evaluation sequence — never on how sites interleave.  All counters
    live under the ``faults.*`` obs scope and are pre-registered for
    every known site, so two runs of the same plan produce identical
    metric snapshots.
    """

    enabled = True

    def __init__(self, plan: FaultPlan,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.plan = plan
        registry = registry or get_registry()
        obs = registry.scope("faults")
        self._obs = obs
        self.c_evaluated = obs.counter("evaluated")
        self.c_fired = obs.counter("fired")
        self._site_evaluated = {
            site: obs.counter(f"site.{site}.evaluated") for site in SITES}
        self._site_fired = {
            site: obs.counter(f"site.{site}.fired") for site in SITES}
        self._kind_fired = {
            kind: obs.counter(f"kind.{kind}.fired") for kind in KINDS}
        self._rules_by_site: Dict[str, List[FaultRule]] = {}
        for rule in plan.rules:
            self._rules_by_site.setdefault(rule.site, []).append(rule)
            if rule.site not in self._site_evaluated:
                # Custom (test-defined) site: register deterministically.
                self._site_evaluated[rule.site] = \
                    obs.counter(f"site.{rule.site}.evaluated")
                self._site_fired[rule.site] = \
                    obs.counter(f"site.{rule.site}.fired")
        self._rngs: Dict[str, random.Random] = {
            site: random.Random(hash_words(
                (plan.seed, keccak_int(site.encode("utf-8")))))
            for site in self._rules_by_site}
        self._evaluations: Dict[str, int] = {}
        self._fires: Dict[int, int] = {}

    # -- draws -----------------------------------------------------------

    def rng(self, site: str) -> random.Random:
        """The site's private RNG stream (corruption masks draw here)."""
        return self._rngs.setdefault(site, random.Random(hash_words(
            (self.plan.seed, keccak_int(site.encode("utf-8"))))))

    def evaluate(self, site: str, **ctx) -> Optional[FaultRule]:
        """Should a fault fire at ``site`` now?  Returns the rule or None.

        Every call advances the site's evaluation count; rules draw from
        the site's stream only when eligible, keeping the stream aligned
        with the schedule across runs.
        """
        rules = self._rules_by_site.get(site)
        if not rules:
            return None
        sequence = self._evaluations.get(site, 0)
        self._evaluations[site] = sequence + 1
        self.c_evaluated.inc()
        self._site_evaluated[site].inc()
        rng = self._rngs[site]
        for index, rule in enumerate(rules):
            if sequence < rule.after:
                continue
            key = id(rule) ^ index
            if (rule.max_fires is not None
                    and self._fires.get(key, 0) >= rule.max_fires):
                continue
            if (rule.contract is not None
                    and ctx.get("contract") != rule.contract):
                continue
            if rule.predicate is not None and not rule.predicate(ctx):
                continue
            if rule.probability < 1.0 and rng.random() >= rule.probability:
                continue
            self._fires[key] = self._fires.get(key, 0) + 1
            self.c_fired.inc()
            self._site_fired[site].inc()
            self._kind_fired[rule.kind].inc()
            return rule
        return None

    # -- convenience wrappers --------------------------------------------

    def maybe_raise(self, site: str, **ctx) -> None:
        """Raise the site's fault if a raise/storage rule fires."""
        rule = self.evaluate(site, **ctx)
        if rule is None:
            return
        if rule.kind == KIND_STORAGE:
            raise TransientStorageError(site)
        if rule.kind == KIND_RAISE:
            raise InjectedFault(site, rule.kind)

    def stall_units(self, site: str = "worker.stall", **ctx) -> int:
        """Cost units of worker stall to add (0 when no rule fires)."""
        rule = self.evaluate(site, **ctx)
        if rule is None or rule.kind != KIND_STALL:
            return 0
        return rule.stall_units()

    def fired(self, site: str) -> int:
        return self._site_fired[site].value if site in self._site_fired \
            else 0

    def total_fired(self) -> int:
        return self.c_fired.value

    def fire_summary(self) -> Dict[str, Dict[str, int]]:
        """site -> {evaluated, fired} for every site the plan covers."""
        return {
            site: {"evaluated": self._site_evaluated[site].value,
                   "fired": self._site_fired[site].value}
            for site in sorted(self._rules_by_site)
        }


class NullInjector:
    """No-op injector: the default when chaos is not requested."""

    enabled = False
    plan = FaultPlan()

    def evaluate(self, site: str, **ctx) -> None:
        return None

    def maybe_raise(self, site: str, **ctx) -> None:
        return None

    def stall_units(self, site: str = "worker.stall", **ctx) -> int:
        return 0

    def fired(self, site: str) -> int:
        return 0

    def total_fired(self) -> int:
        return 0

    def fire_summary(self) -> Dict[str, Dict[str, int]]:
        return {}


#: Shared no-op instance (stateless, safe to share).
NULL_INJECTOR = NullInjector()


# -- payload corruption (detectable by construction) -----------------------

def corrupt_shortcut(ap, rng: random.Random) -> bool:
    """Corrupt one memoization-shortcut key in ``ap``.

    The entry's key tuple is extended with a sentinel, so the runtime
    lookup (a tuple of observed register values, fixed arity) can never
    match it again: the memo entry silently degrades to a miss.  Picks
    the corruption point from ``rng`` so repeated faults spread over
    the table.  Returns True if something was corrupted.
    """
    carriers = [node for node in ap.all_nodes()
                if node.shortcut is not None and node.shortcut.entries]
    if not carriers:
        return False
    node = carriers[rng.randrange(len(carriers))]
    entries = node.shortcut.entries
    keys = list(entries)
    key = keys[rng.randrange(len(keys))]
    entries[key + ("#corrupted",)] = entries.pop(key)
    return True


def corrupt_guard_branch(ap, rng: random.Random) -> bool:
    """Corrupt one guard node's branch key in ``ap``.

    The branch is re-keyed under an unobservable sentinel tuple —
    runtime branch keys are ints/bools, so execution reaching the guard
    with the original expectation finds no branch and raises
    ``ConstraintViolation``, which the accelerator converts into the
    baseline fallback.  Returns True if something was corrupted.
    """
    guards = [node for node in ap.all_nodes()
              if node.is_guard() and node.branches]
    if not guards:
        return False
    node = guards[rng.randrange(len(guards))]
    keys = list(node.branches)
    key = keys[rng.randrange(len(keys))]
    node.branches[("#corrupted", repr(key))] = node.branches.pop(key)
    return True
