"""The paper's safety property as an executable invariant.

Forerunner §2/§7: speculation only accelerates — it never changes what
is committed.  :func:`check_equivalence` replays the same recorded
workload twice, once fault-free and once under an arbitrary
:class:`~repro.faults.injector.FaultPlan`, and asserts the canonical
**equivalence digest** of both runs is byte-identical:

* per-block committed state roots,
* per-transaction receipts (hash, gas used, success),
* the baseline columns that anchor Tables 2/3 (per-tx baseline cost /
  CPU / IO units and the per-block baseline root).

Anything speed-related (forerunner costs, outcomes, heard flags) is
deliberately excluded — faults are *allowed* to slow us down; they are
never allowed to change what the chain commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.stats import aggregate_speedup
from repro.obs.export import canonical_json
from repro.faults.injector import FaultPlan

#: Effective speedup is computed over heard transactions only (the
#: paper's headline number); gossip faults can shrink the heard set to
#: nothing, in which case the retained speedup is defined as 1.0.


def _heard_speedup(run) -> float:
    heard = [r for r in run.records if r.heard]
    if not heard:
        return 1.0
    return aggregate_speedup(heard)


def run_digest(run) -> Dict[str, Any]:
    """The commitment-equivalence digest of one replay.

    Built from the Forerunner node's committed block reports plus each
    record's baseline columns; canonical-JSON-stable by construction.
    """
    node = run.forerunner_node
    blocks = []
    for report in node.reports:
        blocks.append({
            "number": report.block_number,
            "state_root": f"{report.state_root:#x}",
            "receipts": [
                {"tx": f"{r.tx_hash:#x}", "gas_used": r.gas_used,
                 "success": r.success}
                for r in report.records
            ],
        })
    baseline_columns = [
        {"tx": f"{r.tx_hash:#x}", "baseline_cost": r.baseline_cost,
         "baseline_cpu": r.baseline_cpu,
         "baseline_io_units": r.baseline_io_units,
         "baseline_io_reads": r.baseline_io_reads}
        for r in sorted(run.records, key=lambda r: r.tx_hash)
    ]
    return {
        "dataset": run.dataset_name,
        "blocks": blocks,
        "blocks_executed": run.blocks_executed,
        "roots_matched": run.roots_matched,
        "baseline_columns": baseline_columns,
    }


def digest_bytes(run) -> bytes:
    return canonical_json(run_digest(run)).encode("ascii")


@dataclass
class EquivalenceReport:
    """Outcome of one fault-free vs faulted equivalence check."""

    dataset: str
    seed: int
    ok: bool
    mismatches: List[str] = field(default_factory=list)
    #: Effective (heard-only) speedups, clean vs under faults.
    speedup_clean: float = 0.0
    speedup_faulted: float = 0.0
    faults_evaluated: int = 0
    faults_fired: int = 0
    fire_summary: Dict[str, Dict[str, int]] = field(default_factory=dict)
    guard: Dict[str, Any] = field(default_factory=dict)
    plan_lines: List[str] = field(default_factory=list)
    clean_digest: bytes = b""
    faulted_digest: bytes = b""

    @property
    def speedup_retained(self) -> float:
        if self.speedup_clean <= 0:
            return 1.0
        return self.speedup_faulted / self.speedup_clean

    def as_dict(self) -> Dict[str, Any]:
        """Canonical-JSON-ready payload (deterministic for a seed)."""
        return {
            "dataset": self.dataset,
            "seed": self.seed,
            "ok": self.ok,
            "mismatches": list(self.mismatches),
            "speedup_clean": round(self.speedup_clean, 6),
            "speedup_faulted": round(self.speedup_faulted, 6),
            "speedup_retained": round(self.speedup_retained, 6),
            "faults_evaluated": self.faults_evaluated,
            "faults_fired": self.faults_fired,
            "fire_summary": self.fire_summary,
            "guard": self.guard,
            "plan": list(self.plan_lines),
        }


def _compare_digests(clean: Dict[str, Any], faulted: Dict[str, Any]
                     ) -> List[str]:
    """Human-readable mismatch list (empty == byte-identical)."""
    mismatches: List[str] = []
    if canonical_json(clean) == canonical_json(faulted):
        return mismatches
    if clean["blocks_executed"] != faulted["blocks_executed"]:
        mismatches.append(
            f"blocks executed: {clean['blocks_executed']} != "
            f"{faulted['blocks_executed']}")
    for cb, fb in zip(clean["blocks"], faulted["blocks"]):
        if cb["state_root"] != fb["state_root"]:
            mismatches.append(
                f"state root of block {cb['number']}: "
                f"{cb['state_root']} != {fb['state_root']}")
        if cb["receipts"] != fb["receipts"]:
            mismatches.append(f"receipts of block {cb['number']} differ")
    if clean["baseline_columns"] != faulted["baseline_columns"]:
        mismatches.append("Table 2/3 baseline columns differ")
    if not mismatches:
        mismatches.append("digests differ (structural)")
    return mismatches


def check_equivalence(dataset, plan: FaultPlan,
                      observer: str = "live",
                      config=None,
                      clean_run=None) -> EquivalenceReport:
    """Replay ``dataset`` under ``plan`` and check commitment equivalence.

    ``clean_run`` (an existing fault-free :class:`EvaluationRun` of the
    same dataset/observer/config) may be supplied to avoid re-running
    the baseline when sweeping many plans.
    """
    from repro.sim.emulator import replay  # local: avoid import cycle

    if clean_run is None:
        clean_run = replay(dataset, observer, config=config)
    faulted_run = replay(dataset, observer, config=config,
                         fault_plan=plan)

    clean = run_digest(clean_run)
    faulted = run_digest(faulted_run)
    mismatches = _compare_digests(clean, faulted)

    injector = faulted_run.fault_injector
    guard = faulted_run.forerunner_node.guard
    report = EquivalenceReport(
        dataset=dataset.name,
        seed=plan.seed,
        ok=not mismatches,
        mismatches=mismatches,
        speedup_clean=_heard_speedup(clean_run),
        speedup_faulted=_heard_speedup(faulted_run),
        faults_evaluated=injector.c_evaluated.value if injector else 0,
        faults_fired=injector.total_fired() if injector else 0,
        fire_summary=injector.fire_summary() if injector else {},
        guard=guard.summary() if guard else {},
        plan_lines=plan.describe(),
        clean_digest=canonical_json(clean).encode("ascii"),
        faulted_digest=canonical_json(faulted).encode("ascii"),
    )
    return report


def format_report(report: EquivalenceReport) -> str:
    """Render a degradation report for the ``repro chaos`` CLI."""
    lines = [
        f"chaos: dataset={report.dataset} seed={report.seed}",
        "",
        "fault plan:",
    ]
    lines += [f"  {line}" for line in report.plan_lines] or ["  (empty)"]
    lines += [
        "",
        f"faults evaluated : {report.faults_evaluated}",
        f"faults fired     : {report.faults_fired}",
    ]
    for site, entry in sorted(report.fire_summary.items()):
        lines.append(f"  {site}: {entry['fired']}/{entry['evaluated']}")
    guard = report.guard or {}
    breaker = guard.get("breaker", {})
    lines += [
        "",
        f"contained        : {guard.get('contained', 0)} "
        f"(injected={guard.get('contained_injected', 0)}, "
        f"unexpected={guard.get('contained_unexpected', 0)})",
        f"fallbacks taken  : {guard.get('fallbacks', 0)}",
        f"storage retries  : {guard.get('storage_retries', 0)} "
        f"(exhausted={guard.get('storage_retries_exhausted', 0)})",
        f"breaker          : opened={breaker.get('opened', 0)} "
        f"closed={breaker.get('closed', 0)} "
        f"half-open probes={breaker.get('half_open_probes', 0)} "
        f"skipped={breaker.get('skipped_speculations', 0)}",
    ]
    for transition in breaker.get("transitions", []):
        lines.append(
            f"  {transition['contract']}: {transition['from']} -> "
            f"{transition['to']} @ {transition['at_cost']} cost units")
    lines += [
        "",
        f"effective speedup: clean {report.speedup_clean:.3f}x -> "
        f"faulted {report.speedup_faulted:.3f}x "
        f"({report.speedup_retained:.1%} retained)",
        "",
        ("equivalence      : OK — committed roots, receipts and "
         "baseline columns byte-identical to the fault-free run")
        if report.ok else
        "equivalence      : VIOLATED",
    ]
    if not report.ok:
        lines += [f"  {m}" for m in report.mismatches]
    return "\n".join(lines)
