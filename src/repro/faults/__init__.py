"""Deterministic fault injection + graceful degradation (chaos layer).

Three pieces:

* :mod:`repro.faults.injector` — declarative :class:`FaultPlan`\\ s and
  the :class:`FaultInjector` consulted at named sites across the
  speculation pipeline;
* :mod:`repro.faults.guard` — :class:`SpeculationGuard` containment,
  transient-storage retry, and the per-contract
  :class:`CircuitBreaker`;
* :mod:`repro.faults.invariants` — :func:`check_equivalence`, the
  paper's "speculation is pure acceleration" safety property as an
  executable check.

See ``docs/ROBUSTNESS.md``.
"""

from repro.faults.guard import (
    CircuitBreaker,
    RetryPolicy,
    SpeculationGuard,
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
)
from repro.faults.injector import (
    DEFAULT_REORDER_SECONDS,
    DEFAULT_STALL_UNITS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    KIND_CORRUPT,
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_RAISE,
    KIND_REORDER,
    KIND_STALL,
    KIND_STORAGE,
    KINDS,
    LETHAL_SITES,
    NULL_INJECTOR,
    NullInjector,
    SITE_KINDS,
    SITES,
    corrupt_guard_branch,
    corrupt_shortcut,
)
from repro.faults.invariants import (
    EquivalenceReport,
    check_equivalence,
    format_report,
    run_digest,
)

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "SpeculationGuard",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "DEFAULT_REORDER_SECONDS",
    "DEFAULT_STALL_UNITS",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "KIND_CORRUPT",
    "KIND_DROP",
    "KIND_DUPLICATE",
    "KIND_RAISE",
    "KIND_REORDER",
    "KIND_STALL",
    "KIND_STORAGE",
    "KINDS",
    "LETHAL_SITES",
    "NULL_INJECTOR",
    "NullInjector",
    "SITE_KINDS",
    "SITES",
    "corrupt_guard_branch",
    "corrupt_shortcut",
    "EquivalenceReport",
    "check_equivalence",
    "format_report",
    "run_digest",
]
