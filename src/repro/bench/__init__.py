"""Benchmark harness support: formatting, persistence, Figure-2 model."""

from repro.bench.report import ascii_table, bar_chart, write_report
from repro.bench.history import simulate_block_history

__all__ = ["ascii_table", "bar_chart", "write_report",
           "simulate_block_history"]
