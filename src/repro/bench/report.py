"""Benchmark output helpers.

Every bench prints the paper-style rows/series to stdout AND persists
them under ``benchmarks/out/`` so results survive pytest's output
capture.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

#: Directory where benches drop their rendered tables.
OUT_DIR = os.path.join(os.path.dirname(os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))),
    "benchmarks", "out")


def ascii_table(headers: Sequence[str], rows: Iterable[Sequence],
                title: str = "") -> str:
    """Render rows as a fixed-width ASCII table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(headers))
    lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def bar_chart(rows: Iterable[Sequence], width: int = 40,
              title: str = "") -> str:
    """Render (label, fraction) pairs as a horizontal ASCII bar chart."""
    rows = [(str(label), float(value)) for label, value in rows]
    peak = max((value for _, value in rows), default=0.0) or 1.0
    label_width = max((len(label) for label, _ in rows), default=0)
    lines = [title] if title else []
    for label, value in rows:
        bar = "#" * max(0, round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {value:7.2%} {bar}")
    return "\n".join(lines)


def write_report(name: str, content: str) -> str:
    """Print ``content`` and persist it to benchmarks/out/<name>.txt."""
    print()
    print(content)
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content + "\n")
    return path
