"""Figure 2 background model: block gas limit vs gas used over time.

The paper's Figure 2 shows Ethereum's historical block-size (gas limit)
raises being saturated by throughput demand.  We reproduce the dynamic
with a small model of the limit-adjustment protocol: miners vote the
limit up by at most limit/1024 per block while demand (pending gas per
interval) exceeds capacity; demand itself grows exponentially with
adoption, so each raise is soon saturated again.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass
class HistoryPoint:
    """One sampled month of chain history."""

    month: int
    gas_limit: float
    gas_used: float


def simulate_block_history(months: int = 66,
                           initial_limit: float = 5_000.0,
                           initial_demand: float = 500.0,
                           demand_growth: float = 0.09,
                           vote_threshold: float = 0.85,
                           seed: int = 2015) -> List[HistoryPoint]:
    """Simulate monthly (gas limit, gas used) like Figure 2.

    Units are thousands of gas per block.  The gas-limit raise follows
    the protocol rule (max limit/1024 per block, ~200k blocks/month of
    cumulative drift when miners vote up), kicking in whenever average
    utilization crosses ``vote_threshold``; demand grows exponentially
    with noise and saturates at the limit.
    """
    rng = random.Random(seed)
    points: List[HistoryPoint] = []
    limit = initial_limit
    demand = initial_demand
    for month in range(months):
        noise = 1.0 + rng.uniform(-0.08, 0.12)
        demand *= math.exp(demand_growth) * noise
        used = min(demand, limit * 0.98)
        utilization = used / limit
        if utilization > vote_threshold and rng.random() < 0.30:
            # Miners eventually coordinate to vote the cap up; raises
            # are occasional and modest, so demand re-saturates each
            # step within months (the staircase-hugging curve of
            # Figure 2).
            limit *= 1.25
        points.append(HistoryPoint(month=month, gas_limit=limit,
                                   gas_used=used))
    return points


def saturation_fraction(points: List[HistoryPoint],
                        threshold: float = 0.90) -> float:
    """Fraction of months where usage saturates the limit."""
    saturated = sum(1 for p in points
                    if p.gas_used / p.gas_limit >= threshold)
    return saturated / len(points)
