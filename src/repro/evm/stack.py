"""The EVM operand stack."""

from __future__ import annotations

from typing import List

from repro.constants import STACK_LIMIT
from repro.errors import StackOverflow, StackUnderflow


class Stack:
    """A bounded LIFO stack of 256-bit words."""

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: List[int] = []

    def __len__(self) -> int:
        return len(self.items)

    def push(self, value: int) -> None:
        """Push a word; raises :class:`StackOverflow` beyond 1024 items."""
        if len(self.items) >= STACK_LIMIT:
            raise StackOverflow(f"stack limit {STACK_LIMIT} exceeded")
        self.items.append(value)

    def pop(self) -> int:
        """Pop the top word; raises :class:`StackUnderflow` when empty."""
        if not self.items:
            raise StackUnderflow("pop from empty stack")
        return self.items.pop()

    def pop_n(self, n: int) -> List[int]:
        """Pop ``n`` words, returned top-first."""
        if len(self.items) < n:
            raise StackUnderflow(f"need {n} items, have {len(self.items)}")
        taken = self.items[-n:]
        del self.items[-n:]
        taken.reverse()
        return taken

    def peek(self, depth: int = 0) -> int:
        """Read the word ``depth`` positions below the top without popping."""
        if len(self.items) <= depth:
            raise StackUnderflow(f"peek depth {depth} beyond stack")
        return self.items[-1 - depth]

    def dup(self, n: int) -> None:
        """DUPn: duplicate the n-th item (1-based from the top)."""
        if len(self.items) < n:
            raise StackUnderflow(f"DUP{n} on stack of {len(self.items)}")
        self.push(self.items[-n])

    def swap(self, n: int) -> None:
        """SWAPn: exchange the top with the (n+1)-th item."""
        if len(self.items) < n + 1:
            raise StackUnderflow(f"SWAP{n} on stack of {len(self.items)}")
        top = self.items[-1]
        self.items[-1] = self.items[-1 - n]
        self.items[-1 - n] = top
