"""Two-pass EVM assembler and a disassembler.

The assembler turns mnemonic text (one instruction per line, ``;``
comments, ``label:`` definitions, ``PUSH @label`` references and
``PUSH <int>`` with automatic width selection) into bytecode.  It is the
backend of the minisol compiler and is also handy for writing targeted
test programs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

from repro.errors import AssemblerError
from repro.evm import opcodes
from repro.evm.opcodes import NAME_TO_OP


def _push_width(value: int) -> int:
    """Smallest PUSH immediate width that holds ``value``."""
    if value == 0:
        return 1
    width = (value.bit_length() + 7) // 8
    return min(max(width, 1), 32)


class _Item:
    """One assembled item: an opcode byte or a push with payload."""

    __slots__ = ("opcode", "immediate", "label")

    def __init__(self, opcode: int, immediate: bytes = b"",
                 label: str = "") -> None:
        self.opcode = opcode
        self.immediate = immediate
        self.label = label

    def size(self) -> int:
        if self.label:
            return 1 + 2  # label refs assemble as PUSH2
        return 1 + len(self.immediate)


def assemble(source: str) -> bytes:
    """Assemble mnemonic ``source`` into bytecode."""
    items: List[_Item] = []
    labels: Dict[str, int] = {}

    # Pass 1: parse and lay out.
    offset = 0
    for raw_line in source.splitlines():
        line = raw_line.split(";", 1)[0].strip()
        if not line:
            continue
        if line.endswith(":"):
            name = line[:-1].strip()
            if name in labels:
                raise AssemblerError(f"duplicate label {name!r}")
            labels[name] = offset
            continue
        parts = line.split()
        mnemonic = parts[0].upper()
        if mnemonic == "PUSH" and len(parts) == 2 and parts[1].startswith("@"):
            item = _Item(0x61, label=parts[1][1:])  # PUSH2 placeholder
        elif mnemonic == "PUSH" and len(parts) == 2:
            value = _parse_int(parts[1])
            width = _push_width(value)
            item = _Item(0x60 + width - 1,
                         value.to_bytes(width, "big"))
        elif mnemonic.startswith("PUSH") and len(parts) == 2:
            width = int(mnemonic[4:])
            value = _parse_int(parts[1])
            if value >= 1 << (8 * width):
                raise AssemblerError(f"{mnemonic} cannot hold {value}")
            item = _Item(0x60 + width - 1, value.to_bytes(width, "big"))
        elif mnemonic in NAME_TO_OP:
            if len(parts) != 1:
                raise AssemblerError(f"{mnemonic} takes no operand")
            item = _Item(NAME_TO_OP[mnemonic])
        else:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
        items.append(item)
        offset += item.size()

    # Pass 2: resolve labels and emit.
    out = bytearray()
    for item in items:
        if item.label:
            target = labels.get(item.label)
            if target is None:
                raise AssemblerError(f"undefined label {item.label!r}")
            out.append(0x61)  # PUSH2
            out.extend(target.to_bytes(2, "big"))
        else:
            out.append(item.opcode)
            out.extend(item.immediate)
    return bytes(out)


def _parse_int(text: str) -> int:
    try:
        return int(text, 0)
    except ValueError as exc:
        raise AssemblerError(f"bad integer literal {text!r}") from exc


def disassemble(code: bytes) -> List[Tuple[int, str, Union[int, None]]]:
    """Decode bytecode into (pc, mnemonic, immediate-or-None) tuples."""
    result = []
    i = 0
    while i < len(code):
        op = code[i]
        info = opcodes.OPCODES.get(op)
        if info is None:
            result.append((i, f"UNKNOWN_{op:#04x}", None))
            i += 1
            continue
        if opcodes.is_push(op):
            size = opcodes.push_size(op)
            imm = int.from_bytes(code[i + 1:i + 1 + size], "big")
            result.append((i, info.name, imm))
            i += 1 + size
        else:
            result.append((i, info.name, None))
            i += 1
    return result


def format_disassembly(code: bytes) -> str:
    """Human-readable disassembly listing."""
    lines = []
    for pc, name, imm in disassemble(code):
        if imm is not None:
            lines.append(f"{pc:6d}  {name} {imm:#x}")
        else:
            lines.append(f"{pc:6d}  {name}")
    return "\n".join(lines)
