"""EVM opcode table.

Each opcode carries the metadata needed by the interpreter (stack arity,
immediate size, base gas cost) and by Forerunner's trace-to-S-EVM
translation (category: which opcodes are pure computation, which read
the execution context, which write state, and which exist only to move
values around the stack/memory and therefore vanish in the register IR —
paper §4.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict


class Category(enum.Enum):
    """Functional classification used by the S-EVM translation."""

    COMPUTE = "compute"       # pure function of its inputs
    CONTEXT_READ = "read"     # reads the execution context (state, header, env)
    STATE_WRITE = "write"     # writes state / emits effects
    STACK = "stack"           # pure stack manipulation (eliminated in S-EVM)
    MEMORY = "memory"         # volatile memory traffic (eliminated by promotion)
    CONTROL = "control"       # control flow (eliminated; becomes guards)
    SYSTEM = "system"         # call/return machinery
    TX_CONSTANT = "txconst"   # constant for a fixed transaction (calldata etc.)


class Op(enum.IntEnum):
    """Opcode values (a faithful subset of the yellow paper encoding)."""

    STOP = 0x00
    ADD = 0x01
    MUL = 0x02
    SUB = 0x03
    DIV = 0x04
    SDIV = 0x05
    MOD = 0x06
    SMOD = 0x07
    ADDMOD = 0x08
    MULMOD = 0x09
    EXP = 0x0A
    SIGNEXTEND = 0x0B

    LT = 0x10
    GT = 0x11
    SLT = 0x12
    SGT = 0x13
    EQ = 0x14
    ISZERO = 0x15
    AND = 0x16
    OR = 0x17
    XOR = 0x18
    NOT = 0x19
    BYTE = 0x1A
    SHL = 0x1B
    SHR = 0x1C
    SAR = 0x1D

    SHA3 = 0x20

    ADDRESS = 0x30
    BALANCE = 0x31
    ORIGIN = 0x32
    CALLER = 0x33
    CALLVALUE = 0x34
    CALLDATALOAD = 0x35
    CALLDATASIZE = 0x36
    CALLDATACOPY = 0x37
    CODESIZE = 0x38
    CODECOPY = 0x39
    GASPRICE = 0x3A
    EXTCODESIZE = 0x3B

    RETURNDATASIZE = 0x3D
    RETURNDATACOPY = 0x3E
    CREATE = 0xF0

    BLOCKHASH = 0x40
    COINBASE = 0x41
    TIMESTAMP = 0x42
    NUMBER = 0x43
    DIFFICULTY = 0x44
    GASLIMIT = 0x45
    CHAINID = 0x46
    SELFBALANCE = 0x47

    POP = 0x50
    MLOAD = 0x51
    MSTORE = 0x52
    MSTORE8 = 0x53
    SLOAD = 0x54
    SSTORE = 0x55
    JUMP = 0x56
    JUMPI = 0x57
    PC = 0x58
    MSIZE = 0x59
    GAS = 0x5A
    JUMPDEST = 0x5B

    PUSH1 = 0x60
    # PUSH2..PUSH32 are 0x61..0x7F
    PUSH32 = 0x7F
    DUP1 = 0x80
    # DUP2..DUP16 are 0x81..0x8F
    DUP16 = 0x8F
    SWAP1 = 0x90
    # SWAP2..SWAP16 are 0x91..0x9F
    SWAP16 = 0x9F

    LOG0 = 0xA0
    LOG1 = 0xA1
    LOG2 = 0xA2
    LOG3 = 0xA3
    LOG4 = 0xA4

    CALL = 0xF1
    RETURN = 0xF3
    DELEGATECALL = 0xF4
    STATICCALL = 0xFA
    REVERT = 0xFD
    INVALID = 0xFE


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for one opcode."""

    name: str
    value: int
    pops: int
    pushes: int
    gas: int
    category: Category
    immediate: int = 0  # bytes of immediate data following the opcode


def _op(name, value, pops, pushes, gas, category, immediate=0):
    return OpInfo(name, value, pops, pushes, gas, category, immediate)


# Gas costs follow a simplified Istanbul-like schedule.  SLOAD/SSTORE/
# BALANCE use flat (warm-ish) costs; the *I/O* expense of cold state
# access is modelled separately by repro.state.diskio so that the
# prefetcher's effect (paper §4.4) is observable in the cost model.
OPCODES: Dict[int, OpInfo] = {}


def _register(info: OpInfo) -> None:
    OPCODES[info.value] = info


for _info in [
    _op("STOP", Op.STOP, 0, 0, 0, Category.SYSTEM),
    _op("ADD", Op.ADD, 2, 1, 3, Category.COMPUTE),
    _op("MUL", Op.MUL, 2, 1, 5, Category.COMPUTE),
    _op("SUB", Op.SUB, 2, 1, 3, Category.COMPUTE),
    _op("DIV", Op.DIV, 2, 1, 5, Category.COMPUTE),
    _op("SDIV", Op.SDIV, 2, 1, 5, Category.COMPUTE),
    _op("MOD", Op.MOD, 2, 1, 5, Category.COMPUTE),
    _op("SMOD", Op.SMOD, 2, 1, 5, Category.COMPUTE),
    _op("ADDMOD", Op.ADDMOD, 3, 1, 8, Category.COMPUTE),
    _op("MULMOD", Op.MULMOD, 3, 1, 8, Category.COMPUTE),
    _op("EXP", Op.EXP, 2, 1, 10, Category.COMPUTE),
    _op("SIGNEXTEND", Op.SIGNEXTEND, 2, 1, 5, Category.COMPUTE),
    _op("LT", Op.LT, 2, 1, 3, Category.COMPUTE),
    _op("GT", Op.GT, 2, 1, 3, Category.COMPUTE),
    _op("SLT", Op.SLT, 2, 1, 3, Category.COMPUTE),
    _op("SGT", Op.SGT, 2, 1, 3, Category.COMPUTE),
    _op("EQ", Op.EQ, 2, 1, 3, Category.COMPUTE),
    _op("ISZERO", Op.ISZERO, 1, 1, 3, Category.COMPUTE),
    _op("AND", Op.AND, 2, 1, 3, Category.COMPUTE),
    _op("OR", Op.OR, 2, 1, 3, Category.COMPUTE),
    _op("XOR", Op.XOR, 2, 1, 3, Category.COMPUTE),
    _op("NOT", Op.NOT, 1, 1, 3, Category.COMPUTE),
    _op("BYTE", Op.BYTE, 2, 1, 3, Category.COMPUTE),
    _op("SHL", Op.SHL, 2, 1, 3, Category.COMPUTE),
    _op("SHR", Op.SHR, 2, 1, 3, Category.COMPUTE),
    _op("SAR", Op.SAR, 2, 1, 3, Category.COMPUTE),
    _op("SHA3", Op.SHA3, 2, 1, 30, Category.COMPUTE),
    _op("ADDRESS", Op.ADDRESS, 0, 1, 2, Category.TX_CONSTANT),
    _op("BALANCE", Op.BALANCE, 1, 1, 100, Category.CONTEXT_READ),
    _op("ORIGIN", Op.ORIGIN, 0, 1, 2, Category.TX_CONSTANT),
    _op("CALLER", Op.CALLER, 0, 1, 2, Category.TX_CONSTANT),
    _op("CALLVALUE", Op.CALLVALUE, 0, 1, 2, Category.TX_CONSTANT),
    _op("CALLDATALOAD", Op.CALLDATALOAD, 1, 1, 3, Category.TX_CONSTANT),
    _op("CALLDATASIZE", Op.CALLDATASIZE, 0, 1, 2, Category.TX_CONSTANT),
    _op("CALLDATACOPY", Op.CALLDATACOPY, 3, 0, 3, Category.MEMORY),
    _op("CODESIZE", Op.CODESIZE, 0, 1, 2, Category.TX_CONSTANT),
    _op("GASPRICE", Op.GASPRICE, 0, 1, 2, Category.TX_CONSTANT),
    _op("EXTCODESIZE", Op.EXTCODESIZE, 1, 1, 100, Category.CONTEXT_READ),
    _op("BLOCKHASH", Op.BLOCKHASH, 1, 1, 20, Category.CONTEXT_READ),
    _op("COINBASE", Op.COINBASE, 0, 1, 2, Category.CONTEXT_READ),
    _op("TIMESTAMP", Op.TIMESTAMP, 0, 1, 2, Category.CONTEXT_READ),
    _op("NUMBER", Op.NUMBER, 0, 1, 2, Category.CONTEXT_READ),
    _op("DIFFICULTY", Op.DIFFICULTY, 0, 1, 2, Category.CONTEXT_READ),
    _op("GASLIMIT", Op.GASLIMIT, 0, 1, 2, Category.CONTEXT_READ),
    _op("CHAINID", Op.CHAINID, 0, 1, 2, Category.TX_CONSTANT),
    _op("SELFBALANCE", Op.SELFBALANCE, 0, 1, 5, Category.CONTEXT_READ),
    _op("POP", Op.POP, 1, 0, 2, Category.STACK),
    _op("MLOAD", Op.MLOAD, 1, 1, 3, Category.MEMORY),
    _op("MSTORE", Op.MSTORE, 2, 0, 3, Category.MEMORY),
    _op("MSTORE8", Op.MSTORE8, 2, 0, 3, Category.MEMORY),
    _op("SLOAD", Op.SLOAD, 1, 1, 100, Category.CONTEXT_READ),
    _op("SSTORE", Op.SSTORE, 2, 0, 5000, Category.STATE_WRITE),
    _op("JUMP", Op.JUMP, 1, 0, 8, Category.CONTROL),
    _op("JUMPI", Op.JUMPI, 2, 0, 10, Category.CONTROL),
    _op("PC", Op.PC, 0, 1, 2, Category.TX_CONSTANT),
    _op("MSIZE", Op.MSIZE, 0, 1, 2, Category.MEMORY),
    _op("GAS", Op.GAS, 0, 1, 2, Category.CONTEXT_READ),
    _op("JUMPDEST", Op.JUMPDEST, 0, 0, 1, Category.CONTROL),
    _op("LOG0", Op.LOG0, 2, 0, 375, Category.STATE_WRITE),
    _op("LOG1", Op.LOG1, 3, 0, 750, Category.STATE_WRITE),
    _op("LOG2", Op.LOG2, 4, 0, 1125, Category.STATE_WRITE),
    _op("LOG3", Op.LOG3, 5, 0, 1500, Category.STATE_WRITE),
    _op("LOG4", Op.LOG4, 6, 0, 1875, Category.STATE_WRITE),
    _op("RETURNDATASIZE", Op.RETURNDATASIZE, 0, 1, 2, Category.MEMORY),
    _op("RETURNDATACOPY", Op.RETURNDATACOPY, 3, 0, 3, Category.MEMORY),
    _op("CODECOPY", Op.CODECOPY, 3, 0, 3, Category.MEMORY),
    _op("CREATE", Op.CREATE, 3, 1, 32_000, Category.SYSTEM),
    _op("CALL", Op.CALL, 7, 1, 700, Category.SYSTEM),
    _op("DELEGATECALL", Op.DELEGATECALL, 6, 1, 700, Category.SYSTEM),
    _op("STATICCALL", Op.STATICCALL, 6, 1, 700, Category.SYSTEM),
    _op("RETURN", Op.RETURN, 2, 0, 0, Category.SYSTEM),
    _op("REVERT", Op.REVERT, 2, 0, 0, Category.SYSTEM),
    _op("INVALID", Op.INVALID, 0, 0, 0, Category.SYSTEM),
]:
    _register(_info)

# PUSH1..PUSH32
for _n in range(1, 33):
    _register(_op(f"PUSH{_n}", 0x60 + _n - 1, 0, 1, 3, Category.STACK, immediate=_n))
# DUP1..DUP16
for _n in range(1, 17):
    _register(_op(f"DUP{_n}", 0x80 + _n - 1, _n, _n + 1, 3, Category.STACK))
# SWAP1..SWAP16
for _n in range(1, 17):
    _register(_op(f"SWAP{_n}", 0x90 + _n - 1, _n + 1, _n + 1, 3, Category.STACK))

#: Mnemonic → opcode value, for the assembler.
NAME_TO_OP: Dict[str, int] = {info.name: code for code, info in OPCODES.items()}


def opcode_info(code: int) -> OpInfo:
    """Look up metadata for ``code``; raises KeyError for undefined opcodes."""
    return OPCODES[code]


def is_push(code: int) -> bool:
    """True if ``code`` is PUSH1..PUSH32."""
    return 0x60 <= code <= 0x7F


def push_size(code: int) -> int:
    """Immediate size in bytes for a PUSH opcode."""
    return code - 0x60 + 1


def is_dup(code: int) -> bool:
    """True if ``code`` is DUP1..DUP16."""
    return 0x80 <= code <= 0x8F


def is_swap(code: int) -> bool:
    """True if ``code`` is SWAP1..SWAP16."""
    return 0x90 <= code <= 0x9F


def is_log(code: int) -> bool:
    """True if ``code`` is LOG0..LOG4."""
    return 0xA0 <= code <= 0xA4
