"""EVM volatile memory: a byte-addressed, zero-initialized expanding array."""

from __future__ import annotations

from repro.utils.words import bytes_to_int, int_to_bytes32


class Memory:
    """Word-oriented volatile memory for one call frame.

    Memory expands in 32-byte words; expansion cost is charged by the
    interpreter via :meth:`expansion_words`.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data = bytearray()

    def __len__(self) -> int:
        return len(self.data)

    def expansion_words(self, offset: int, size: int) -> int:
        """Number of new 32-byte words an access at (offset, size) adds."""
        if size == 0:
            return 0
        needed = (offset + size + 31) // 32
        current = len(self.data) // 32
        return max(0, needed - current)

    def _expand(self, offset: int, size: int) -> None:
        if size == 0:
            return
        needed = (offset + size + 31) // 32 * 32
        if needed > len(self.data):
            self.data.extend(b"\x00" * (needed - len(self.data)))

    def load_word(self, offset: int) -> int:
        """MLOAD: read the 32-byte word at ``offset``."""
        self._expand(offset, 32)
        return bytes_to_int(bytes(self.data[offset:offset + 32]))

    def store_word(self, offset: int, value: int) -> None:
        """MSTORE: write a 32-byte word at ``offset``."""
        self._expand(offset, 32)
        self.data[offset:offset + 32] = int_to_bytes32(value)

    def store_byte(self, offset: int, value: int) -> None:
        """MSTORE8: write the low byte of ``value`` at ``offset``."""
        self._expand(offset, 1)
        self.data[offset] = value & 0xFF

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` raw bytes starting at ``offset``."""
        self._expand(offset, size)
        return bytes(self.data[offset:offset + size])

    def write(self, offset: int, payload: bytes) -> None:
        """Write raw bytes starting at ``offset``."""
        self._expand(offset, len(payload))
        self.data[offset:offset + len(payload)] = payload
