"""A from-scratch stack-based Ethereum Virtual Machine.

This package provides the execution substrate the paper's techniques
operate on: a bytecode interpreter with gas metering, revert semantics,
internal message calls, and instrumentation hooks that record the EVM
instruction trace, intermediate values, and read/write sets needed by
Forerunner's speculator (paper §4.3).
"""

from repro.evm.opcodes import Op, OPCODES, opcode_info
from repro.evm.interpreter import EVM, Message, ExecutionResult
from repro.evm.assembler import assemble, disassemble

__all__ = [
    "Op",
    "OPCODES",
    "opcode_info",
    "EVM",
    "Message",
    "ExecutionResult",
    "assemble",
    "disassemble",
]
