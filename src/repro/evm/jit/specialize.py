"""Layer 1 of the compile tier: AP trees -> straight-line closures.

The AP walker (:func:`repro.core.ap_exec.execute_ap`) re-interprets the
S-EVM instruction graph node by node: every COMPUTE re-dispatches
through ``evaluate_compute``, every operand goes through a ``regs``
dict, every step pays Python attribute/dict traffic.  For hot traces
this module compiles the tree once into a specialized Python function
(in the spirit of EVMx's flattened fetch/decode/execute pipeline, see
PAPERS.md):

* registers become local variables (``r7``), the push/pop dict traffic
  of the walker disappears;
* the ~20 hottest pure COMPUTE ops (ADD..SHR) are inlined as Python
  expressions; the long tail (SDIV, SIGNEXTEND, SHA3, MCONCAT, ...)
  calls the shared ``evaluate_compute`` semantics;
* COMPUTE nodes whose operands are constraint-stable constants are
  folded at compile time (the walk still *charges* for them — the cost
  model is part of the observable contract);
* GUARD nodes become baked dict dispatches over the same branch keys
  the walker would probe, raising the byte-identical
  :class:`~repro.errors.ConstraintViolation` on mismatch;
* shortcut probes become baked dict lookups with the same hit/miss
  accounting.

The compiled function is *observationally identical* to the walker on
every path: same state-read sequence (disk charging, cache warming),
same ``CostTally`` sums at every ConstraintViolation raise point, same
``APExecStats`` on success, same writes, logs, return data and
``observed_reads``.  Anything the compiler cannot prove equivalent
(register redefinition, a use that is not always defined, an
oversized tree) raises :class:`SpecializeAbort` and the AP simply
stays on the interpreted tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core import costmodel
from repro.core.ap import AcceleratedProgram, APNode, Terminal
from repro.core.ap_exec import APExecStats, APOutcome, materialize_return
from repro.core.optimize import evaluate_compute
from repro.core.sevm import GuardMode, SInstr, SKind, is_reg
from repro.errors import ConstraintViolation
from repro.utils.words import int_to_bytes32, to_signed


class SpecializeAbort(Exception):
    """Tree not provably equivalent under specialization; stay interpreted."""


class _Unset:
    """Sentinel for registers that have no value yet (walker: missing key)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<unset>"


_UNSET = _Unset()

#: The hot-20 pure ops, inlined as Python expressions.  ``{a}``/``{b}``/
#: ``{c}`` are operand slots in ``instr.args`` order; ``_M`` is the
#: 256-bit mask, ``_P`` is 2**256, ``_S`` is ``to_signed``.  Templates
#: mirror ``COMPUTE_SEMANTICS`` exactly (note SHL/SHR take the shift
#: amount as the *first* argument).
_HOT_TEMPLATES = {
    "ADD": "(({a}) + ({b})) & _M",
    "MUL": "(({a}) * ({b})) & _M",
    "SUB": "(({a}) - ({b})) & _M",
    "DIV": "((({a}) // ({b})) if ({b}) else 0)",
    "MOD": "((({a}) % ({b})) if ({b}) else 0)",
    "ADDMOD": "(((({a}) + ({b})) % ({c})) if ({c}) else 0)",
    "MULMOD": "(((({a}) * ({b})) % ({c})) if ({c}) else 0)",
    "EXP": "pow({a}, {b}, _P)",
    "LT": "(1 if ({a}) < ({b}) else 0)",
    "GT": "(1 if ({a}) > ({b}) else 0)",
    "SLT": "(1 if _S({a}) < _S({b}) else 0)",
    "SGT": "(1 if _S({a}) > _S({b}) else 0)",
    "EQ": "(1 if ({a}) == ({b}) else 0)",
    "ISZERO": "(1 if ({a}) == 0 else 0)",
    "AND": "({a}) & ({b})",
    "OR": "({a}) | ({b})",
    "XOR": "({a}) ^ ({b})",
    "NOT": "(~({a})) & _M",
    "SHL": "(((({b}) << ({a})) & _M) if ({a}) < 256 else 0)",
    "SHR": "((({b}) >> ({a})) if ({a}) < 256 else 0)",
}

HOT_OPS: Tuple[str, ...] = tuple(sorted(_HOT_TEMPLATES))

_ARG_SLOTS = ("a", "b", "c")


@dataclass
class CompiledAP:
    """One specialized closure plus its compile-time metadata."""

    #: ``fn(state, header, blockhash_fn, tally) -> APOutcome``; raises
    #: :class:`ConstraintViolation` exactly like the walker.
    fn: object
    #: Tier version this artifact was compiled under; a mismatch at
    #: execution time is a bailout (reorg/redeploy invalidation).
    version: int
    node_count: int
    segment_count: int
    folded_count: int
    #: Generated Python source (debugging / the conformance suite).
    source: str


def _segment_structure(root) -> Tuple[List[object], Dict[int, int]]:
    """Discover segment entry points in deterministic order.

    Entries are: the root, every guard branch target, every shortcut
    resume node, and every Terminal.  Returns (entry_objects, id->seg).
    """
    # Deterministic BFS over tree edges (.next / .branches).
    order: List[APNode] = []
    terminals: List[Terminal] = []
    seen: Set[int] = set()
    queue: List[object] = [root]
    while queue:
        node = queue.pop(0)
        if id(node) in seen:
            continue
        seen.add(id(node))
        if isinstance(node, Terminal):
            terminals.append(node)
            continue
        order.append(node)
        if node.branches is not None:
            for child in node.branches.values():
                queue.append(child)
        elif node.next is not None:
            queue.append(node.next)

    entry_objs: List[object] = []
    entry_ids: Dict[int, int] = {}

    def add_entry(obj) -> None:
        if id(obj) not in entry_ids:
            entry_ids[id(obj)] = len(entry_objs)
            entry_objs.append(obj)

    add_entry(root)
    for node in order:
        if node.shortcut is not None:
            for _outputs, resume in node.shortcut.entries.values():
                add_entry(resume)
        if node.branches is not None:
            for child in node.branches.values():
                add_entry(child)
    for term in terminals:
        add_entry(term)
    return entry_objs, entry_ids


class _Compiler:
    """One compile_ap invocation's working state."""

    def __init__(self, ap: AcceleratedProgram, max_nodes: int) -> None:
        if ap.root is None:
            raise SpecializeAbort("AP has no root")
        self.ap = ap
        self.max_nodes = max_nodes
        self.entry_objs, self.entry_ids = _segment_structure(ap.root)
        self.node_count = sum(
            1 for obj in self._all_nodes())
        if self.node_count > max_nodes:
            raise SpecializeAbort(
                f"AP too large to specialize ({self.node_count} nodes)")
        #: seg -> list of ("probe"|"instr", APNode) steps plus one
        #: terminator ("guard", node) / ("jump", seg) / ("dead", None) /
        #: ("terminal", Terminal).
        self.bodies: Dict[int, List[Tuple[str, object]]] = {}
        #: Dataflow edges (src_seg, dst_seg, frozenset-of-int gains).
        self.edges: List[Tuple[int, int, frozenset]] = []
        self.always: Dict[int, Set[int]] = {}
        self.maybe: Dict[int, Set[int]] = {}
        self.fold: Dict[int, int] = {}
        #: Folded regs that still need a runtime variable (shortcut
        #: probe inputs that are not always defined at the probe).
        self.materialize: Set[int] = set()
        #: Probe classification: (seg, step_index) -> list of
        #: ("const"|"var"|"maybe"|"never", operand) per input reg.
        self.probe_plan: Dict[Tuple[int, int], List[Tuple[str, object]]] = {}
        self.all_regs: Set[int] = set()
        self.env: Dict[str, object] = {}
        self._const_n = 0

    # -- helpers ---------------------------------------------------------

    def _all_nodes(self):
        seen: Set[int] = set()
        stack: List[object] = [self.ap.root]
        while stack:
            node = stack.pop()
            if not isinstance(node, APNode) or id(node) in seen:
                continue
            seen.add(id(node))
            yield node
            if node.branches is not None:
                stack.extend(node.branches.values())
            elif node.next is not None:
                stack.append(node.next)

    def const(self, value, prefix: str = "K") -> str:
        name = f"_{prefix}{self._const_n}"
        self._const_n += 1
        self.env[name] = value
        return name

    # -- pass 1: segment bodies + dataflow edges -------------------------

    def build_segments(self) -> None:
        for seg, obj in enumerate(self.entry_objs):
            if isinstance(obj, Terminal):
                self.bodies[seg] = [("terminal", obj)]
                continue
            body: List[Tuple[str, object]] = []
            defs: Set[int] = set()
            node: object = obj
            budget = self.node_count + 1
            while True:
                if isinstance(node, Terminal):
                    tseg = self.entry_ids[id(node)]
                    self.edges.append((seg, tseg, frozenset(defs)))
                    body.append(("jump", tseg))
                    break
                if node is None:
                    body.append(("dead", None))
                    break
                if node is not obj and id(node) in self.entry_ids:
                    tseg = self.entry_ids[id(node)]
                    self.edges.append((seg, tseg, frozenset(defs)))
                    body.append(("jump", tseg))
                    break
                budget -= 1
                if budget < 0:
                    raise SpecializeAbort("AP walk exceeded node budget")
                if node.shortcut is not None:
                    body.append(("probe", node))
                    for _key, (outputs, resume) in \
                            node.shortcut.entries.items():
                        gain = defs | {int(r) for r in outputs}
                        self.edges.append(
                            (seg, self.entry_ids[id(resume)],
                             frozenset(gain)))
                instr: SInstr = node.instr
                if instr.kind is SKind.GUARD:
                    body.append(("guard", node))
                    for child in node.branches.values():
                        self.edges.append(
                            (seg, self.entry_ids[id(child)],
                             frozenset(defs)))
                    break
                body.append(("instr", node))
                if instr.dest is not None:
                    defs.add(int(instr.dest))
                node = node.next
            self.bodies[seg] = body

    # -- pass 2: fixpoint dataflow ---------------------------------------

    def dataflow(self) -> None:
        self.always[0] = set()
        self.maybe[0] = set()
        changed = True
        while changed:
            changed = False
            for src, dst, gain in self.edges:
                if src not in self.always:
                    continue
                cand = self.always[src] | gain
                if dst not in self.always:
                    self.always[dst] = set(cand)
                    changed = True
                else:
                    inter = self.always[dst] & cand
                    if inter != self.always[dst]:
                        self.always[dst] = inter
                        changed = True
                mcand = self.maybe[src] | gain
                if dst not in self.maybe:
                    self.maybe[dst] = set(mcand)
                    changed = True
                elif not mcand <= self.maybe[dst]:
                    self.maybe[dst] |= mcand
                    changed = True

    # -- pass 3: constant folding ----------------------------------------

    def fold_constants(self) -> None:
        out_union: Set[int] = set()
        defcount: Dict[int, int] = {}
        computes: List[SInstr] = []
        for node in self._all_nodes():
            instr = node.instr
            if instr.dest is not None:
                d = int(instr.dest)
                defcount[d] = defcount.get(d, 0) + 1
            if instr.kind is SKind.COMPUTE:
                computes.append(instr)
            if node.shortcut is not None:
                for outputs, _resume in node.shortcut.entries.values():
                    out_union.update(int(r) for r in outputs)
        dead: Set[int] = set()
        changed = True
        while changed:
            changed = False
            for instr in computes:
                d = int(instr.dest)
                if (d in self.fold or d in dead or d in out_union
                        or defcount[d] != 1):
                    continue
                vals: List[int] = []
                ok = True
                for arg in instr.args:
                    if is_reg(arg):
                        if int(arg) in self.fold:
                            vals.append(self.fold[int(arg)])
                        else:
                            ok = False
                            break
                    else:
                        vals.append(int(arg))
                if not ok:
                    continue
                try:
                    self.fold[d] = evaluate_compute(instr, tuple(vals))
                except Exception:  # pragma: no cover - defensive
                    dead.add(d)
                    continue
                changed = True

    # -- pass 4: planning (SSA + definedness + probe classes) ------------

    def _route_ssa_check(self) -> None:
        """No register may be assigned twice along any execution path.

        This is what makes buffer-time WRITE operand resolution (the
        closure) equivalent to the walker's commit-time resolution, and
        per-path constant inlining sound.  The AP is a tree, so one
        DFS with per-branch set copies covers every path.
        """
        budget = 16 * (self.node_count + 1)
        stack: List[Tuple[object, Set[int]]] = [(self.ap.root, set())]
        while stack:
            node, defined = stack.pop()
            budget -= 1
            if budget < 0:
                raise SpecializeAbort("SSA check exceeded budget")
            if not isinstance(node, APNode):
                continue
            instr = node.instr
            if instr.dest is not None:
                d = int(instr.dest)
                if d in defined:
                    raise SpecializeAbort(f"register v{d} redefined on path")
                defined.add(d)
            if node.branches is not None:
                for child in node.branches.values():
                    stack.append((child, set(defined)))
            elif node.next is not None:
                stack.append((node.next, defined))

    def _use(self, operand, cur: Set[int]) -> None:
        """Record a strict use; abort unless provably defined."""
        if is_reg(operand):
            r = int(operand)
            if r not in cur:
                raise SpecializeAbort(
                    f"use of register v{r} not always defined")
            if r not in self.fold:
                self.all_regs.add(r)

    def plan(self) -> None:
        self._route_ssa_check()
        for seg, body in self.bodies.items():
            cur = set(self.always.get(seg, set()))
            curm = set(self.maybe.get(seg, set()))
            for index, (kind, node) in enumerate(body):
                if kind == "probe":
                    plan: List[Tuple[str, object]] = []
                    for reg in node.shortcut.input_regs:
                        r = int(reg)
                        if r in cur:
                            if r in self.fold:
                                plan.append(("const", self.fold[r]))
                            else:
                                plan.append(("var", r))
                                self.all_regs.add(r)
                        elif r in curm:
                            plan.append(("maybe", r))
                            self.all_regs.add(r)
                            if r in self.fold:
                                self.materialize.add(r)
                        else:
                            plan.append(("never", r))
                    self.probe_plan[(seg, index)] = plan
                    for outputs, _resume in node.shortcut.entries.values():
                        for reg in outputs:
                            self.all_regs.add(int(reg))
                elif kind == "instr":
                    instr = node.instr
                    for arg in instr.args:
                        self._use(arg, cur)
                    if instr.dest is not None:
                        d = int(instr.dest)
                        cur.add(d)
                        curm.add(d)
                        if d not in self.fold or d in self.materialize:
                            self.all_regs.add(d)
                elif kind == "guard":
                    for arg in node.instr.args:
                        self._use(arg, cur)
                elif kind == "terminal":
                    term: Terminal = node
                    for _off, piece in term.return_pieces:
                        if piece[0] == "reg":
                            self._use(piece[1], cur)

    # -- pass 5: emission ------------------------------------------------

    def operand_expr(self, operand) -> str:
        if is_reg(operand):
            r = int(operand)
            if r in self.fold and r not in self.materialize:
                return repr(self.fold[r])
            return f"r{r}"
        return repr(int(operand))

    def emit(self) -> Tuple[List[str], int]:
        lines: List[str] = []
        folded_emitted = 0
        pend_cpu: Dict[str, int] = {}
        pend_nodes = 0
        pend_guards = 0

        def flush(indent: str) -> None:
            nonlocal pend_nodes, pend_guards
            for bucket, amount in pend_cpu.items():
                lines.append(f"{indent}_ac({amount}, {bucket!r})")
            pend_cpu.clear()
            if pend_nodes:
                lines.append(f"{indent}stats.executed_nodes += {pend_nodes}")
                pend_nodes = 0
            if pend_guards:
                lines.append(f"{indent}stats.guards_checked += {pend_guards}")
                pend_guards = 0

        def charge(bucket: str, amount: int) -> None:
            pend_cpu[bucket] = pend_cpu.get(bucket, 0) + amount

        ind = " " * 12
        for seg, body in sorted(self.bodies.items()):
            head = "if" if seg == 0 else "elif"
            lines.append(f"        {head} seg == {seg}:")
            emitted_any = False
            for index, (kind, node) in enumerate(body):
                emitted_any = True
                if kind == "probe":
                    self._emit_probe(lines, ind, node,
                                     self.probe_plan[(seg, index)],
                                     flush, charge)
                elif kind == "instr":
                    folded_emitted += self._emit_instr(
                        lines, ind, node, charge)
                    pend_nodes += 1
                elif kind == "guard":
                    charge("guard", costmodel.GUARD)
                    pend_nodes += 1
                    pend_guards += 1
                    flush(ind)
                    self._emit_guard(lines, ind, node)
                elif kind == "jump":
                    flush(ind)
                    lines.append(f"{ind}seg = {node}")
                    lines.append(f"{ind}continue")
                elif kind == "dead":
                    flush(ind)
                    lines.append(
                        f"{ind}raise _CV("
                        "'AP tree ended without a terminal')")
                else:  # terminal
                    flush(ind)
                    self._emit_terminal(lines, ind, node)
            if not emitted_any:  # pragma: no cover - defensive
                lines.append(f"{ind}raise _CV('empty segment')")
        return lines, folded_emitted

    def _emit_instr(self, lines: List[str], ind: str, node: APNode,
                    charge) -> int:
        instr = node.instr
        kind = instr.kind
        if kind is SKind.COMPUTE:
            charge("compute", costmodel.AP_COMPUTE)
            d = int(instr.dest)
            if d in self.fold:
                if d in self.materialize:
                    lines.append(f"{ind}r{d} = {self.fold[d]!r}")
                return 1
            args = [self.operand_expr(a) for a in instr.args]
            template = _HOT_TEMPLATES.get(instr.op)
            if template is not None and len(args) <= len(_ARG_SLOTS):
                expr = template.format(
                    **dict(zip(_ARG_SLOTS, args)))
            else:
                fn_name = self.const(
                    (lambda _i: lambda args_: evaluate_compute(_i, args_)
                     )(instr), "F")
                expr = f"{fn_name}(({', '.join(args)},))"
            lines.append(f"{ind}r{d} = {expr}")
            return 0
        if kind is SKind.READ:
            charge("read", costmodel.AP_READ)
            self._emit_read(lines, ind, instr)
            return 0
        # WRITE: buffer the resolved values (route-SSA makes this
        # equivalent to the walker's commit-time resolution).
        charge("write-buffer", costmodel.GUARD)
        if instr.op == "SSTORE":
            addr = int(instr.key[0])
            slot = self.operand_expr(instr.args[0])
            value = self.operand_expr(instr.args[1])
            lines.append(f"{ind}_wb.append(({addr!r}, {slot}, {value}))")
        else:  # LOG
            addr = int(instr.key[0])
            topic_count = instr.meta["topic_count"]
            size = instr.meta["data_size"]
            topics = [self.operand_expr(a)
                      for a in instr.args[:topic_count]]
            words = [self.operand_expr(a)
                     for a in instr.args[topic_count:]]
            topics_expr = "(" + ", ".join(topics) + ("," if topics else "") \
                + ")"
            words_expr = "(" + ", ".join(words) + ("," if words else "") + ")"
            lines.append(
                f"{ind}_wb.append(({addr!r}, {topics_expr}, "
                f"{words_expr}, {size!r}))")
        return 0

    def _emit_read(self, lines: List[str], ind: str, instr: SInstr) -> None:
        d = int(instr.dest)
        op = instr.op
        if op == "SLOAD":
            addr = int(instr.key[0])
            slot = self.operand_expr(instr.args[0])
            lines.append(f"{ind}r{d} = _gs({addr!r}, {slot})")
            lines.append(
                f"{ind}_sd(('storage', ({addr!r}, {slot})), r{d})")
        elif op == "BALANCE":
            addr = self.operand_expr(instr.args[0])
            lines.append(f"{ind}r{d} = _gb({addr})")
            lines.append(f"{ind}_sd(('balance', ({addr},)), r{d})")
        elif op == "BLOCKHASH":
            number = self.operand_expr(instr.args[0])
            lines.append(f"{ind}r{d} = bh({number})")
            lines.append(f"{ind}_sd(('blockhash', ({number},)), r{d})")
        elif op == "EXTCODESIZE":
            addr = self.operand_expr(instr.args[0])
            lines.append(f"{ind}r{d} = len(_gc({addr}))")
            lines.append(f"{ind}_sd(('extcodesize', ({addr},)), r{d})")
        else:
            field = instr.key[0]
            if not (isinstance(field, str) and field.isidentifier()):
                raise SpecializeAbort(f"odd header field {field!r}")
            lines.append(f"{ind}r{d} = header.{field}")
            lines.append(f"{ind}_sd(('header', ({field!r},)), r{d})")

    def _emit_probe(self, lines: List[str], ind: str, node: APNode,
                    plan: List[Tuple[str, object]], flush, charge) -> None:
        charge("shortcut", costmodel.SHORTCUT_PROBE)
        flush(ind)
        shortcut = node.shortcut
        table = {key: (dict(outputs), self.entry_ids[id(resume)])
                 for key, (outputs, resume) in shortcut.entries.items()}
        tname = self.const(table, "S")
        never = any(cls == "never" for cls, _ in plan)
        maybes = [f"r{r} is _U" for cls, r in plan if cls == "maybe"]
        parts = []
        for cls, payload in plan:
            if cls == "const":
                parts.append(repr(payload))
            elif cls == "never":
                parts.append("0")  # unreachable: key is forced to None
            else:
                parts.append(f"r{payload}")
        key_expr = "(" + ", ".join(parts) + ("," if parts else "") + ")"
        if never:
            lines.append(f"{ind}_e = None")
        elif maybes:
            lines.append(f"{ind}if {' or '.join(maybes)}:")
            lines.append(f"{ind}    _e = None")
            lines.append(f"{ind}else:")
            lines.append(f"{ind}    _e = {tname}.get({key_expr})")
        else:
            lines.append(f"{ind}_e = {tname}.get({key_expr})")
        lines.append(f"{ind}if _e is not None:")
        lines.append(f"{ind}    stats.shortcut_hits += 1")
        lines.append(f"{ind}    stats.skipped_nodes += {shortcut.length}")
        out_union = sorted({int(r)
                            for outputs, _seg in table.values()
                            for r in outputs})
        if out_union:
            lines.append(f"{ind}    _o = _e[0]")
            for r in out_union:
                lines.append(f"{ind}    r{r} = _o.get({r}, r{r})")
        lines.append(f"{ind}    seg = _e[1]")
        lines.append(f"{ind}    continue")
        lines.append(f"{ind}stats.shortcut_misses += 1")

    def _emit_guard(self, lines: List[str], ind: str, node: APNode) -> None:
        instr = node.instr
        branch_name = self.const(
            {key: self.entry_ids[id(child)]
             for key, child in node.branches.items()}, "B")
        repr_name = self.const(f"guard {instr!r} observed ", "G")
        args = [self.operand_expr(a) for a in instr.args]
        mode = instr.guard_mode
        if mode is GuardMode.EQ:
            lines.append(f"{ind}_t = {branch_name}.get({args[0]})")
        elif mode is GuardMode.TRUTH:
            lines.append(f"{ind}_t = {branch_name}.get(bool({args[0]}))")
        elif mode is GuardMode.NEQ:
            lines.append(f"{ind}if ({args[0]}) != ({args[1]}):")
            lines.append(f"{ind}    _t = {branch_name}.get(True)")
            lines.append(f"{ind}else:")
            lines.append(f"{ind}    _t = None")
        else:  # pragma: no cover - future guard modes
            raise SpecializeAbort(f"unknown guard mode {mode!r}")
        values_expr = "(" + ", ".join(args) + ("," if args else "") + ")"
        lines.append(f"{ind}if _t is None:")
        lines.append(
            f"{ind}    raise _CV({repr_name} + str({values_expr}))")
        lines.append(f"{ind}seg = _t")
        lines.append(f"{ind}continue")

    def _emit_terminal(self, lines: List[str], ind: str,
                       term: Terminal) -> None:
        lines.append(f"{ind}if _wb:")
        lines.append(f"{ind}    _ac({costmodel.AP_WRITE} * len(_wb), "
                     "'write')")
        lines.append(f"{ind}    for _w in _wb:")
        lines.append(f"{ind}        if len(_w) == 3:")
        lines.append(f"{ind}            _ss(_w[0], _w[1], _w[2])")
        lines.append(f"{ind}        else:")
        lines.append(f"{ind}            _al(_w[0], _w[1], "
                     "b''.join(map(_ib, _w[2]))[:_w[3]])")
        self._emit_return_data(lines, ind, term)
        term_name = self.const(term, "T")
        lines.append(
            f"{ind}return _AO(success={term.success!r}, "
            f"gas_used={term.gas_used!r}, return_data=_rd, "
            f"terminal={term_name}, stats=stats, "
            "observed_reads=observed)")

    def _emit_return_data(self, lines: List[str], ind: str,
                          term: Terminal) -> None:
        size = term.return_size
        if size == 0:
            lines.append(f"{ind}_rd = b''")
            return
        template = bytearray(size)
        patches: List[Tuple[int, int, int, int]] = []
        needs_generic = False
        for rel_off, piece in term.return_pieces:
            kind = piece[0]
            if kind == "reg":
                reg = int(piece[1])
                _, _, src_start, length = piece
                if reg in self.fold and reg not in self.materialize:
                    # Folded regs bake into the template like const
                    # pieces — but the template is written *before*
                    # runtime patches, so an earlier overlapping patch
                    # would incorrectly win.  Pieces apply in order;
                    # fall back to the generic materializer to keep
                    # walked/compiled results byte-identical.
                    lo, hi = rel_off, rel_off + length
                    for p_off, _r, _s, p_len in patches:
                        if p_off < hi and lo < p_off + p_len:
                            needs_generic = True
                    word = int_to_bytes32(self.fold[reg])
                    template[rel_off:rel_off + length] = \
                        word[src_start:src_start + length]
                    continue
                patches.append((rel_off, reg, src_start, length))
            elif kind == "bytes":
                payload = piece[1]
                lo, hi = rel_off, rel_off + len(payload)
                for p_off, _r, _s, p_len in patches:
                    if p_off < hi and lo < p_off + p_len:
                        needs_generic = True
                template[rel_off:rel_off + len(payload)] = payload
            # "zero": template already zero
        if needs_generic:
            pieces_name = self.const(list(term.return_pieces), "P")
            regs_items = ", ".join(
                f"{reg}: {self.operand_expr(piece[1])}"
                for _off, piece in term.return_pieces
                if piece[0] == "reg"
                for reg in [int(piece[1])])
            lines.append(
                f"{ind}_rd = _mr({pieces_name}, {size}, "
                "{" + regs_items + "})")
            return
        template_name = self.const(bytes(template), "D")
        if not patches:
            lines.append(f"{ind}_rd = {template_name}")
            return
        lines.append(f"{ind}_buf = bytearray({template_name})")
        for rel_off, reg, src_start, length in patches:
            lines.append(
                f"{ind}_buf[{rel_off}:{rel_off + length}] = "
                f"_ib(r{reg})[{src_start}:{src_start + length}]")
        lines.append(f"{ind}_rd = bytes(_buf)")

    # -- driver ----------------------------------------------------------

    def compile(self, version: int) -> CompiledAP:
        self.build_segments()
        self.dataflow()
        self.fold_constants()
        self.plan()
        body_lines, _ = self.emit()

        lines: List[str] = [
            "def _ap(state, header, bh, tally):",
            "    stats = _ST()",
            "    observed = {}",
            "    _wb = []",
            "    _ac = tally.add_cpu",
            "    _sd = observed.setdefault",
            "    _gs = state.get_storage",
            "    _gb = state.get_balance",
            "    _gc = state.get_code",
            "    _ss = state.set_storage",
            "    _al = state.add_log",
        ]
        regs = sorted(self.all_regs)
        for start in range(0, len(regs), 10):
            chunk = regs[start:start + 10]
            targets = " = ".join(f"r{r}" for r in chunk)
            lines.append(f"    {targets} = _U")
        lines.append("    seg = 0")
        lines.append("    while True:")
        lines.extend(body_lines)

        source = "\n".join(lines) + "\n"
        self.env.update({
            "_ST": APExecStats,
            "_AO": APOutcome,
            "_CV": ConstraintViolation,
            "_U": _UNSET,
            "_M": (1 << 256) - 1,
            "_P": 1 << 256,
            "_S": to_signed,
            "_ib": int_to_bytes32,
            "_mr": materialize_return,
        })
        code = compile(source, f"<jit-ap-{self.ap.tx_hash:#x}>", "exec")
        exec(code, self.env)  # noqa: S102 - the whole point of a JIT
        return CompiledAP(
            fn=self.env["_ap"],
            version=version,
            node_count=self.node_count,
            segment_count=len(self.entry_objs),
            folded_count=len(self.fold),
            source=source,
        )


def compile_ap(ap: AcceleratedProgram, version: int = 0,
               max_nodes: int = 4096) -> CompiledAP:
    """Compile ``ap`` into a specialized closure.

    Raises :class:`SpecializeAbort` when equivalence to the interpreted
    walk cannot be proven; the caller keeps the AP on the slow tier.
    """
    return _Compiler(ap, max_nodes).compile(version)
