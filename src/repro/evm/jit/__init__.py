"""Two-layer compile tier (ROADMAP open item: closing the wall-clock
inversion).

Layer 1 (:mod:`repro.evm.jit.specialize` + :mod:`repro.evm.jit.tier`)
compiles hot AP trees into specialized straight-line Python closures;
Layer 2 (:mod:`repro.evm.jit.peephole`) is a window-rule
superoptimizer over minisol codegen output.  See docs/COMPILER.md.
"""

from repro.evm.jit.peephole import PeepholeStats, optimize_assembly
from repro.evm.jit.specialize import (
    HOT_OPS,
    CompiledAP,
    SpecializeAbort,
    compile_ap,
)
from repro.evm.jit.tier import JitTier

__all__ = [
    "CompiledAP",
    "HOT_OPS",
    "JitTier",
    "PeepholeStats",
    "SpecializeAbort",
    "compile_ap",
    "optimize_assembly",
]
