"""Layer 2 of the compile tier: a peephole superoptimizer for minisol.

Operates on the assembly *text* the minisol code generator emits,
before :func:`repro.evm.assembler.assemble` turns it into bytecode
(the shape argued for in *Blockchain Superoptimizer*, see PAPERS.md:
EVM stack code is full of locally-removable push/pop traffic).

Window rules are applied to fixpoint, and windows never cross a basic
block boundary — a ``label:`` line or a ``JUMPDEST`` instruction —
because those positions can be reached from elsewhere.  The pass
assumes (and minisol's code generator guarantees) that every jump
target is a ``PUSH @label``: raw numeric jump targets would make the
unreachable-code rule unsound, so this pass must only run on minisol
codegen output.

Rule catalog (see docs/COMPILER.md):

==================  =====================================================
rule                rewrite
==================  =====================================================
``push-pop``        ``PUSH x; POP`` -> (nothing)
``dup-pop``         ``DUPn; POP`` -> (nothing)
``swap-swap``       ``SWAPn; SWAPn`` -> (nothing)
``push-swap``       ``PUSH a; PUSH b; SWAP1`` -> ``PUSH b; PUSH a``
``fold-const``      ``PUSH a; PUSH b; <binop>`` -> ``PUSH sem(b, a)``
``fold-unary``      ``PUSH a; ISZERO|NOT`` -> ``PUSH sem(a)``
``identity``        ``PUSH 0; ADD|OR|XOR`` / ``PUSH 1; MUL`` -> (nothing)
``const-jumpi``     ``PUSH c; PUSH @L; JUMPI`` -> ``PUSH @L; JUMP`` (c!=0)
``dead-jumpi``      ``PUSH 0; PUSH @L; JUMPI`` -> (nothing)
``unreachable``     drop instructions after JUMP/STOP/RETURN/REVERT
                    until the next label or JUMPDEST
``dead-label``      drop an unreferenced ``label:`` plus its JUMPDEST
==================  =====================================================

Every rule is individually verified by differential execution in
``tests/test_specialize_conformance.py``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.evm.interpreter import COMPUTE_SEMANTICS
from repro.evm.opcodes import NAME_TO_OP

#: Two-operand pure ops safe to fold; semantics come straight from the
#: interpreter's COMPUTE_SEMANTICS table (fold == execute).
_FOLD_BINARY = {
    name: COMPUTE_SEMANTICS[code]
    for name, code in NAME_TO_OP.items()
    if code in COMPUTE_SEMANTICS
    and name in ("ADD", "MUL", "SUB", "DIV", "SDIV", "MOD", "SMOD",
                 "EXP", "SIGNEXTEND", "LT", "GT", "SLT", "SGT", "EQ",
                 "AND", "OR", "XOR", "BYTE", "SHL", "SHR", "SAR")
}
_FOLD_UNARY = {
    name: COMPUTE_SEMANTICS[NAME_TO_OP[name]]
    for name in ("ISZERO", "NOT")
}

_TERMINATORS = ("JUMP", "STOP", "RETURN", "REVERT")

_LABEL_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")
_DUP_RE = re.compile(r"^DUP([0-9]+)$")
_SWAP_RE = re.compile(r"^SWAP([0-9]+)$")


@dataclass
class _Item:
    """One parsed assembly line."""

    kind: str            # "label" | "push" | "pushlabel" | "op" | "other"
    name: str = ""       # mnemonic or label name
    value: int = 0       # push immediate
    text: str = ""       # original line (re-emitted when untouched)

    @classmethod
    def push(cls, value: int) -> "_Item":
        return cls("push", name="PUSH", value=value,
                   text=f"PUSH {value}")

    @classmethod
    def pushlabel(cls, label: str) -> "_Item":
        return cls("pushlabel", name=label, text=f"PUSH @{label}")

    @classmethod
    def op(cls, name: str) -> "_Item":
        return cls("op", name=name, text=name)


@dataclass
class PeepholeStats:
    """What one :func:`optimize_assembly` run did."""

    rules: Dict[str, int] = field(default_factory=dict)
    instructions_before: int = 0
    instructions_after: int = 0
    passes: int = 0

    @property
    def removed(self) -> int:
        return self.instructions_before - self.instructions_after

    def hit(self, rule: str, count: int = 1) -> None:
        self.rules[rule] = self.rules.get(rule, 0) + count


def _parse(text: str) -> List[_Item]:
    items: List[_Item] = []
    for raw in text.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        match = _LABEL_RE.match(line)
        if match:
            items.append(_Item("label", name=match.group(1), text=line))
            continue
        parts = line.split()
        mnemonic = parts[0].upper()
        if mnemonic.startswith("PUSH") and len(parts) == 2:
            operand = parts[1]
            if operand.startswith("@"):
                items.append(_Item("pushlabel", name=operand[1:],
                                   text=line))
            else:
                items.append(_Item("push", name=mnemonic,
                                   value=int(operand, 0), text=line))
            continue
        items.append(_Item("op", name=mnemonic, text=line))
    return items


def _is_barrier(item: _Item) -> bool:
    """May control flow enter *at* this item from elsewhere?"""
    return (item.kind == "label"
            or (item.kind == "op" and item.name == "JUMPDEST"))


def _is_instruction(item: _Item) -> bool:
    return item.kind in ("push", "pushlabel", "op")


def _is_any_push(item: _Item) -> bool:
    return item.kind in ("push", "pushlabel")


def _window_pass(items: List[_Item], stats: PeepholeStats) -> bool:
    """One left-to-right sweep of the window rules; True if changed."""
    out: List[_Item] = []
    i = 0
    changed = False
    n = len(items)
    while i < n:
        a = items[i]
        b = items[i + 1] if i + 1 < n else None
        c = items[i + 2] if i + 2 < n else None

        # Windows must not contain a barrier after their first item.
        b_ok = b is not None and not _is_barrier(b)
        c_ok = c is not None and not _is_barrier(c)

        if (_is_any_push(a) or (a.kind == "op" and _DUP_RE.match(a.name))) \
                and b_ok and b.kind == "op" and b.name == "POP":
            stats.hit("push-pop" if _is_any_push(a) else "dup-pop")
            i += 2
            changed = True
            continue
        if (a.kind == "op" and _SWAP_RE.match(a.name)
                and b_ok and b.kind == "op" and b.name == a.name):
            stats.hit("swap-swap")
            i += 2
            changed = True
            continue
        if (_is_any_push(a) and b_ok and _is_any_push(b)
                and c_ok and c.kind == "op" and c.name == "SWAP1"):
            stats.hit("push-swap")
            out.append(b)
            out.append(a)
            i += 3
            changed = True
            continue
        if (a.kind == "push" and b_ok and b.kind == "push"
                and c_ok and c.kind == "op" and c.name in _FOLD_BINARY):
            # Stack is [.., a, b(top)]; the op pops top first, so the
            # interpreter computes sem(b, a).
            stats.hit("fold-const")
            out.append(_Item.push(_FOLD_BINARY[c.name](b.value, a.value)))
            i += 3
            changed = True
            continue
        if (a.kind == "push" and b_ok and b.kind == "op"
                and b.name in _FOLD_UNARY):
            stats.hit("fold-unary")
            out.append(_Item.push(_FOLD_UNARY[b.name](a.value)))
            i += 2
            changed = True
            continue
        if (a.kind == "push" and b_ok and b.kind == "op"
                and ((a.value == 0 and b.name in ("ADD", "OR", "XOR"))
                     or (a.value == 1 and b.name == "MUL"))):
            stats.hit("identity")
            i += 2
            changed = True
            continue
        if (a.kind == "push" and b_ok and b.kind == "pushlabel"
                and c_ok and c.kind == "op" and c.name == "JUMPI"):
            if a.value == 0:
                stats.hit("dead-jumpi")
            else:
                stats.hit("const-jumpi")
                out.append(b)
                out.append(_Item.op("JUMP"))
            i += 3
            changed = True
            continue
        out.append(a)
        i += 1
    items[:] = out
    return changed


def _unreachable_pass(items: List[_Item], stats: PeepholeStats) -> bool:
    """Drop instructions after an unconditional terminator until the
    next barrier (label / JUMPDEST): nothing can reach them."""
    out: List[_Item] = []
    dead = False
    dropped = 0
    for item in items:
        if _is_barrier(item):
            dead = False
        if dead and _is_instruction(item):
            dropped += 1
            continue
        out.append(item)
        if item.kind == "op" and item.name in _TERMINATORS:
            dead = True
    if dropped:
        stats.hit("unreachable", dropped)
        items[:] = out
        return True
    return False


def _dead_label_pass(items: List[_Item], stats: PeepholeStats) -> bool:
    """Remove unreferenced labels and their (now-unreachable from a
    jump) JUMPDEST — only when the JUMPDEST immediately follows the
    label, which is how the minisol codegen always emits them, and only
    when falling *through* the JUMPDEST is impossible (the preceding
    instruction is an unconditional terminator or nothing)."""
    referenced = {item.name for item in items if item.kind == "pushlabel"}
    out: List[_Item] = []
    changed = False
    i = 0
    n = len(items)
    while i < n:
        item = items[i]
        if item.kind == "label" and item.name not in referenced:
            prev_instr: Optional[_Item] = None
            for back in reversed(out):
                if _is_instruction(back):
                    prev_instr = back
                    break
                if back.kind == "label":
                    prev_instr = None
                    break
            nxt = items[i + 1] if i + 1 < n else None
            unreachable = (prev_instr is not None
                           and prev_instr.kind == "op"
                           and prev_instr.name in _TERMINATORS)
            if (unreachable and nxt is not None and nxt.kind == "op"
                    and nxt.name == "JUMPDEST"):
                stats.hit("dead-label")
                i += 2
                changed = True
                continue
            # Keep an unreferenced label alone: it emits no bytes.
        out.append(item)
        i += 1
    if changed:
        items[:] = out
    return changed


def optimize_assembly(text: str,
                      max_passes: int = 16
                      ) -> Tuple[str, PeepholeStats]:
    """Apply the peephole rules to fixpoint; returns (text, stats)."""
    items = _parse(text)
    stats = PeepholeStats(
        instructions_before=sum(1 for it in items if _is_instruction(it)))
    for _ in range(max_passes):
        stats.passes += 1
        changed = _window_pass(items, stats)
        changed = _unreachable_pass(items, stats) or changed
        changed = _dead_label_pass(items, stats) or changed
        if not changed:
            break
    stats.instructions_after = sum(
        1 for it in items if _is_instruction(it))
    lines = [item.text for item in items]
    return "\n".join(lines) + ("\n" if lines else ""), stats
