"""Tiering policy for the trace-guided specialization compiler.

One :class:`JitTier` instance lives on each Forerunner node and is
shared by the speculator (compile side) and the transaction accelerator
(execute side):

* **compile side** — after every successful AP merge the speculator
  offers the AP for compilation.  The tier compiles when the trace is
  *hot*: its fingerprint deduplicated against an earlier synthesis
  (the same trace was observed again), the AP accumulated at least
  ``hot_threshold`` speculated contexts, or an earlier artifact exists
  (tree changed -> refresh).  Compilation is off the critical path and
  chaos-contained by the speculator, so a failed compile only means
  the AP stays interpreted.
* **execute side** — the accelerator routes AP execution through
  :meth:`execute`.  A valid artifact runs the specialized closure; a
  version mismatch (reorg / redeploy invalidation) is a *bailout*: the
  artifact is dropped and the general walker runs instead, which is
  byte-identical to never having specialized.

Every decision is counted under the ``jit.*`` obs scope so two-run
determinism checks cover the tier.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.ap import AcceleratedProgram
from repro.core.ap_exec import APOutcome, execute_ap
from repro.core.costmodel import CostTally
from repro.errors import ConstraintViolation
from repro.evm.interpreter import invalidate_code_caches
from repro.evm.jit.specialize import CompiledAP, SpecializeAbort, compile_ap
from repro.obs.registry import MetricsRegistry, get_registry


class JitTier:
    """Owns compile policy, artifact validity, and the jit.* counters."""

    def __init__(self, enabled: bool = True, hot_threshold: int = 1,
                 max_nodes: int = 4096,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.enabled = enabled
        self.hot_threshold = hot_threshold
        self.max_nodes = max_nodes
        #: Bumped by :meth:`invalidate`; artifacts compiled under an
        #: older version bail out to the interpreted walk.
        self.version = 0
        #: Tier label of the most recent :meth:`execute` call:
        #: "jit" when a valid closure ran, "walk" on any fallback.
        self.last_used = "walk"
        registry = registry or get_registry()
        obs = registry.scope("jit")
        self.c_compiles = obs.counter("compiles")
        self.c_compile_aborts = obs.counter("compile_aborts")
        self.c_compiled_nodes = obs.counter("compiled_nodes")
        self.c_hits = obs.counter("hits")
        self.c_misses = obs.counter("misses")
        self.c_bailouts = obs.counter("bailouts")
        self.c_guard_failures = obs.counter("guard_failures")
        self.c_invalidations = obs.counter("invalidations")

    # -- compile side -----------------------------------------------------

    def release(self, ap: AcceleratedProgram) -> None:
        """Drop the AP's artifact (the tree is about to be mutated)."""
        ap.jit = None

    def is_hot(self, ap: AcceleratedProgram, deduped: bool = False) -> bool:
        return (deduped
                or len(ap.context_ids) >= self.hot_threshold
                or ap.jit is not None)

    def compile(self, ap: AcceleratedProgram,
                deduped: bool = False) -> Optional[CompiledAP]:
        """Compile ``ap`` if the tier is on and the trace is hot.

        Returns the artifact (also stored on ``ap.jit``) or ``None``.
        Raises nothing: a :class:`SpecializeAbort` is counted and the
        AP stays on the interpreted tier.
        """
        if not self.enabled or not self.is_hot(ap, deduped):
            return None
        try:
            artifact = compile_ap(ap, version=self.version,
                                  max_nodes=self.max_nodes)
        except SpecializeAbort:
            self.c_compile_aborts.inc()
            ap.jit = None
            return None
        ap.jit = artifact
        self.c_compiles.inc()
        self.c_compiled_nodes.inc(artifact.node_count)
        return artifact

    # -- execute side -----------------------------------------------------

    def execute(self, ap: AcceleratedProgram, state, header, tx,
                tally=None,
                blockhash_fn: Optional[Callable[[int], int]] = None
                ) -> APOutcome:
        """Run ``ap``: specialized closure when valid, walker otherwise.

        Raises :class:`ConstraintViolation` exactly like
        :func:`~repro.core.ap_exec.execute_ap`; the accelerator's
        fallback path is identical either way.
        """
        self.last_used = "walk"
        if not self.enabled:
            return execute_ap(ap, state, header, tx, tally=tally,
                              blockhash_fn=blockhash_fn)
        artifact = ap.jit
        if artifact is None:
            self.c_misses.inc()
            return execute_ap(ap, state, header, tx, tally=tally,
                              blockhash_fn=blockhash_fn)
        if artifact.version != self.version:
            # Stale (reorg/redeploy): bail out *before* any side
            # effects, so the run is byte-identical to never having
            # specialized.  The artifact is dropped; the next merge
            # recompiles against the new world.
            self.c_bailouts.inc()
            ap.jit = None
            return execute_ap(ap, state, header, tx, tally=tally,
                              blockhash_fn=blockhash_fn)
        self.c_hits.inc()
        self.last_used = "jit"
        if tally is None:
            tally = CostTally()
        try:
            return artifact.fn(state, header,
                               blockhash_fn or (lambda n: 0), tally)
        except ConstraintViolation:
            self.c_guard_failures.inc()
            raise

    # -- invalidation ------------------------------------------------------

    def invalidate(self, reason: str = "") -> int:
        """Invalidate every outstanding artifact (reorg / redeploy).

        Also versions the interpreter's decoded-program caches: both
        tiers forget derived code artifacts at the same points.
        """
        self.version += 1
        self.c_invalidations.inc()
        invalidate_code_caches(reason)
        return self.version
