"""The EVM bytecode interpreter.

A faithful (simplified) stack machine covering the instruction subset
listed in ``repro/evm/opcodes.py``: 256-bit arithmetic, comparisons,
bitwise logic, SHA3, environment/block information, volatile memory,
persistent storage, control flow, logging, internal message calls, and
gas metering with revert semantics.

Simplifications (documented in DESIGN.md): flat SSTORE/EXP costs so that
gas consumed along a fixed control path is context-independent, linear
memory-expansion cost, and no precompiles/CREATE.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.chain.block import BlockHeader
from repro.chain.transaction import Transaction
from repro.constants import CALL_DEPTH_LIMIT
from repro.errors import (
    EVMError,
    InsufficientBalance,
    InvalidJump,
    InvalidOpcode,
    OutOfGas,
    Revert,
    WriteProtection,
)
from repro.evm import opcodes
from repro.evm.memory import Memory
from repro.evm.opcodes import Op
from repro.evm.stack import Stack
from repro.evm.tracing import (
    KIND_BALANCE,
    KIND_BLOCKHASH,
    KIND_CODESIZE,
    KIND_HEADER,
    KIND_LOG,
    KIND_STORAGE,
    StepRecord,
    Tracer,
)
from repro.state.statedb import StateDB
from repro.utils.hashing import keccak_int
from repro.utils.words import (
    bytes_to_int,
    int_to_bytes32,
    to_signed,
    to_unsigned,
    u256,
)

#: Gas charged per 32-byte word of memory expansion (linearized).
MEMORY_WORD_GAS = 3
#: Gas charged per 32-byte word hashed by SHA3.
SHA3_WORD_GAS = 6


@dataclass
class Message:
    """Parameters of one (possibly internal) call.

    ``to`` is the *storage context* (the account whose storage SLOAD/
    SSTORE touch); ``code_address`` is where the executing bytecode
    lives.  They differ only for DELEGATECALL.  ``static`` forbids any
    state modification (STATICCALL semantics).
    """

    sender: int
    to: int
    value: int
    data: bytes
    gas: int
    depth: int = 0
    code_address: Optional[int] = None
    static: bool = False

    @property
    def code_at(self) -> int:
        return self.code_address if self.code_address is not None \
            else self.to


@dataclass
class ExecutionResult:
    """Outcome of a full transaction execution."""

    success: bool
    gas_used: int
    return_data: bytes = b""
    logs: List[Tuple[int, Tuple[int, ...], bytes]] = field(default_factory=list)
    error: str = ""


class _Frame:
    """Mutable state of one executing call."""

    __slots__ = ("msg", "code", "stack", "memory", "pc", "gas",
                 "jumpdests", "frame_id", "returned", "program")

    def __init__(self, msg: Message, code: bytes, frame_id: int) -> None:
        self.msg = msg
        self.code = code
        self.stack = Stack()
        self.memory = Memory()
        self.pc = 0
        self.gas = msg.gas
        self.jumpdests = _valid_jumpdests(code)
        self.frame_id = frame_id
        self.returned = b""
        self.program = _decode_program(code)


class _CodeCache:
    """Deterministic bounded LRU for per-code-blob decoded artifacts.

    Keys are the code bytes themselves (content-addressed, so entries
    can never be *stale*); the bound and the versioned
    :func:`invalidate_code_caches` hook exist so long simulations
    cannot grow the cache without limit and so redeploy/reorg handling
    has a single "forget derived code artifacts" point shared with the
    specialization tier.  Recency updates happen at deterministic
    execution points, so eviction order is a pure function of the
    workload (same discipline as the speculator's memo table).
    """

    __slots__ = ("capacity", "entries")

    def __init__(self, capacity: int = 4096) -> None:
        self.capacity = capacity
        self.entries: "OrderedDict[bytes, object]" = OrderedDict()

    def get(self, key: bytes):
        entry = self.entries.get(key)
        if entry is not None:
            self.entries.move_to_end(key)
        return entry

    def put(self, key: bytes, value) -> None:
        self.entries[key] = value
        self.entries.move_to_end(key)
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)


_JUMPDEST_CACHE = _CodeCache()

#: Bumped by :func:`invalidate_code_caches`; exposed for tests and the
#: jit tier, which versions its artifacts in lockstep.
CODE_CACHE_VERSION = 0


def invalidate_code_caches(reason: str = "") -> int:
    """Drop every decoded-program / jumpdest artifact and bump the
    version (contract redeploy or reorg: derived artifacts must not
    outlive the code identity assumptions they were built under)."""
    del reason  # descriptive only; kept for call-site readability
    global CODE_CACHE_VERSION
    CODE_CACHE_VERSION += 1
    _JUMPDEST_CACHE.clear()
    _PROGRAM_CACHE.clear()
    return CODE_CACHE_VERSION


def code_cache_sizes() -> Tuple[int, int]:
    """(jumpdest, program) cache entry counts, for tests/diagnostics."""
    return len(_JUMPDEST_CACHE), len(_PROGRAM_CACHE)


def _valid_jumpdests(code: bytes) -> frozenset:
    """Positions of JUMPDEST opcodes, skipping PUSH immediates.

    Cached per code blob: the same contracts execute over and over
    (real clients cache this analysis too).
    """
    cached = _JUMPDEST_CACHE.get(code)
    if cached is not None:
        return cached
    dests = set()
    i = 0
    n = len(code)
    while i < n:
        op = code[i]
        if op == Op.JUMPDEST:
            dests.add(i)
        if opcodes.is_push(op):
            i += opcodes.push_size(op)
        i += 1
    result = frozenset(dests)
    _JUMPDEST_CACHE.put(code, result)
    return result


_PROGRAM_CACHE = _CodeCache()


def _push_entry(op: int, value: int, next_pc: int):
    """Pre-decoded PUSH: the immediate and the landing pc are baked in."""
    def run(evm: "EVM", frame: "_Frame", pc: int, info) -> None:
        frame.stack.push(value)
        frame.pc = next_pc
        evm._emit(frame, pc, op, info.name, (), value, info.gas)
    return run


def _undefined_entry(op: int):
    message = f"undefined opcode {op:#04x}"

    def run(evm: "EVM", frame: "_Frame", pc: int, info) -> None:
        raise InvalidOpcode(message)
    return run


def _unimplemented_entry(name: str):
    message = f"unimplemented opcode {name}"

    def run(evm: "EVM", frame: "_Frame", pc: int, info) -> None:
        raise InvalidOpcode(message)
    return run


def _decode_program(code: bytes):
    """Per-pc dispatch table: ``program[pc] == (handler, info)``.

    Decoding (opcode lookup, handler binding, PUSH-immediate parsing)
    happens once per code blob instead of once per executed step; the
    same contracts run over and over, so this is cached like the
    jumpdest analysis.  Positions inside PUSH immediates stay ``None``
    — the interpreter loop falls back to byte-at-a-time semantics for
    the (normally unreachable) case of a pc landing there.

    ``info`` is ``None`` for undefined opcodes: the loop then skips the
    gas charge, matching the pre-decode behaviour where the opcode
    lookup failed before any gas was charged.
    """
    cached = _PROGRAM_CACHE.get(code)
    if cached is not None:
        return cached
    n = len(code)
    program: list = [None] * n
    opcode_table = opcodes.OPCODES
    i = 0
    while i < n:
        op = code[i]
        info = opcode_table.get(op)
        if info is None:
            program[i] = (_undefined_entry(op), None)
            i += 1
            continue
        if opcodes.is_push(op):
            size = opcodes.push_size(op)
            value = bytes_to_int(code[i + 1:i + 1 + size])
            program[i] = (_push_entry(op, value, i + 1 + size), info)
            i += 1 + size
            continue
        handler = _HANDLERS.get(op)
        if handler is None:
            handler = _unimplemented_entry(info.name)
        program[i] = (handler, info)
        i += 1
    _PROGRAM_CACHE.put(code, program)
    return program


class EvmMetrics:
    """Optional instrument bundle for interpreter executions.

    Allocated by a caller (e.g. the speculator's predecessor runs) from
    an obs scope; one bundle aggregates over many EVM instances.  The
    interpreter reports into it once per transaction, so the hot
    dispatch loop stays uninstrumented.
    """

    __slots__ = ("transactions", "instructions", "write_ops")

    def __init__(self, scope) -> None:
        self.transactions = scope.counter("transactions")
        self.instructions = scope.counter("instructions")
        self.write_ops = scope.counter("write_ops")

    def record(self, evm: "EVM") -> None:
        self.transactions.inc()
        self.instructions.inc(evm.instruction_count)
        self.write_ops.inc(evm.write_op_count)


#: When True (default), an EVM whose tracer is the no-op base
#: :class:`Tracer` skips StepRecord construction entirely in
#: :meth:`EVM._emit` — the single largest interpreter overhead on the
#: commit path (~30% of `_run`), and pure waste when nobody observes
#: the records.  Semantics are identical either way; the flag exists
#: as the A/B knob for ``benchmarks/test_interp_hotpath.py``.
FAST_EMIT = True


class EVM:
    """Executes messages against a StateDB in a block context.

    One EVM instance executes one transaction; create a fresh instance
    (they are cheap) per transaction.
    """

    def __init__(
        self,
        state: StateDB,
        header: BlockHeader,
        tx: Transaction,
        tracer: Optional[Tracer] = None,
        blockhash_fn: Optional[Callable[[int], int]] = None,
        obs: Optional[EvmMetrics] = None,
        fast_emit: Optional[bool] = None,
    ) -> None:
        self.state = state
        self.header = header
        self.tx = tx
        self.tracer = tracer or Tracer()
        self.blockhash_fn = blockhash_fn or (lambda n: 0)
        self.obs = obs
        self._step_index = 0
        self._next_frame_id = 0
        #: Count of executed instructions (cost-model input).
        self.instruction_count = 0
        #: Count of state-write operations (SSTORE/LOG): these carry
        #: journaling/commit work beyond plain interpretation.
        self.write_op_count = 0
        if fast_emit is None:
            fast_emit = FAST_EMIT
        if fast_emit and type(self.tracer).on_step is Tracer.on_step:
            # No per-step observer: shadow _emit with the counting-only
            # fast path (instance attribute wins over the class
            # method).  Tracers that override only the context hooks —
            # the witness ReadSetRecorder — keep fast dispatch, since
            # those hooks are invoked directly by the read handlers,
            # not through _emit.
            self._emit = self._emit_fast

    # -- transaction entry point -------------------------------------------

    def execute_transaction(self) -> ExecutionResult:
        """Run the full transaction protocol: fee purchase, call, refund."""
        result = self._execute_transaction()
        if self.obs is not None:
            self.obs.record(self)
        return result

    def _execute_transaction(self) -> ExecutionResult:
        tx = self.tx
        intrinsic = tx.intrinsic_gas()
        if tx.gas_limit < intrinsic:
            return ExecutionResult(False, 0, error="intrinsic gas too low")
        if self.state.get_nonce(tx.sender) != tx.nonce:
            return ExecutionResult(False, 0, error="bad nonce")
        try:
            self.state.sub_balance(tx.sender, tx.gas_limit * tx.gas_price)
        except InsufficientBalance:
            return ExecutionResult(False, 0, error="cannot afford gas")
        self.state.increment_nonce(tx.sender)

        snap = self.state.snapshot()
        logs_mark = len(self.state.logs)
        try:
            if tx.to == 0:
                # Contract deployment: tx.data is the init code.
                success, ret, gas_left = self._create(
                    creator=tx.sender,
                    creator_nonce=tx.nonce,
                    value=tx.value,
                    init_code=tx.data,
                    gas=tx.gas_limit - intrinsic,
                    depth=0)
            else:
                msg = Message(
                    sender=tx.sender, to=tx.to, value=tx.value,
                    data=tx.data, gas=tx.gas_limit - intrinsic,
                )
                success, ret, gas_left = self._call(msg)
        except EVMError:
            success, ret, gas_left = False, b"", 0
        if not success:
            self.state.revert_to(snap)
        gas_used = tx.gas_limit - gas_left
        # Refund unused gas; pay the miner.
        self.state.add_balance(tx.sender, gas_left * tx.gas_price)
        self.state.add_balance(self.header.coinbase, gas_used * tx.gas_price)
        logs = [
            (entry.address, entry.topics, entry.data)
            for entry in self.state.logs[logs_mark:]
        ]
        return ExecutionResult(success, gas_used, ret, logs)

    # -- message calls ------------------------------------------------------

    def _call(self, msg: Message) -> Tuple[bool, bytes, int]:
        """Execute one message call; returns (success, return_data, gas_left)."""
        if msg.depth > CALL_DEPTH_LIMIT:
            return False, b"", 0
        snap = self.state.snapshot()
        if msg.value and msg.code_address is None:
            try:
                self.state.sub_balance(msg.sender, msg.value)
            except InsufficientBalance:
                return False, b"", msg.gas
            self.state.add_balance(msg.to, msg.value)
        code = self.state.get_code(msg.code_at)
        if not code:
            # Plain value transfer.
            return True, b"", msg.gas
        frame = _Frame(msg, code, self._next_frame_id)
        parent_id = self._next_frame_id - 1 if self._next_frame_id else None
        self._next_frame_id += 1
        self.tracer.on_call_enter(frame.frame_id, parent_id, msg.to, msg.depth)
        try:
            ret = self._run(frame)
            self.tracer.on_call_exit(frame.frame_id, True, ret)
            return True, ret, frame.gas
        except Revert as exc:
            self.state.revert_to(snap)
            self.tracer.on_call_exit(frame.frame_id, False, exc.data)
            return False, exc.data, frame.gas
        except EVMError:
            self.state.revert_to(snap)
            self.tracer.on_call_exit(frame.frame_id, False, b"")
            return False, b"", 0

    def _create(self, creator: int, creator_nonce: int, value: int,
                init_code: bytes, gas: int, depth: int
                ) -> Tuple[bool, bytes, int]:
        """Deploy a contract: run ``init_code``; its return value
        becomes the new account's runtime code.

        Returns (success, 20-byte-ish address as bytes32, gas_left);
        on failure the address is empty and state reverts.
        """
        new_address = keccak_int(
            int_to_bytes32(creator) + int_to_bytes32(creator_nonce)
        ) % (1 << 160)
        snap = self.state.snapshot()
        if self.state.get_code(new_address):
            return False, b"", 0  # address collision
        self.state.create_account(new_address)
        if value:
            try:
                self.state.sub_balance(creator, value)
            except InsufficientBalance:
                self.state.revert_to(snap)
                return False, b"", gas
            self.state.add_balance(new_address, value)
        msg = Message(sender=creator, to=new_address, value=value,
                      data=b"", gas=gas, depth=depth,
                      code_address=new_address)
        frame = _Frame(msg, init_code, self._next_frame_id)
        self._next_frame_id += 1
        self.tracer.on_call_enter(frame.frame_id, None, new_address,
                                  depth)
        try:
            runtime = self._run(frame)
            self.state.set_code(new_address, runtime)
            self.tracer.on_call_exit(frame.frame_id, True, runtime)
            return True, int_to_bytes32(new_address), frame.gas
        except Revert as exc:
            self.state.revert_to(snap)
            self.tracer.on_call_exit(frame.frame_id, False, exc.data)
            return False, b"", frame.gas
        except EVMError:
            self.state.revert_to(snap)
            self.tracer.on_call_exit(frame.frame_id, False, b"")
            return False, b"", 0

    # -- gas helpers ----------------------------------------------------------

    def _charge(self, frame: _Frame, amount: int) -> None:
        if frame.gas < amount:
            frame.gas = 0
            raise OutOfGas(f"need {amount} gas")
        frame.gas -= amount

    def _charge_memory(self, frame: _Frame, offset: int, size: int) -> None:
        words = frame.memory.expansion_words(offset, size)
        if words:
            self._charge(frame, words * MEMORY_WORD_GAS)

    # -- main loop ---------------------------------------------------------------

    def _run(self, frame: _Frame) -> bytes:
        """Interpreter loop for one frame; returns the frame's output.

        Hot path: one list index into the pre-decoded program replaces
        the per-step opcode-table lookup, push/dup/swap classification,
        and handler-dict probe of the byte-at-a-time loop.
        """
        code = frame.code
        program = frame.program
        n = len(code)
        charge = self._charge
        while frame.pc < n:
            pc = frame.pc
            entry = program[pc]
            if entry is None:
                # pc landed inside a PUSH immediate (requires a
                # contrived jump table); interpret the raw byte exactly
                # like the pre-decode loop did.
                op = code[pc]
                try:
                    info = opcodes.OPCODES[op]
                except KeyError:
                    raise InvalidOpcode(f"undefined opcode {op:#04x}")
                result = self._execute_op(frame, op, info)
            else:
                handler, info = entry
                if info is not None:
                    charge(frame, info.gas)
                    frame.pc = pc + 1  # default advance; jumps overwrite
                result = handler(self, frame, pc, info)
            if result is not None:
                return result
        return b""

    def _emit(self, frame: _Frame, pc: int, op: int, name: str,
              inputs: Tuple[int, ...], output: Optional[int],
              gas_cost: int, **extra) -> None:
        """Record one executed instruction with the tracer."""
        self.instruction_count += 1
        record = StepRecord(
            index=self._step_index, depth=frame.msg.depth,
            frame_id=frame.frame_id, code_address=frame.msg.to,
            pc=pc, op=op, name=name, inputs=inputs, output=output,
            gas_cost=gas_cost, extra=extra,
        )
        self._step_index += 1
        self.tracer.on_step(record)

    def _emit_fast(self, frame: _Frame, pc: int, op: int, name: str,
                   inputs: Tuple[int, ...], output: Optional[int],
                   gas_cost: int, **extra) -> None:
        """No-op-tracer fast path: keep the counters, skip the record."""
        self.instruction_count += 1
        self._step_index += 1

    # pylint: disable=too-many-branches,too-many-statements
    def _execute_op(self, frame: _Frame, op: int,
                    info: opcodes.OpInfo) -> Optional[bytes]:
        """Execute one instruction; returns frame output on STOP/RETURN."""
        stack = frame.stack
        state = self.state
        pc = frame.pc
        self._charge(frame, info.gas)
        frame.pc += 1  # default advance; jumps overwrite

        # --- stack manipulation -------------------------------------------
        if opcodes.is_push(op):
            size = opcodes.push_size(op)
            value = bytes_to_int(frame.code[pc + 1:pc + 1 + size])
            stack.push(value)
            frame.pc = pc + 1 + size
            self._emit(frame, pc, op, info.name, (), value, info.gas)
            return None
        if opcodes.is_dup(op):
            depth = op - 0x80 + 1
            value = stack.peek(depth - 1)
            stack.dup(depth)
            self._emit(frame, pc, op, info.name, (value,), value, info.gas)
            return None
        if opcodes.is_swap(op):
            depth = op - 0x90 + 1
            stack.swap(depth)
            self._emit(frame, pc, op, info.name, (), None, info.gas)
            return None

        # --- everything else ------------------------------------------------
        handler = _HANDLERS.get(op)
        if handler is None:
            raise InvalidOpcode(f"unimplemented opcode {info.name}")
        return handler(self, frame, pc, info)


# ---------------------------------------------------------------------------
# Opcode handlers.  Each returns None to continue, or bytes to end the frame.
# ---------------------------------------------------------------------------

_HANDLERS = {}


def _handler(op: Op):
    def register(fn):
        _HANDLERS[int(op)] = fn
        return fn
    return register


def _binary(op: Op, compute):
    """Register a two-operand pure arithmetic/logic handler."""
    @_handler(op)
    def run(evm: EVM, frame: _Frame, pc: int, info) -> None:
        a = frame.stack.pop()
        b = frame.stack.pop()
        value = compute(a, b)
        frame.stack.push(value)
        evm._emit(frame, pc, int(op), info.name, (a, b), value, info.gas)
    return run


def _unary(op: Op, compute):
    @_handler(op)
    def run(evm: EVM, frame: _Frame, pc: int, info) -> None:
        a = frame.stack.pop()
        value = compute(a)
        frame.stack.push(value)
        evm._emit(frame, pc, int(op), info.name, (a,), value, info.gas)
    return run


def _ternary(op: Op, compute):
    @_handler(op)
    def run(evm: EVM, frame: _Frame, pc: int, info) -> None:
        a = frame.stack.pop()
        b = frame.stack.pop()
        c = frame.stack.pop()
        value = compute(a, b, c)
        frame.stack.push(value)
        evm._emit(frame, pc, int(op), info.name, (a, b, c), value, info.gas)
    return run


# Pure computation semantics (shared with constant folding in the
# specializer — repro.core.optimize imports COMPUTE_SEMANTICS).
def _div(a, b):
    return a // b if b else 0


def _sdiv(a, b):
    if b == 0:
        return 0
    sa, sb = to_signed(a), to_signed(b)
    q = abs(sa) // abs(sb)
    return to_unsigned(-q if (sa < 0) != (sb < 0) else q)


def _mod(a, b):
    return a % b if b else 0


def _smod(a, b):
    if b == 0:
        return 0
    sa, sb = to_signed(a), to_signed(b)
    r = abs(sa) % abs(sb)
    return to_unsigned(-r if sa < 0 else r)


def _signextend(size, value):
    if size >= 32:
        return value
    bit = 8 * (size + 1) - 1
    mask = (1 << (bit + 1)) - 1
    if value & (1 << bit):
        return u256(value | ~mask)
    return value & mask


def _byte(pos, value):
    if pos >= 32:
        return 0
    return (value >> (8 * (31 - pos))) & 0xFF


def _sar(shift, value):
    if shift >= 256:
        return u256(-1) if value >= 2**255 else 0
    return to_unsigned(to_signed(value) >> shift)


COMPUTE_SEMANTICS = {
    int(Op.ADD): lambda a, b: u256(a + b),
    int(Op.MUL): lambda a, b: u256(a * b),
    int(Op.SUB): lambda a, b: u256(a - b),
    int(Op.DIV): _div,
    int(Op.SDIV): _sdiv,
    int(Op.MOD): _mod,
    int(Op.SMOD): _smod,
    int(Op.ADDMOD): lambda a, b, m: (a + b) % m if m else 0,
    int(Op.MULMOD): lambda a, b, m: (a * b) % m if m else 0,
    int(Op.EXP): lambda a, b: pow(a, b, 2**256),
    int(Op.SIGNEXTEND): _signextend,
    int(Op.LT): lambda a, b: 1 if a < b else 0,
    int(Op.GT): lambda a, b: 1 if a > b else 0,
    int(Op.SLT): lambda a, b: 1 if to_signed(a) < to_signed(b) else 0,
    int(Op.SGT): lambda a, b: 1 if to_signed(a) > to_signed(b) else 0,
    int(Op.EQ): lambda a, b: 1 if a == b else 0,
    int(Op.ISZERO): lambda a: 1 if a == 0 else 0,
    int(Op.AND): lambda a, b: a & b,
    int(Op.OR): lambda a, b: a | b,
    int(Op.XOR): lambda a, b: a ^ b,
    int(Op.NOT): lambda a: u256(~a),
    int(Op.BYTE): _byte,
    int(Op.SHL): lambda s, v: u256(v << s) if s < 256 else 0,
    int(Op.SHR): lambda s, v: v >> s if s < 256 else 0,
    int(Op.SAR): _sar,
}

for _code, _fn in COMPUTE_SEMANTICS.items():
    _info = opcodes.OPCODES[_code]
    if _info.pops == 1:
        _unary(Op(_code), _fn)
    elif _info.pops == 2:
        _binary(Op(_code), _fn)
    else:
        _ternary(Op(_code), _fn)


# --- stack manipulation (pre-bound per opcode for the decoded program) -------

def _dup(op_value: int, depth: int):
    def run(evm: EVM, frame: _Frame, pc: int, info) -> None:
        value = frame.stack.peek(depth - 1)
        frame.stack.dup(depth)
        evm._emit(frame, pc, op_value, info.name, (value,), value, info.gas)
    return run


def _swap(op_value: int, depth: int):
    def run(evm: EVM, frame: _Frame, pc: int, info) -> None:
        frame.stack.swap(depth)
        evm._emit(frame, pc, op_value, info.name, (), None, info.gas)
    return run


for _n in range(1, 17):
    _HANDLERS[0x80 + _n - 1] = _dup(0x80 + _n - 1, _n)
    _HANDLERS[0x90 + _n - 1] = _swap(0x90 + _n - 1, _n)


# --- SHA3 -------------------------------------------------------------------

@_handler(Op.SHA3)
def _op_sha3(evm: EVM, frame: _Frame, pc: int, info) -> None:
    offset = frame.stack.pop()
    size = frame.stack.pop()
    evm._charge_memory(frame, offset, size)
    evm._charge(frame, SHA3_WORD_GAS * ((size + 31) // 32))
    data = frame.memory.read(offset, size)
    value = keccak_int(data)
    frame.stack.push(value)
    evm._emit(frame, pc, int(Op.SHA3), info.name, (offset, size), value,
              info.gas, mem_offset=offset, mem_size=size, data=data)


# --- environment / transaction constants --------------------------------------

def _env_const(op: Op, getter):
    @_handler(op)
    def run(evm: EVM, frame: _Frame, pc: int, info) -> None:
        value = getter(evm, frame)
        frame.stack.push(value)
        evm._emit(frame, pc, int(op), info.name, (), value, info.gas)
    return run


_env_const(Op.ADDRESS, lambda evm, f: f.msg.to)
_env_const(Op.ORIGIN, lambda evm, f: evm.tx.sender)
_env_const(Op.CALLER, lambda evm, f: f.msg.sender)
_env_const(Op.CALLVALUE, lambda evm, f: f.msg.value)
_env_const(Op.CALLDATASIZE, lambda evm, f: len(f.msg.data))
_env_const(Op.CODESIZE, lambda evm, f: len(f.code))
_env_const(Op.GASPRICE, lambda evm, f: evm.tx.gas_price)
_env_const(Op.CHAINID, lambda evm, f: evm.header.chain_id)
_env_const(Op.PC, lambda evm, f: f.pc - 1)
_env_const(Op.MSIZE, lambda evm, f: len(f.memory))
_env_const(Op.GAS, lambda evm, f: f.gas)


@_handler(Op.CALLDATALOAD)
def _op_calldataload(evm: EVM, frame: _Frame, pc: int, info) -> None:
    offset = frame.stack.pop()
    data = frame.msg.data
    word = data[offset:offset + 32]
    value = bytes_to_int(word + b"\x00" * (32 - len(word)))
    frame.stack.push(value)
    evm._emit(frame, pc, int(Op.CALLDATALOAD), info.name, (offset,), value,
              info.gas, data_offset=offset)


@_handler(Op.CALLDATACOPY)
def _op_calldatacopy(evm: EVM, frame: _Frame, pc: int, info) -> None:
    dest = frame.stack.pop()
    offset = frame.stack.pop()
    size = frame.stack.pop()
    evm._charge_memory(frame, dest, size)
    chunk = frame.msg.data[offset:offset + size]
    chunk += b"\x00" * (size - len(chunk))
    frame.memory.write(dest, chunk)
    evm._emit(frame, pc, int(Op.CALLDATACOPY), info.name,
              (dest, offset, size), None, info.gas,
              mem_offset=dest, mem_size=size, data=chunk)


# --- context reads ---------------------------------------------------------------

def _header_read(op: Op, field_name: str):
    @_handler(op)
    def run(evm: EVM, frame: _Frame, pc: int, info) -> None:
        value = getattr(evm.header, field_name)
        frame.stack.push(value)
        evm.tracer.on_context_read(KIND_HEADER, (field_name,), value)
        evm._emit(frame, pc, int(op), info.name, (), value, info.gas,
                  read_kind=KIND_HEADER, read_key=(field_name,))
    return run


_header_read(Op.TIMESTAMP, "timestamp")
_header_read(Op.NUMBER, "number")
_header_read(Op.COINBASE, "coinbase")
_header_read(Op.DIFFICULTY, "difficulty")
_header_read(Op.GASLIMIT, "gas_limit")


@_handler(Op.BLOCKHASH)
def _op_blockhash(evm: EVM, frame: _Frame, pc: int, info) -> None:
    number = frame.stack.pop()
    value = evm.blockhash_fn(number)
    frame.stack.push(value)
    evm.tracer.on_context_read(KIND_BLOCKHASH, (number,), value)
    evm._emit(frame, pc, int(Op.BLOCKHASH), info.name, (number,), value,
              info.gas, read_kind=KIND_BLOCKHASH, read_key=(number,))


@_handler(Op.BALANCE)
def _op_balance(evm: EVM, frame: _Frame, pc: int, info) -> None:
    address = frame.stack.pop()
    value = evm.state.get_balance(address)
    frame.stack.push(value)
    evm.tracer.on_context_read(KIND_BALANCE, (address,), value)
    evm._emit(frame, pc, int(Op.BALANCE), info.name, (address,), value,
              info.gas, read_kind=KIND_BALANCE, read_key=(address,))


@_handler(Op.SELFBALANCE)
def _op_selfbalance(evm: EVM, frame: _Frame, pc: int, info) -> None:
    value = evm.state.get_balance(frame.msg.to)
    frame.stack.push(value)
    evm.tracer.on_context_read(KIND_BALANCE, (frame.msg.to,), value)
    evm._emit(frame, pc, int(Op.SELFBALANCE), info.name, (), value,
              info.gas, read_kind=KIND_BALANCE, read_key=(frame.msg.to,))


@_handler(Op.EXTCODESIZE)
def _op_extcodesize(evm: EVM, frame: _Frame, pc: int, info) -> None:
    address = frame.stack.pop()
    value = len(evm.state.get_code(address))
    frame.stack.push(value)
    evm.tracer.on_context_read(KIND_CODESIZE, (address,), value)
    evm._emit(frame, pc, int(Op.EXTCODESIZE), info.name, (address,), value,
              info.gas, read_kind=KIND_CODESIZE, read_key=(address,))


# --- memory ---------------------------------------------------------------------

@_handler(Op.POP)
def _op_pop(evm: EVM, frame: _Frame, pc: int, info) -> None:
    value = frame.stack.pop()
    evm._emit(frame, pc, int(Op.POP), info.name, (value,), None, info.gas)


@_handler(Op.MLOAD)
def _op_mload(evm: EVM, frame: _Frame, pc: int, info) -> None:
    offset = frame.stack.pop()
    evm._charge_memory(frame, offset, 32)
    value = frame.memory.load_word(offset)
    frame.stack.push(value)
    evm._emit(frame, pc, int(Op.MLOAD), info.name, (offset,), value,
              info.gas, mem_offset=offset, mem_size=32)


@_handler(Op.MSTORE)
def _op_mstore(evm: EVM, frame: _Frame, pc: int, info) -> None:
    offset = frame.stack.pop()
    value = frame.stack.pop()
    evm._charge_memory(frame, offset, 32)
    frame.memory.store_word(offset, value)
    evm._emit(frame, pc, int(Op.MSTORE), info.name, (offset, value), None,
              info.gas, mem_offset=offset, mem_size=32)


@_handler(Op.MSTORE8)
def _op_mstore8(evm: EVM, frame: _Frame, pc: int, info) -> None:
    offset = frame.stack.pop()
    value = frame.stack.pop()
    evm._charge_memory(frame, offset, 1)
    frame.memory.store_byte(offset, value)
    evm._emit(frame, pc, int(Op.MSTORE8), info.name, (offset, value), None,
              info.gas, mem_offset=offset, mem_size=1)


# --- storage --------------------------------------------------------------------

@_handler(Op.SLOAD)
def _op_sload(evm: EVM, frame: _Frame, pc: int, info) -> None:
    slot = frame.stack.pop()
    value = evm.state.get_storage(frame.msg.to, slot)
    frame.stack.push(value)
    evm.tracer.on_context_read(KIND_STORAGE, (frame.msg.to, slot), value)
    evm._emit(frame, pc, int(Op.SLOAD), info.name, (slot,), value,
              info.gas, read_kind=KIND_STORAGE,
              read_key=(frame.msg.to, slot))


@_handler(Op.SSTORE)
def _op_sstore(evm: EVM, frame: _Frame, pc: int, info) -> None:
    if frame.msg.static:
        raise WriteProtection("SSTORE inside STATICCALL")
    slot = frame.stack.pop()
    value = frame.stack.pop()
    evm.state.set_storage(frame.msg.to, slot, value)
    evm.write_op_count += 1
    evm.tracer.on_state_write(KIND_STORAGE, (frame.msg.to, slot), value)
    evm._emit(frame, pc, int(Op.SSTORE), info.name, (slot, value), None,
              info.gas, write_kind=KIND_STORAGE,
              write_key=(frame.msg.to, slot))


# --- control flow ------------------------------------------------------------------

@_handler(Op.JUMP)
def _op_jump(evm: EVM, frame: _Frame, pc: int, info) -> None:
    target = frame.stack.pop()
    if target not in frame.jumpdests:
        raise InvalidJump(f"jump to {target}")
    frame.pc = target
    evm._emit(frame, pc, int(Op.JUMP), info.name, (target,), None, info.gas,
              jump_target=target)


@_handler(Op.JUMPI)
def _op_jumpi(evm: EVM, frame: _Frame, pc: int, info) -> None:
    target = frame.stack.pop()
    cond = frame.stack.pop()
    taken = cond != 0
    if taken:
        if target not in frame.jumpdests:
            raise InvalidJump(f"jump to {target}")
        frame.pc = target
    evm._emit(frame, pc, int(Op.JUMPI), info.name, (target, cond), None,
              info.gas, jump_target=target, taken=taken)


@_handler(Op.JUMPDEST)
def _op_jumpdest(evm: EVM, frame: _Frame, pc: int, info) -> None:
    evm._emit(frame, pc, int(Op.JUMPDEST), info.name, (), None, info.gas)


# --- logging ------------------------------------------------------------------------

def _log_handler(op: Op, topic_count: int):
    @_handler(op)
    def run(evm: EVM, frame: _Frame, pc: int, info) -> None:
        if frame.msg.static:
            raise WriteProtection("LOG inside STATICCALL")
        offset = frame.stack.pop()
        size = frame.stack.pop()
        topics = tuple(frame.stack.pop() for _ in range(topic_count))
        evm._charge_memory(frame, offset, size)
        data = frame.memory.read(offset, size)
        evm.state.add_log(frame.msg.to, topics, data)
        evm.write_op_count += 1
        evm.tracer.on_state_write(KIND_LOG, (frame.msg.to,), (topics, data))
        evm._emit(frame, pc, int(op), info.name,
                  (offset, size) + topics, None, info.gas,
                  mem_offset=offset, mem_size=size, data=data, topics=topics)
    return run


for _i in range(5):
    _log_handler(Op(0xA0 + _i), _i)


# --- calls and frame termination -------------------------------------------------------

def _do_call(evm: EVM, frame: _Frame, pc: int, info, op: Op) -> None:
    """Shared machinery for CALL / DELEGATECALL / STATICCALL."""
    gas = frame.stack.pop()
    to = frame.stack.pop()
    if op is Op.CALL:
        value = frame.stack.pop()
    else:
        value = 0
    arg_off = frame.stack.pop()
    arg_size = frame.stack.pop()
    ret_off = frame.stack.pop()
    ret_size = frame.stack.pop()
    evm._charge_memory(frame, arg_off, arg_size)
    evm._charge_memory(frame, ret_off, ret_size)
    args = frame.memory.read(arg_off, arg_size)
    forwarded = min(gas, frame.gas)
    if op is Op.DELEGATECALL:
        # Callee code runs in the CALLER's storage/value/sender context.
        msg = Message(sender=frame.msg.sender, to=frame.msg.to,
                      value=frame.msg.value, data=args, gas=forwarded,
                      depth=frame.msg.depth + 1, code_address=to,
                      static=frame.msg.static)
    elif op is Op.STATICCALL:
        msg = Message(sender=frame.msg.to, to=to, value=0, data=args,
                      gas=forwarded, depth=frame.msg.depth + 1,
                      static=True)
    else:
        if frame.msg.static and value:
            raise WriteProtection("value transfer inside STATICCALL")
        msg = Message(sender=frame.msg.to, to=to, value=value,
                      data=args, gas=forwarded,
                      depth=frame.msg.depth + 1, static=frame.msg.static)
    # Emit the call step *before* the callee's instructions so the trace
    # order matches execution order (the callee is inlined in the trace).
    inputs = ((gas, to, value, arg_off, arg_size, ret_off, ret_size)
              if op is Op.CALL
              else (gas, to, arg_off, arg_size, ret_off, ret_size))
    evm._emit(frame, pc, int(op), info.name, inputs, None, info.gas,
              call_to=to, call_value=value, call_args=args,
              call_kind=info.name, mem_offset=arg_off, mem_size=arg_size,
              ret_offset=ret_off, ret_size=ret_size)
    success, ret, gas_left = evm._call(msg)
    frame.gas -= (forwarded - gas_left)
    if ret_size:
        padded = ret[:ret_size] + b"\x00" * max(0, ret_size - len(ret))
        frame.memory.write(ret_off, padded)
    frame.returned = ret
    frame.stack.push(1 if success else 0)
    evm._emit(frame, pc, int(op), "CALL_RESULT", (), 1 if success else 0,
              0, call_success=success, call_return=ret,
              ret_offset=ret_off, ret_size=ret_size)


@_handler(Op.CALL)
def _op_call(evm: EVM, frame: _Frame, pc: int, info) -> None:
    _do_call(evm, frame, pc, info, Op.CALL)


@_handler(Op.DELEGATECALL)
def _op_delegatecall(evm: EVM, frame: _Frame, pc: int, info) -> None:
    _do_call(evm, frame, pc, info, Op.DELEGATECALL)


@_handler(Op.STATICCALL)
def _op_staticcall(evm: EVM, frame: _Frame, pc: int, info) -> None:
    _do_call(evm, frame, pc, info, Op.STATICCALL)


@_handler(Op.CODECOPY)
def _op_codecopy(evm: EVM, frame: _Frame, pc: int, info) -> None:
    dest = frame.stack.pop()
    offset = frame.stack.pop()
    size = frame.stack.pop()
    evm._charge_memory(frame, dest, size)
    chunk = frame.code[offset:offset + size]
    chunk += b"\x00" * (size - len(chunk))
    frame.memory.write(dest, chunk)
    evm._emit(frame, pc, int(Op.CODECOPY), info.name,
              (dest, offset, size), None, info.gas,
              mem_offset=dest, mem_size=size, data=chunk)


@_handler(Op.CREATE)
def _op_create(evm: EVM, frame: _Frame, pc: int, info) -> None:
    if frame.msg.static:
        raise WriteProtection("CREATE inside STATICCALL")
    value = frame.stack.pop()
    offset = frame.stack.pop()
    size = frame.stack.pop()
    evm._charge_memory(frame, offset, size)
    init_code = frame.memory.read(offset, size)
    creator = frame.msg.to
    nonce = evm.state.get_nonce(creator)
    evm.state.increment_nonce(creator)
    evm._emit(frame, pc, int(Op.CREATE), info.name,
              (value, offset, size), None, info.gas,
              mem_offset=offset, mem_size=size, data=init_code)
    success, address_bytes, gas_left = evm._create(
        creator=creator, creator_nonce=nonce, value=value,
        init_code=init_code, gas=frame.gas,
        depth=frame.msg.depth + 1)
    frame.gas = gas_left if success else min(frame.gas, gas_left)
    address = int.from_bytes(address_bytes, "big") if address_bytes \
        else 0
    frame.stack.push(address)
    evm._emit(frame, pc, int(Op.CREATE), "CREATE_RESULT", (), address,
              0, create_success=success)


@_handler(Op.RETURNDATASIZE)
def _op_returndatasize(evm: EVM, frame: _Frame, pc: int, info) -> None:
    value = len(frame.returned)
    frame.stack.push(value)
    evm._emit(frame, pc, int(Op.RETURNDATASIZE), info.name, (), value,
              info.gas)


@_handler(Op.RETURNDATACOPY)
def _op_returndatacopy(evm: EVM, frame: _Frame, pc: int, info) -> None:
    dest = frame.stack.pop()
    offset = frame.stack.pop()
    size = frame.stack.pop()
    if offset + size > len(frame.returned):
        raise InvalidOpcode("RETURNDATACOPY out of bounds")
    evm._charge_memory(frame, dest, size)
    chunk = frame.returned[offset:offset + size]
    frame.memory.write(dest, chunk)
    evm._emit(frame, pc, int(Op.RETURNDATACOPY), info.name,
              (dest, offset, size), None, info.gas,
              mem_offset=dest, mem_size=size, data=chunk,
              src_offset=offset)


@_handler(Op.STOP)
def _op_stop(evm: EVM, frame: _Frame, pc: int, info) -> bytes:
    evm._emit(frame, pc, int(Op.STOP), info.name, (), None, info.gas)
    return b""


@_handler(Op.RETURN)
def _op_return(evm: EVM, frame: _Frame, pc: int, info) -> bytes:
    offset = frame.stack.pop()
    size = frame.stack.pop()
    evm._charge_memory(frame, offset, size)
    data = frame.memory.read(offset, size)
    evm._emit(frame, pc, int(Op.RETURN), info.name, (offset, size), None,
              info.gas, mem_offset=offset, mem_size=size, data=data)
    return data


@_handler(Op.REVERT)
def _op_revert(evm: EVM, frame: _Frame, pc: int, info) -> None:
    offset = frame.stack.pop()
    size = frame.stack.pop()
    evm._charge_memory(frame, offset, size)
    data = frame.memory.read(offset, size)
    evm._emit(frame, pc, int(Op.REVERT), info.name, (offset, size), None,
              info.gas, mem_offset=offset, mem_size=size, data=data)
    raise Revert(data)


@_handler(Op.INVALID)
def _op_invalid(evm: EVM, frame: _Frame, pc: int, info) -> None:
    raise InvalidOpcode("INVALID opcode executed")
