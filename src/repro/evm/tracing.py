"""Tracing hooks for the instrumented EVM (paper §4.3, preparation step).

The speculator runs transactions on an *instrumented EVM* that records:

* the EVM instruction trace (every executed instruction, in order),
* the intermediate results (inputs/outputs of each instruction),
* the read set (context variables read) and write set (variables written).

This module defines the hook protocol and the raw per-step record; the
higher-level trace assembly (read/write set objects, frame structure)
lives in :mod:`repro.core.trace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple


# Context-read / state-write kinds (the keys of read/write sets).
KIND_STORAGE = "storage"        # key: (address, slot)
KIND_BALANCE = "balance"        # key: (address,)
KIND_HEADER = "header"          # key: (field_name,)
KIND_BLOCKHASH = "blockhash"    # key: (block_number,)
KIND_CODESIZE = "extcodesize"   # key: (address,)
KIND_LOG = "log"                # write-only


@dataclass
class StepRecord:
    """One executed EVM instruction with its concrete dataflow."""

    index: int                 # position in the flat trace
    depth: int                 # call depth (0 = top-level frame)
    frame_id: int              # unique id of the owning call frame
    code_address: int          # account whose code is executing
    pc: int
    op: int
    name: str
    inputs: Tuple[int, ...]    # popped stack operands, top-first
    output: Optional[int]      # pushed result (None if none)
    gas_cost: int
    extra: Dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Base tracer; the default hooks do nothing.

    Subclasses override the hooks they need.  The interpreter invokes
    :meth:`on_step` for every instruction *after* it executes (so the
    record carries concrete inputs and output), and the context hooks
    whenever execution touches the context or writes state.
    """

    def on_step(self, record: StepRecord) -> None:
        """Called once per executed instruction."""

    def on_call_enter(self, frame_id: int, parent_id: Optional[int],
                      code_address: int, depth: int) -> None:
        """Called when a new call frame starts executing."""

    def on_call_exit(self, frame_id: int, success: bool,
                     return_data: bytes) -> None:
        """Called when a call frame finishes."""

    def on_context_read(self, kind: str, key: tuple, value: int) -> None:
        """Called when execution reads a context variable (read set)."""

    def on_state_write(self, kind: str, key: tuple, value: Any) -> None:
        """Called when execution writes state (write set)."""
